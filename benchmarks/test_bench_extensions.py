"""Regenerates the future-work extension experiments (400G, optmem autosizing)."""

import pytest


def test_bench_ext_400g(run_artifact):
    result = run_artifact("ext-400g")
    m8 = result.row_by(matrix="8 x 25G")
    m20 = result.row_by(matrix="20 x 20G")
    # 8x25 clean at 200; 20x20 hits a host aggregate ceiling below 400
    assert m8["gbps"] == pytest.approx(200, rel=0.05)
    assert m20["gbps"] > 300  # scales well past 200G...
    assert m20["gbps"] < 399  # ...but a new host bottleneck appears


def test_bench_ext_optmem(run_artifact):
    result = run_artifact("ext-optmem")
    for row in result.rows:
        # the advisor's recommendation matches the 16 MB oracle
        assert row["gbps"] == pytest.approx(row["oracle_gbps"], rel=0.04)
        assert row["gbps"] > 45
