"""Regenerates Figure 5: single-stream AmLight (default / zc / zc+pace / BIG TCP)."""

import pytest


def test_bench_fig05(run_artifact):
    result = run_artifact("fig05")
    default = result.row_by(path="wan54", config="default")["gbps"]
    combo = result.row_by(path="wan54", config="zc+pace50")["gbps"]
    bigtcp = result.row_by(path="wan54", config="bigtcp150K")["gbps"]
    assert combo / default > 1.25  # paper: up to +35%
    assert combo == pytest.approx(50.0, rel=0.05)
    assert bigtcp > default  # paper: up to +16%
