"""Regenerates Table I: ESnet LAN, 8 flows, no flow control."""

import pytest


def test_bench_table1(run_artifact):
    result = run_artifact("tab1")
    unpaced = result.row_by(config="unpaced")
    p25 = result.row_by(config="25 Gbps/stream")
    p15 = result.row_by(config="15 Gbps/stream")
    # unpaced and 25G/stream both land near the host ceiling (~166)
    assert unpaced["avg_gbps"] == pytest.approx(166, rel=0.08)
    assert p25["avg_gbps"] == pytest.approx(166, rel=0.08)
    # 15G/stream: 8 x 15 = 120, with near-zero variance
    assert p15["avg_gbps"] == pytest.approx(120, rel=0.03)
    assert p15["stdev"] <= unpaced["stdev"] + 0.1
