"""Regenerates Section III.A: core-placement variability ablation."""


def test_bench_affinity(run_artifact):
    result = run_artifact("var")
    pinned = result.row_by(placement="pinned")
    balanced = result.row_by(placement="irqbalance")
    # pinned: tight; irqbalance: wide spread with a far lower floor
    assert balanced["stdev"] > pinned["stdev"]
    assert balanced["min"] < 0.8 * pinned["min"]
    assert balanced["max"] <= pinned["max"] * 1.1
