"""Tick-kernel micro-benchmark: scalar reference vs vectorized path.

Times a fig09-sized campaign (16 zerocopy flows fq-paced to 50 Gbps
aggregate on the 104 ms AmLight path, 2 repetitions at 2 ms ticks —
the shape behind the paper's optmem sweep) under both tick kernels,
asserts the results stay byte-identical, and refreshes ``BENCH_5.json``
at the repo root with the measured wall-clock trajectory.

The committed numbers are the perf contract: the vector kernel must
hold a >= 3x speedup on this campaign (the in-test floor is 2.5x to
absorb shared-CI machine noise; the committed JSON records what a
quiet machine measures).  Run with::

    pytest benchmarks/test_bench_kernel.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.rng import RngFactory
from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
from repro.sim.kernels import forced_kernel
from repro.tcp.pacing import PacingConfig
from repro.testbeds.amlight import AmLightTestbed

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_5.json"

#: Fig. 9's operating point: 16 iperf3 -Z streams, fq paced to an
#: aggregate 50 Gbps, on the 104 ms path (Fig09OptmemSweep uses
#: Iperf3Options(zerocopy="z", fq_rate_gbps=50)).
N_FLOWS = 16
PROFILE = SimProfile(duration=4.0, tick=0.002, omit=1.0)
REPS = 2
TRIALS = 3
#: In-test floor; the acceptance target (>= 3x) is asserted on the
#: committed BENCH_5.json numbers, measured on a quiet machine.
MIN_SPEEDUP = 2.5


def _campaign_flows() -> list[FlowSpec]:
    per_flow_gbps = 50.0 / N_FLOWS
    return [
        FlowSpec(zerocopy=True, pacing=PacingConfig.fq_rate_gbps(per_flow_gbps))
        for _ in range(N_FLOWS)
    ]


def _run_campaign(kernel: str) -> tuple[float, list]:
    """One timed campaign under ``kernel``; returns (seconds, results)."""
    tb = AmLightTestbed(kernel="6.5")
    snd, rcv = tb.host_pair()
    path = tb.path("wan104")
    flows = _campaign_flows()
    results = []
    with forced_kernel(kernel):
        start = time.perf_counter()
        for rep in range(REPS):
            sim = FlowSimulator(snd, rcv, path, flows, PROFILE, RngFactory(2024))
            results.append(sim.run())
        elapsed = time.perf_counter() - start
    return elapsed, results


def test_bench_kernel_speedup_and_parity():
    # Warm both paths (imports, allocator, numpy dispatch caches).
    _run_campaign("vector")
    _run_campaign("scalar")

    scalar_times, vector_times = [], []
    for _ in range(TRIALS):
        es, rs = _run_campaign("scalar")
        ev, rv = _run_campaign("vector")
        scalar_times.append(es)
        vector_times.append(ev)
        # The bench is only meaningful if both kernels computed the
        # same campaign — byte-identical, not approximately.
        for a, b in zip(rs, rv):
            assert np.array_equal(a.per_flow_goodput, b.per_flow_goodput)
            assert a.retransmit_segments == b.retransmit_segments
            assert a.sender_cpu == b.sender_cpu
            assert a.receiver_cpu == b.receiver_cpu

    best_scalar = min(scalar_times)
    best_vector = min(vector_times)
    speedup = best_scalar / best_vector

    entry = {
        "bench": "tick-kernel",
        "campaign": {
            "testbed": "amlight",
            "path": "wan104",
            "flows": N_FLOWS,
            "pacing_gbps_total": 50.0,
            "zerocopy": True,
            "duration_sec": PROFILE.duration,
            "tick_sec": PROFILE.tick,
            "repetitions": REPS,
            "seed": 2024,
        },
        "trials": TRIALS,
        "scalar_sec": round(best_scalar, 4),
        "vector_sec": round(best_vector, 4),
        "speedup": round(speedup, 2),
    }
    BENCH_PATH.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    print(f"\nscalar {best_scalar*1e3:.1f} ms | vector {best_vector*1e3:.1f} ms "
          f"| speedup {speedup:.2f}x -> {BENCH_PATH.name}")

    assert speedup >= MIN_SPEEDUP, (
        f"vector kernel speedup {speedup:.2f}x fell below the "
        f"{MIN_SPEEDUP}x floor (scalar {best_scalar:.3f}s, "
        f"vector {best_vector:.3f}s)"
    )
