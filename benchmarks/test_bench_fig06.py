"""Regenerates Figure 6: single-stream ESnet (AMD hosts)."""

import pytest


def test_bench_fig06(run_artifact):
    result = run_artifact("fig06")
    lan = result.row_by(path="lan", config="default")["gbps"]
    wan = result.row_by(path="wan", config="default")["gbps"]
    combo = result.row_by(path="wan", config="zc+pace40")["gbps"]
    assert wan < 0.65 * lan  # paper: WAN ~40% below LAN
    assert combo == pytest.approx(40.0, rel=0.05)  # recovers to ~LAN level
    assert combo / wan > 1.5  # paper: +85%
