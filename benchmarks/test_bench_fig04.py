"""Regenerates Figure 4: bare metal vs VM validation."""

import pytest


def test_bench_fig04(run_artifact):
    result = run_artifact("fig04")
    bare = result.row_by(path="wan54", vm_mode="baremetal", test="zc+pace50")
    tuned = result.row_by(path="wan54", vm_mode="tuned", test="zc+pace50")
    # tuned VM within a few percent of bare metal (paper: within 1 stdev)
    assert tuned["gbps"] == pytest.approx(bare["gbps"], rel=0.06)
