"""Regenerates Figure 13: kernel versions, AmLight Intel."""

import pytest


def test_bench_fig13(run_artifact):
    result = run_artifact("fig13")
    lan = {k: result.row_by(kernel=k, path="lan")["gbps"] for k in ("5.15", "6.5", "6.8")}
    wan = {k: result.row_by(kernel=k, path="wan54")["gbps"] for k in ("5.15", "6.5", "6.8")}
    # LAN: ~+27% from 5.15 to 6.8
    assert lan["6.8"] / lan["5.15"] == pytest.approx(1.27, abs=0.08)
    # WAN: identical on all kernels — pinned at the 50G pacing cap
    assert max(wan.values()) - min(wan.values()) < 2.0
    assert wan["5.15"] == pytest.approx(50.0, rel=0.05)
