"""Regenerates Figure 11: 8-flow results at AmLight."""

import pytest


def test_bench_fig11(run_artifact):
    result = run_artifact("fig11")
    # default declines with latency (paper: ~62 -> ~50)
    d_lan = result.row_by(path="lan", config="default")["gbps"]
    d_104 = result.row_by(path="wan104", config="default")["gbps"]
    assert 55 < d_lan < 70
    assert d_104 < d_lan
    # paced zerocopy reaches ~8 x rate on the WAN
    z10 = result.row_by(path="wan25", config="zc+10G")["gbps"]
    z9 = result.row_by(path="wan25", config="zc+9G")["gbps"]
    assert z10 == pytest.approx(80.0, rel=0.06)
    assert z9 == pytest.approx(72.0, rel=0.06)
    # zerocopy without pacing misses max on the longest WAN path
    zu = result.row_by(path="wan104", config="zc-unpaced")["gbps"]
    assert zu < z10
