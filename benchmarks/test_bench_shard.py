"""Sharded-simulator throughput bench: ticks/sec at 10k flows.

Times a massive-flow campaign (10,000 cubic flows on the 54 ms AmLight
path) through the sharded engine at 1 in-process shard and at 4
process shards, asserts the two stay byte-identical (the bench is
meaningless if they diverge), and refreshes ``BENCH_7.json`` at the
repo root with the measured ticks/sec trajectory.

The committed numbers are the perf contract: the single-shard engine
must sustain ``MIN_TICKS_PER_SEC`` on this campaign (set ~3x below a
quiet machine's measurement to absorb shared-CI noise; the JSON
records the quiet-machine numbers).  Run with::

    pytest benchmarks/test_bench_shard.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.rng import RngFactory
from repro.sim.flowsim import FlowSpec, SimProfile
from repro.sim.shard import FlowPopulation, ShardedFlowSimulator

from repro.testbeds.amlight import AmLightTestbed

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_7.json"

N_FLOWS = 10_000
PROFILE = SimProfile(duration=2.0, tick=0.008, omit=0.5)
SEED = 2024
TRIALS = 3
#: In-test floor on the 1-shard engine, ticks of 10k-flow simulation
#: per wall-clock second; the committed JSON holds quiet-machine data.
MIN_TICKS_PER_SEC = 40.0


def _run_campaign(shards: int, mode: str):
    """One timed campaign; returns (seconds, result)."""
    tb = AmLightTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    sim = ShardedFlowSimulator(
        snd, rcv, tb.path("wan54"),
        FlowPopulation.uniform(FlowSpec(), N_FLOWS),
        PROFILE, RngFactory(SEED), shards=shards, mode=mode,
    )
    start = time.perf_counter()
    result = sim.run()
    return time.perf_counter() - start, result


def test_bench_shard_ticks_per_sec_and_parity():
    n_ticks = int(round(PROFILE.duration / PROFILE.tick))

    # Warm both transports (imports, allocator, fork machinery).
    _run_campaign(1, "inproc")
    _run_campaign(4, "process")

    one_times, four_times = [], []
    for _ in range(TRIALS):
        e1, r1 = _run_campaign(1, "inproc")
        e4, r4 = _run_campaign(4, "process")
        one_times.append(e1)
        four_times.append(e4)
        assert np.array_equal(r1.per_flow_goodput, r4.per_flow_goodput)
        assert r1.retransmit_segments == r4.retransmit_segments
        assert r1.loss_events == r4.loss_events

    best_one = min(one_times)
    best_four = min(four_times)
    tps_one = n_ticks / best_one
    tps_four = n_ticks / best_four

    entry = {
        "bench": "shard-ticks",
        "campaign": {
            "testbed": "amlight",
            "path": "wan54",
            "flows": N_FLOWS,
            "duration_sec": PROFILE.duration,
            "tick_sec": PROFILE.tick,
            "seed": SEED,
        },
        "trials": TRIALS,
        "ticks": n_ticks,
        "one_shard_sec": round(best_one, 4),
        "four_shard_sec": round(best_four, 4),
        "ticks_per_sec_1shard": round(tps_one, 1),
        "ticks_per_sec_4shard": round(tps_four, 1),
    }
    BENCH_PATH.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    print(f"\n1-shard {best_one*1e3:.0f} ms ({tps_one:.0f} ticks/s) | "
          f"4-shard {best_four*1e3:.0f} ms ({tps_four:.0f} ticks/s) "
          f"-> {BENCH_PATH.name}")

    assert tps_one >= MIN_TICKS_PER_SEC, (
        f"1-shard engine sustained {tps_one:.1f} ticks/s at {N_FLOWS} "
        f"flows, below the {MIN_TICKS_PER_SEC} ticks/s floor"
    )
