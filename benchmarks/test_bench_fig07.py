"""Regenerates Figure 7: CPU utilization vs latency (Intel)."""


def test_bench_fig07(run_artifact):
    result = run_artifact("fig07")
    # default: sender saturates on the WAN, receiver works hard on LAN
    wan_default = result.row_by(path="wan54", config="default")
    lan_default = result.row_by(path="lan", config="default")
    assert wan_default["snd_app_pct"] > 95
    assert lan_default["rcv_cpu_pct"] > 90
    # zerocopy+pacing: sender CPU collapses
    wan_zc = result.row_by(path="wan25", config="zc+pace")
    assert wan_zc["snd_cpu_pct"] < 0.7 * wan_default["snd_cpu_pct"]
