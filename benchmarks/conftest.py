"""Shared benchmark machinery.

Each benchmark regenerates one paper artifact via the experiment
registry, times it with pytest-benchmark, prints the reproduced
table/series, and sanity-checks the headline shape.  Run with::

    pytest benchmarks/ --benchmark-only -s

Use ``REPRO_BENCH_PAPER=1`` to run at the paper's full fidelity
(60 s x 10 repetitions — slow) instead of the default bench profile.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_experiments
from repro.experiments.base import ExperimentResult
from repro.tools.harness import HarnessConfig


@pytest.fixture(scope="session")
def bench_config() -> HarnessConfig:
    if os.environ.get("REPRO_BENCH_PAPER"):
        return HarnessConfig.paper()
    return HarnessConfig.bench()


@pytest.fixture()
def run_artifact(benchmark, bench_config):
    """Benchmark one experiment and return its result.

    Routes through the parallel runner's campaign API with caching off
    — the runner is the production entry point, and a cache hit would
    make the timing meaningless.
    """

    def runner(exp_id: str) -> ExperimentResult:
        result = benchmark.pedantic(
            lambda: run_experiments(
                [exp_id], config=bench_config, use_cache=False
            ).results[0],
            rounds=1,
            iterations=1,
        )
        print()
        print(result.render())
        return result

    return runner
