"""Regenerates Figure 12: kernel versions, ESnet AMD."""

import pytest


def test_bench_fig12(run_artifact):
    result = run_artifact("fig12")
    g = {k: result.row_by(kernel=k, path="lan")["gbps"] for k in ("5.15", "6.5", "6.8")}
    assert g["6.5"] / g["5.15"] == pytest.approx(1.12, abs=0.06)
    assert g["6.8"] / g["6.5"] == pytest.approx(1.17, abs=0.06)
    assert g["6.8"] / g["5.15"] > 1.25  # paper: >30% total
