"""Regenerates Table III: ESnet production DTNs with flow control."""

import pytest


def test_bench_table3(run_artifact):
    result = run_artifact("tab3")
    unpaced = result.row_by(config="unpaced")
    p12 = result.row_by(config="12 Gbps/stream")
    p10 = result.row_by(config="10 Gbps/stream")
    # with flow control, average throughput barely moves until the
    # pacing total drops below the path (paper: 98/98/93/79)
    assert unpaced["avg_gbps"] == pytest.approx(97, rel=0.08)
    assert p12["avg_gbps"] == pytest.approx(95, rel=0.08)
    assert p10["avg_gbps"] == pytest.approx(79, rel=0.04)
    # pacing narrows the per-flow range (paper: 9-16 -> 10-10)
    assert unpaced["range"] != p10["range"]
    assert p10["range"].startswith("10-10")
