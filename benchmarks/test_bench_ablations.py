"""Mechanism-attribution ablation benches (see DESIGN.md §3)."""

import pytest


def test_bench_ablation_cache(run_artifact):
    result = run_artifact("abl-cache")
    real_lan = result.row_by(model="calibrated", path="lan")["gbps"]
    real_wan = result.row_by(model="calibrated", path="wan54")["gbps"]
    ablated_wan = result.row_by(model="no-cache-penalty", path="wan54")["gbps"]
    # the calibrated model shows the paper's WAN gap...
    assert real_wan < 0.8 * real_lan
    # ...which mostly disappears without the cache mechanism
    assert ablated_wan > real_wan * 1.2


def test_bench_ablation_burst(run_artifact):
    result = run_artifact("abl-burst")
    real = result.row_by(buffer="tofino-16MB")
    huge = result.row_by(buffer="infinite")
    # with deep buffers, unpaced zerocopy climbs toward the receiver
    # limit; the shallow Tofino buffer is what keeps it down (residual
    # retransmits remain at the receiver ring in both cases)
    assert huge["gbps"] > 1.4 * real["gbps"]


def test_bench_ablation_fallback(run_artifact):
    result = run_artifact("abl-fallback")
    limited = result.row_by(optmem="1MB", path="wan104")
    unlimited = result.row_by(optmem="unlimited", path="wan104")
    assert unlimited["gbps"] == pytest.approx(50, rel=0.05)
    assert limited["gbps"] < 0.85 * unlimited["gbps"]
    assert limited["snd_cpu_pct"] > unlimited["snd_cpu_pct"]