"""Mixed-CC batching micro-benchmark: the zoo in one campaign.

Times a 16-flow campaign whose flows cycle through every
template-batchable congestion-control kind (the cc-zoo registry:
cubic, reno, highspeed, htcp, scalable, westwood, plus two tuned-cubic
parameterizations) on the 54 ms AmLight path, under both tick kernels.
This is the worst case for the registry-driven batch dispatch — every
``_ArrayGroup`` is live in the same :class:`~repro.tcp.cc.batch.CcBatch`
— so the bench doubles as the perf contract for the grouped stepper:
the vector kernel must clear a ticks/sec floor and stay byte-identical
to the scalar reference.

Refreshes ``BENCH_9.json`` at the repo root.  Run with::

    pytest benchmarks/test_bench_cc_zoo.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.rng import RngFactory
from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
from repro.sim.kernels import forced_kernel
from repro.testbeds.amlight import AmLightTestbed

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_9.json"

#: Two flows of each batchable kind: all seven stepper groups live at
#: once (the two tunable parameterizations share one group with
#: per-flow parameter rows).
KINDS = (
    "cubic",
    "reno",
    "highspeed",
    "htcp",
    "scalable",
    "westwood",
    "tunable-cubic:alpha=1.5,beta=0.5",
    "tunable-cubic:c=0.8,beta=0.6",
)
N_FLOWS = 16
PROFILE = SimProfile(duration=4.0, tick=0.002, omit=1.0)
REPS = 2
TRIALS = 3
#: Conservative in-test floor for the vector kernel on a noisy shared
#: machine; the committed BENCH_9.json records what a quiet one does.
MIN_TICKS_PER_SEC = 1500.0


def _campaign_flows() -> list[FlowSpec]:
    return [FlowSpec(cc=KINDS[i % len(KINDS)]) for i in range(N_FLOWS)]


def _run_campaign(kernel: str) -> tuple[float, list]:
    tb = AmLightTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    path = tb.path("wan54")
    flows = _campaign_flows()
    results = []
    with forced_kernel(kernel):
        start = time.perf_counter()
        for rep in range(REPS):
            sim = FlowSimulator(snd, rcv, path, flows, PROFILE, RngFactory(2024))
            results.append(sim.run())
        elapsed = time.perf_counter() - start
    return elapsed, results


def test_bench_mixed_cc_ticks_per_sec_and_parity():
    # Warm both paths (imports, allocator, numpy dispatch caches).
    _run_campaign("vector")
    _run_campaign("scalar")

    scalar_times, vector_times = [], []
    for _ in range(TRIALS):
        es, rs = _run_campaign("scalar")
        ev, rv = _run_campaign("vector")
        scalar_times.append(es)
        vector_times.append(ev)
        # Mixed-group dispatch must not cost parity: byte-identical.
        for a, b in zip(rs, rv):
            assert np.array_equal(a.per_flow_goodput, b.per_flow_goodput)
            assert a.retransmit_segments == b.retransmit_segments
            assert a.sender_cpu == b.sender_cpu
            assert a.receiver_cpu == b.receiver_cpu

    total_ticks = REPS * int(round(PROFILE.duration / PROFILE.tick))
    best_scalar = min(scalar_times)
    best_vector = min(vector_times)
    ticks_per_sec = total_ticks / best_vector
    speedup = best_scalar / best_vector

    entry = {
        "bench": "mixed-cc-zoo",
        "campaign": {
            "testbed": "amlight",
            "path": "wan54",
            "flows": N_FLOWS,
            "kinds": list(KINDS),
            "duration_sec": PROFILE.duration,
            "tick_sec": PROFILE.tick,
            "repetitions": REPS,
            "seed": 2024,
        },
        "trials": TRIALS,
        "scalar_sec": round(best_scalar, 4),
        "vector_sec": round(best_vector, 4),
        "ticks_per_sec": round(ticks_per_sec, 1),
        "speedup": round(speedup, 2),
    }
    BENCH_PATH.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    print(f"\nscalar {best_scalar*1e3:.1f} ms | vector {best_vector*1e3:.1f} ms "
          f"| {ticks_per_sec:.0f} ticks/s | speedup {speedup:.2f}x "
          f"-> {BENCH_PATH.name}")

    assert ticks_per_sec >= MIN_TICKS_PER_SEC, (
        f"mixed-CC vector kernel ran {ticks_per_sec:.0f} ticks/s, below "
        f"the {MIN_TICKS_PER_SEC:.0f} floor (vector {best_vector:.3f}s "
        f"for {total_ticks} ticks)"
    )
