"""Regenerates Table II: ESnet WAN, 8 flows, no flow control."""

import pytest


def test_bench_table2(run_artifact):
    result = run_artifact("tab2")
    unpaced = result.row_by(config="unpaced")
    p15 = result.row_by(config="15 Gbps/stream")
    # interference ceiling: unpaced lands near ~120-130 (paper: 127)
    assert 105 < unpaced["avg_gbps"] < 140
    # 15 G/stream stays under the ceiling and is clean
    assert p15["avg_gbps"] == pytest.approx(120, rel=0.05)
    assert p15["retr"] <= unpaced["retr"]
    assert p15["stdev"] <= unpaced["stdev"] + 0.1
