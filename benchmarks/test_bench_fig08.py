"""Regenerates Figure 8: CPU utilization vs latency (AMD)."""


def test_bench_fig08(run_artifact):
    result = run_artifact("fig08")
    wan_default = result.row_by(path="wan", config="default")
    wan_zc = result.row_by(path="wan", config="zc+pace")
    # default WAN: sender-side CPU is the bottleneck
    assert wan_default["snd_app_pct"] > 95
    # zerocopy+pacing recovers throughput and cuts sender CPU
    assert wan_zc["gbps"] > 1.5 * wan_default["gbps"]
    assert wan_zc["snd_cpu_pct"] < wan_default["snd_cpu_pct"]
