"""Load bench for the ``repro serve`` daemon: warm-hit rps and p99.

Drives a live server (real sockets, real worker pool) through three
deterministic phases and refreshes ``BENCH_8.json`` at the repo root:

1. **warm** — a handful of cold configs execute once, paying pool
   build + first-run cost and populating the cache;
2. **coalesce burst** — ``BURST`` concurrent submissions of one fresh
   config; exactly one may execute, the rest must ride it (the bench
   fails if single-flight breaks, because then the numbers measure the
   wrong machine);
3. **hit replay** — ``REPLAY`` cache-hit requests over persistent
   connections, their order drawn from a seeded ``RngFactory`` stream
   so every run issues the identical sequence.  Requests/sec and p99
   latency come from this phase.

The committed JSON records quiet-machine numbers; the in-test floors
(``MIN_RPS``, ``MAX_P99_MS``) sit far below/above them to absorb
shared-CI noise.  Run with::

    pytest benchmarks/test_bench_serve.py -s
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import http.client
import json
import time
from pathlib import Path

from repro.core.rng import RngFactory
from repro.serve import ServeClient, ServeConfig, running_server
from repro.tools.harness import HarnessConfig

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_8.json"

BASE_CONFIG = HarnessConfig(
    repetitions=2, duration=4.0, omit=1.0, tick=0.008, seed=2024
)
EXP_ID = "var"
WARM_KEYS = 4  # distinct configs executed cold in phase 1
BURST = 8  # concurrent identical submissions in phase 2
REPLAY = 400  # warm-hit requests timed in phase 3
CONNECTIONS = 2  # persistent connections sharing the replay
SEED = 2024
#: Floors on the warm-hit phase (quiet machines measure far better;
#: the committed JSON holds the real numbers).
MIN_RPS = 100.0
MAX_P99_MS = 100.0


def _replay_worker(host: str, port: int, bodies: list[bytes]) -> list[float]:
    """Issue ``bodies`` on one persistent connection; per-request secs."""
    conn = http.client.HTTPConnection(host, port, timeout=60)
    latencies = []
    try:
        for body in bodies:
            start = time.perf_counter()
            conn.request(
                "POST", "/experiments", body=body,
                headers={"Content-Type": "application/json"},
            )
            reply = conn.getresponse()
            payload = reply.read()
            latencies.append(time.perf_counter() - start)
            assert reply.status == 200, payload
            assert b'"cached":true' in payload
    finally:
        conn.close()
    return latencies


def test_bench_serve_rps_and_p99(tmp_path):
    config = ServeConfig(port=0, workers=2, cache_dir=tmp_path / "cache")
    with running_server(config) as server:
        client = ServeClient(config.host, server.port)

        # -- phase 1: warm the pool and the cache -------------------------
        warm_configs = [
            dataclasses.replace(BASE_CONFIG, seed=BASE_CONFIG.seed + i)
            for i in range(WARM_KEYS)
        ]
        warm_start = time.perf_counter()
        digests = [
            client.submit(EXP_ID, config=c)["digest"] for c in warm_configs
        ]
        warm_elapsed = time.perf_counter() - warm_start
        assert len(set(digests)) == WARM_KEYS  # distinct seeds, distinct rows

        # -- phase 2: coalesce burst --------------------------------------
        burst_config = dataclasses.replace(
            BASE_CONFIG, seed=BASE_CONFIG.seed + 1000
        )
        with concurrent.futures.ThreadPoolExecutor(BURST) as pool:
            futs = [
                pool.submit(client.submit, EXP_ID, burst_config)
                for _ in range(BURST)
            ]
            docs = [f.result() for f in futs]
        assert len({d["digest"] for d in docs}) == 1
        coalesced = sum(1 for d in docs if d["coalesced"])
        stats = client.stats()
        assert coalesced == BURST - 1, (
            f"expected {BURST - 1} of {BURST} identical in-flight requests "
            f"to coalesce, got {coalesced} (stats: {stats})"
        )

        # -- phase 3: timed warm-hit replay -------------------------------
        picks = RngFactory(seed=SEED).stream("bench:serve-replay")
        bodies = [
            json.dumps(
                {
                    "exp_id": EXP_ID,
                    "config": warm_configs[
                        int(picks.integers(0, WARM_KEYS))
                    ].to_dict(),
                }
            ).encode("utf-8")
            for _ in range(REPLAY)
        ]
        shares = [bodies[i::CONNECTIONS] for i in range(CONNECTIONS)]
        replay_start = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(CONNECTIONS) as pool:
            latencies = [
                sec
                for chunk in pool.map(
                    lambda share: _replay_worker(
                        config.host, server.port, share
                    ),
                    shares,
                )
                for sec in chunk
            ]
        replay_elapsed = time.perf_counter() - replay_start
        stats = client.stats()

    rps = REPLAY / replay_elapsed
    latencies.sort()
    p50_ms = latencies[len(latencies) // 2] * 1e3
    p99_ms = latencies[min(len(latencies) - 1, int(len(latencies) * 0.99))] * 1e3

    entry = {
        "bench": "serve-load",
        "campaign": {
            "exp_id": EXP_ID,
            "base_config": BASE_CONFIG.to_dict(),
            "warm_keys": WARM_KEYS,
            "burst": BURST,
            "replay_requests": REPLAY,
            "connections": CONNECTIONS,
            "workers": config.workers,
            "seed": SEED,
        },
        "warm_sec": round(warm_elapsed, 4),
        "replay_sec": round(replay_elapsed, 4),
        "requests_per_sec": round(rps, 1),
        "p50_ms": round(p50_ms, 3),
        "p99_ms": round(p99_ms, 3),
        "coalesced": coalesced,
        "hits": stats["hits"],
        "dispatched": stats["dispatched"],
    }
    BENCH_PATH.write_text(json.dumps(entry, indent=2, sort_keys=True) + "\n")
    print(
        f"\nwarm {warm_elapsed:.2f}s | replay {REPLAY} reqs in "
        f"{replay_elapsed:.2f}s ({rps:.0f} rps, p50 {p50_ms:.1f} ms, "
        f"p99 {p99_ms:.1f} ms) | {coalesced}/{BURST - 1} coalesced "
        f"-> {BENCH_PATH.name}"
    )

    # Replay answers came from the cache, not the pool.
    assert stats["dispatched"] == WARM_KEYS + 1
    assert rps >= MIN_RPS, (
        f"warm-hit path sustained {rps:.0f} rps, below the {MIN_RPS} floor"
    )
    assert p99_ms <= MAX_P99_MS, (
        f"warm-hit p99 was {p99_ms:.1f} ms, above the {MAX_P99_MS} ms ceiling"
    )
