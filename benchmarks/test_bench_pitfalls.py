"""Regenerates the tuning-pitfall ablations (fq-rate overflow, iommu=pt)."""

import pytest


def test_bench_fq_rate_overflow(run_artifact):
    result = run_artifact("pit-fqrate")
    patched = result.row_by(tool="iperf3+PR1728")["gbps"]
    unpatched = result.row_by(tool="iperf3 (uint fq-rate)")["gbps"]
    assert patched == pytest.approx(50.0, rel=0.05)
    assert unpatched == pytest.approx(15.6, rel=0.10)  # 50e9/8 mod 2^32


def test_bench_iommu(run_artifact):
    result = run_artifact("pit-iommu")
    pt = result.row_by(iommu="pt")["gbps"]
    translated = result.row_by(iommu="translated")["gbps"]
    # paper: 80 -> 181 Gbps on the ESnet AMD hosts
    assert pt / translated > 1.8
