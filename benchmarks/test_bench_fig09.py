"""Regenerates Figure 9: throughput/CPU vs optmem_max."""

import pytest


def test_bench_fig09(run_artifact):
    result = run_artifact("fig09")
    starved = result.row_by(optmem="20KB(default)", path="wan54")
    okay = result.row_by(optmem="1MB", path="wan25")
    weak = result.row_by(optmem="1MB", path="wan104")
    best = result.row_by(optmem="3.25MB", path="wan104")
    # 20 KB: CPU-pegged and far below the pacing rate
    assert starved["snd_cpu_pct"] > 95 and starved["gbps"] < 32
    # 1 MB: fine at 25 ms, sags at 104 ms (paper: ~40 of 50)
    assert okay["gbps"] > 43
    assert weak["gbps"] == pytest.approx(35, rel=0.25)
    # 3.25 MB: restores the long path and cuts CPU
    assert best["gbps"] > weak["gbps"]
    assert best["snd_cpu_pct"] < weak["snd_cpu_pct"]
