"""Regenerates Section V.C previews: HW GRO and BIG TCP + zerocopy."""

import pytest


def test_bench_hw_gro(run_artifact):
    result = run_artifact("fw-hwgro")
    soft_15 = result.row_by(mtu=1500, hw_gro="off")["gbps"]
    hard_15 = result.row_by(mtu=1500, hw_gro="on")["gbps"]
    soft_9k = result.row_by(mtu=9000, hw_gro="off")["gbps"]
    hard_9k = result.row_by(mtu=9000, hw_gro="on")["gbps"]
    assert soft_15 == pytest.approx(24, rel=0.25)  # paper: 24 Gbps
    assert hard_15 / soft_15 > 1.8  # paper: +160%
    assert 1.0 <= hard_9k / soft_9k < 1.4  # paper: modest at 9K


def test_bench_bigtcp_zerocopy_combo(run_artifact):
    result = run_artifact("fw-combo")
    assert "refused" in result.row_by(kernel="6.8 stock")["note"]
    base = result.row_by(config="zc+pace50")["gbps"]
    combo = result.row_by(config="bigtcp+zc+pace65")["gbps"]
    assert combo > base  # paper: up to +65%, inconsistent
