"""Regenerates Figure 10: 8-flow zerocopy pacing sweep, ESnet."""

import pytest


def test_bench_fig10(run_artifact):
    result = run_artifact("fig10")
    for path in ("lan", "wan"):
        for pace, total in ((25.0, 200.0), (20.0, 160.0), (15.0, 120.0)):
            row = result.row_by(path=path, pacing=f"{pace:g}G/stream")
            # throughput tracks min(NIC, 8 x pacing); WAN rows may sit a
            # bit below the 200/160 targets (interference > ~120G)
            assert row["gbps"] <= row["max_tput"] * 1.02
            if total <= 120:
                assert row["gbps"] == pytest.approx(total, rel=0.06)
    # stdev smallest at the lowest pacing rate on the WAN
    wan15 = result.row_by(path="wan", pacing="15G/stream")["stdev"]
    wan25 = result.row_by(path="wan", pacing="25G/stream")["stdev"]
    assert wan15 <= wan25 + 0.5
