"""Regenerates Section IV.F: congestion-control comparison."""

import pytest


def test_bench_cc(run_artifact):
    result = run_artifact("cc")
    cubic = result.row_by(algo="cubic", scenario="single-wan54")
    bbr1 = result.row_by(algo="bbr1", scenario="single-wan54")
    bbr3 = result.row_by(algo="bbr3", scenario="single-wan54")
    # single-stream throughput roughly comparable on the clean testbed
    for bbr in (bbr1, bbr3):
        assert bbr["gbps"] == pytest.approx(cubic["gbps"], rel=0.35)
    # parallel BBR benefits strongly from pacing (paper: otherwise
    # flows interfere and back off)
    for algo in ("bbr1", "bbr3"):
        unpaced = result.row_by(algo=algo, scenario="8flows-unpaced")
        paced = result.row_by(algo=algo, scenario="8flows-9G")
        assert paced["stdev"] <= unpaced["stdev"] + 0.5
