#!/usr/bin/env python3
"""DTN tuning advisor: walk a host from stock to fully tuned.

The paper's conclusion is a checklist for Data Transfer Node operators.
This example applies that checklist one step at a time to a stock
Ubuntu host and measures the effect of each step on a 54 ms WAN path,
showing *which* tuning actually matters (and in what combination —
zerocopy without optmem, for instance, makes things worse).

Run::

    python examples/dtn_tuning_advisor.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.rng import RngFactory
from repro.host import Host, HostTuning, Sysctls
from repro.host.sysctl import OPTMEM_1MB, OPTMEM_BEST_WAN
from repro.testbeds import AmLightTestbed
from repro.tools import Iperf3, Iperf3Options


@dataclass
class Step:
    name: str
    sender: Host
    receiver: Host
    options: Iperf3Options


def build_steps() -> list[Step]:
    """Each step adds one item of the paper's checklist."""
    stock_sys = Sysctls()
    tuned_sys = Sysctls.fasterdata_tuned()
    best_sys = Sysctls.fasterdata_tuned(optmem_max=OPTMEM_BEST_WAN)

    def host(name, sysctls, tuning):
        return Host.build(name=name, cpu="intel", nic="cx5", kernel="6.8",
                          sysctls=sysctls, tuning=tuning)

    stock = HostTuning.stock().set(mtu=9000)
    pinned = stock.set(irqbalance=False)
    full = HostTuning.paper()

    plain = Iperf3Options(duration=15)
    zc = Iperf3Options(duration=15, zerocopy="z")
    zc_paced = Iperf3Options(duration=15, zerocopy="z", fq_rate_gbps=50)

    return [
        Step("0. stock Ubuntu (small buffers, irqbalance, fq_codel)",
             host("snd", stock_sys, stock), host("rcv", stock_sys, stock), plain),
        Step("1. + fasterdata sysctls (2 GiB buffers, fq qdisc)",
             host("snd", tuned_sys, stock), host("rcv", tuned_sys, stock), plain),
        Step("2. + pin IRQs/process, disable irqbalance",
             host("snd", tuned_sys, pinned), host("rcv", tuned_sys, pinned), plain),
        Step("3. + SMT off, performance governor, iommu=pt, big rings",
             host("snd", tuned_sys, full), host("rcv", tuned_sys, full), plain),
        Step("4. + MSG_ZEROCOPY (optmem_max = 1 MB already set)",
             host("snd", tuned_sys, full), host("rcv", tuned_sys, full), zc),
        Step("5. + fq pacing at 50 Gbps  <- the paper's recipe",
             host("snd", tuned_sys, full), host("rcv", tuned_sys, full), zc_paced),
        Step("6. + optmem_max = 3.25 MB (for the longest paths)",
             host("snd", best_sys, full), host("rcv", best_sys, full), zc_paced),
    ]


def main() -> None:
    path = AmLightTestbed(kernel="6.8").path("wan54")
    print(f"Tuning walk on: {path.describe()}\n")
    print(f"{'step':58s} {'Gbps':>7s} {'snd CPU':>8s}")
    print("-" * 76)
    rng = RngFactory(seed=42)
    for step in build_steps():
        tool = Iperf3(step.sender, step.receiver, path, rng=rng)
        res = tool.run(step.options)
        print(f"{step.name:58s} {res.gbps:7.1f} {res.run.sender_cpu.total_pct:7.0f}%")
    print()
    print("Step 0 is window-limited (stock 4 MB tcp_wmem over 54 ms).")
    print("Steps 4->5 show the paper's central point: zerocopy only pays")
    print("off *combined* with pacing and a properly sized optmem_max.")


if __name__ == "__main__":
    main()
