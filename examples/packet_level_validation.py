#!/usr/bin/env python3
"""Cross-validate the fluid model with the packet-level micro simulator.

The reproduction's results come from a fluid (tick-based) simulator;
this example demonstrates that its core dynamics agree with an exact
packet-by-packet simulation on scaled-down scenarios, and shows the
packet-scale version of the paper's pacing story: the same flow, same
buffer — with pacing it is loss-free, without it the slow-start
overshoot tail-drops and CUBIC sawtooths.

Run::

    python examples/packet_level_validation.py
"""

from __future__ import annotations

from repro.micro import MicroSimulation


def pacing_story() -> None:
    print("== pacing vs burst loss at packet granularity ==")
    print("   (10 Gbps link, 20 ms RTT, 2 MB switch buffer)")
    unpaced = MicroSimulation(rate_gbps=10, rtt_ms=20, buffer_mb=2).run(5.0)
    paced = MicroSimulation(rate_gbps=10, rtt_ms=20, buffer_mb=2,
                            pacing_gbps=9).run(5.0)
    print(f"  unpaced : {unpaced.goodput_gbps:5.2f} Gbps, "
          f"{unpaced.drops} drops, {unpaced.retransmissions} retransmissions, "
          f"{unpaced.loss_events} congestion events")
    print(f"  paced 9G: {paced.goodput_gbps:5.2f} Gbps, "
          f"{paced.drops} drops, {paced.retransmissions} retransmissions")
    print()


def window_math() -> None:
    print("== window-limited throughput vs theory ==")
    for window_mb in (1.0, 2.5, 5.0):
        res = MicroSimulation(
            rate_gbps=10, rtt_ms=20, max_window_bytes=window_mb * 1e6
        ).run(4.0)
        theory = window_mb * 1e6 / 0.02 * 8 / 1e9
        print(f"  window {window_mb:3.1f} MB: measured {res.goodput_gbps:5.2f} "
              f"Gbps, cwnd/RTT predicts {theory:5.2f} Gbps")
    print()


def cc_zoo() -> None:
    print("== congestion-control algorithms on the same path ==")
    print("   (5 Gbps link, 20 ms RTT, 12 MB buffer, 3 s)")
    for cc in ("cubic", "reno", "bbr1", "bbr3"):
        res = MicroSimulation(rate_gbps=5, rtt_ms=20, buffer_mb=12, cc=cc).run(3.0)
        print(f"  {cc:6s}: {res.goodput_gbps:5.2f} Gbps, "
              f"{res.retransmissions} retransmissions")
    print()


def main() -> None:
    pacing_story()
    window_math()
    cc_zoo()
    print("The fluid simulator reproduces these same outcomes three orders")
    print("of magnitude faster, which is what makes the 100G experiments")
    print("tractable; tests/test_micro.py asserts the agreement.")


if __name__ == "__main__":
    main()
