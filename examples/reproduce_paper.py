#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Runs all registered experiments and prints each reproduced artifact.
By default uses the fast 'bench' fidelity; pass ``--paper`` for the
full 60-second x 10-repetition protocol (slow), or experiment ids to
run a subset::

    python examples/reproduce_paper.py            # everything, fast
    python examples/reproduce_paper.py fig05 tab2 # a subset
    python examples/reproduce_paper.py --paper    # full fidelity
    python examples/reproduce_paper.py --markdown out.md
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis.report import result_to_markdown
from repro.experiments import all_experiment_ids, run_experiment
from repro.tools.harness import HarnessConfig


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--paper", action="store_true",
                        help="full paper-fidelity runs (60s x 10 reps)")
    parser.add_argument("--markdown", metavar="FILE",
                        help="also write results as markdown")
    args = parser.parse_args(argv)

    config = HarnessConfig.paper() if args.paper else HarnessConfig.bench()
    ids = args.ids or all_experiment_ids()

    sections = []
    for exp_id in ids:
        t0 = time.time()
        result = run_experiment(exp_id, config)
        elapsed = time.time() - t0
        print(result.render())
        print(f"[{exp_id} done in {elapsed:.1f}s]\n")
        sections.append(result_to_markdown(result))

    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write("\n".join(sections))
        print(f"wrote {args.markdown}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
