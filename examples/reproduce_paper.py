#!/usr/bin/env python3
"""Reproduce every table and figure of the paper in one run.

Runs all registered experiments through the parallel runner and prints
each reproduced artifact.  By default uses the fast 'bench' fidelity;
pass ``--paper`` for the full 60-second x 10-repetition protocol
(slow), or experiment ids to run a subset::

    python examples/reproduce_paper.py                # everything, fast
    python examples/reproduce_paper.py fig05 tab2     # a subset
    python examples/reproduce_paper.py --jobs 4       # 4 worker processes
    python examples/reproduce_paper.py --paper        # full fidelity
    python examples/reproduce_paper.py --markdown EXPERIMENTS.md

Results are cached content-addressed (see README "Running experiments
in parallel"); re-running with unchanged code and config is instant.
When ``--markdown`` targets an existing file, everything above its
first ``### `` section (the hand-written preamble) is preserved and
only the generated sections are replaced.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import result_to_markdown
from repro.experiments import all_experiment_ids, run_experiments
from repro.tools.harness import HarnessConfig


def write_markdown(path: str, sections: list[str]) -> None:
    """Write sections to ``path``, keeping an existing file's preamble."""
    preamble = ""
    try:
        with open(path) as fh:
            text = fh.read()
        cut = text.find("### ")
        if cut > 0:
            preamble = text[:cut]
    except OSError:
        pass
    with open(path, "w") as fh:
        if preamble:
            fh.write(preamble)
        fh.write("\n".join(sections))


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    parser.add_argument("--paper", action="store_true",
                        help="full paper-fidelity runs (60s x 10 reps)")
    parser.add_argument("-j", "--jobs", type=int, default=1,
                        help="worker processes (default 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the result cache")
    parser.add_argument("--cache-dir", metavar="DIR",
                        help="cache location (default $REPRO_CACHE_DIR "
                        "or .repro_cache)")
    parser.add_argument("--markdown", metavar="FILE",
                        help="also write results as markdown")
    args = parser.parse_args(argv)

    config = HarnessConfig.paper() if args.paper else HarnessConfig.bench()
    ids = args.ids or all_experiment_ids()

    report = run_experiments(
        ids, config=config, jobs=args.jobs,
        use_cache=not args.no_cache, cache_dir=args.cache_dir,
    )
    sections = []
    for task in report.tasks:
        print(task.result.render())
        origin = "cached" if task.cached else f"done in {task.elapsed:.1f}s"
        print(f"[{task.spec.exp_id} {origin}]\n")
        sections.append(result_to_markdown(task.result))
    print(report.summary())

    if args.markdown:
        write_markdown(args.markdown, sections)
        print(f"wrote {args.markdown}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
