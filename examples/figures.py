#!/usr/bin/env python3
"""Render the paper's figures as terminal bar charts.

Runs one or more figure experiments and draws them the way the paper
lays them out — groups by RTT, one bar per configuration, whiskers for
one standard deviation.

Run::

    python examples/figures.py            # Fig. 5 (fast-ish)
    python examples/figures.py fig06 fig12
"""

from __future__ import annotations

import sys

from repro.analysis.charts import chart_from_result
from repro.experiments import run_experiment
from repro.tools.harness import HarnessConfig

#: column layout per figure: (group column, bar-label column)
LAYOUTS = {
    "fig04": ("path", "vm_mode"),
    "fig05": ("path", "config"),
    "fig06": ("path", "config"),
    "fig09": ("path", "optmem"),
    "fig10": ("path", "pacing"),
    "fig11": ("path", "config"),
    "fig12": ("path", "kernel"),
    "fig13": ("path", "kernel"),
}


def main(argv: list[str]) -> int:
    ids = argv or ["fig05"]
    config = HarnessConfig.bench()
    for exp_id in ids:
        if exp_id not in LAYOUTS:
            print(f"no chart layout for {exp_id!r}; have {sorted(LAYOUTS)}")
            continue
        group_col, label_col = LAYOUTS[exp_id]
        result = run_experiment(exp_id, config)
        chart = chart_from_result(result, group_col, label_col)
        print(chart.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
