#!/usr/bin/env python3
"""Parallel-stream pacing study: find the sweet spot for a DTN.

The paper's DTN use case (Section V.B): when running many parallel
streams, the dominant tuning decision is the per-stream pacing rate.
This example sweeps pacing for 8 zerocopy streams on the ESnet testbed
(LAN and WAN) and prints throughput, retransmits, and per-flow fairness
for each point — reproducing the reasoning behind Tables I/II and
Figure 10, and the recommendation to pace near total/streams with
headroom.

Run::

    python examples/parallel_pacing_study.py
"""

from __future__ import annotations

from repro.core.rng import RngFactory
from repro.testbeds import ESnetTestbed
from repro.tools import Iperf3, Iperf3Options

PACING_POINTS = [None, 25.0, 20.0, 15.0, 12.0, 10.0]
STREAMS = 8


def sweep(path_name: str) -> None:
    tb = ESnetTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    path = tb.path(path_name)
    print(f"== {path.describe()} ==")
    header = f"{'pacing':>12s} {'attempted':>10s} {'achieved':>9s} {'retr':>7s} {'per-flow range':>16s}"
    print(header)
    print("-" * len(header))
    tool = Iperf3(snd, rcv, path, rng=RngFactory(7))
    for pace in PACING_POINTS:
        opts = Iperf3Options(
            duration=15,
            parallel=STREAMS,
            fq_rate_gbps=pace,
            zerocopy="z",
            skip_rx_copy=True,
        )
        res = tool.run(opts)
        attempted = "line rate" if pace is None else f"{STREAMS * pace:.0f}G"
        lo, hi = res.run.flow_range_gbps
        label = "unpaced" if pace is None else f"{pace:g}G/stream"
        print(
            f"{label:>12s} {attempted:>10s} {res.gbps:8.1f}G "
            f"{res.retransmits:7d} {lo:7.1f}-{hi:<7.1f}"
        )
    print()


def main() -> None:
    for path_name in ("lan", "wan"):
        sweep(path_name)
    print("Reading the table the way the paper does: pace so that")
    print("streams x rate stays below the interference ceiling (~120G on")
    print("this WAN); lower pacing trades peak throughput for near-zero")
    print("retransmits and perfectly fair streams.")


if __name__ == "__main__":
    main()
