#!/usr/bin/env python3
"""Quickstart: run a simulated iperf3 test and read the results.

Reproduces the paper's headline comparison on one path — default iperf3
vs MSG_ZEROCOPY + fq pacing on AmLight's 54 ms WAN — and prints the
iperf3-style summary plus the mpstat view of both hosts.

Run::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.testbeds import AmLightTestbed
from repro.tools import Iperf3, Iperf3Options
from repro.tools.mpstat import MpstatReport


def main() -> None:
    # 1. Build the testbed: Intel hosts, ConnectX-5, kernel 6.8, tuned
    #    exactly as the paper's Section III describes.
    testbed = AmLightTestbed(kernel="6.8")
    sender, receiver = testbed.host_pair()
    path = testbed.path("wan54")  # Miami <-> Sao Paulo, 54 ms

    print(sender.describe())
    print(f"path: {path.describe()}")
    print()

    tool = Iperf3(sender, receiver, path)

    # 2. Default iperf3 flags: sender CPU-bound in the mid 30s of Gbps.
    default = tool.run(Iperf3Options(duration=20))
    print(f"$ {default.options.command_line()}")
    print(default.summary_line())
    print()

    # 3. The paper's recipe: --zerocopy=z + --fq-rate 50G.
    tuned = tool.run(Iperf3Options(duration=20, zerocopy="z", fq_rate_gbps=50))
    print(f"$ {tuned.options.command_line()}")
    print(tuned.summary_line())
    print()

    gain = (tuned.gbps / default.gbps - 1) * 100
    print(f"zerocopy + pacing gain over default: +{gain:.0f}%  "
          f"(paper: up to +35%)")
    print()

    # 4. Where did the CPU go?  mpstat-style per-core view.
    placement = sender.resolved_placement()
    for label, res in (("default", default), ("zc+pace50", tuned)):
        rep = MpstatReport(
            host_name=f"sender[{label}]",
            side="sender",
            util=res.run.sender_cpu,
            placement=placement,
            active_flows=1,
        )
        print(rep.render())
        print()


if __name__ == "__main__":
    main()
