#!/usr/bin/env python3
"""Kernel upgrade planner: what does moving off 5.15 actually buy?

Sweeps the paper's three kernels across both host platforms and the
main flow configurations, printing a decision table like the one a DTN
operator would want before scheduling an upgrade window — the
reproduction of Figures 12/13 viewed as a planning tool.

Run::

    python examples/kernel_upgrade_planner.py
"""

from __future__ import annotations

from repro.core.rng import RngFactory
from repro.host.sysctl import OPTMEM_BEST_WAN
from repro.testbeds import AmLightTestbed, ESnetTestbed
from repro.tools import Iperf3, Iperf3Options

KERNELS = ("5.15", "6.5", "6.8")


def row(label: str, values: dict[str, float]) -> None:
    cells = " ".join(f"{values[k]:8.1f}" for k in KERNELS)
    gain = (values["6.8"] / values["5.15"] - 1) * 100
    print(f"{label:44s} {cells}   {gain:+5.0f}%")


def measure(make_testbed, path_name, opts) -> dict[str, float]:
    out = {}
    for kernel in KERNELS:
        tb = make_testbed(kernel)
        snd, rcv = tb.host_pair()
        tool = Iperf3(snd, rcv, tb.path(path_name), rng=RngFactory(3))
        out[kernel] = tool.run(opts).gbps
    return out


def main() -> None:
    print(f"{'scenario':44s} {'5.15':>8s} {'6.5':>8s} {'6.8':>8s}   5.15->6.8")
    print("-" * 80)

    row("Intel LAN, single stream, defaults",
        measure(lambda k: AmLightTestbed(kernel=k), "lan",
                Iperf3Options(duration=15)))
    row("AMD LAN, single stream, defaults",
        measure(lambda k: ESnetTestbed(kernel=k), "lan",
                Iperf3Options(duration=15)))
    row("AMD WAN, single stream, defaults",
        measure(lambda k: ESnetTestbed(kernel=k), "wan",
                Iperf3Options(duration=15)))
    row("Intel WAN 54ms, zc+pace50+skip-rx (tuned)",
        measure(lambda k: AmLightTestbed(kernel=k, optmem_max=OPTMEM_BEST_WAN),
                "wan54",
                Iperf3Options(duration=15, zerocopy="z", fq_rate_gbps=50,
                              skip_rx_copy=True)))
    print()
    print("Defaults gain ~12% (6.5) then ~17% (6.8) on AMD and ~27% total")
    print("on Intel LAN — but a properly tuned zerocopy+paced WAN flow is")
    print("already pinned at its pacing rate on every kernel, so upgrade")
    print("urgency depends on whether your transfers run tuned or stock.")


if __name__ == "__main__":
    main()
