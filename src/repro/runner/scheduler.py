"""The campaign scheduler: pure core + pluggable transport.

``run_tasks`` fans :class:`~repro.runner.tasks.TaskSpec`\\ s out across
an execution transport and returns a
:class:`~repro.runner.tasks.RunReport` in submission order.  The
decisions live in :mod:`repro.runner.core` (what runs, what the cache
serves, how crashed tasks retry); the machinery lives in
:mod:`repro.runner.transport` (in-process, per-round process pools, or
the daemon's persistent warm pool).  Three properties the test net
locks down:

* **Determinism** — a task's rows depend only on (code, exp_id,
  config); worker count, transport choice, submission order, and
  completion order cannot change a single number.  Results are slotted
  back by submission index, never by completion order.
* **Cache transparency** — with the content-addressed cache enabled,
  hits skip execution entirely and return rows bit-identical to a
  fresh run (golden tests compare digests across serial, parallel, and
  cache-hit campaigns).
* **Crash containment** — a dying worker (OOM-killed, segfaulting
  native code) breaks a :mod:`concurrent.futures` pool; the transport
  reports the casualties, the core charges their attempts and prices
  the backoff (exponential with RngFactory-derived jitter), and the
  loop retries them.  Deterministic experiment *exceptions* are never
  retried — they propagate exactly as a serial run would raise them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path

from repro.core.errors import ConfigurationError, RunnerError
from repro.experiments.base import ExperimentResult
from repro.runner.cache import ResultCache, default_cache_dir, source_digest
from repro.runner.core import RetryPolicy, SchedulerCore, plan_campaign
from repro.runner.tasks import RunReport, TaskResult, TaskSpec
from repro.runner.transport import InlineTransport, PoolRoundTransport
from repro.tools.harness import HarnessConfig
from repro.trace.bus import TraceSpec

__all__ = ["RunnerConfig", "run_tasks", "run_experiments"]


@dataclass(frozen=True)
class RunnerConfig:
    """Scheduling policy for one campaign."""

    #: Worker processes; 1 runs everything in-process (no pool at all).
    jobs: int = 1
    #: Cache location; ``None`` means :func:`default_cache_dir`.
    cache_dir: Path | None = None
    #: ``False`` disables both lookups and stores (``--no-cache``).
    use_cache: bool = True
    #: Total tries per task before the campaign fails (1 = no retry).
    max_attempts: int = 3
    #: Base backoff before a retry round; doubles each round.
    retry_backoff: float = 0.25
    #: Seed for scheduling-level randomness (backoff jitter) only —
    #: experiment rows draw from ``HarnessConfig.seed``, never this.
    seed: int = 2024
    #: When set, every spec in the campaign runs traced (see
    #: :meth:`run_experiments`); traced tasks never read the cache.
    trace: TraceSpec | None = None
    #: Where to persist per-task trace artifacts; ``None`` puts them
    #: under the cache directory's ``traces/`` subtree.
    trace_dir: Path | None = None
    #: When set, every task pins the sharded simulator to this many
    #: shard workers (``repro run --shards N``); ``None`` leaves the
    #: ambient ``REPRO_SIM_SHARDS`` selection in force.
    shards: int | None = None

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise RunnerError("need jobs >= 1")
        if self.shards is not None and self.shards < 1:
            raise RunnerError("need shards >= 1")
        # Delegates the retry-knob validation (same messages as ever).
        self.retry_policy()

    def retry_policy(self) -> RetryPolicy:
        """This config's crash-retry policy, in the core's terms."""
        return RetryPolicy(
            max_attempts=self.max_attempts,
            backoff=self.retry_backoff,
            seed=self.seed,
        )


def _result_from_payload(payload: dict) -> ExperimentResult:
    return ExperimentResult.from_dict(payload["result"])


def _trace_meta(spec: TaskSpec, raw: dict) -> dict:
    """The ``otherData`` metadata both export paths stamp on artifacts."""
    return {
        "exp_id": spec.exp_id,
        "task": spec.label,
        "dropped": raw["dropped"],
        "emitted": raw["emitted"],
    }


def _trace_summary(spec: TaskSpec, payload: dict, store_dir: Path | None) -> dict | None:
    """Turn a worker's trace payload into the :class:`TaskResult` form.

    Handles both worker payload shapes.  In-memory mode (``"events"``):
    builds the Perfetto document here.  Spill mode (``"jsonl"``): the
    events live on disk; the Perfetto artifact, when persisted, is
    produced by the streaming exporter without materializing them.
    Either way the artifact file name comes from
    :attr:`TaskSpec.artifact_stem` — sanitized and content-keyed, so
    same-label specs cannot silently overwrite each other and labels
    cannot smuggle path separators — and lands via atomic rename, like
    the cache's own writes.  Returns ``{"doc", "events", "jsonl",
    "count", "digest", "dropped", "emitted", "peak_buffered", "path"}``.
    """
    raw = payload.get("trace")
    if raw is None:
        return None

    path = None
    if raw.get("jsonl") is not None:
        if store_dir is not None:
            from repro.trace.stream import stream_perfetto

            store_dir.mkdir(parents=True, exist_ok=True)
            path = store_dir / f"{spec.artifact_stem}.trace.json"
            tmp = path.with_name(path.name + ".tmp")
            stream_perfetto(raw["jsonl"], tmp, meta=_trace_meta(spec, raw))
            tmp.replace(path)
        return {
            "doc": None,
            "events": None,
            "jsonl": Path(raw["jsonl"]),
            "count": raw["count"],
            "digest": raw["digest"],
            "dropped": raw["dropped"],
            "emitted": raw["emitted"],
            "peak_buffered": raw["peak_buffered"],
            "path": path,
        }

    from repro.trace.export import dump_perfetto, to_perfetto

    doc = to_perfetto(raw["events"], meta=_trace_meta(spec, raw))
    if store_dir is not None:
        store_dir.mkdir(parents=True, exist_ok=True)
        path = store_dir / f"{spec.artifact_stem}.trace.json"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(dump_perfetto(doc))
        tmp.replace(path)
    return {
        "doc": doc,
        "events": raw["events"],
        "jsonl": None,
        "count": len(raw["events"]),
        "digest": raw["digest"],
        "dropped": raw["dropped"],
        "emitted": raw["emitted"],
        "peak_buffered": None,
        "path": path,
    }


def _default_transport(runner: RunnerConfig):
    if runner.jobs == 1:
        return InlineTransport()
    return PoolRoundTransport(runner.jobs)


def run_tasks(
    specs: list[TaskSpec],
    runner: RunnerConfig | None = None,
    transport=None,
) -> RunReport:
    """Run a campaign of tasks; results come back in submission order.

    ``transport`` overrides the execution surface (default: in-process
    for ``jobs=1``, per-round process pools otherwise).  A caller-owned
    transport — the daemon's
    :class:`~repro.runner.transport.PersistentPoolTransport` — is left
    open on return; transports built here are closed here.
    """
    runner = runner or RunnerConfig()
    # wall-clock here times the campaign for the report, never a
    # simulated quantity
    start = time.perf_counter()  # repro: noqa-DET001
    slots: list[TaskResult | None] = [None] * len(specs)

    cache = None
    src_digest = ""
    if runner.use_cache:
        cache = ResultCache(runner.cache_dir or default_cache_dir())
        src_digest = source_digest()

    store_dir = None
    if any(spec.trace is not None for spec in specs):
        if runner.trace_dir is not None:
            store_dir = runner.trace_dir
        elif cache is not None:
            store_dir = cache.root / "traces"

    plan = plan_campaign(specs, cache, src_digest)
    for index, doc in plan.cached:
        slots[index] = TaskResult(
            spec=specs[index],
            result=_result_from_payload(doc),
            cached=True,
            attempts=0,
            elapsed=0.0,
        )

    core = SchedulerCore(runner.retry_policy())
    owns_transport = transport is None
    if owns_transport:
        transport = _default_transport(runner)
    try:
        pending = plan.pending
        while pending:
            core.start_round([index for index, _, _ in pending])
            results, crashed = transport.run_round(pending)
            for index, spec, _key in pending:
                payload = results.get(index)
                if payload is None:
                    continue
                slots[index] = TaskResult(
                    spec=spec,
                    result=_result_from_payload(payload),
                    cached=False,
                    attempts=core.attempts(index),
                    elapsed=payload["elapsed"],
                    trace=_trace_summary(spec, payload, store_dir),
                )
            if not crashed:
                break
            delay = core.crash_delay(
                [(index, spec.exp_id) for index, spec, _ in crashed]
            )
            time.sleep(delay)
            pending = crashed
    finally:
        if owns_transport:
            transport.close()

    if cache is not None:
        for index, spec, key in plan.pending:
            task = slots[index]
            cache.put(
                key,
                {
                    "exp_id": spec.exp_id,
                    "config": spec.config.to_dict(),
                    "source": src_digest,
                    "elapsed": task.elapsed,
                    "result": task.result.to_dict(),
                },
            )

    return RunReport(
        tasks=list(slots),
        jobs=runner.jobs,
        wall_time=time.perf_counter() - start,  # repro: noqa-DET001
    )


def run_experiments(
    exp_ids: list[str] | None = None,
    config: HarnessConfig | None = None,
    runner: RunnerConfig | None = None,
) -> RunReport:
    """Run registered experiments (all of them by default) as one campaign."""
    from repro.experiments.registry import REGISTRY, all_experiment_ids

    ids = list(exp_ids) if exp_ids else all_experiment_ids()
    unknown = [i for i in ids if i not in REGISTRY]
    if unknown:
        raise ConfigurationError(
            f"unknown experiment ids {unknown}; have {all_experiment_ids()}"
        )
    config = config or HarnessConfig.bench()
    runner = runner or RunnerConfig()
    specs = [
        TaskSpec(
            exp_id=exp_id,
            config=config,
            trace=runner.trace,
            shards=runner.shards,
        )
        for exp_id in ids
    ]
    return run_tasks(specs, runner)
