"""Worker-side task execution.

``execute_task`` is the function worker processes run; it must stay a
top-level importable so :mod:`concurrent.futures` can pickle it by
reference.  It returns a plain dict (the experiment result via
``to_dict`` plus timing) rather than rich objects, so the same payload
shape flows back from a subprocess, an in-process run, and a cache hit.
"""

from __future__ import annotations

import contextlib
import os
import time

from repro.runner.tasks import TaskSpec

__all__ = ["execute_task"]

#: Test-only crash hook: ``"<exp_id>:<sentinel-path>"``.  The first
#: worker to pick up ``exp_id`` creates the sentinel file and dies
#: without cleanup (exit 17), letting the retry tests provoke a real
#: worker crash exactly once.  The reserved sentinel ``always`` crashes
#: on every attempt (retry-exhaustion tests).  Never set outside the
#: test suite.
CRASH_ONCE_ENV = "REPRO_RUNNER_CRASH_ONCE"


def _maybe_crash(exp_id: str) -> None:
    hook = os.environ.get(CRASH_ONCE_ENV, "")
    if not hook:
        return
    target, _, sentinel = hook.partition(":")
    if exp_id != target or not sentinel:
        return
    if sentinel == "always":
        os._exit(17)
    if not os.path.exists(sentinel):
        with open(sentinel, "w"):
            pass
        os._exit(17)


def _shard_scope(spec: TaskSpec):
    """Pin the sharded-simulator worker count for this task, if any.

    Single-use (``forced_shards`` is a generator context manager), so
    each call site builds a fresh scope.
    """
    if spec.shards is None:
        return contextlib.nullcontext()
    from repro.sim.shard import forced_shards

    return forced_shards(spec.shards)


def execute_task(spec: TaskSpec) -> dict:
    """Run one experiment and return ``{"result": ..., "elapsed": ...}``.

    When ``spec.trace`` is set the experiment runs with the trace bus
    installed and the payload additionally carries ``"trace"``: the
    event stream (as plain dicts), its digest, and the flight
    recorder's drop count.  The digest is computed *here*, in the
    worker, so ``--jobs 1`` (in-process) and ``--jobs 4`` (subprocess)
    hash exactly the same bytes.
    """
    # Imported here, not at module top: the registry imports every
    # experiment module, and the runner package must stay importable
    # from lightweight contexts (analysis helpers, docs tooling).
    from repro.experiments.registry import run_experiment

    _maybe_crash(spec.exp_id)
    # wall-clock telemetry for the progress report, not simulated time
    start = time.perf_counter()  # repro: noqa-DET001
    trace_payload = None
    if spec.trace is None:
        with _shard_scope(spec):
            result = run_experiment(spec.exp_id, spec.config)
    else:
        from repro.trace.bus import TraceBus, tracing
        from repro.trace.events import events_digest

        sink = spec.trace.make_sink(
            stem=spec.artifact_stem,
            meta={
                "exp_id": spec.exp_id,
                "task": spec.label,
                "interval": spec.trace.interval,
            },
        )
        bus = TraceBus(sinks=[sink], probe_interval=spec.trace.interval)
        with _shard_scope(spec), tracing(bus):
            result = run_experiment(spec.exp_id, spec.config)
        if spec.trace.spill_dir is not None:
            # Spill mode: events already live on disk as a JSONL stream;
            # ship only the summary (path, incremental digest, counters)
            # back through the pool — the payload stays O(1) in event
            # count, which is the whole point for paper-profile runs.
            sink.finalize()
            trace_payload = {
                "jsonl": str(sink.path),
                "count": sink.written,
                "dropped": sink.dropped,
                "emitted": bus.emitted,
                "digest": sink.digest(),
                "peak_buffered": sink.peak_buffered,
            }
        else:
            events = [event.to_dict() for event in sink.events]
            trace_payload = {
                "events": events,
                "dropped": sink.dropped,
                "emitted": bus.emitted,
                "digest": events_digest(events),
            }
    payload = {
        "exp_id": spec.exp_id,
        "elapsed": time.perf_counter() - start,  # repro: noqa-DET001
        "result": result.to_dict(),
    }
    if trace_payload is not None:
        payload["trace"] = trace_payload
    return payload
