"""Pluggable point executors for sweeps and harness matrices.

:func:`~repro.analysis.sweep.sweep1d`/``sweep2d`` and
:meth:`~repro.tools.harness.TestHarness.run_matrix` accept any object
with an order-preserving ``map(fn, items) -> list`` method.  These two
implementations cover the serial default and a process pool; both
return results in submission order, so swapping one for the other can
never reorder a sweep's points.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

__all__ = ["SerialExecutor", "ProcessExecutor", "pool_context"]


def pool_context():
    """The multiprocessing context the runner uses for worker pools.

    ``fork`` where available (Linux): workers inherit the parent's
    modules and ``sys.path``, so even closures over picklable objects
    defined in scripts resolve.  Elsewhere, the platform default.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


class SerialExecutor:
    """In-process, in-order execution — the behavioural baseline."""

    def map(self, fn, items) -> list:
        return [fn(item) for item in items]


class ProcessExecutor:
    """Order-preserving ``map`` over a pool of worker processes.

    ``fn`` and every item must be picklable.  Results come back in the
    submission order of ``items`` regardless of completion order, which
    is what lets the determinism tests assert sweeps are executor-
    invariant.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError("ProcessExecutor needs jobs >= 1")
        self.jobs = jobs

    def map(self, fn, items) -> list:
        items = list(items)
        if not items or self.jobs == 1:
            return SerialExecutor().map(fn, items)
        workers = min(self.jobs, len(items))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=pool_context()
        ) as pool:
            return list(pool.map(fn, items))
