"""Content-addressed on-disk cache for experiment results.

A cache entry's key hashes everything that can change an experiment's
rows:

* the ``exp_id`` (which experiment class runs);
* the canonicalized :class:`~repro.tools.harness.HarnessConfig`
  (repetitions, duration, omit, tick, seed — the full fidelity knob);
* a digest of every ``*.py`` file under ``src/repro/`` (any code change
  anywhere in the package invalidates everything — coarse, but the only
  sound choice for a simulator whose layers all feed every number).

Because experiments are deterministic functions of (code, config), a
key hit can return the stored rows without running anything, and the
golden characterization tests verify the returned rows are bit-identical
to a fresh run.  Entries are JSON files sharded by key prefix; writes
are atomic (tmp file + rename) so concurrent campaigns can share a
directory.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.tools.harness import HarnessConfig

__all__ = [
    "CACHE_FORMAT",
    "ResultCache",
    "cache_key",
    "canonical_json",
    "default_cache_dir",
    "source_digest",
]

#: Bump when the entry layout changes; old entries then read as misses.
CACHE_FORMAT = 1

#: Environment override for the cache location (CLI ``--cache-dir`` wins).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def canonical_json(doc: dict) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro_cache`` in the cwd."""
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else Path(".repro_cache")


_digest_memo: dict[Path, str] = {}


def source_digest(root: Path | None = None, *, refresh: bool = False) -> str:
    """SHA-256 over (relative path, content hash) of ``root``'s ``*.py``.

    ``root`` defaults to the installed ``repro`` package directory, so
    editing any module in the simulator changes the digest and thereby
    every cache key.  The walk is sorted for platform independence and
    memoized per process (a campaign computes it once, not per task).
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root).resolve()
    if not refresh and root in _digest_memo:
        return _digest_memo[root]
    outer = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        outer.update(rel.encode("utf-8"))
        outer.update(b"\0")
        outer.update(hashlib.sha256(path.read_bytes()).digest())
        outer.update(b"\0")
    digest = outer.hexdigest()
    _digest_memo[root] = digest
    return digest


def cache_key(exp_id: str, config: HarnessConfig, src_digest: str) -> str:
    """The content address of one (experiment, config, code) triple."""
    doc = {
        "format": CACHE_FORMAT,
        "exp_id": exp_id,
        "config": config.to_dict(),
        "source": src_digest,
    }
    return hashlib.sha256(canonical_json(doc).encode("utf-8")).hexdigest()


@dataclass
class ResultCache:
    """JSON-file store mapping cache keys to experiment-result payloads."""

    root: Path
    hits: int = 0
    misses: int = 0
    stores: int = 0
    _memo: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> dict | None:
        """The stored payload for ``key``, or ``None`` on a miss.

        Unreadable or wrong-format entries count as misses — a corrupted
        file must never poison a campaign, only cost a re-run.

        Every hit returns a **deep copy** of the memoized payload: the
        memo is shared by all in-process callers, and handing out the
        same mutable dict would let one consumer's edit (say, rounding
        ``payload["result"]`` rows in place) silently poison every
        later hit for the same key.
        """
        if key not in self._memo:
            path = self._path(key)
            try:
                doc = json.loads(path.read_text())
            except (OSError, ValueError):
                self.misses += 1
                return None
            if doc.get("format") != CACHE_FORMAT or "result" not in doc:
                self.misses += 1
                return None
            self._memo[key] = doc
        self.hits += 1
        return copy.deepcopy(self._memo[key])

    def put(self, key: str, payload: dict) -> None:
        """Atomically store ``payload`` (a dict with a ``result`` entry).

        Safe under concurrent writers *and* mid-write crashes — the
        daemon makes both real (two pool workers can finish the same
        coalesce-missed key back to back, and a SIGKILL can land inside
        any ``put``):

        * each writer gets a private ``mkstemp`` file, fsyncs it, then
          publishes with ``os.replace`` — an atomic rename, so readers
          only ever see a complete entry.  Racing writers of the same
          key replace each other whole-file; since entries are a
          deterministic function of the key, every winner's bytes are
          identical (the race regression test asserts this with two
          processes).
        * the tempfile-unlink guard covers every failure point: an
          ``fdopen`` failure closes the raw fd before unlinking, any
          later failure (write, fsync, rename) unlinks the temp file,
          and the original exception always re-raises.  A crashed
          *process* can still orphan a ``.tmp-*`` file; readers never
          look at those (entry paths are ``<key>.json``), so an orphan
          costs bytes, not correctness.
        """
        payload = {"format": CACHE_FORMAT, "key": key, **payload}
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            try:
                fh = os.fdopen(fd, "w")
            except BaseException:
                os.close(fd)
                raise
            with fh:
                fh.write(canonical_json(payload))
                fh.flush()
                # A system crash after the rename must not leave a
                # published-but-empty entry; fsync orders the data
                # ahead of the publish.
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        # Deep-copied for the same aliasing reason as get(): the caller
        # still owns (and may mutate) the dict it handed in.
        self._memo[key] = copy.deepcopy(payload)
        self.stores += 1
