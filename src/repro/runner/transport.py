"""Execution transports: where pending tasks actually run.

The scheduling core (:mod:`repro.runner.core`) decides *what* runs and
*when to retry*; a transport decides *where*.  All three implement the
same two-method surface::

    run_round(pending) -> (results, crashed)
    close()

``pending`` is the core's ``(index, spec, key)`` triple list;
``results`` maps index → worker payload for every task that finished
this round (successfully or by raising — deterministic experiment
exceptions propagate out of ``run_round`` exactly as a serial run would
raise them); ``crashed`` lists the triples whose worker *process* died
(OOM killer, segfaulting native code) and that the core may schedule
again.

* :class:`InlineTransport` — no processes at all (``--jobs 1``): the
  behavioural baseline.
* :class:`PoolRoundTransport` — ``repro run``'s historical shape: a
  fresh :class:`~concurrent.futures.ProcessPoolExecutor` per round, so
  a broken pool is discarded wholesale and crash recovery is pool
  reconstruction.
* :class:`PersistentPoolTransport` — the ``repro serve`` daemon's
  shape: one long-lived, pre-warmed pool reused across rounds *and*
  across campaigns, with a ``submit()`` surface for request-at-a-time
  dispatch.  Workers pre-import numpy, the experiment registry, and
  the simulation kernels, so a cold request never pays import cost
  inside its latency budget.
"""

from __future__ import annotations

from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool

from repro.core.errors import RunnerError
from repro.runner.executors import pool_context
from repro.runner.worker import execute_task

__all__ = [
    "InlineTransport",
    "PoolRoundTransport",
    "PersistentPoolTransport",
    "warm_worker",
]


def warm_worker() -> None:
    """Pool initializer: pre-import the heavy modules a task touches.

    Under the ``fork`` start method children inherit the parent's
    modules anyway; this keeps the warm-pool guarantee explicit (and
    real on spawn platforms): by the time a worker accepts its first
    task, numpy, every experiment class, and the vector kernels are
    already imported.
    """
    import numpy  # noqa: F401

    import repro.experiments.registry  # noqa: F401
    import repro.sim.kernels  # noqa: F401
    import repro.tcp.cc.batch  # noqa: F401


class InlineTransport:
    """Run everything in-process, in submission order (``--jobs 1``)."""

    jobs = 1

    def run_round(self, pending: list) -> tuple[dict, list]:
        results = {}
        for index, spec, _key in pending:
            results[index] = execute_task(spec)
        return results, []

    def close(self) -> None:  # nothing to tear down
        pass


def _collect_round(pool: ProcessPoolExecutor, pending: list) -> tuple[dict, list]:
    """Fan ``pending`` out on ``pool``; separate finishers from crashes.

    Deterministic exceptions raised *by the experiment* re-raise here,
    exactly as a serial run would; only a dying worker process
    (``BrokenProcessPool``) lands a task in the crashed list.
    """
    futures = {
        pool.submit(execute_task, spec): (index, spec, key)
        for index, spec, key in pending
    }
    results: dict[int, dict] = {}
    crashed: list = []
    not_done = set(futures)
    while not_done:
        done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
        for fut in done:
            index, spec, key = futures[fut]
            try:
                results[index] = fut.result()
            except BrokenProcessPool:
                crashed.append((index, spec, key))
    return results, crashed


class PoolRoundTransport:
    """A fresh process pool per round — crash recovery by rebuild."""

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise RunnerError("need jobs >= 1")
        self.jobs = jobs

    def run_round(self, pending: list) -> tuple[dict, list]:
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=pool_context()
        ) as pool:
            return _collect_round(pool, pending)

    def close(self) -> None:  # each round owns (and closed) its pool
        pass


class PersistentPoolTransport:
    """One long-lived warm pool, reused across rounds and campaigns.

    The daemon's transport: the pool is built lazily on first dispatch
    and then survives until :meth:`close`, so every request after the
    first is served by workers that have already paid interpreter
    start-up and imports.  A broken pool is torn down and rebuilt on
    the next dispatch (``rebuilds`` counts how often — the daemon's
    ``/stats`` surfaces it).

    Two surfaces:

    * :meth:`run_round` — the scheduler-core round protocol, so
      ``run_tasks(..., transport=PersistentPoolTransport(n))`` behaves
      exactly like the per-round pool (the parity tests compare
      digests);
    * :meth:`submit` — request-at-a-time dispatch returning the raw
      :class:`~concurrent.futures.Future`, which the asyncio daemon
      wraps with ``asyncio.wrap_future``.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise RunnerError("need jobs >= 1")
        self.jobs = jobs
        self._pool: ProcessPoolExecutor | None = None
        #: Tasks handed to a worker process over this transport's life.
        self.dispatched = 0
        #: Times a broken pool was discarded.
        self.rebuilds = 0

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs,
                mp_context=pool_context(),
                initializer=warm_worker,
            )
        return self._pool

    def submit(self, spec) -> Future:
        """Dispatch one task to the warm pool."""
        self.dispatched += 1
        return self._ensure_pool().submit(execute_task, spec)

    def discard_pool(self) -> None:
        """Drop a (presumed broken) pool; the next dispatch rebuilds."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None
            self.rebuilds += 1

    def run_round(self, pending: list) -> tuple[dict, list]:
        pool = self._ensure_pool()
        self.dispatched += len(pending)
        try:
            results, crashed = _collect_round(pool, pending)
        except BrokenProcessPool:
            # submit() on an already-broken pool; deterministic
            # experiment errors propagate past this and leave the
            # (healthy) pool in place.
            self.discard_pool()
            raise
        if crashed:
            self.discard_pool()
        return results, crashed

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
