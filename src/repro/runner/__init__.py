"""Parallel experiment runner with a content-addressed result cache.

The paper's evaluation is a grid of independent, deterministic runs;
this package schedules them across worker processes and memoizes their
results on disk, keyed by (experiment id, canonical harness config,
source digest of ``src/repro``).  Entry points:

* :func:`run_experiments` / :func:`run_tasks` — campaign API used by
  ``repro run``, the EXPERIMENTS.md generator, and the benchmarks;
* :class:`SerialExecutor` / :class:`ProcessExecutor` — order-preserving
  point executors pluggable into ``sweep1d``/``sweep2d`` and
  ``TestHarness.run_matrix``;
* :mod:`repro.runner.cache` — the content-addressed store itself.

Parallelism is an implementation detail: the characterization tests in
``tests/test_runner_golden.py`` pin serial, parallel, and cache-hit
campaigns to identical per-experiment row digests.
"""

from repro.runner.cache import (
    ResultCache,
    cache_key,
    canonical_json,
    default_cache_dir,
    source_digest,
)
from repro.runner.core import (
    BackoffSchedule,
    CampaignPlan,
    RetryPolicy,
    SchedulerCore,
    plan_campaign,
)
from repro.runner.executors import ProcessExecutor, SerialExecutor
from repro.runner.scheduler import RunnerConfig, run_experiments, run_tasks
from repro.runner.tasks import RunReport, TaskResult, TaskSpec, task_seed
from repro.runner.transport import (
    InlineTransport,
    PersistentPoolTransport,
    PoolRoundTransport,
)

__all__ = [
    "BackoffSchedule",
    "CampaignPlan",
    "InlineTransport",
    "PersistentPoolTransport",
    "PoolRoundTransport",
    "ProcessExecutor",
    "RetryPolicy",
    "SchedulerCore",
    "plan_campaign",
    "ResultCache",
    "RunReport",
    "RunnerConfig",
    "SerialExecutor",
    "TaskResult",
    "TaskSpec",
    "cache_key",
    "canonical_json",
    "default_cache_dir",
    "run_experiments",
    "run_tasks",
    "source_digest",
    "task_seed",
]
