"""The pure scheduling core — no process machinery.

``run_tasks`` used to interleave three concerns in one loop: deciding
*what* runs (cache interplay, submission-order slotting), deciding
*when* a crashed task runs again (attempt accounting, exponential
backoff with RngFactory-derived jitter), and actually *running* things
on a process pool.  This module owns the first two as plain data and a
small state machine, so every execution surface — ``repro run``'s
per-round pools, the ``repro serve`` daemon's persistent pool, and any
future remote executor — schedules identically:

* :func:`plan_campaign` — given specs and the cache, decide which
  slots are served from storage and which become pending work, in
  submission order;
* :class:`SchedulerCore` — the attempt ledger and retry policy: which
  crashed tasks may go around again, which exhaust the campaign, and
  exactly how long to back off before the next round.

Determinism contract: the backoff schedule depends only on
(``seed``, ``retry_backoff``) and the *number* of crash rounds — never
on worker count, wall-clock time, or completion order.  The property
tests in ``tests/test_runner_core.py`` pin this module's decisions to
the pre-split scheduler's behaviour across seeds and jobs levels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.errors import RunnerError
from repro.core.rng import RngFactory

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.runner.cache import ResultCache
    from repro.runner.tasks import TaskSpec

__all__ = [
    "RetryPolicy",
    "BackoffSchedule",
    "SchedulerCore",
    "CampaignPlan",
    "plan_campaign",
]

#: The scheduling-level RNG stream label (backoff jitter only —
#: experiment rows draw from ``HarnessConfig.seed``, never this).
JITTER_STREAM = "runner:retry-jitter"

#: Jitter amplitude: each delay stretches by up to +25%.
JITTER_FRACTION = 0.25


@dataclass(frozen=True)
class RetryPolicy:
    """How a campaign responds to worker crashes.

    Mirrors the retry knobs of
    :class:`~repro.runner.scheduler.RunnerConfig`; kept separate so the
    daemon (which has no RunnerConfig) can share the exact policy
    object.
    """

    #: Total tries per task before the campaign fails (1 = no retry).
    max_attempts: int = 3
    #: Base backoff before a retry round; doubles each round.
    backoff: float = 0.25
    #: Seed for the jitter stream.
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise RunnerError("need max_attempts >= 1")
        if self.backoff < 0:
            raise RunnerError(f"need retry_backoff >= 0, got {self.backoff}")


class BackoffSchedule:
    """Deterministic exponential-backoff delay sequence with jitter.

    ``next_delay()`` yields the pre-split scheduler's exact formula:
    round *r* (1-based) waits ``backoff * 2**(r-1)`` stretched by up to
    +25% from the ``runner:retry-jitter`` stream of ``RngFactory(seed)``.
    One instance per campaign (or per daemon) — the stream advances one
    draw per crash round, which is what makes retry timing reproducible
    for a given crash history.
    """

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self._jitter = RngFactory(seed=policy.seed).stream(JITTER_STREAM)
        self.rounds = 0

    def next_delay(self) -> float:
        self.rounds += 1
        delay = self.policy.backoff * 2 ** (self.rounds - 1)
        return delay * (1.0 + JITTER_FRACTION * float(self._jitter.random()))


class SchedulerCore:
    """Attempt ledger + retry decisions for one campaign.

    Drive it round by round::

        core.start_round(indices)          # every pending task tries once
        ... transport executes ...
        delay = core.crash_delay(crashed)  # 0+ seconds, or RunnerError

    The core never sleeps and never touches a pool — the caller applies
    ``delay`` with whatever waiting primitive its world has
    (``time.sleep`` in the process runner, ``asyncio.sleep`` in the
    daemon).
    """

    def __init__(self, policy: RetryPolicy | None = None) -> None:
        self.policy = policy or RetryPolicy()
        self.schedule = BackoffSchedule(self.policy)
        self._attempts: dict[int, int] = {}

    def attempts(self, index: int) -> int:
        return self._attempts.get(index, 0)

    def start_round(self, indices: list[int]) -> None:
        """Charge one attempt to every task in this round."""
        for index in indices:
            self._attempts[index] = self._attempts.get(index, 0) + 1

    def crash_delay(self, crashed: list[tuple[int, str]]) -> float:
        """Backoff before retrying ``crashed`` ``(index, exp_id)`` pairs.

        Raises :class:`RunnerError` naming every experiment that has
        exhausted its attempts; otherwise returns the next delay in the
        schedule.
        """
        dead = [
            exp_id
            for index, exp_id in crashed
            if self._attempts.get(index, 0) >= self.policy.max_attempts
        ]
        if dead:
            raise RunnerError(
                f"worker crashed {self.policy.max_attempts} times running "
                f"{', '.join(sorted(set(dead)))}; giving up"
            )
        return self.schedule.next_delay()


@dataclass
class CampaignPlan:
    """What :func:`plan_campaign` decided, in submission order."""

    #: ``(index, payload)`` — slots served straight from the cache.
    cached: list[tuple[int, dict]] = field(default_factory=list)
    #: ``(index, spec, key)`` — slots that must execute (``key`` is
    #: ``""`` when the cache is disabled).
    pending: list[tuple[int, "TaskSpec", str]] = field(default_factory=list)


def plan_campaign(
    specs: list["TaskSpec"],
    cache: "ResultCache | None",
    src_digest: str,
) -> CampaignPlan:
    """Split a campaign into cache hits and pending work.

    Pure given the cache's contents: iterates specs in submission
    order, keys each against (exp_id, config, source digest), and
    serves untraced hits from storage.  Traced tasks must actually
    execute — a cached payload has the rows but not the event stream —
    yet still keep their key so the (trace-independent) results are
    stored for later untraced campaigns.
    """
    from repro.runner.cache import cache_key

    plan = CampaignPlan()
    for index, spec in enumerate(specs):
        key = ""
        if cache is not None:
            key = cache_key(spec.exp_id, spec.config, src_digest)
            if spec.trace is None:
                doc = cache.get(key)
                if doc is not None:
                    plan.cached.append((index, doc))
                    continue
        plan.pending.append((index, spec, key))
    return plan
