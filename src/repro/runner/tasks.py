"""Task and report types for the parallel experiment runner.

A :class:`TaskSpec` is the unit of scheduling: one experiment id plus
the :class:`~repro.tools.harness.HarnessConfig` it runs under.  Specs
are small frozen dataclasses so they pickle cheaply to worker
processes, and their labels feed the deterministic per-task seed
derivation (see :func:`task_seed`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.rng import RngFactory
from repro.experiments.base import ExperimentResult
from repro.runner.cache import cache_key
from repro.tools.harness import HarnessConfig
from repro.trace.bus import TraceSpec

__all__ = ["TaskSpec", "TaskResult", "RunReport", "sanitize_label", "task_seed"]

_UNSAFE_CHARS = re.compile(r"[^A-Za-z0-9._@+=-]")


def sanitize_label(label: str) -> str:
    """Filesystem-safe form of a task label.

    Labels embed ``exp_id``\\ s, which ``run_tasks`` accepts as arbitrary
    strings — a ``/`` (or ``..``) in one must not turn an artifact
    write into a path escape.  Anything outside a conservative
    portable-filename set becomes ``_``, leading dots are stripped
    (no hidden files), and the result is length-capped.
    """
    safe = _UNSAFE_CHARS.sub("_", label).lstrip(".")
    return safe[:100] or "task"


def task_seed(root_seed: int, label: str) -> int:
    """Deterministic seed for one task, derived via :class:`RngFactory`.

    Forking the factory keyed by the task label gives every task its own
    collision-checked namespace — the same derivation the simulator uses
    for per-subsystem streams, so scheduling-level randomness (retry
    backoff jitter, point-level executors) stays reproducible however
    tasks are ordered or distributed across workers.
    """
    return RngFactory(seed=root_seed).fork(f"task:{label}").seed


@dataclass(frozen=True)
class TaskSpec:
    """One schedulable unit: an experiment id under a harness config."""

    exp_id: str
    config: HarnessConfig
    #: When set, the worker runs the experiment under the trace bus and
    #: ships the event stream back in its payload.  Traced tasks never
    #: read the result cache (cached payloads carry no events), though
    #: their results are still stored — tracing does not change them.
    trace: TraceSpec | None = None
    #: When set, the worker pins the sharded-simulator worker count
    #: (:func:`repro.sim.shard.forced_shards`) for the run.  Deliberately
    #: absent from the label and cache key: sharded results are
    #: byte-identical for every shard count (the parity invariant), so a
    #: cached 1-shard row set *is* the 4-shard row set.
    shards: int | None = None

    @property
    def label(self) -> str:
        cfg = self.config
        return (
            f"{self.exp_id}@r{cfg.repetitions}d{cfg.duration:g}"
            f"o{cfg.omit:g}t{cfg.tick:g}s{cfg.seed}"
        )

    @property
    def artifact_stem(self) -> str:
        """Collision-free filesystem stem for this spec's artifacts.

        The sanitized label (human-readable) plus the first 8 hex chars
        of the spec's content key — :func:`~repro.runner.cache.cache_key`
        over (exp_id, config) with an empty source digest, so names stay
        stable across code edits.  Two specs whose labels collide after
        sanitization (or that differ only in fields the label omits)
        still get distinct artifact files instead of silently
        overwriting each other.
        """
        return (
            f"{sanitize_label(self.label)}-"
            f"{cache_key(self.exp_id, self.config, '')[:8]}"
        )


@dataclass
class TaskResult:
    """Outcome of one task, with provenance for the cache tests."""

    spec: TaskSpec
    result: ExperimentResult
    cached: bool = False
    attempts: int = 1
    elapsed: float = 0.0
    #: Traced tasks only: {"doc", "events", "digest", "dropped", "path"}
    #: — the Perfetto document, raw event dicts, stream digest, flight-
    #: recorder drop count, and the persisted artifact path (or None).
    trace: dict | None = None


@dataclass
class RunReport:
    """All task results of one campaign, in submission order."""

    tasks: list[TaskResult] = field(default_factory=list)
    jobs: int = 1
    wall_time: float = 0.0

    @property
    def results(self) -> list[ExperimentResult]:
        return [t.result for t in self.tasks]

    @property
    def cache_hits(self) -> int:
        return sum(1 for t in self.tasks if t.cached)

    @property
    def executed(self) -> int:
        return sum(1 for t in self.tasks if not t.cached)

    @property
    def all_cached(self) -> bool:
        return bool(self.tasks) and self.executed == 0

    def by_id(self, exp_id: str) -> TaskResult:
        for t in self.tasks:
            if t.spec.exp_id == exp_id:
                return t
        raise KeyError(f"no task for experiment {exp_id!r} in this report")

    def summary(self) -> str:
        n = len(self.tasks)
        return (
            f"runner: {n} task{'s' if n != 1 else ''} | jobs={self.jobs} | "
            f"{self.executed} executed, {self.cache_hits} cached | "
            f"{self.wall_time:.1f}s"
        )
