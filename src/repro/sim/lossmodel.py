"""Burstiness and packet-loss model.

The central loss mechanism in the paper's environments (no IEEE 802.3x
flow control) is **burst overrun**: TCP without pacing transmits its
window in line-rate packet trains; trains longer than the downstream
buffering (switch shared buffer, receiver NIC ring) minus what drains
during the train get tail-dropped.  Pacing with fq spaces the packets
out and the trains disappear.

The fluid simulator cannot see individual packets, so trains enter
statistically.  Per RTT, flow *i* emits

.. math::

    V_i = s_i \\cdot X \\cdot 0.08 \\cdot cwnd_i

bytes as back-to-back line-rate trains, where

* ``s_i`` is the flow's *burst slack* — 1.0 for an unpaced zerocopy
  flow (sendmsg returns instantly, the qdisc fills as fast as the wire
  empties it), a calibrated ~0.3 for an unpaced *copying* flow (the
  copy loop itself spreads the writes), and 0.0 under fq pacing;
* 0.08 (``TRAIN_FRACTION``) is the auto-pacing overshoot: modern TCP
  internally paces even "unpaced" flows at ~1.2x the delivery rate,
  so only that overshoot travels in trains;
* ``X`` is a lognormal draw with mean 1 supplying burst-to-burst noise
  (ACK compression, stretch ACKs, slow-start overshoot).

A train of volume V arriving at line rate into a queue draining at
``d`` deposits ``V * (1 - d/line)`` bytes; whatever exceeds the free
buffer headroom is tail-dropped.  Because V scales with cwnd, LAN flows
(MB windows vs tens-of-MB buffers) never overflow while WAN flows
(hundreds of MB windows) do — exactly the paper's "increases in hop
count and path latency create longer packet trains" (§II.D).  Dropped
bytes are charged back to flows in proportion to their train volumes,
becoming congestion events and retransmit counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BurstModel",
    "COPY_MODE_SLACK",
    "TRAIN_FRACTION",
    "distribute_drops",
    "concentrate_drops",
    "flow_release_slack",
]

#: Burst slack of an unpaced copying sender: the user->kernel copy
#: naturally spreads transmission, leaving moderate residual trains.
COPY_MODE_SLACK = 0.30

#: Fraction of the congestion window an unpaced (slack=1) flow emits as
#: line-rate trains per RTT — the auto-pacing overshoot.
TRAIN_FRACTION = 0.08

#: Lognormal sigma of the burst-to-burst variability multiplier X
#: (E[X] = 1).
BURST_SIGMA = 0.25


@dataclass
class BurstModel:
    """Per-run burst state (owns the RNG stream for reproducibility)."""

    rng: np.random.Generator
    sigma: float = BURST_SIGMA
    #: Cached all-zero trains array returned by the smooth fast path of
    #: :meth:`tick_draw`; consumers treat train volumes as read-only.
    _zero_trains: np.ndarray | None = None

    def slack_for(self, paced_smooth: bool, pacing_enabled: bool, zerocopy: bool) -> float:
        """Burst slack for a flow configuration."""
        if paced_smooth:
            return 0.0
        if pacing_enabled:
            # paced, but by coarse internal pacing (non-fq qdisc)
            return 0.35
        return 1.0 if zerocopy else COPY_MODE_SLACK

    def train_volumes(
        self,
        slacks: np.ndarray,
        cwnd_bytes: np.ndarray,
    ) -> np.ndarray:
        """Bytes per RTT each flow sends as back-to-back trains.

        Modern Linux TCP auto-paces even "unpaced" flows at ~1.2x the
        delivery rate in congestion avoidance, so trains are the
        *overshoot* — a fraction of the window, not the whole window.
        ``TRAIN_FRACTION`` calibrates that overshoot; the lognormal X
        adds burst-to-burst variability (ACK compression, stretch ACKs,
        slow-start overshoot).  fq-paced flows (slack 0) emit none.
        """
        n = slacks.size
        if n == 0:
            return np.zeros(0)
        x = self.rng.lognormal(mean=-self.sigma**2 / 2.0, sigma=self.sigma, size=n)
        return slacks * x * TRAIN_FRACTION * cwnd_bytes

    def persistent_weights(self, slacks: np.ndarray) -> np.ndarray:
        """Per-run max-min weights modelling unpaced flow unfairness.

        Unpaced flows grab persistently uneven shares of a congested
        bottleneck — hash-based queue placement, NUMA luck, and loss
        asymmetry hold for the whole run (the paper saw 5-30 Gbps per
        flow in one run, and 9-16 Gbps in Table III).  Paced flows are
        equalized by their own rate caps, so their weight noise is
        irrelevant.  Drawn once per run.
        """
        n = slacks.size
        noise = self.rng.lognormal(mean=0.0, sigma=0.28, size=n)
        return 1.0 + slacks * (noise - 1.0)

    def tick_weights(self, persistent: np.ndarray, slacks: np.ndarray) -> np.ndarray:
        """Per-tick jitter layered on the persistent weights."""
        n = slacks.size
        noise = self.rng.lognormal(mean=0.0, sigma=0.1, size=n)
        return persistent * (1.0 + slacks * (noise - 1.0))

    #: Lognormal sigma of the per-tick max-min weight jitter.
    TICK_WEIGHT_SIGMA = 0.1

    def tick_draw(
        self,
        persistent: np.ndarray,
        slacks: np.ndarray,
        cwnd_bytes: np.ndarray,
        smooth: bool | None = None,
    ) -> tuple[float, np.ndarray, np.ndarray]:
        """All of one tick's burst-model randomness in a single RNG call.

        Returns ``(rx_noise_z, weights, trains)``: the standard-normal
        draw behind the receiver-ceiling jitter, the per-tick max-min
        weights (:meth:`tick_weights`), and the packet-train volumes
        (:meth:`train_volumes`).  Fusing the three separate generator
        calls into one ``standard_normal(2n + 1)`` both cuts per-tick
        Python overhead (the hot loop makes exactly one RNG call) and
        pins the consumption order in one place, which is what keeps
        the scalar and vector kernels on identical random streams.

        ``smooth`` asserts that every slack is 0 (callers may hoist the
        check out of their loop; ``None`` means "check here").  With all
        slacks 0 the weight jitter multiplies out to exactly 1.0 and the
        train volumes to exactly +0.0 in IEEE-754, so the fast path
        returns ``persistent`` and a zero array with identical bits —
        after making the very same RNG draw, keeping the stream aligned.
        """
        n = slacks.size
        z = self.rng.standard_normal(2 * n + 1)
        if smooth is None:
            smooth = not slacks.any()
        if smooth:
            if self._zero_trains is None or self._zero_trains.size != n:
                self._zero_trains = np.zeros(n)
            return float(z[0]), persistent, self._zero_trains
        weights_x = np.exp(self.TICK_WEIGHT_SIGMA * z[1 : n + 1])
        weights = persistent * (1.0 + slacks * (weights_x - 1.0))
        trains_x = np.exp(-self.sigma**2 / 2.0 + self.sigma * z[n + 1 :])
        trains = slacks * trains_x * TRAIN_FRACTION * cwnd_bytes
        return float(z[0]), weights, trains


def flow_release_slack(pacing, zerocopy: bool, burst: BurstModel) -> float:
    """Burst slack of one flow, honouring pacer-owned release schedules.

    Kernel pacing (:class:`~repro.tcp.pacing.PacingConfig`) derives its
    slack from the qdisc, so the driver asks :meth:`BurstModel.slack_for`.
    Userspace pacers (the QUIC stack) own their release schedule outright
    and advertise it via a ``release_slack(zerocopy)`` method; when the
    pacing object provides one, its answer *is* the slack.  Duck typing
    rather than an import keeps the dependency arrow pointing into the
    simulator (quic -> sim), never out of it.
    """
    release = getattr(pacing, "release_slack", None)
    if release is not None:
        return float(release(zerocopy))
    return burst.slack_for(pacing.smooths_bursts, pacing.enabled, zerocopy)


def distribute_drops(
    arrivals: np.ndarray,
    dropped: float,
) -> np.ndarray:
    """Charge ``dropped`` bytes back to flows proportionally."""
    total = arrivals.sum()
    if total <= 0 or dropped <= 0:
        return np.zeros_like(arrivals)
    return arrivals * (dropped / total)


def concentrate_drops(
    rng: np.random.Generator,
    arrivals: np.ndarray,
    dropped: float,
    spread: int = 2,
) -> np.ndarray:
    """Charge ``dropped`` bytes to a *few* flows, chosen ∝ arrivals.

    Tail drops in a shared buffer land on whichever flows' packets are
    in flight at the overflow instant — a small subset, not everyone.
    This asymmetry is what keeps parallel unpaced flows churning at a
    ceiling (some flows cut while others push) instead of synchronizing
    into a global backoff; it is the source of the paper's sustained
    WAN retransmit counts and per-flow unfairness.  ``spread`` flows
    share each tick's drop volume.
    """
    n = arrivals.size
    total = float(arrivals.sum())
    if total <= 0 or dropped <= 0:
        return np.zeros_like(arrivals)
    if n == 1:
        return np.array([float(dropped)])
    p = np.asarray(arrivals, dtype=float) / total
    k = min(spread, n, int(np.count_nonzero(p)))
    if k == 0:
        return np.zeros_like(arrivals)
    victims = rng.choice(n, size=k, replace=False, p=p)
    out = np.zeros_like(arrivals, dtype=float)
    shares = np.array([0.7, 0.3, 0.15][:k])
    shares = shares / shares.sum()
    out[victims] = dropped * shares
    return out
