"""Opt-in runtime simulation sanitizer.

The static checks in :mod:`repro.lint` catch invariant violations that
are visible in the source; this module catches the ones that only show
up while a simulation is running.  When enabled it asserts, on every
tick/event:

* **monotonic time** — the simulation clock never moves backwards and
  never goes non-finite;
* **non-negative state** — queue occupancies, rates, allocations, drop
  volumes and congestion windows stay ≥ 0 (windows strictly > 0);
* **bytes conservation per link** — for every queue,
  ``offered + queue_before == delivered + dropped + queue_after`` up to
  float tolerance, with a non-negative *held-back* residual allowed only
  on IEEE 802.3x flow-control links (pause frames push excess upstream);
* **RNG stream hygiene** — :class:`~repro.core.rng.RngFactory` already
  raises on crc32 label collisions unconditionally; the sanitizer's
  :meth:`SimSanitizer.check_stream_registry` re-audits a factory's
  issued labels as a belt-and-braces pass.

Enabling
--------
Three equivalent switches:

* environment: ``REPRO_SANITIZE=1`` (also ``true``/``yes``/``on``);
* CLI: ``repro iperf3 --sanitize ...`` / ``repro experiment --sanitize``;
* code: :func:`enable` / :func:`disable`, or the :func:`sanitized`
  context manager (used by the test suite).

The sanitizer is wired into :class:`repro.core.engine.Engine` (event
times) and :class:`repro.sim.flowsim.FlowSimulator` (per-tick state and
link conservation).  When disabled — the default — neither pays more
than a single ``None`` check per tick/event.

Violations raise :class:`~repro.core.errors.SanitizerViolation`, a
:class:`~repro.core.errors.SimulationError`: they always indicate a bug
in the simulator, never bad user input.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.errors import SanitizerViolation
from repro.core.rng import label_entropy

__all__ = [
    "enabled",
    "enable",
    "disable",
    "reset",
    "sanitized",
    "SimSanitizer",
    "SanitizerViolation",
]

ENV_VAR = "REPRO_SANITIZE"
_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Programmatic override: None defers to the environment variable.
_forced: bool | None = None


def enabled() -> bool:
    """Is the sanitizer currently active?

    :func:`enable`/:func:`disable` take precedence; otherwise the
    ``REPRO_SANITIZE`` environment variable decides.
    """
    if _forced is not None:
        return _forced
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def enable() -> None:
    """Force the sanitizer on, regardless of the environment."""
    global _forced
    _forced = True


def disable() -> None:
    """Force the sanitizer off, regardless of the environment."""
    global _forced
    _forced = False


def reset() -> None:
    """Drop any programmatic override; defer to ``REPRO_SANITIZE`` again."""
    global _forced
    _forced = None


@contextmanager
def sanitized(on: bool = True) -> Iterator[None]:
    """Context manager scoping :func:`enable`/:func:`disable`."""
    global _forced
    prev = _forced
    _forced = on
    try:
        yield
    finally:
        _forced = prev


@dataclass
class SimSanitizer:
    """Stateful invariant checker attached to one engine or simulator run.

    All ``check_*`` methods raise
    :class:`~repro.core.errors.SanitizerViolation` on failure and are
    silent on success; ``checks`` counts how many assertions ran, which
    the tests use to prove the sanitizer was actually active.
    """

    context: str = "sim"
    #: Relative tolerance for conservation sums (float accumulation).
    rel_tol: float = 1e-6
    #: Absolute slack in bytes/units for ≥0 and conservation checks.
    abs_tol: float = 1e-3
    checks: int = 0
    _last_time: float = field(default=float("-inf"), repr=False)

    # -- plumbing ---------------------------------------------------------

    def _fail(self, what: str) -> None:
        message = f"[{self.context}] {what}"
        # Post-mortem context: when a trace bus is installed, append
        # its flight-recorder tail.  Imported lazily so the sanitizer
        # stays importable without loading the trace package.
        from repro.trace.bus import flight_recorder_tail

        tail = flight_recorder_tail()
        if tail:
            message = f"{message}\n{tail}"
        raise SanitizerViolation(message)

    def reset_clock(self) -> None:
        """Forget the monotonicity watermark (engine ``reset()``)."""
        self._last_time = float("-inf")

    # -- checks -----------------------------------------------------------

    def check_time(self, now: float) -> None:
        """Simulation time must be finite and non-decreasing."""
        self.checks += 1
        if not np.isfinite(now):
            self._fail(f"non-finite simulation time {now!r}")
        if now < self._last_time:
            self._fail(
                f"time moved backwards: {self._last_time!r} -> {now!r}"
            )
        self._last_time = now

    def check_non_negative(self, label: str, value) -> None:
        """Scalar or array state that must never go negative."""
        self.checks += 1
        arr = np.asarray(value, dtype=float)
        if not np.all(np.isfinite(arr)):
            self._fail(f"{label} went non-finite: {arr!r}")
        low = float(arr.min()) if arr.size else 0.0
        if low < -self.abs_tol:
            self._fail(f"{label} went negative: min={low!r}")

    def check_positive(self, label: str, value) -> None:
        """Scalar or array state that must stay strictly positive."""
        self.checks += 1
        arr = np.asarray(value, dtype=float)
        if not np.all(np.isfinite(arr)):
            self._fail(f"{label} went non-finite: {arr!r}")
        low = float(arr.min()) if arr.size else 1.0
        if low <= 0.0:
            self._fail(f"{label} must be > 0: min={low!r}")

    def account_link(
        self,
        label: str,
        *,
        offered: float,
        delivered: float,
        dropped: float,
        queue_before: float,
        queue_after: float,
        flow_control: bool = False,
    ) -> None:
        """Bytes conservation across one queue/link over one step.

        Without flow control every offered byte must be delivered,
        dropped, or left in the queue.  With IEEE 802.3x the residual
        may additionally be *held back* upstream by pause frames, but it
        can never be negative — a link cannot mint bytes.
        """
        self.checks += 1
        held = (offered + queue_before) - (delivered + dropped + queue_after)
        tol = self.abs_tol + self.rel_tol * max(
            abs(offered), abs(queue_before), 1.0
        )
        if held < -tol:
            self._fail(
                f"link {label!r} created {-held:.3f} bytes: offered="
                f"{offered:.3f} q_before={queue_before:.3f} delivered="
                f"{delivered:.3f} dropped={dropped:.3f} q_after={queue_after:.3f}"
            )
        if held > tol and not flow_control:
            self._fail(
                f"link {label!r} lost {held:.3f} bytes without accounting "
                f"(no flow control to hold them back): offered={offered:.3f} "
                f"q_before={queue_before:.3f} delivered={delivered:.3f} "
                f"dropped={dropped:.3f} q_after={queue_after:.3f}"
            )

    def check_stream_registry(self, factory) -> None:
        """Audit an :class:`~repro.core.rng.RngFactory`'s issued labels.

        The factory raises on collision at ``stream()`` time on its own;
        this re-derives every label's entropy and confirms the registry
        is still injective (catches direct mutation of factory state).
        """
        self.checks += 1
        seen: dict[int, str] = {}
        for (label, _rep) in getattr(factory, "_cache", {}):
            entropy = label_entropy(label)
            owner = seen.setdefault(entropy, label)
            if owner != label:
                self._fail(
                    f"RNG labels {owner!r} and {label!r} share entropy "
                    f"{entropy}"
                )
