"""Sharded massive-flow simulation: 10k–1M flows across worker processes.

The paper drives at most 16 parallel iperf3 streams, but the R&E links
it studies carry thousands of concurrent flows.  This module scales the
PR-5 :class:`~repro.sim.kernels.VectorKernel` to that regime by
splitting the per-flow arrays across worker processes.  Workers own
contiguous *blocks* of flows; every cross-flow quantity the tick needs
(max-min water-filling state, queue offers, CPU budget sums) travels as
O(blocks) partial aggregates through a ``multiprocessing.shared_memory``
exchange matrix, synchronized by a barrier — two waits per phase, a
handful of phases per tick.

Shard-count invariance
----------------------
``n_shards ∈ {1, 2, 4}`` produce byte-identical
``ExperimentResult.digest()`` and ``events_digest``.  Two mechanisms
carry the guarantee:

* **Blockwise reductions in fixed global order.**  Flows are padded to
  a multiple of ``BLOCK_FLOWS`` and every partial aggregate is a
  per-block sum (``np.add.reduce`` over exactly ``BLOCK_FLOWS`` lanes).
  The block grid depends only on the flow count, never on the shard
  count; the coordinator folds block partials in global block order.
  A sum computed this way cannot see where the shard boundaries fall.

* **A fixed shard→RNG-stream mapping.**  Every random draw belongs to
  a *block*, not a shard: block ``b`` draws bursts from the stream
  ``shard:burst:b{b}`` and drop placement from ``shard:drop:b{b}``,
  claimed up front on the run's :class:`~repro.core.rng.RngFactory`
  (which raises :class:`~repro.core.rng.RngStreamCollisionError` on
  any label collision).  Run-global draws (host jitter, background
  samples, rx-ceiling noise) stay on the coordinator.  Whichever
  worker owns block ``b`` consumes exactly the same stream in exactly
  the same order.

The engine is its own canon: it transcribes the
:class:`~repro.sim.flowsim.FlowSimulator` physics per lane, but drop
concentration and weight draws are per-block rather than global, so its
numbers are compared against *its own* goldens (any shard count), not
against the unsharded simulator's.

Fault handling
--------------
A watchdog thread aborts the barrier when any worker process dies, the
coordinator surfaces :class:`ShardCrashError`, the run unlinks its
shared-memory segments and retries from the seed (fresh RNG streams,
hence byte-identical results).  The ``REPRO_SHARD_CRASH_ONCE``
environment hook (a sentinel path, or ``always``) kills shard 0 on its
second tick for the fault-injection tests.

Selection mirrors :mod:`repro.sim.kernels`: ``REPRO_SIM_SHARDS`` or the
:func:`force_shards` / :func:`forced_shards` programmatic overrides.
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory
from typing import Iterator, Sequence

import numpy as np

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.core.rng import RngFactory
from repro.host.machine import Host
from repro.net.path import NetworkPath
from repro.net.switch import SharedBufferQueue, SwitchModel
from repro.sim.cpumodel import CpuCostModel
from repro.sim.flowsim import (
    LOSS_REACT_FRACTION,
    RX_CEILING_NOISE,
    WAN_RX_AGG_PENALTY,
    FlowSpec,
    SimProfile,
)
from repro.sim.kernels import VectorKernel
from repro.sim.lossmodel import (
    BURST_SIGMA,
    TRAIN_FRACTION,
    BurstModel,
    flow_release_slack,
)
from repro.sim.metrics import MetricsAccumulator, RunResult
from repro.tcp.cc.batch import CcBatch
from repro.tcp.segment import SegmentGeometry
from repro.tcp.sockets import SocketProfile
from repro.trace.bus import active as trace_active

__all__ = [
    "ENV_VAR",
    "CRASH_ONCE_ENV",
    "BLOCK_FLOWS",
    "FlowPopulation",
    "ShardPlan",
    "ShardCrashError",
    "ShardedFlowSimulator",
    "shard_count",
    "force_shards",
    "forced_shards",
]

ENV_VAR = "REPRO_SIM_SHARDS"
CRASH_ONCE_ENV = "REPRO_SHARD_CRASH_ONCE"

#: Flows per reduction block.  Partial sums are always over exactly this
#: many lanes (the population is padded with inert flows), so reduction
#: bits depend only on the block grid — never on the shard count.
BLOCK_FLOWS = 32

#: Crashed runs restart from the seed this many times before giving up.
MAX_ATTEMPTS = 3

#: Exchange-matrix columns, one row per block.  Workers publish partial
#: aggregates; the coordinator writes per-block drop volumes back.
(
    _FOOT,      # sum of working-set footprints (valid lanes)
    _CAPS,      # sum of per-flow rate caps
    _WSUM,      # sum of max-min weights over still-active lanes
    _TRAIN,     # sum of packet-train volumes
    _RCV,       # sum of receiver CPU rate limits (valid lanes)
    _CAPPED,    # water-filling: sum of caps newly limited this round
    _NLIM,      # water-filling: count newly limited this round
    _SENT,      # sum of bytes emitted this tick
    _AFTER1,    # sum of bytes surviving the switch-buffer drops
    _TAFTER,    # sum of train volumes surviving the switch-buffer drops
    _DROPS,     # sum of dropped bytes
    _LOSSN,     # count of reacted loss events (first row per shard)
    _TXAPP,     # sum of alloc * tx app cyc/byte
    _TXIRQ,     # sum of alloc * tx irq cyc/byte
    _RXAPP,     # sum of drate * rx app cyc/byte
    _RXIRQ,     # sum of drate * rx irq cyc/byte
    _ZC,        # sum of zerocopy fractions
    _DSUM,      # sum of delivered bytes
    _D1T,       # coordinator->worker: block train-drop volume, stage 1
    _D1S,       # coordinator->worker: block standing-drop volume, stage 1
    _D2T,       # coordinator->worker: block train-drop volume, stage 2
    _D2S,       # coordinator->worker: block standing-drop volume, stage 2
) = range(22)
_N_COLS = 22

#: Bytes per element of the float64 shared segments.
_F64 = np.dtype(np.float64).itemsize

#: Phase commands, written to the control channel before each barrier.
_CMD_CAPS, _CMD_WF, _CMD_SEND, _CMD_DROPS1, _CMD_FEEDBACK, _CMD_END = range(
    1, 7
)

#: Shared empty array for the coordinator's metrics accumulator — the
#: per-flow byte totals live in the shared ``accum`` segment instead.
_EMPTY = np.zeros(0)

#: Programmatic override: None defers to the environment variable.
_forced: int | None = None


class ShardCrashError(RuntimeError):
    """A shard worker process died mid-run (barrier broken)."""


def shard_count() -> int:
    """The shard count the next sharded run will use."""
    if _forced is not None:
        return _forced
    raw = os.environ.get(ENV_VAR, "").strip()
    if not raw:
        return 1
    try:
        count = int(raw)
    except ValueError:
        count = 0
    if count < 1:
        raise ConfigurationError(
            f"{ENV_VAR}={raw!r} is not a shard count; need an integer >= 1"
        )
    return count


def force_shards(count: int | None) -> None:
    """Override the environment selection (None restores it)."""
    global _forced
    if count is not None and count < 1:
        raise ConfigurationError("shard count must be >= 1")
    _forced = count


@contextmanager
def forced_shards(count: int) -> Iterator[None]:
    """Scope a shard-count selection (used by the runner and tests)."""
    prev = _forced
    force_shards(count)
    try:
        yield
    finally:
        force_shards(prev)


def _burst_label(block: int) -> str:
    """RNG stream label for block ``block``'s burst draws."""
    return f"shard:burst:b{block}"


def _drop_label(block: int) -> str:
    """RNG stream label for block ``block``'s drop placement."""
    return f"shard:drop:b{block}"


def _maybe_crash(shard_id: int, tick: int) -> None:
    """Fault-injection hook: kill shard 0 on its second tick.

    ``REPRO_SHARD_CRASH_ONCE=always`` crashes on every attempt;
    any other value is a sentinel path created on the first crash so
    the retried attempt survives.
    """
    hook = os.environ.get(CRASH_ONCE_ENV)
    if not hook or shard_id != 0 or tick != 2:
        return
    if hook == "always":
        os._exit(17)
    try:
        fd = os.open(hook, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return
    os.close(fd)
    os._exit(17)


def _blocksums(values: np.ndarray) -> np.ndarray:
    """Per-block partial sums in fixed lane order.

    Each output element reduces exactly ``BLOCK_FLOWS`` lanes, so the
    bits are identical no matter how many blocks one worker holds.
    """
    return np.add.reduce(values.reshape(-1, BLOCK_FLOWS), axis=1)


def _concentrate_block(
    gen: np.random.Generator,
    basis: np.ndarray,
    lo: int,
    volume: float,
    out: np.ndarray,
) -> None:
    """Block-local drop concentration, accumulated into ``out``.

    Same physics as :func:`~repro.sim.lossmodel.concentrate_drops` —
    the volume lands on a couple of victims chosen ∝ ``basis`` — but
    via inverse-CDF sampling instead of ``Generator.choice`` with
    ``replace=False``, whose rejection loop dominates massive-flow
    tick cost.  Exactly two uniforms are consumed per call regardless
    of the basis, so the per-block draw count (the shard-invariance
    anchor) never depends on lane data; coinciding victims merge their
    shares, concentrating further, never less.
    """
    cdf = np.cumsum(basis[lo : lo + BLOCK_FLOWS])
    total = float(cdf[-1])
    x = gen.random(2)
    if total <= 0.0:
        return
    v0 = int(cdf.searchsorted(x[0] * total, side="right"))
    v1 = int(cdf.searchsorted(x[1] * total, side="right"))
    if v0 == v1:
        out[lo + v0] += volume  # repro: noqa-SHARD001 — documented fold
    else:
        out[lo + v0] += volume * 0.7  # repro: noqa-SHARD001
        out[lo + v1] += volume * 0.3  # repro: noqa-SHARD001


# ----------------------------------------------------------------------
# Population and partitioning


@dataclass(frozen=True)
class FlowPopulation:
    """Compact grouped description of a (possibly huge) flow set.

    Massive campaigns repeat a handful of flow configurations tens of
    thousands of times; storing ``(spec, count)`` groups keeps setup
    O(groups) where a per-flow list would be O(flows).
    """

    groups: tuple[tuple[FlowSpec, int], ...]

    def __post_init__(self) -> None:
        if not self.groups:
            raise ConfigurationError("need at least one flow group")
        for _, count in self.groups:
            if count < 1:
                raise ConfigurationError("flow group counts must be >= 1")

    @classmethod
    def uniform(cls, spec: FlowSpec, count: int) -> "FlowPopulation":
        """``count`` identical flows."""
        return cls(groups=((spec, int(count)),))

    @classmethod
    def of(cls, flows: Sequence[FlowSpec]) -> "FlowPopulation":
        """Group an explicit flow list (adjacent equal specs merge)."""
        groups: list[tuple[FlowSpec, int]] = []
        for spec in flows:
            if groups and groups[-1][0] == spec:
                prev, count = groups[-1]
                groups[-1] = (prev, count + 1)
            else:
                groups.append((spec, 1))
        return cls(groups=tuple(groups))

    @property
    def n(self) -> int:
        return sum(count for _, count in self.groups)


@dataclass(frozen=True)
class ShardPlan:
    """Block grid and shard ownership for a flow population.

    Blocks are global: the grid depends only on the flow count.  Shards
    own contiguous whole-block ranges, so every reduction block lives
    entirely inside one shard and pads exist only in the final block.
    """

    n: int             # real flows
    n_blocks: int      # ceil(n / BLOCK_FLOWS)
    n_pad: int         # n_blocks * BLOCK_FLOWS
    bounds: tuple[int, ...]  # block boundaries, len == shards + 1

    @classmethod
    def build(cls, n: int, requested: int) -> "ShardPlan":
        if n < 1:
            raise ConfigurationError("need at least one flow")
        if requested < 1:
            raise ConfigurationError("shard count must be >= 1")
        n_blocks = -(-n // BLOCK_FLOWS)
        shards = max(1, min(requested, n_blocks))
        bounds = tuple(
            (s * n_blocks) // shards for s in range(shards + 1)
        )
        return cls(
            n=n,
            n_blocks=n_blocks,
            n_pad=n_blocks * BLOCK_FLOWS,
            bounds=bounds,
        )

    @property
    def shards(self) -> int:
        return len(self.bounds) - 1

    def block_range(self, shard: int) -> tuple[int, int]:
        return self.bounds[shard], self.bounds[shard + 1]

    def flow_range(self, shard: int) -> tuple[int, int]:
        b0, b1 = self.block_range(shard)
        return b0 * BLOCK_FLOWS, b1 * BLOCK_FLOWS


# ----------------------------------------------------------------------
# Worker


class _ShardWorker:
    """One shard's flow lanes plus its side of the exchange protocol.

    Built in the coordinator process *before* forking, so process-mode
    children inherit every array (scratch pages go copy-on-write; the
    exchange/control/accumulator views map shared segments).  All
    methods transcribe the :class:`FlowSimulator` tick per lane; the
    class docstring of this module explains why that makes the results
    shard-count-invariant.
    """

    def __init__(
        self,
        shard_id: int,
        plan: ShardPlan,
        kern: VectorKernel,
        *,
        pace_eff: np.ndarray,
        slacks: np.ndarray,
        persistent_w: np.ndarray,
        valid_f: np.ndarray,
        valid_b: np.ndarray,
        burst_rngs: list[np.random.Generator],
        drop_rngs: list[np.random.Generator],
        exchange: np.ndarray,
        accum: np.ndarray,
        dt: float,
        omit: float,
        mss: float,
        react10: float,
        fp_floor: float,
        fp_cap: float,
        max_window: float,
        all_smooth: bool,
    ) -> None:
        self.shard_id = shard_id
        self.b0, self.b1 = plan.block_range(shard_id)
        f0, f1 = plan.flow_range(shard_id)
        m = f1 - f0
        self.m = m
        self.kern = kern
        self.pace_eff = pace_eff
        self.slacks = slacks
        self.persistent_w = persistent_w
        self.valid_f = valid_f
        self.valid_b = valid_b
        self.burst_rngs = burst_rngs
        self.drop_rngs = drop_rngs
        self.ex = exchange
        self.rows = slice(self.b0, self.b1)
        self.accum = accum[f0:f1]
        self.dt = dt
        self.omit = omit
        self.mss = mss
        self.react10 = react10
        self.fp_floor = fp_floor
        self.fp_cap = fp_cap
        self.max_window = max_window
        self.all_smooth = all_smooth
        # Pad lanes of THIS shard (only the globally last block has any).
        n_local_valid = int(np.count_nonzero(valid_b))
        self.pad_slice = slice(n_local_valid, m)

        # Persistent per-run state.
        self.tick = 0
        self.now = 0.0
        self.prev_alloc = np.zeros(m)
        self.alloc = np.zeros(m)
        self.active = np.zeros(m, dtype=bool)
        self.had_drops1 = False
        self.empty_idx = np.zeros(0, dtype=np.intp)
        self.zero_trains = np.zeros(m)

        # Per-tick scratch, rewritten before first read each tick.
        self.wr_buf = np.empty(m)
        self.foot_buf = np.empty(m)
        self.caps_buf = np.empty(m)
        self.fair = np.empty(m)
        self.sent = np.empty(m)
        self.after1 = np.empty(m)
        self.tafter = np.empty(m)
        self.drops1 = np.zeros(m)
        self.drops2 = np.zeros(m)
        self.dropsum = np.empty(m)
        self.del_buf = np.empty(m)
        self.drate_buf = np.empty(m)
        self.mscratch = np.empty(m)
        self.mask_f1 = np.empty(m)
        self.mask_b1 = np.empty(m, dtype=bool)
        self.mask_b2 = np.empty(m, dtype=bool)
        self.zw_all = np.empty(m)
        self.zt_all = np.empty(m)
        self.t_buf = np.empty(m)
        self.w_buf = np.empty(m)
        self.trains_buf = np.empty(m)
        # The arrays this tick's draws landed in (fast path aliases the
        # persistent/zero arrays; see round_caps).
        self.w: np.ndarray = self.persistent_w
        self.trains: np.ndarray = self.zero_trains

    # -- phases --------------------------------------------------------

    def round_caps(self, rtt: float) -> None:
        self.tick += 1
        self.now = self.tick * self.dt
        self.rtt = rtt
        ex, rows = self.ex, self.rows
        kern = self.kern
        cwnd = kern.cwnd
        window_rate = np.divide(cwnd, max(rtt, 1e-6), out=self.wr_buf)
        pace = kern.pacing(rtt, self.pace_eff)

        np.multiply(self.prev_alloc, rtt, out=self.foot_buf)
        np.multiply(self.foot_buf, 1.5, out=self.foot_buf)
        np.maximum(self.foot_buf, self.fp_floor, out=self.foot_buf)
        np.minimum(self.foot_buf, cwnd, out=self.foot_buf)
        footprint = np.minimum(self.foot_buf, self.fp_cap, out=self.foot_buf)
        snd_limit, rcv_limit = kern.cpu_limits(rtt, footprint)

        caps = np.minimum(window_rate, pace, out=self.caps_buf)
        np.minimum(caps, snd_limit, out=caps)
        np.minimum(caps, rcv_limit, out=caps)
        # Pad lanes must allocate exactly 0 in the SEND fast path, which
        # takes max(caps, 0); zero their caps after the min fold.
        caps[self.pad_slice] = 0.0

        if self.all_smooth:
            # All slacks 0: the jitter multiplies out to the persistent
            # weights exactly and trains to +0.0; skip the draws.  The
            # condition is global, so every shard count skips together.
            self.w = self.persistent_w
            self.trains = self.zero_trains
        else:
            # One fixed-size draw per *block* from that block's own
            # stream: z[:BLOCK_FLOWS] jitters the max-min weights,
            # z[BLOCK_FLOWS:] scales the packet trains — the same split
            # as the driver's fused tick_draw, per block.
            for j, gen in enumerate(self.burst_rngs):
                lanes = slice(j * BLOCK_FLOWS, (j + 1) * BLOCK_FLOWS)
                z = gen.standard_normal(2 * BLOCK_FLOWS)
                self.zw_all[lanes] = z[:BLOCK_FLOWS]
                self.zt_all[lanes] = z[BLOCK_FLOWS:]
            t = self.t_buf
            np.multiply(self.zw_all, BurstModel.TICK_WEIGHT_SIGMA, out=t)
            np.exp(t, out=t)
            np.subtract(t, 1.0, out=t)
            np.multiply(self.slacks, t, out=t)
            np.add(t, 1.0, out=t)
            self.w = np.multiply(self.persistent_w, t, out=self.w_buf)
            np.multiply(self.zt_all, BURST_SIGMA, out=t)
            np.add(t, -(BURST_SIGMA**2) / 2.0, out=t)
            np.exp(t, out=t)
            np.multiply(self.slacks, t, out=t)
            np.multiply(t, TRAIN_FRACTION, out=t)
            self.trains = np.multiply(t, cwnd, out=self.trains_buf)

        # Partials.  FOOT and RCV mask the pad lanes (their values are
        # kernel-owned and nonzero); multiplying the valid lanes by 1.0
        # is bit-exact and pads contribute +0.0.  The rest are naturally
        # zero on pads (w, trains, caps).
        np.multiply(footprint, self.valid_f, out=self.mscratch)
        ex[rows, _FOOT] = _blocksums(self.mscratch)
        ex[rows, _CAPS] = _blocksums(caps)
        np.multiply(rcv_limit, self.valid_f, out=self.mscratch)
        ex[rows, _RCV] = _blocksums(self.mscratch)
        ex[rows, _WSUM] = _blocksums(self.w)
        ex[rows, _TRAIN] = _blocksums(self.trains)

        self.alloc.fill(0.0)
        np.copyto(self.active, self.valid_b)
        self.had_drops1 = False

    def round_wf(self, share: float) -> None:
        """One water-filling round at the coordinator's fair share."""
        ex, rows = self.ex, self.rows
        np.multiply(self.w, share, out=self.fair)
        limited = np.less_equal(self.caps_buf, self.fair, out=self.mask_b1)
        np.logical_and(limited, self.active, out=limited)
        np.copyto(self.alloc, self.caps_buf, where=limited)
        np.multiply(self.caps_buf, limited, out=self.mscratch)
        ex[rows, _CAPPED] = _blocksums(self.mscratch)
        ex[rows, _NLIM] = _blocksums(limited)
        np.logical_not(limited, out=self.mask_b2)
        np.logical_and(self.active, self.mask_b2, out=self.active)
        np.multiply(self.w, self.active, out=self.mscratch)
        ex[rows, _WSUM] = _blocksums(self.mscratch)

    def round_send(self, mode: float) -> None:
        ex, rows = self.ex, self.rows
        resolved = int(mode)
        if resolved == 0:
            # Uncongested fast path: every flow at its (clipped) cap.
            np.maximum(self.caps_buf, 0.0, out=self.alloc)
        else:
            if resolved == 1:
                # Converged water-fill: still-active flows take the
                # final fair share; limited flows already hold their
                # caps from the WF rounds.
                np.copyto(self.alloc, self.fair, where=self.active)
            np.minimum(self.alloc, self.caps_buf, out=self.alloc)
            np.maximum(self.alloc, 0.0, out=self.alloc)
        np.multiply(self.alloc, self.dt, out=self.sent)
        ex[rows, _SENT] = _blocksums(self.sent)

    def _place_drops(
        self,
        out: np.ndarray,
        trains_basis: np.ndarray,
        std_basis: np.ndarray,
        train_col: int,
        std_col: int,
    ) -> None:
        """Concentrate per-block drop volumes onto a few lanes each.

        The volumes (written by the coordinator into ``train_col`` /
        ``std_col``) are global quantities apportioned per block, so
        the per-block draw counts — hence the drop streams — are
        shard-count-invariant.  Draw order within a block is fixed:
        train drops, then standing-queue drops.
        """
        out.fill(0.0)
        ex = self.ex
        for j in range(self.b1 - self.b0):
            block = self.b0 + j
            lo = j * BLOCK_FLOWS
            v_train = float(ex[block, train_col])
            if v_train > 0.0:
                _concentrate_block(
                    self.drop_rngs[j], trains_basis, lo, v_train, out
                )
            v_std = float(ex[block, std_col])
            if v_std > 0.0:
                _concentrate_block(
                    self.drop_rngs[j], std_basis, lo, v_std, out
                )

    def round_drops1(self) -> None:
        ex, rows = self.ex, self.rows
        self._place_drops(self.drops1, self.trains, self.sent, _D1T, _D1S)
        np.subtract(self.sent, self.drops1, out=self.after1)
        np.maximum(self.after1, 0.0, out=self.after1)
        np.subtract(self.trains, self.drops1, out=self.tafter)
        np.maximum(self.tafter, 0.0, out=self.tafter)
        ex[rows, _AFTER1] = _blocksums(self.after1)
        ex[rows, _TAFTER] = _blocksums(self.tafter)
        self.had_drops1 = True

    def round_feedback(self, any_d2: bool) -> None:
        ex, rows = self.ex, self.rows
        rtt = self.rtt
        drops: np.ndarray | None
        if any_d2:
            trains_basis = self.tafter if self.had_drops1 else self.trains
            std_basis = self.after1 if self.had_drops1 else self.sent
            self._place_drops(self.drops2, trains_basis, std_basis, _D2T, _D2S)
            if self.had_drops1:
                drops = np.add(self.drops1, self.drops2, out=self.dropsum)
            else:
                drops = self.drops2
        elif self.had_drops1:
            drops = self.drops1
        else:
            drops = None

        if drops is None:
            delivered = self.sent
            ex[rows, _DROPS] = 0.0
            loss_idx = self.empty_idx
        else:
            np.subtract(self.sent, drops, out=self.del_buf)
            np.maximum(self.del_buf, 0.0, out=self.del_buf)
            delivered = self.del_buf
            ex[rows, _DROPS] = _blocksums(drops)
            np.maximum(self.sent, 1.0, out=self.mscratch)
            np.multiply(self.mscratch, LOSS_REACT_FRACTION, out=self.mscratch)
            loss_idx = np.nonzero(drops > self.mscratch)[0]

        # Congestion-window validation mask (RFC 7661), transcribed
        # from the driver: pre-update windows, this tick's allocation.
        kern = self.kern
        np.multiply(self.alloc, rtt, out=self.mask_f1)
        np.maximum(self.mask_f1, self.react10, out=self.mask_f1)
        np.multiply(self.mask_f1, 1.5, out=self.mask_f1)
        np.greater(kern.cwnd, self.mask_f1, out=self.mask_b1)
        np.logical_and(kern.needs_validation, self.mask_b1, out=self.mask_b1)
        np.multiply(self.alloc, 1.2, out=self.mask_f1)
        np.greater(self.wr_buf, self.mask_f1, out=self.mask_b2)
        al_mask = np.logical_and(self.mask_b1, self.mask_b2, out=self.mask_b1)

        reacted = kern.cc_feedback(
            self.now, self.dt, rtt, delivered, loss_idx, al_mask,
            self.max_window,
        )
        ex[rows, _LOSSN] = 0.0
        ex[self.b0, _LOSSN] = float(len(reacted))

        drate = np.divide(delivered, self.dt, out=self.drate_buf)
        tx_app_pb, tx_irq_pb, zc_frac, rx_app_pb, rx_irq_pb = kern.cpu_costs(
            self.alloc, drate, rtt, self.foot_buf
        )
        np.multiply(self.alloc, tx_app_pb, out=self.mscratch)
        ex[rows, _TXAPP] = _blocksums(self.mscratch)
        np.multiply(self.alloc, tx_irq_pb, out=self.mscratch)
        ex[rows, _TXIRQ] = _blocksums(self.mscratch)
        np.multiply(drate, rx_app_pb, out=self.mscratch)
        ex[rows, _RXAPP] = _blocksums(self.mscratch)
        np.multiply(drate, rx_irq_pb, out=self.mscratch)
        ex[rows, _RXIRQ] = _blocksums(self.mscratch)
        ex[rows, _ZC] = _blocksums(zc_frac)
        ex[rows, _DSUM] = _blocksums(delivered)

        if self.now > self.omit:
            np.add(self.accum, delivered, out=self.accum)
        self.prev_alloc, self.alloc = self.alloc, self.prev_alloc

    def dispatch(self, cmd: int, f0: float) -> None:
        if cmd == _CMD_CAPS:
            self.round_caps(f0)
        elif cmd == _CMD_WF:
            self.round_wf(f0)
        elif cmd == _CMD_SEND:
            self.round_send(f0)
        elif cmd == _CMD_DROPS1:
            self.round_drops1()
        elif cmd == _CMD_FEEDBACK:
            self.round_feedback(int(f0) == 1)
        else:  # pragma: no cover - protocol error
            raise RuntimeError(f"unknown shard command {cmd}")


def _serve(
    worker: _ShardWorker,
    ctl: np.ndarray,
    barrier,
    shard_id: int,
) -> None:
    """Child-process loop: wait, dispatch, wait, repeat until END.

    Any failure — including a broken barrier after a sibling died —
    exits the process immediately; the coordinator's watchdog turns
    that into :class:`ShardCrashError`.
    """
    try:
        while True:
            barrier.wait()
            cmd = int(ctl[0])
            if cmd == _CMD_END:
                return
            f0 = float(ctl[1])
            worker.dispatch(cmd, f0)
            if cmd == _CMD_CAPS:
                _maybe_crash(shard_id, worker.tick)
            barrier.wait()
    except BaseException:
        os._exit(1)


# ----------------------------------------------------------------------
# Transports


class _InProcTransport:
    """Loop the workers in the coordinator process (1 shard, tests)."""

    name = "inproc"

    def __init__(self, workers: list[_ShardWorker], ctl: np.ndarray) -> None:
        self.workers = workers
        self.ctl = ctl

    def phase(self, cmd: int, f0: float) -> None:
        for worker in self.workers:
            worker.dispatch(cmd, f0)

    def end(self) -> None:
        pass

    def close(self) -> None:
        pass


class _SharedMemTransport:
    """Fork one process per shard; synchronize phases via a barrier.

    The workers' exchange/control/accumulator arrays view shared-memory
    segments, so coordinator writes are visible after the start barrier
    and worker writes after the done barrier.  A watchdog thread aborts
    the barrier if any worker dies, converting a hang into
    :class:`ShardCrashError`.  Never ``barrier.wait(timeout)`` on a
    barrier that will be used again — a timed-out wait *breaks* it for
    everyone (the END release is the one exception: it is the
    barrier's last use, and the watchdog is already stopped there).
    """

    name = "process"

    def __init__(self, workers: list[_ShardWorker], ctl: np.ndarray) -> None:
        ctx = mp.get_context("fork")
        self.ctl = ctl
        self.barrier = ctx.Barrier(len(workers) + 1)
        self.procs = [
            ctx.Process(
                target=_serve,
                args=(worker, ctl, self.barrier, worker.shard_id),
                daemon=True,
            )
            for worker in workers
        ]
        for proc in self.procs:
            proc.start()
        self._stop = threading.Event()
        self._watchdog = threading.Thread(target=self._watch, daemon=True)
        self._watchdog.start()

    def _watch(self) -> None:
        while not self._stop.wait(0.05):
            if any(not proc.is_alive() for proc in self.procs):
                self.barrier.abort()
                return

    def _await(self) -> None:
        try:
            self.barrier.wait()
        except threading.BrokenBarrierError:
            raise ShardCrashError("a shard worker process died mid-tick")

    def phase(self, cmd: int, f0: float) -> None:
        self.ctl[0] = float(cmd)
        self.ctl[1] = float(f0)
        self._await()  # release workers into the phase
        self._await()  # wait for every worker's partials

    def end(self) -> None:
        # Every worker write is already published by the last phase's
        # done barrier; END only releases the workers to exit.  Stop
        # the watchdog *first*: workers dying is expected from here on,
        # and the watchdog aborting the release barrier behind a
        # fast-exiting worker would masquerade as a crash — a spurious
        # retry that duplicates the whole run's trace events.  The
        # timed wait covers a worker that died before reading END: the
        # timeout breaks the barrier (safe — this is its last use) and
        # surfaces as a crash below.
        self._stop.set()
        self._watchdog.join()
        self.ctl[0] = float(_CMD_END)
        self.ctl[1] = 0.0
        try:
            self.barrier.wait(timeout=10.0)
        except threading.BrokenBarrierError:
            raise ShardCrashError(
                "a shard worker process died at end of run"
            )
        for proc in self.procs:
            proc.join(timeout=10.0)

    def close(self) -> None:
        self._stop.set()
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=10.0)


# ----------------------------------------------------------------------
# Coordinator


class ShardedFlowSimulator:
    """Sharded massive-flow counterpart of :class:`FlowSimulator`.

    ``shards=None`` resolves the ambient selection (``REPRO_SIM_SHARDS``
    / :func:`force_shards`) at each :meth:`run`.  ``mode`` picks the
    transport: ``"process"`` forks one worker per shard, ``"inproc"``
    loops them in-process (bit-identical by construction — the same
    worker methods run in the same order on the same arrays), and
    ``"auto"`` forks only when more than one effective shard is
    requested and the platform allows it.
    """

    def __init__(
        self,
        sender: Host,
        receiver: Host,
        path: NetworkPath,
        flows: FlowPopulation | Sequence[FlowSpec],
        profile: SimProfile | None = None,
        rng: RngFactory | None = None,
        shards: int | None = None,
        mode: str = "auto",
    ) -> None:
        if not isinstance(flows, FlowPopulation):
            flows = FlowPopulation.of(flows)
        if mode not in ("auto", "process", "inproc"):
            raise ConfigurationError(
                f"{mode!r} is not a shard transport; "
                "choose one of ['auto', 'process', 'inproc']"
            )
        if shards is not None and shards < 1:
            raise ConfigurationError("shard count must be >= 1")
        self.sender = sender
        self.receiver = receiver
        self.path = path
        self.population = flows
        self.profile = profile or SimProfile()
        self.rng = rng or RngFactory(seed=1)
        self.shards = shards
        self.mode = mode
        #: Shared-memory segment names of every attempt of the last
        #: :meth:`run` (the fault tests prove they were all unlinked).
        self.last_shm_names: list[str] = []
        self._validate()

    def _validate(self) -> None:
        any_zc = any(spec.zerocopy for spec, _ in self.population.groups)
        if any_zc:
            self.sender.require_zerocopy()
            self.sender.check_zerocopy_bigtcp_combo()
        # Shardable == template-batchable: each shard rebuilds its slice
        # of the congestion state from per-kind templates, so the batch
        # stepper registry is the single source of truth for which cc
        # kinds work here (scalar-state CCs like BBR cannot shard).
        from repro.tcp.cc.batch import is_batchable, template_kinds

        for spec, _ in self.population.groups:
            if not is_batchable(spec.cc):
                raise ConfigurationError(
                    f"sharded campaigns support cc in {template_kinds()}, "
                    f"not {spec.cc!r} (scalar-state CCs cannot shard)"
                )

    # -- selection -----------------------------------------------------

    def _resolve(self, plan: ShardPlan) -> bool:
        """Whether this run forks worker processes."""
        can_fork = os.name == "posix" and not mp.current_process().daemon
        if self.mode == "inproc":
            return False
        if self.mode == "process":
            if not can_fork:
                raise ConfigurationError(
                    "mode='process' needs a non-daemonic POSIX parent "
                    "(fork); use mode='auto' to fall back in-process"
                )
            return True
        return plan.shards > 1 and can_fork

    # -- run -----------------------------------------------------------

    def run(self, rep: int = 0) -> RunResult:
        """Simulate one test run; crashed attempts retry from the seed."""
        requested = self.shards if self.shards is not None else shard_count()
        plan = ShardPlan.build(self.population.n, requested)
        use_procs = self._resolve(plan)
        self.last_shm_names = []
        last_error: ShardCrashError | None = None
        for _ in range(MAX_ATTEMPTS):
            try:
                return self._run_once(rep, plan, use_procs)
            except ShardCrashError as exc:
                last_error = exc
        raise last_error

    def _run_once(
        self, rep: int, plan: ShardPlan, use_procs: bool
    ) -> RunResult:
        prof = self.profile
        n = plan.n
        dt = prof.tick
        # A fresh factory per attempt: generator state must restart
        # from the seed so a retried run is byte-identical.
        rng = RngFactory(seed=self.rng.seed)

        jitter_rng = rng.stream("shard:hostjitter", rep)
        bg_rng = rng.stream("shard:background", rep)
        place_rng = rng.stream("shard:placement", rep)
        rx_rng = rng.stream("shard:rxnoise", rep)
        # The label helpers are constant-prefix f-strings behind one
        # definition shared with the worker side (and monkeypatchable
        # by the collision tests) — static to us, opaque to the lint.
        burst_rngs = [
            rng.stream(_burst_label(block), rep)  # repro: noqa-RNG001
            for block in range(plan.n_blocks)
        ]
        drop_rngs = [
            rng.stream(_drop_label(block), rep)  # repro: noqa-RNG001
            for block in range(plan.n_blocks)
        ]

        snd_place = self.sender.resolved_placement(place_rng)
        rcv_place = self.receiver.resolved_placement(place_rng)
        geom_tx = SegmentGeometry(
            mtu=self.sender.tuning.mtu,
            gso_size=self.sender.effective_gso_size(),
            gro_size=self.receiver.effective_gro_size(),
        )
        sockets = SocketProfile.from_sysctls(
            self.sender.sysctls, self.receiver.sysctls
        )
        burst = BurstModel(rng=place_rng)

        # Per-group (per flow *class*) cost models and per-flow arrays,
        # assembled in group order then padded.  Pads are inert copying
        # flows excluded from the aggregate-ceiling mins.
        send_models: list[CpuCostModel] = []
        recv_models: list[CpuCostModel] = []
        group_tx: list[CpuCostModel] = []
        group_rx: list[CpuCostModel] = []
        kinds: list[str] = []
        pace_parts: list[np.ndarray] = []
        slack_parts: list[np.ndarray] = []
        for spec, count in self.population.groups:
            model_tx = CpuCostModel(
                self.sender, geom_tx, snd_place, zerocopy=spec.zerocopy
            )
            model_rx = CpuCostModel(
                self.receiver, geom_tx, rcv_place,
                skip_rx_copy=spec.skip_rx_copy,
            )
            group_tx.append(model_tx)
            group_rx.append(model_rx)
            send_models.extend([model_tx] * count)
            recv_models.extend([model_rx] * count)
            kinds.extend([spec.cc] * count)
            pace_parts.append(
                np.full(
                    count,
                    spec.pacing.effective_rate()
                    if spec.pacing.enabled
                    else np.inf,
                )
            )
            slack_parts.append(
                np.full(
                    count,
                    flow_release_slack(spec.pacing, spec.zerocopy, burst),
                )
            )
        n_pads = plan.n_pad - n
        if n_pads:
            pad_tx = CpuCostModel(self.sender, geom_tx, snd_place)
            pad_rx = CpuCostModel(self.receiver, geom_tx, rcv_place)
            send_models.extend([pad_tx] * n_pads)
            recv_models.extend([pad_rx] * n_pads)
            kinds.extend(["cubic"] * n_pads)
            pace_parts.append(np.full(n_pads, np.inf))
            slack_parts.append(np.zeros(n_pads))
        pace_eff = np.concatenate(pace_parts)
        slacks = np.concatenate(slack_parts)
        valid_b = np.zeros(plan.n_pad, dtype=bool)
        valid_b[:n] = True
        valid_f = valid_b.astype(float)

        run_noise = 1.0 + jitter_rng.normal(
            0.0, 0.012 + self.sender.vm.jitter + self.receiver.vm.jitter
        )
        run_noise = float(np.clip(run_noise, 0.85, 1.15))

        snd_app_share = min(1.0, len(snd_place.app_cores) / n)
        rcv_app_share = min(1.0, len(rcv_place.app_cores) / n)
        rcv_irq_share = min(1.0, len(rcv_place.irq_cores) / n)

        eff = geom_tx.wire_efficiency
        path_cap_good = self.path.capacity * eff
        backbone = SwitchModel(
            model=self.path.switch.model,
            shared_buffer_bytes=self.path.switch.shared_buffer_bytes,
            supports_flow_control=False,
        )
        q_switch = SharedBufferQueue(backbone, drain_rate=path_cap_good)
        ring_switch = SwitchModel(
            model="rx-ring",
            shared_buffer_bytes=self.receiver.rx_ring_bytes(),
            supports_flow_control=self.path.flow_control,
        )
        q_ring = SharedBufferQueue(ring_switch, drain_rate=path_cap_good)

        agg_tx = min(m.aggregate_tx_ceiling() for m in group_tx) * run_noise
        agg_rx_base = (
            min(m.aggregate_rx_ceiling() for m in group_rx) * run_noise
        )
        budget_tx = self.sender.core_cycles_per_sec() * run_noise
        budget_rx = self.receiver.core_cycles_per_sec() * run_noise

        metrics = MetricsAccumulator(0, prof.duration, prof.omit)
        base_rtt = self.path.rtt_sec

        # Hoisted loop invariants — same forms as the unsharded driver.
        mss = geom_tx.mss
        react10 = 10 * mss
        fp_floor = 64 * geom_tx.gso_size
        fp_cap = sockets.max_send_window * 2.0
        l3_20 = 20.0 * self.receiver.cpu.l3_effective_bytes
        n_exposure = min(1.0, n / 4.0)
        physical = self.path.bottleneck.rate_bytes_per_sec
        bg_mean = self.path.background.mean_bytes_per_sec
        path_capacity = self.path.capacity
        cap_floor = 0.05 * path_cap_good
        cap_avg = max(cap_floor, min(path_capacity, physical - bg_mean) * eff)
        capacity = min(cap_avg, agg_tx)
        line1_den = max(
            min(self.sender.nic.speed_bytes_per_sec, physical) * eff, 1.0
        )
        line2_den = max(physical * eff, 1.0)
        buf1 = self.path.switch.shared_buffer_bytes
        buf2 = self.receiver.rx_ring_bytes()
        bg_active = self.path.background.active
        flow_control = self.path.flow_control
        bg_sample = 0.0
        cap_net = max(cap_floor, min(path_capacity, physical - bg_sample) * eff)
        fill1 = max(0.0, 1.0 - cap_net / line1_den)
        drained1 = cap_net * dt
        all_smooth = not bool(slacks[:n].any())
        max_window = sockets.max_window
        n_ticks = int(round(prof.duration / dt))
        steps_per_bg = max(1, int(round(0.02 / dt)))

        # Per-run persistent max-min weights, drawn per block from that
        # block's stream (the shard-invariant unit of randomness).
        persistent_w = np.empty(plan.n_pad)
        for block in range(plan.n_blocks):
            lanes = slice(block * BLOCK_FLOWS, (block + 1) * BLOCK_FLOWS)
            block_model = BurstModel(rng=burst_rngs[block])
            persistent_w[lanes] = block_model.persistent_weights(slacks[lanes])
        persistent_w[n:] = 0.0

        # Shared buffers: the block-partials exchange, the 2-float
        # control channel, and the per-flow delivered-bytes accumulator.
        segments: list[SharedMemory] = []
        if use_procs:
            seg_ex = SharedMemory(
                create=True, size=plan.n_blocks * _N_COLS * _F64
            )
            seg_ctl = SharedMemory(create=True, size=2 * _F64)
            seg_acc = SharedMemory(create=True, size=plan.n_pad * _F64)
            segments = [seg_ex, seg_ctl, seg_acc]
            self.last_shm_names.extend(seg.name for seg in segments)
            exchange = np.ndarray(
                (plan.n_blocks, _N_COLS), dtype=np.float64, buffer=seg_ex.buf
            )
            ctl = np.ndarray((2,), dtype=np.float64, buffer=seg_ctl.buf)
            accum = np.ndarray(
                (plan.n_pad,), dtype=np.float64, buffer=seg_acc.buf
            )
            exchange.fill(0.0)
            ctl.fill(0.0)
            accum.fill(0.0)
        else:
            exchange = np.zeros((plan.n_blocks, _N_COLS))
            ctl = np.zeros(2)
            accum = np.zeros(plan.n_pad)

        workers = []
        for shard in range(plan.shards):
            f0, f1 = plan.flow_range(shard)
            b0, b1 = plan.block_range(shard)
            batch = CcBatch.from_kinds(kinds[f0:f1], mss=float(mss))
            kern = VectorKernel.from_batch(
                batch,
                send_models[f0:f1],
                recv_models[f0:f1],
                run_noise=run_noise,
                snd_app_share=snd_app_share,
                rcv_app_share=rcv_app_share,
                rcv_irq_share=rcv_irq_share,
                budget_rx=budget_rx,
                agg_rx_base=agg_rx_base,
            )
            workers.append(
                _ShardWorker(
                    shard,
                    plan,
                    kern,
                    pace_eff=pace_eff[f0:f1],
                    slacks=slacks[f0:f1],
                    persistent_w=persistent_w[f0:f1],
                    valid_f=valid_f[f0:f1],
                    valid_b=valid_b[f0:f1],
                    burst_rngs=burst_rngs[b0:b1],
                    drop_rngs=drop_rngs[b0:b1],
                    exchange=exchange,
                    accum=accum,
                    dt=dt,
                    omit=prof.omit,
                    mss=float(mss),
                    react10=float(react10),
                    fp_floor=float(fp_floor),
                    fp_cap=float(fp_cap),
                    max_window=float(max_window),
                    all_smooth=all_smooth,
                )
            )

        bus = trace_active()
        want_probe = bus is not None and bus.wants("probe")
        probe_stride = 0
        if want_probe:
            probe_stride = max(1, int(round(bus.probe_interval / dt)))
        if bus is not None:
            # Same wire format as the unsharded run.start — no shard
            # count: the event stream must be shard-count-invariant.
            bus.emit(
                "run",
                "run.start",
                rep=rep,
                flows=n,
                path=self.path.name,
                duration=prof.duration,
                tick=dt,
                rtt_ms=units.seconds_to_ms(base_rtt),
                flow_control=flow_control,
            )

        fast_q = bus is None
        transport = (
            _SharedMemTransport(workers, ctl)
            if use_procs
            else _InProcTransport(workers, ctl)
        )
        red = np.add.reduce  # block partials fold in global block order
        try:
            for step in range(n_ticks):
                now = (step + 1) * dt
                if bus is not None:
                    bus.set_time(now)
                if bg_active and step % steps_per_bg == 0:
                    bg_sample = float(self.path.background.sample(bg_rng, 1)[0])
                    cap_net = max(
                        cap_floor,
                        min(path_capacity, physical - bg_sample) * eff,
                    )
                    fill1 = max(0.0, 1.0 - cap_net / line1_den)
                    drained1 = cap_net * dt
                rtt = base_rtt + q_switch.occupancy / max(
                    q_switch.drain_rate, 1.0
                )

                transport.phase(_CMD_CAPS, rtt)

                total_foot = float(red(exchange[:, _FOOT]))
                rx_exposure = min(1.0, total_foot / l3_20) * n_exposure
                # The coordinator draws the rx-ceiling noise from its
                # own stream every tick (the driver's fused draw is
                # per-block here, so z cannot ride along with it).
                noise_z = float(rx_rng.standard_normal())
                z = noise_z if -2.5 <= noise_z <= 2.5 else (
                    -2.5 if noise_z < -2.5 else 2.5
                )
                rx_noise = 1.0 + RX_CEILING_NOISE * rx_exposure * z
                agg_rx = (
                    agg_rx_base * (1.0 - WAN_RX_AGG_PENALTY * rx_exposure)
                    * rx_noise
                )

                # --- max-min allocation over block partials ----------
                caps_total = float(red(exchange[:, _CAPS]))
                if capacity <= 0:
                    mode = 2.0
                elif caps_total <= capacity:
                    mode = 0.0
                else:
                    mode = 2.0
                    remaining = float(capacity)
                    wsum = float(red(exchange[:, _WSUM]))
                    n_active = n
                    for _ in range(n):
                        if n_active == 0 or remaining <= 1e-12:
                            break
                        share = remaining / wsum
                        transport.phase(_CMD_WF, share)
                        n_limited = int(red(exchange[:, _NLIM]))
                        if n_limited == 0:
                            mode = 1.0
                            break
                        remaining -= float(red(exchange[:, _CAPPED]))
                        n_active -= n_limited
                        wsum = float(red(exchange[:, _WSUM]))
                transport.phase(_CMD_SEND, mode)

                # --- queues + packet-train loss ----------------------
                offered1 = float(red(exchange[:, _SENT]))
                tick_per_rtt = dt / max(rtt, dt)
                q_switch.drain_rate = cap_net
                occ1_before = q_switch.occupancy
                if fast_q and occ1_before == 0.0 and offered1 <= drained1:  # repro: noqa-FLOAT001
                    delivered1, dropped_std1 = offered1, 0.0
                else:
                    delivered1, dropped_std1 = q_switch.offer(offered1, dt)
                del delivered1
                trains_total = 0.0
                if fill1 > 0.0 and not all_smooth:
                    trains_total = float(red(exchange[:, _TRAIN]))
                    headroom1 = max(0.0, buf1 - q_switch.occupancy)
                    overflow1 = max(0.0, trains_total * fill1 - headroom1)
                else:
                    overflow1 = 0.0
                ov1 = overflow1 * tick_per_rtt
                need_d1 = ov1 > 0.0 or dropped_std1 > 0.0
                if need_d1:
                    if ov1 > 0.0:
                        np.multiply(
                            exchange[:, _TRAIN],
                            ov1 / trains_total,
                            out=exchange[:, _D1T],
                        )
                    else:
                        exchange[:, _D1T] = 0.0
                    if dropped_std1 > 0.0 and offered1 > 0.0:
                        np.multiply(
                            exchange[:, _SENT],
                            dropped_std1 / offered1,
                            out=exchange[:, _D1S],
                        )
                    else:
                        exchange[:, _D1S] = 0.0
                    transport.phase(_CMD_DROPS1, 0.0)
                    offered2 = float(red(exchange[:, _AFTER1]))
                else:
                    offered2 = offered1

                rcv_drain = min(agg_rx, float(red(exchange[:, _RCV])))
                q_ring.drain_rate = rcv_drain
                occ2_before = q_ring.occupancy
                if fast_q and occ2_before == 0.0 and offered2 <= rcv_drain * dt:  # repro: noqa-FLOAT001
                    dropped_std2 = 0.0
                else:
                    _, dropped_std2 = q_ring.offer(offered2, dt)
                need_d2 = False
                if not flow_control:
                    fill2 = max(0.0, 1.0 - rcv_drain / line2_den)
                    t_col = _TAFTER if need_d1 else _TRAIN
                    basis_total = 0.0
                    if fill2 > 0.0 and not all_smooth:
                        basis_total = float(red(exchange[:, t_col]))
                        headroom2 = max(0.0, buf2 - q_ring.occupancy)
                        overflow2 = max(
                            0.0, basis_total * fill2 - headroom2
                        )
                    else:
                        overflow2 = 0.0
                    ov2 = overflow2 * tick_per_rtt
                    need_d2 = ov2 > 0.0 or dropped_std2 > 0.0
                    if need_d2:
                        if ov2 > 0.0:
                            np.multiply(
                                exchange[:, t_col],
                                ov2 / basis_total,
                                out=exchange[:, _D2T],
                            )
                        else:
                            exchange[:, _D2T] = 0.0
                        if dropped_std2 > 0.0 and offered2 > 0.0:
                            s_col = _AFTER1 if need_d1 else _SENT
                            np.multiply(
                                exchange[:, s_col],
                                dropped_std2 / offered2,
                                out=exchange[:, _D2S],
                            )
                        else:
                            exchange[:, _D2S] = 0.0
                transport.phase(_CMD_FEEDBACK, 1.0 if need_d2 else 0.0)

                # --- metrics -----------------------------------------
                any_drops = need_d1 or need_d2
                retr_segments = (
                    float(red(exchange[:, _DROPS])) / mss if any_drops else 0.0
                )
                loss_events = int(red(exchange[:, _LOSSN]))
                tx_app = float(red(exchange[:, _TXAPP])) / budget_tx
                tx_irq = float(red(exchange[:, _TXIRQ])) / budget_tx
                rx_app = float(red(exchange[:, _RXAPP])) / budget_rx
                rx_irq = float(red(exchange[:, _RXIRQ])) / budget_rx
                zc_sum = float(red(exchange[:, _ZC]))
                delivered_sum = (
                    float(red(exchange[:, _DSUM])) if any_drops else offered1
                )
                metrics.record_tick(
                    dt,
                    _EMPTY,
                    retr_segments,
                    loss_events,
                    (tx_app / n, tx_irq / n, rx_app / n, rx_irq / n),
                    zc_sum / n,
                    delivered_sum=delivered_sum,
                )
                if want_probe and step % probe_stride == 0:
                    # Globally-reduced values only, so the stream is
                    # shard-count-invariant.
                    bus.emit(
                        "probe",
                        "probe.shard",
                        flows=n,
                        offered=round(offered1, 3),
                        delivered=round(delivered_sum, 3),
                        rtt=rtt,
                        switch_occupancy=q_switch.occupancy,
                        ring_occupancy=q_ring.occupancy,
                    )
            transport.end()
            result = metrics.finalize()
            t_meas = max(metrics._measured_time, 1e-9)
            # A fresh array: safe to return after the segments unlink.
            per_flow = accum[:n] / t_meas
        finally:
            transport.close()
            for seg in segments:
                try:
                    seg.close()
                except BufferError:
                    # numpy views of the mapping are still alive in this
                    # process; the kernel frees the pages when they go.
                    pass
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
        result = dataclasses.replace(result, per_flow_goodput=per_flow)
        if bus is not None:
            bus.emit(
                "run",
                "run.end",
                rep=rep,
                flows=n,
                gbps=round(result.total_gbps, 6),
                retransmit_segments=round(result.retransmit_segments, 3),
                loss_events=result.loss_events,
            )
        return result
