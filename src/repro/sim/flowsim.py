"""The fluid flow simulator: N TCP flows between two hosts over a path.

This is the engine behind every experiment in the reproduction.  It
advances in fixed ticks (default 2 ms); each tick it

1. computes every flow's *rate caps* — window rate (cwnd / RTT),
   pacing rate (fq or BBR-internal), sender per-core CPU limit,
   receiver per-core CPU limit;
2. computes the *shared capacity* — path rate net of background
   traffic, the sender host's aggregate ceiling, the receiver host's
   aggregate ceiling — and allocates it max-min fairly;
3. applies the burst model: unpaced flows' arrivals are inflated by
   stochastic packet-train factors that grow with cwnd (see
   :mod:`repro.sim.lossmodel`);
4. pushes arrivals through two queues in series — the bottleneck
   switch's shared buffer, then the receiver NIC ring.  Overflow is
   tail-dropped unless the path has IEEE 802.3x flow control, in which
   case the ring backpressures instead of dropping;
5. feeds losses and deliveries back into each flow's congestion
   control, and accumulates throughput/retransmit/CPU metrics.

The result of :meth:`FlowSimulator.run` corresponds to one iperf3
invocation; the harness repeats runs with different RNG streams to get
the paper's mean/stdev/min/max statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.core.rng import RngFactory
from repro.host.machine import Host
from repro.net.path import NetworkPath
from repro.net.switch import SharedBufferQueue, SwitchModel
from repro.sim.bottleneck import maxmin_allocate
from repro.sim.cpumodel import CpuCostModel
from repro.sim.kernels import make_kernel
from repro.sim.lossmodel import BurstModel, concentrate_drops, flow_release_slack
from repro.sim.metrics import MetricsAccumulator, RunResult
from repro.sim.sanitizer import SimSanitizer
from repro.sim.sanitizer import enabled as sanitizer_enabled
from repro.tcp.cc import make_cc
from repro.tcp.pacing import PacingConfig
from repro.tcp.segment import SegmentGeometry
from repro.tcp.sockets import SocketProfile
from repro.trace.bus import TraceBus
from repro.trace.bus import active as trace_active
from repro.trace.ledger import FlowConservationLedger
from repro.trace.probes import mpstat_probe, nic_probe, socket_probe

__all__ = ["FlowSpec", "SimProfile", "FlowSimulator"]

#: Receiver aggregate ceiling degradation on large-window (WAN) workloads:
#: hundred-MB receive backlogs defeat the LLC and DDIO, costing up to
#: this fraction of the host's aggregate receive bandwidth.  This is the
#: mechanism behind the paper's observation that ESnet WAN parallel
#: streams interfere "any time the total bandwidth attempted is over
#: 120 Gbps" while the same hosts sustain 166 Gbps on the LAN.
WAN_RX_AGG_PENALTY = 0.30

#: A flow's congestion control reacts when more than this fraction of
#: its tick arrival was dropped (smaller fractions model SACK-repaired
#: stragglers that do not trigger a window reduction).
LOSS_REACT_FRACTION = 5e-4

#: Relative per-tick jitter of the receiver aggregate ceiling at full
#: WAN exposure (LLC / memory-controller / softirq contention noise).
RX_CEILING_NOISE = 0.05


@dataclass(frozen=True)
class FlowSpec:
    """Configuration of one TCP flow (one iperf3 stream)."""

    pacing: PacingConfig = field(default_factory=PacingConfig.unpaced)
    zerocopy: bool = False
    skip_rx_copy: bool = False
    cc: str = "cubic"
    label: str = ""

    def with_pacing_gbps(self, gbps_value: float) -> "FlowSpec":
        return replace(self, pacing=PacingConfig.fq_rate_gbps(gbps_value))


@dataclass(frozen=True)
class SimProfile:
    """Time resolution and duration of a simulated test."""

    duration: float = 20.0
    tick: float = 0.002
    omit: float = 3.0

    def __post_init__(self) -> None:
        if self.tick <= 0 or self.duration <= self.omit:
            raise ConfigurationError("need tick > 0 and duration > omit")

    @classmethod
    def paper(cls) -> "SimProfile":
        """60-second tests as in the paper."""
        return cls(duration=60.0, tick=0.002, omit=3.0)

    @classmethod
    def quick(cls) -> "SimProfile":
        """Short runs for unit tests."""
        return cls(duration=6.0, tick=0.004, omit=1.5)


class FlowSimulator:
    """Simulates a set of flows between ``sender`` and ``receiver``."""

    def __init__(
        self,
        sender: Host,
        receiver: Host,
        path: NetworkPath,
        flows: list[FlowSpec],
        profile: SimProfile | None = None,
        rng: RngFactory | None = None,
    ) -> None:
        if not flows:
            raise ConfigurationError("need at least one flow")
        self.sender = sender
        self.receiver = receiver
        self.path = path
        self.flows = list(flows)
        self.profile = profile or SimProfile()
        self.rng = rng or RngFactory(seed=1)
        self._validate()

    # ------------------------------------------------------------------

    def _validate(self) -> None:
        any_zc = any(f.zerocopy for f in self.flows)
        if any_zc:
            self.sender.require_zerocopy()
            self.sender.check_zerocopy_bigtcp_combo()
        for f in self.flows:
            # Instantiating checks the cc name early.
            make_cc(f.cc)

    # ------------------------------------------------------------------

    def run(self, rep: int = 0) -> RunResult:
        """Simulate one test run (≈ one iperf3 invocation)."""
        prof = self.profile
        n = len(self.flows)
        dt = prof.tick

        san = (
            SimSanitizer(context=f"flowsim rep={rep}")
            if sanitizer_enabled()
            else None
        )

        jitter_rng = self.rng.stream("hostjitter", rep)
        burst_rng = self.rng.stream("burst", rep)
        bg_rng = self.rng.stream("background", rep)
        place_rng = self.rng.stream("placement", rep)
        if san is not None:
            san.check_stream_registry(self.rng)

        snd_place = self.sender.resolved_placement(place_rng)
        rcv_place = self.receiver.resolved_placement(place_rng)

        geom_tx = SegmentGeometry(
            mtu=self.sender.tuning.mtu,
            gso_size=self.sender.effective_gso_size(),
            gro_size=self.receiver.effective_gro_size(),
        )
        sockets = SocketProfile.from_sysctls(self.sender.sysctls, self.receiver.sysctls)

        # Observability.  The ambient trace bus (if one is installed)
        # receives events and probes; the sanitizer additionally audits
        # per-flow conservation by consuming the same "flow.tick" wire
        # format through a private single-sink bus, so the ledger
        # exercises the exact stream exports would see.  Every emission
        # below is observational — no RNG draws, no state the simulated
        # numbers depend on.
        bus = trace_active()
        self.last_ledger = None
        ledger_bus = None
        if san is not None:
            ledger = FlowConservationLedger(
                n, mss=float(geom_tx.mss), context=f"flowsim rep={rep}"
            )
            self.last_ledger = ledger
            ledger_bus = TraceBus(sinks=[ledger])
        want_flow = bus is not None and bus.wants("flow")
        want_probe = bus is not None and bus.wants("probe")
        want_cc = bus is not None and bus.wants("cc")
        want_zc = bus is not None and bus.wants("zerocopy")
        emit_flow = want_flow or ledger_bus is not None
        probe_stride = 0
        drops_cum = None
        if want_probe:
            probe_stride = max(1, int(round(bus.probe_interval / dt)))
            drops_cum = np.zeros(n)

        send_models = [
            CpuCostModel(self.sender, geom_tx, snd_place, zerocopy=f.zerocopy)
            for f in self.flows
        ]
        recv_models = [
            CpuCostModel(self.receiver, geom_tx, rcv_place, skip_rx_copy=f.skip_rx_copy)
            for f in self.flows
        ]

        ccs = [make_cc(f.cc, mss=float(geom_tx.mss)) for f in self.flows]
        pace_eff = np.array(
            [
                f.pacing.effective_rate() if f.pacing.enabled else np.inf
                for f in self.flows
            ]
        )
        burst = BurstModel(rng=burst_rng)
        slacks = np.array(
            [
                flow_release_slack(f.pacing, f.zerocopy, burst)
                for f in self.flows
            ]
        )

        # Run-to-run hardware/placement jitter: a single multiplicative
        # factor per run on CPU-derived limits (thermal/clock/scheduler
        # noise plus any VM overhead noise).
        run_noise = 1.0 + jitter_rng.normal(
            0.0, 0.012 + self.sender.vm.jitter + self.receiver.vm.jitter
        )
        run_noise = float(np.clip(run_noise, 0.85, 1.15))

        # Core shares: flows spread over the app/IRQ core sets.
        snd_app_share = min(1.0, len(snd_place.app_cores) / n)
        rcv_app_share = min(1.0, len(rcv_place.app_cores) / n)
        rcv_irq_share = min(1.0, len(rcv_place.irq_cores) / n)

        # Queues: bottleneck switch buffer, then the receiver NIC ring.
        # The backbone switch queue always tail-drops: even on
        # flow-control paths, 802.3x protects only the receiver's access
        # link — backbone congestion still loses packets.
        eff = geom_tx.wire_efficiency
        path_cap_good = self.path.capacity * eff
        backbone = SwitchModel(
            model=self.path.switch.model,
            shared_buffer_bytes=self.path.switch.shared_buffer_bytes,
            supports_flow_control=False,
        )
        q_switch = SharedBufferQueue(backbone, drain_rate=path_cap_good)
        ring_switch = SwitchModel(
            model="rx-ring",
            shared_buffer_bytes=self.receiver.rx_ring_bytes(),
            supports_flow_control=self.path.flow_control,
        )
        q_ring = SharedBufferQueue(ring_switch, drain_rate=path_cap_good)

        agg_tx = min(m.aggregate_tx_ceiling() for m in send_models) * run_noise
        agg_rx_base = min(m.aggregate_rx_ceiling() for m in recv_models) * run_noise

        metrics = MetricsAccumulator(n, prof.duration, prof.omit)
        base_rtt = self.path.rtt_sec

        budget_tx = self.sender.core_cycles_per_sec() * run_noise
        budget_rx = self.receiver.core_cycles_per_sec() * run_noise

        # The tick kernel (scalar reference or vectorized fast path,
        # selected via REPRO_SIM_KERNEL) owns the warm per-flow state —
        # congestion windows and the damped receiver CPU limit — and the
        # four per-flow hooks.  Everything else in the loop below is
        # shared driver code: RNG draws, cross-flow reductions, queues,
        # and trace emission, so the kernels are byte-interchangeable.
        kern = make_kernel(
            ccs=ccs,
            send_models=send_models,
            recv_models=recv_models,
            run_noise=run_noise,
            snd_app_share=snd_app_share,
            rcv_app_share=rcv_app_share,
            rcv_irq_share=rcv_irq_share,
            budget_rx=budget_rx,
            agg_rx_base=agg_rx_base,
        )
        max_window = sockets.max_window
        prev_alloc = np.zeros(n)
        persistent_w = burst.persistent_weights(slacks)

        n_ticks = int(round(prof.duration / dt))
        steps_per_bg = max(1, int(round(0.02 / dt)))  # resample bg every ~20 ms
        bg_sample = 0.0

        # Loop invariants, hoisted.  Every quantity below is a pure
        # function of run-constant inputs (or of ``bg_sample``, which
        # only changes in the resample branch), so the per-tick values
        # are bit-identical to recomputing them inside the loop.
        mss = geom_tx.mss
        react10 = 10 * mss
        fp_floor = 64 * geom_tx.gso_size
        fp_cap = sockets.max_send_window * 2.0
        l3_20 = 20.0 * self.receiver.cpu.l3_effective_bytes
        n_exposure = min(1.0, n / 4.0)
        physical = self.path.bottleneck.rate_bytes_per_sec
        bg_mean = self.path.background.mean_bytes_per_sec
        path_capacity = self.path.capacity
        cap_floor = 0.05 * path_cap_good
        cap_avg = max(cap_floor, min(path_capacity, physical - bg_mean) * eff)
        capacity = min(cap_avg, agg_tx)
        line1_den = max(
            min(self.sender.nic.speed_bytes_per_sec, physical) * eff, 1.0
        )
        line2_den = max(physical * eff, 1.0)
        buf1 = self.path.switch.shared_buffer_bytes
        buf2 = self.receiver.rx_ring_bytes()
        bg_active = self.path.background.active
        flow_control = self.path.flow_control
        cap_net = max(cap_floor, min(path_capacity, physical - bg_sample) * eff)
        fill1 = max(0.0, 1.0 - cap_net / line1_den)
        # Shared all-zero per-flow array for drop-free ticks (never
        # mutated) and the matching empty loss index.
        zeros = np.zeros(n)
        empty_idx = np.zeros(0, dtype=np.intp)
        zc_flows = [i for i in range(n) if send_models[i].zc_model is not None]
        # ndarray.sum() dispatches to np.add.reduce; calling the ufunc
        # directly skips a wrapper layer with identical pairwise bits.
        asum = np.add.reduce
        # With no trace bus and no sanitizer attached, an offer that a
        # queue passes straight through (empty queue, arrivals within
        # the drain) has no observable effect besides its return value,
        # so the method call can be elided with the same numbers.
        fast_q = bus is None and san is None
        drained1 = cap_net * dt
        # All-fq-paced runs draw burst randomness but multiply it away
        # (slack 0); hoist that check out of the loop.
        all_smooth = not bool(slacks.any())
        # Per-tick scratch buffers.  Each is fully rewritten every tick
        # before its first read, and nothing per-tick survives the tick
        # through a buffer (``prev_alloc`` keeps the freshly allocated
        # maxmin output, never scratch).  ``out=`` only changes where
        # results land, never their bits.
        wr_buf = np.empty(n)
        foot_buf = np.empty(n)
        caps_buf = np.empty(n)
        sent_buf = np.empty(n)
        drate_buf = np.empty(n)
        acc_buf = np.empty(n)
        mask_f1 = np.empty(n)
        mask_b1 = np.empty(n, dtype=bool)
        mask_b2 = np.empty(n, dtype=bool)

        if bus is not None:
            bus.emit(
                "run",
                "run.start",
                rep=rep,
                flows=n,
                path=self.path.name,
                duration=prof.duration,
                tick=dt,
                rtt_ms=units.seconds_to_ms(base_rtt),
                flow_control=self.path.flow_control,
            )

        rtt = base_rtt
        for step in range(n_ticks):
            # Closed form, not `now += dt`: a million accumulated float
            # adds drift the clock by enough to flip boundary
            # comparisons downstream (lint rule FLOAT002 flags the
            # accumulating pattern in simulation code).
            now = (step + 1) * dt
            if bus is not None:
                bus.set_time(now)
            if ledger_bus is not None:
                ledger_bus.set_time(now)
            if san is not None:
                san.check_time(now)
            if bg_active and step % steps_per_bg == 0:
                bg_sample = float(self.path.background.sample(bg_rng, 1)[0])
                cap_net = max(
                    cap_floor, min(path_capacity, physical - bg_sample) * eff
                )
                fill1 = max(0.0, 1.0 - cap_net / line1_den)
                drained1 = cap_net * dt

            queue_delay = q_switch.occupancy / max(q_switch.drain_rate, 1.0)
            rtt = base_rtt + queue_delay

            # --- per-flow caps -------------------------------------------
            cwnd = kern.cwnd
            window_rate = np.divide(cwnd, max(rtt, 1e-6), out=wr_buf)
            pace = kern.pacing(rtt, pace_eff)

            # Working set the sender actually touches: the in-flight
            # bytes (~rate*RTT) plus qdisc/socket slack — NOT the raw
            # cwnd, which can sit far above what an app-limited flow
            # uses (cwnd validation below keeps them close anyway).
            # (min/max are exact and commutative here — both operands
            # are ordinary positive floats, so swapped-argument ties
            # return identical bits; ``c * x`` rounds as ``x * c``.)
            np.multiply(prev_alloc, rtt, out=foot_buf)
            np.multiply(foot_buf, 1.5, out=foot_buf)
            np.maximum(foot_buf, fp_floor, out=foot_buf)
            np.minimum(foot_buf, cwnd, out=foot_buf)
            footprint = np.minimum(foot_buf, fp_cap, out=foot_buf)
            snd_limit, rcv_limit = kern.cpu_limits(rtt, footprint)

            # Same left-fold association as np.minimum.reduce([...]).
            caps = np.minimum(window_rate, pace, out=caps_buf)
            np.minimum(caps, snd_limit, out=caps)
            np.minimum(caps, rcv_limit, out=caps)

            # --- shared capacity ----------------------------------------
            # The receiver's aggregate ceiling is deliberately NOT part
            # of the allocation: senders do not know it.  It appears as
            # the ring drain below, so exceeding it costs losses (the
            # paper's >120 Gbps WAN interference), not a clean cap.
            # Exposure grows with the total receive working set and with
            # the number of competing receiver processes — one stream
            # cannot thrash the LLC the way eight iperf3 threads do.
            # (Background traffic shares the *physical* link; the admin
            # cap applies to test traffic only.  TCP adapts to the
            # *average* background — the micro-burst sample drives the
            # queue drain below, so spikes show up as queueing and
            # loss, not as an instant, clairvoyant rate adjustment.)
            total_foot = float(asum(footprint))
            rx_exposure = min(1.0, total_foot / l3_20) * n_exposure
            # One fused burst-model draw covers this tick's rx-ceiling
            # noise, max-min weight jitter, and packet-train volumes —
            # a single RNG call whose consumption order is part of the
            # shared driver, hence identical across kernels.
            noise_z, weights, trains = burst.tick_draw(
                persistent_w, slacks, cwnd, smooth=all_smooth
            )
            # The ceiling is noisy tick to tick (LLC/memory-controller
            # contention, softirq scheduling): flows operating close to
            # it keep clipping the dips, which is where the paper's
            # sustained WAN retransmit counts come from.
            z = noise_z if -2.5 <= noise_z <= 2.5 else (
                -2.5 if noise_z < -2.5 else 2.5
            )
            rx_noise = 1.0 + RX_CEILING_NOISE * rx_exposure * z
            agg_rx = agg_rx_base * (1.0 - WAN_RX_AGG_PENALTY * rx_exposure) * rx_noise

            # Weights come out of the lognormal jitter (positive by
            # construction), so the validation pass is skipped.  Always
            # route through the module global (the allocator has its own
            # uncongested fast path) so it stays swappable under test.
            alloc = maxmin_allocate(caps, capacity, weights, validate=False)

            # --- queues + packet-train loss ------------------------------
            # Standing queues carry the *average* volume (sum of
            # allocations never exceeds the drain by construction, so
            # they only build transiently when background-traffic spikes
            # eat into the drain).  Packet trains are per-RTT
            # time-compression: each RTT a train of V_i bytes arrives at
            # line rate; the fraction the drain cannot absorb deposits
            # into the buffer, and the part beyond the free headroom is
            # tail-dropped.  Train overflow is converted to a per-tick
            # drop volume by dt/rtt.
            sent = np.multiply(alloc, dt, out=sent_buf)  # goodput bytes emitted
            tick_per_rtt = dt / max(rtt, dt)

            q_switch.drain_rate = cap_net
            occ1_before = q_switch.occupancy
            offered1 = float(asum(sent))
            # Exact == 0.0 is intentional: offer() assigns occupancy
            # = 0.0 exactly when the queue empties, and the elision is
            # only valid in that exact state.
            if fast_q and occ1_before == 0.0 and offered1 <= drained1:  # repro: noqa-FLOAT001
                # offer() would serve everything from an empty queue:
                # delivered = arrivals, no state change, nothing to
                # trace.  Same numbers as the call, minus the call.
                delivered1, dropped_std1 = offered1, 0.0
            else:
                delivered1, dropped_std1 = q_switch.offer(offered1, dt)
            if san is not None:
                san.account_link(
                    "switch-buffer",
                    offered=offered1,
                    delivered=delivered1,
                    dropped=dropped_std1,
                    queue_before=occ1_before,
                    queue_after=q_switch.occupancy,
                )
            # Drop-free ticks short-circuit to the shared zero array:
            # ``concentrate_drops`` returns all-zeros without touching
            # the RNG when its drop volume is 0, and adding a zero
            # array to non-negative drops is a bitwise no-op, so the
            # skipped calls cannot change any number downstream.
            # ``all_smooth`` ticks have all-zero trains, so both
            # overflow expressions reduce to max(0, -headroom) == 0;
            # skipping the sums changes nothing.
            if fill1 > 0.0 and not all_smooth:
                headroom1 = max(0.0, buf1 - q_switch.occupancy)
                overflow1 = max(0.0, float(asum(trains)) * fill1 - headroom1)
            else:
                overflow1 = 0.0
            ov1 = overflow1 * tick_per_rtt
            if ov1 > 0.0:
                drops1 = concentrate_drops(burst_rng, trains, ov1)
                if dropped_std1 > 0.0:
                    drops1 += concentrate_drops(burst_rng, sent, dropped_std1)
            elif dropped_std1 > 0.0:
                drops1 = concentrate_drops(burst_rng, sent, dropped_std1)
            else:
                drops1 = zeros

            # Receiver NIC ring: drains at what the receiver actually
            # consumes; trains arrive at the path's bottleneck line rate.
            rcv_drain = min(agg_rx, float(asum(rcv_limit)))
            after1 = sent if drops1 is zeros else np.maximum(0.0, sent - drops1)
            q_ring.drain_rate = rcv_drain
            occ2_before = q_ring.occupancy
            # On drop-free ticks after1 IS sent, whose sum is offered1.
            offered2 = offered1 if after1 is sent else float(asum(after1))
            # Same exact-empty-state guard as the switch queue above.
            if fast_q and occ2_before == 0.0 and offered2 <= rcv_drain * dt:  # repro: noqa-FLOAT001
                delivered2, dropped_std2 = offered2, 0.0
            else:
                delivered2, dropped_std2 = q_ring.offer(offered2, dt)
            if san is not None:
                san.account_link(
                    "rx-ring",
                    offered=offered2,
                    delivered=delivered2,
                    dropped=dropped_std2,
                    queue_before=occ2_before,
                    queue_after=q_ring.occupancy,
                    flow_control=flow_control,
                )
            if flow_control:
                # 802.3x pause frames: the overflow is held upstream,
                # nothing is dropped at the ring.
                drops2 = zeros
            else:
                fill2 = max(0.0, 1.0 - rcv_drain / line2_den)
                trains_after = (
                    trains if drops1 is zeros
                    else np.maximum(0.0, trains - drops1)
                )
                if fill2 > 0.0 and not all_smooth:
                    headroom2 = max(0.0, buf2 - q_ring.occupancy)
                    overflow2 = max(
                        0.0, float(asum(trains_after)) * fill2 - headroom2
                    )
                else:
                    overflow2 = 0.0
                ov2 = overflow2 * tick_per_rtt
                if ov2 > 0.0:
                    drops2 = concentrate_drops(burst_rng, trains_after, ov2)
                    if dropped_std2 > 0.0:
                        drops2 += concentrate_drops(burst_rng, after1, dropped_std2)
                elif dropped_std2 > 0.0:
                    drops2 = concentrate_drops(burst_rng, after1, dropped_std2)
                else:
                    drops2 = zeros

            if drops1 is zeros and drops2 is zeros:
                drops = zeros
                delivered = sent
            else:
                drops = drops1 + drops2
                delivered = np.maximum(0.0, sent - drops)
            if san is not None:
                san.check_non_negative("alloc", alloc)
                san.check_non_negative("sent", sent)
                san.check_non_negative("drops", drops)
                san.check_non_negative("delivered", delivered)
                san.check_non_negative(
                    "queue occupancy", (q_switch.occupancy, q_ring.occupancy)
                )
                san.check_positive("rtt", rtt)
                san.check_positive("cwnd", cwnd)

            if drops_cum is not None:
                drops_cum += drops
            if emit_flow:
                # cwnd here is the window that bounded THIS tick's
                # allocation (the cc update below may change it).
                for i in range(n):
                    args = {
                        "flow": i,
                        "sent": float(sent[i]),
                        "delivered": float(delivered[i]),
                        "dropped": float(drops[i]),
                        "alloc": float(alloc[i]),
                        "cwnd": float(cwnd[i]),
                        "rtt": rtt,
                    }
                    if want_flow:
                        bus.emit("flow", "flow.tick", **args)
                    if ledger_bus is not None:
                        ledger_bus.emit("flow", "flow.tick", **args)

            # --- congestion feedback ------------------------------------
            if drops is zeros:
                # No drop volume: segments lost is exactly 0 and no flow
                # can clear the (strictly positive) loss-react threshold.
                retr_segments = 0.0
                loss_idx = empty_idx
            else:
                retr_segments = float(asum(drops) / mss)
                loss_idx = np.nonzero(
                    drops > LOSS_REACT_FRACTION * np.maximum(sent, 1.0)
                )[0]
            # Congestion-window validation (RFC 7661): loss-based
            # algorithms only grow while the window is what binds.  The
            # mask reads this tick's pre-update windows, as the scalar
            # loop did.
            # Same left-fold ``(nv & a) & b`` as the expression form;
            # `&` on bool arrays is logical_and, and the `c * x`
            # commutations round identically.
            np.multiply(alloc, rtt, out=mask_f1)
            np.maximum(mask_f1, react10, out=mask_f1)
            np.multiply(mask_f1, 1.5, out=mask_f1)
            np.greater(cwnd, mask_f1, out=mask_b1)
            np.logical_and(kern.needs_validation, mask_b1, out=mask_b1)
            np.multiply(alloc, 1.2, out=mask_f1)
            np.greater(window_rate, mask_f1, out=mask_b2)
            al_mask = np.logical_and(mask_b1, mask_b2, out=mask_b1)
            reacted = kern.cc_feedback(
                now, dt, rtt, delivered, loss_idx, al_mask, max_window
            )
            loss_events = len(reacted)
            if want_cc:
                for i, before, after in reacted:
                    bus.emit(
                        "cc",
                        "cc.loss",
                        flow=i,
                        cwnd_before=before,
                        cwnd_after=after,
                        dropped=float(drops[i]),
                        rtt=rtt,
                    )
            prev_alloc = alloc

            # --- CPU accounting ------------------------------------------
            drate = np.divide(delivered, dt, out=drate_buf)
            tx_app_pb, tx_irq_pb, zc_frac, rx_app_pb, rx_irq_pb = kern.cpu_costs(
                alloc, drate, rtt, footprint
            )
            np.multiply(alloc, tx_app_pb, out=acc_buf)
            tx_app = float(asum(acc_buf)) / budget_tx
            np.multiply(alloc, tx_irq_pb, out=acc_buf)
            tx_irq = float(asum(acc_buf)) / budget_tx
            np.multiply(drate, rx_app_pb, out=acc_buf)
            rx_app = float(asum(acc_buf)) / budget_rx
            np.multiply(drate, rx_irq_pb, out=acc_buf)
            rx_irq = float(asum(acc_buf)) / budget_rx
            zc_sum = float(asum(zc_frac))
            if want_zc:
                for i in zc_flows:
                    # Edge-triggered: one event when the flow starts
                    # falling back to copying (optmem exhausted),
                    # one when it recovers.
                    bus.emit_edge(
                        ("zc", i),
                        "zerocopy",
                        "zc.fallback",
                        bool(zc_frac[i] < 0.999),
                        flow=i,
                        zc_fraction=round(float(zc_frac[i]), 4),
                    )

            if want_probe and step % probe_stride == 0:
                bus.emit(
                    "probe",
                    "probe.mpstat",
                    **mpstat_probe(
                        snd_app_pct=100.0 * tx_app / n,
                        snd_irq_pct=100.0 * tx_irq / n,
                        rcv_app_pct=100.0 * rx_app / n,
                        rcv_irq_pct=100.0 * rx_irq / n,
                    ),
                )
                bus.emit(
                    "probe",
                    "probe.nic",
                    **nic_probe(q_switch, q_ring, flow_control=flow_control),
                )
                for i in range(n):
                    zc_model = send_models[i].zc_model
                    bus.emit(
                        "probe",
                        "probe.socket",
                        **socket_probe(
                            i,
                            cwnd=float(cwnd[i]),
                            pacing_rate=float(pace[i]),
                            rtt=rtt,
                            send_rate=float(alloc[i]),
                            delivered_rate=float(delivered[i]) / dt,
                            retrans_cum=float(drops_cum[i]) / mss,
                            zc_fraction=(
                                None
                                if zc_model is None
                                else zc_model.zc_fraction(float(alloc[i]), rtt)
                            ),
                        ),
                    )

            metrics.record_tick(
                dt,
                delivered,
                retr_segments,
                loss_events,
                (tx_app / n, tx_irq / n, rx_app / n, rx_irq / n),
                zc_sum / n,
                # Drop-free ticks deliver exactly what was sent, whose
                # sum was already taken for the switch offer.
                delivered_sum=(
                    offered1 if delivered is sent else float(asum(delivered))
                ),
            )

        result = metrics.finalize()
        if bus is not None:
            bus.emit(
                "run",
                "run.end",
                rep=rep,
                flows=n,
                gbps=round(result.total_gbps, 6),
                retransmit_segments=round(result.retransmit_segments, 3),
                loss_events=result.loss_events,
            )
        return result
