"""The fluid flow simulator: N TCP flows between two hosts over a path.

This is the engine behind every experiment in the reproduction.  It
advances in fixed ticks (default 2 ms); each tick it

1. computes every flow's *rate caps* — window rate (cwnd / RTT),
   pacing rate (fq or BBR-internal), sender per-core CPU limit,
   receiver per-core CPU limit;
2. computes the *shared capacity* — path rate net of background
   traffic, the sender host's aggregate ceiling, the receiver host's
   aggregate ceiling — and allocates it max-min fairly;
3. applies the burst model: unpaced flows' arrivals are inflated by
   stochastic packet-train factors that grow with cwnd (see
   :mod:`repro.sim.lossmodel`);
4. pushes arrivals through two queues in series — the bottleneck
   switch's shared buffer, then the receiver NIC ring.  Overflow is
   tail-dropped unless the path has IEEE 802.3x flow control, in which
   case the ring backpressures instead of dropping;
5. feeds losses and deliveries back into each flow's congestion
   control, and accumulates throughput/retransmit/CPU metrics.

The result of :meth:`FlowSimulator.run` corresponds to one iperf3
invocation; the harness repeats runs with different RNG streams to get
the paper's mean/stdev/min/max statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.core.rng import RngFactory
from repro.host.machine import Host
from repro.net.path import NetworkPath
from repro.net.switch import SharedBufferQueue, SwitchModel
from repro.sim.bottleneck import maxmin_allocate
from repro.sim.cpumodel import CpuCostModel
from repro.sim.lossmodel import BurstModel, concentrate_drops
from repro.sim.metrics import MetricsAccumulator, RunResult
from repro.sim.sanitizer import SimSanitizer
from repro.sim.sanitizer import enabled as sanitizer_enabled
from repro.tcp.cc import make_cc
from repro.tcp.pacing import PacingConfig
from repro.tcp.segment import SegmentGeometry
from repro.tcp.sockets import SocketProfile
from repro.trace.bus import TraceBus
from repro.trace.bus import active as trace_active
from repro.trace.ledger import FlowConservationLedger
from repro.trace.probes import mpstat_probe, nic_probe, socket_probe

__all__ = ["FlowSpec", "SimProfile", "FlowSimulator"]

#: Receiver aggregate ceiling degradation on large-window (WAN) workloads:
#: hundred-MB receive backlogs defeat the LLC and DDIO, costing up to
#: this fraction of the host's aggregate receive bandwidth.  This is the
#: mechanism behind the paper's observation that ESnet WAN parallel
#: streams interfere "any time the total bandwidth attempted is over
#: 120 Gbps" while the same hosts sustain 166 Gbps on the LAN.
WAN_RX_AGG_PENALTY = 0.30

#: A flow's congestion control reacts when more than this fraction of
#: its tick arrival was dropped (smaller fractions model SACK-repaired
#: stragglers that do not trigger a window reduction).
LOSS_REACT_FRACTION = 5e-4

#: Relative per-tick jitter of the receiver aggregate ceiling at full
#: WAN exposure (LLC / memory-controller / softirq contention noise).
RX_CEILING_NOISE = 0.05


@dataclass(frozen=True)
class FlowSpec:
    """Configuration of one TCP flow (one iperf3 stream)."""

    pacing: PacingConfig = field(default_factory=PacingConfig.unpaced)
    zerocopy: bool = False
    skip_rx_copy: bool = False
    cc: str = "cubic"
    label: str = ""

    def with_pacing_gbps(self, gbps_value: float) -> "FlowSpec":
        return replace(self, pacing=PacingConfig.fq_rate_gbps(gbps_value))


@dataclass(frozen=True)
class SimProfile:
    """Time resolution and duration of a simulated test."""

    duration: float = 20.0
    tick: float = 0.002
    omit: float = 3.0

    def __post_init__(self) -> None:
        if self.tick <= 0 or self.duration <= self.omit:
            raise ConfigurationError("need tick > 0 and duration > omit")

    @classmethod
    def paper(cls) -> "SimProfile":
        """60-second tests as in the paper."""
        return cls(duration=60.0, tick=0.002, omit=3.0)

    @classmethod
    def quick(cls) -> "SimProfile":
        """Short runs for unit tests."""
        return cls(duration=6.0, tick=0.004, omit=1.5)


class FlowSimulator:
    """Simulates a set of flows between ``sender`` and ``receiver``."""

    def __init__(
        self,
        sender: Host,
        receiver: Host,
        path: NetworkPath,
        flows: list[FlowSpec],
        profile: SimProfile | None = None,
        rng: RngFactory | None = None,
    ) -> None:
        if not flows:
            raise ConfigurationError("need at least one flow")
        self.sender = sender
        self.receiver = receiver
        self.path = path
        self.flows = list(flows)
        self.profile = profile or SimProfile()
        self.rng = rng or RngFactory(seed=1)
        self._validate()

    # ------------------------------------------------------------------

    def _validate(self) -> None:
        any_zc = any(f.zerocopy for f in self.flows)
        if any_zc:
            self.sender.require_zerocopy()
            self.sender.check_zerocopy_bigtcp_combo()
        for f in self.flows:
            # Instantiating checks the cc name early.
            make_cc(f.cc)

    # ------------------------------------------------------------------

    def run(self, rep: int = 0) -> RunResult:
        """Simulate one test run (≈ one iperf3 invocation)."""
        prof = self.profile
        n = len(self.flows)
        dt = prof.tick

        san = (
            SimSanitizer(context=f"flowsim rep={rep}")
            if sanitizer_enabled()
            else None
        )

        jitter_rng = self.rng.stream("hostjitter", rep)
        burst_rng = self.rng.stream("burst", rep)
        bg_rng = self.rng.stream("background", rep)
        place_rng = self.rng.stream("placement", rep)
        if san is not None:
            san.check_stream_registry(self.rng)

        snd_place = self.sender.resolved_placement(place_rng)
        rcv_place = self.receiver.resolved_placement(place_rng)

        geom_tx = SegmentGeometry(
            mtu=self.sender.tuning.mtu,
            gso_size=self.sender.effective_gso_size(),
            gro_size=self.receiver.effective_gro_size(),
        )
        sockets = SocketProfile.from_sysctls(self.sender.sysctls, self.receiver.sysctls)

        # Observability.  The ambient trace bus (if one is installed)
        # receives events and probes; the sanitizer additionally audits
        # per-flow conservation by consuming the same "flow.tick" wire
        # format through a private single-sink bus, so the ledger
        # exercises the exact stream exports would see.  Every emission
        # below is observational — no RNG draws, no state the simulated
        # numbers depend on.
        bus = trace_active()
        self.last_ledger = None
        ledger_bus = None
        if san is not None:
            ledger = FlowConservationLedger(
                n, mss=float(geom_tx.mss), context=f"flowsim rep={rep}"
            )
            self.last_ledger = ledger
            ledger_bus = TraceBus(sinks=[ledger])
        want_flow = bus is not None and bus.wants("flow")
        want_probe = bus is not None and bus.wants("probe")
        want_cc = bus is not None and bus.wants("cc")
        want_zc = bus is not None and bus.wants("zerocopy")
        emit_flow = want_flow or ledger_bus is not None
        probe_stride = 0
        drops_cum = None
        if want_probe:
            probe_stride = max(1, int(round(bus.probe_interval / dt)))
            drops_cum = np.zeros(n)

        send_models = [
            CpuCostModel(self.sender, geom_tx, snd_place, zerocopy=f.zerocopy)
            for f in self.flows
        ]
        recv_models = [
            CpuCostModel(self.receiver, geom_tx, rcv_place, skip_rx_copy=f.skip_rx_copy)
            for f in self.flows
        ]

        ccs = [make_cc(f.cc, mss=float(geom_tx.mss)) for f in self.flows]
        pace_eff = np.array(
            [
                f.pacing.effective_rate() if f.pacing.enabled else np.inf
                for f in self.flows
            ]
        )
        burst = BurstModel(rng=burst_rng)
        slacks = np.array(
            [
                burst.slack_for(f.pacing.smooths_bursts, f.pacing.enabled, f.zerocopy)
                for f in self.flows
            ]
        )

        # Run-to-run hardware/placement jitter: a single multiplicative
        # factor per run on CPU-derived limits (thermal/clock/scheduler
        # noise plus any VM overhead noise).
        run_noise = 1.0 + jitter_rng.normal(
            0.0, 0.012 + self.sender.vm.jitter + self.receiver.vm.jitter
        )
        run_noise = float(np.clip(run_noise, 0.85, 1.15))

        # Core shares: flows spread over the app/IRQ core sets.
        snd_app_share = min(1.0, len(snd_place.app_cores) / n)
        rcv_app_share = min(1.0, len(rcv_place.app_cores) / n)
        rcv_irq_share = min(1.0, len(rcv_place.irq_cores) / n)

        # Queues: bottleneck switch buffer, then the receiver NIC ring.
        # The backbone switch queue always tail-drops: even on
        # flow-control paths, 802.3x protects only the receiver's access
        # link — backbone congestion still loses packets.
        eff = geom_tx.wire_efficiency
        path_cap_good = self.path.capacity * eff
        backbone = SwitchModel(
            model=self.path.switch.model,
            shared_buffer_bytes=self.path.switch.shared_buffer_bytes,
            supports_flow_control=False,
        )
        q_switch = SharedBufferQueue(backbone, drain_rate=path_cap_good)
        ring_switch = SwitchModel(
            model="rx-ring",
            shared_buffer_bytes=self.receiver.rx_ring_bytes(),
            supports_flow_control=self.path.flow_control,
        )
        q_ring = SharedBufferQueue(ring_switch, drain_rate=path_cap_good)

        agg_tx = min(m.aggregate_tx_ceiling() for m in send_models) * run_noise
        agg_rx_base = min(m.aggregate_rx_ceiling() for m in recv_models) * run_noise

        metrics = MetricsAccumulator(n, prof.duration, prof.omit)
        base_rtt = self.path.rtt_sec

        # Warm-started per-flow CPU limits (fixed point across ticks).
        snd_limit = np.full(n, agg_tx)
        rcv_limit = np.full(n, agg_rx_base)

        cwnd = np.array([cc.cwnd_bytes for cc in ccs])
        max_window = sockets.max_window
        prev_alloc = np.zeros(n)
        persistent_w = burst.persistent_weights(slacks)

        n_ticks = int(round(prof.duration / dt))
        steps_per_bg = max(1, int(round(0.02 / dt)))  # resample bg every ~20 ms
        bg_sample = 0.0

        budget_tx = self.sender.core_cycles_per_sec() * run_noise
        budget_rx = self.receiver.core_cycles_per_sec() * run_noise

        if bus is not None:
            bus.emit(
                "run",
                "run.start",
                rep=rep,
                flows=n,
                path=self.path.name,
                duration=prof.duration,
                tick=dt,
                rtt_ms=units.seconds_to_ms(base_rtt),
                flow_control=self.path.flow_control,
            )

        now = 0.0
        rtt = base_rtt
        for step in range(n_ticks):
            now += dt
            if bus is not None:
                bus.set_time(now)
            if ledger_bus is not None:
                ledger_bus.set_time(now)
            if san is not None:
                san.check_time(now)
            if step % steps_per_bg == 0 and self.path.background.active:
                bg_sample = float(self.path.background.sample(bg_rng, 1)[0])

            queue_delay = q_switch.occupancy / max(q_switch.drain_rate, 1.0)
            rtt = base_rtt + queue_delay

            # --- per-flow caps -------------------------------------------
            window_rate = cwnd / max(rtt, 1e-6)
            pace = pace_eff.copy()
            for i, cc in enumerate(ccs):
                cc_rate = cc.pacing_rate(rtt)
                if cc_rate is not None:
                    pace[i] = min(pace[i], cc_rate)

            # Working set the sender actually touches: the in-flight
            # bytes (~rate*RTT) plus qdisc/socket slack — NOT the raw
            # cwnd, which can sit far above what an app-limited flow
            # uses (cwnd validation below keeps them close anyway).
            inflight = prev_alloc * rtt
            footprint = np.minimum(
                cwnd, np.maximum(1.5 * inflight, 64 * geom_tx.gso_size)
            )
            footprint = np.minimum(footprint, sockets.max_send_window * 2.0)
            for i in range(n):
                snd_limit[i] = send_models[i].sender_cpu_rate_limit(
                    rtt, footprint[i], core_share=snd_app_share
                ) * run_noise
                # Receiver limit: pb falls as the GRO batch fills, then
                # is rate-independent; one damped step per tick converges.
                rm = recv_models[i]
                rcosts = rm.receiver_costs(max(rcv_limit[i], units.M), rtt)
                app_lim = (
                    budget_rx * rcv_app_share / max(rcosts.app_cyc_per_byte, 1e-9)
                )
                irq_lim = (
                    budget_rx * rcv_irq_share / max(rcosts.irq_cyc_per_byte, 1e-9)
                )
                rcv_limit[i] = 0.5 * rcv_limit[i] + 0.5 * min(app_lim, irq_lim)

            caps = np.minimum.reduce([window_rate, pace, snd_limit, rcv_limit])

            # --- shared capacity ----------------------------------------
            # The receiver's aggregate ceiling is deliberately NOT part
            # of the allocation: senders do not know it.  It appears as
            # the ring drain below, so exceeding it costs losses (the
            # paper's >120 Gbps WAN interference), not a clean cap.
            # Exposure grows with the total receive working set and with
            # the number of competing receiver processes — one stream
            # cannot thrash the LLC the way eight iperf3 threads do.
            total_foot = float(footprint.sum())
            l3 = self.receiver.cpu.l3_effective_bytes
            rx_exposure = min(1.0, total_foot / (20.0 * l3)) * min(1.0, n / 4.0)
            # The ceiling is noisy tick to tick (LLC/memory-controller
            # contention, softirq scheduling): flows operating close to
            # it keep clipping the dips, which is where the paper's
            # sustained WAN retransmit counts come from.
            rx_noise = 1.0 + RX_CEILING_NOISE * rx_exposure * float(
                np.clip(burst_rng.standard_normal(), -2.5, 2.5)
            )
            agg_rx = agg_rx_base * (1.0 - WAN_RX_AGG_PENALTY * rx_exposure) * rx_noise
            # Background traffic shares the *physical* link; the admin
            # cap applies to test traffic only.  TCP adapts to the
            # *average* background (that is what its ACK clock measures)
            # — the micro-burst sample drives the queue drain below, so
            # spikes show up as queueing and loss, not as an instant,
            # clairvoyant rate adjustment.
            physical = self.path.bottleneck.rate_bytes_per_sec
            bg_mean = self.path.background.mean_bytes_per_sec
            cap_avg = max(
                0.05 * path_cap_good,
                min(self.path.capacity, physical - bg_mean) * eff,
            )
            cap_net = max(
                0.05 * path_cap_good,
                min(self.path.capacity, physical - bg_sample) * eff,
            )
            capacity = min(cap_avg, agg_tx)

            weights = burst.tick_weights(persistent_w, slacks)
            alloc = maxmin_allocate(caps, capacity, weights)

            # --- queues + packet-train loss ------------------------------
            # Standing queues carry the *average* volume (sum of
            # allocations never exceeds the drain by construction, so
            # they only build transiently when background-traffic spikes
            # eat into the drain).  Packet trains are per-RTT
            # time-compression: each RTT a train of V_i bytes arrives at
            # line rate; the fraction the drain cannot absorb deposits
            # into the buffer, and the part beyond the free headroom is
            # tail-dropped.  Train overflow is converted to a per-tick
            # drop volume by dt/rtt.
            sent = alloc * dt  # goodput bytes actually emitted
            trains = burst.train_volumes(slacks, cwnd)
            tick_per_rtt = dt / max(rtt, dt)

            q_switch.drain_rate = cap_net
            occ1_before = q_switch.occupancy
            delivered1, dropped_std1 = q_switch.offer(float(sent.sum()), dt)
            if san is not None:
                san.account_link(
                    "switch-buffer",
                    offered=float(sent.sum()),
                    delivered=delivered1,
                    dropped=dropped_std1,
                    queue_before=occ1_before,
                    queue_after=q_switch.occupancy,
                )
            line1 = min(
                self.sender.nic.speed_bytes_per_sec, self.path.bottleneck.rate_bytes_per_sec
            ) * eff
            fill1 = max(0.0, 1.0 - cap_net / max(line1, 1.0))
            headroom1 = max(
                0.0, self.path.switch.shared_buffer_bytes - q_switch.occupancy
            )
            overflow1 = max(0.0, float(trains.sum()) * fill1 - headroom1)
            drops1 = concentrate_drops(burst_rng, trains, overflow1 * tick_per_rtt)
            drops1 += concentrate_drops(burst_rng, sent, dropped_std1)

            # Receiver NIC ring: drains at what the receiver actually
            # consumes; trains arrive at the path's bottleneck line rate.
            rcv_drain = min(agg_rx, float(rcv_limit.sum()))
            after1 = np.maximum(0.0, sent - drops1)
            q_ring.drain_rate = rcv_drain
            occ2_before = q_ring.occupancy
            delivered2, dropped_std2 = q_ring.offer(float(after1.sum()), dt)
            if san is not None:
                san.account_link(
                    "rx-ring",
                    offered=float(after1.sum()),
                    delivered=delivered2,
                    dropped=dropped_std2,
                    queue_before=occ2_before,
                    queue_after=q_ring.occupancy,
                    flow_control=self.path.flow_control,
                )
            if self.path.flow_control:
                # 802.3x pause frames: the overflow is held upstream,
                # nothing is dropped at the ring.
                drops2 = np.zeros(n)
            else:
                line2 = self.path.bottleneck.rate_bytes_per_sec * eff
                fill2 = max(0.0, 1.0 - rcv_drain / max(line2, 1.0))
                headroom2 = max(
                    0.0, self.receiver.rx_ring_bytes() - q_ring.occupancy
                )
                trains_after = np.maximum(0.0, trains - drops1)
                overflow2 = max(0.0, float(trains_after.sum()) * fill2 - headroom2)
                drops2 = concentrate_drops(burst_rng, trains_after, overflow2 * tick_per_rtt)
                drops2 += concentrate_drops(burst_rng, after1, dropped_std2)

            drops = drops1 + drops2
            delivered = np.maximum(0.0, sent - drops)
            if san is not None:
                san.check_non_negative("alloc", alloc)
                san.check_non_negative("sent", sent)
                san.check_non_negative("drops", drops)
                san.check_non_negative("delivered", delivered)
                san.check_non_negative(
                    "queue occupancy", (q_switch.occupancy, q_ring.occupancy)
                )
                san.check_positive("rtt", rtt)
                san.check_positive("cwnd", cwnd)

            if drops_cum is not None:
                drops_cum += drops
            if emit_flow:
                # cwnd here is the window that bounded THIS tick's
                # allocation (the cc update below may change it).
                for i in range(n):
                    args = {
                        "flow": i,
                        "sent": float(sent[i]),
                        "delivered": float(delivered[i]),
                        "dropped": float(drops[i]),
                        "alloc": float(alloc[i]),
                        "cwnd": float(cwnd[i]),
                        "rtt": rtt,
                    }
                    if want_flow:
                        bus.emit("flow", "flow.tick", **args)
                    if ledger_bus is not None:
                        ledger_bus.emit("flow", "flow.tick", **args)

            # --- congestion feedback ------------------------------------
            loss_events = 0
            retr_segments = float(drops.sum() / geom_tx.mss)
            for i, cc in enumerate(ccs):
                if drops[i] > LOSS_REACT_FRACTION * max(sent[i], 1.0):
                    if want_cc:
                        before = float(cc.cwnd_bytes)
                        if cc.on_loss(now, rtt):
                            loss_events += 1
                            bus.emit(
                                "cc",
                                "cc.loss",
                                flow=i,
                                cwnd_before=before,
                                cwnd_after=float(cc.cwnd_bytes),
                                dropped=float(drops[i]),
                                rtt=rtt,
                            )
                    elif cc.on_loss(now, rtt):
                        loss_events += 1
                # Congestion-window validation (RFC 7661): loss-based
                # algorithms only grow while the window is what binds.
                app_limited = (
                    cc.needs_cwnd_validation
                    and cwnd[i] > 1.5 * max(alloc[i] * rtt, 10 * geom_tx.mss)
                    and window_rate[i] > 1.2 * alloc[i]
                )
                if app_limited:
                    cc.on_app_limited(now, dt)
                else:
                    cc.on_tick(now, dt, delivered[i], rtt)
                cc.clamp(max_window)
                cwnd[i] = cc.cwnd_bytes
            prev_alloc = alloc

            # --- CPU accounting ------------------------------------------
            tx_app = tx_irq = rx_app = rx_irq = 0.0
            zc_sum = 0.0
            for i in range(n):
                rate_i = alloc[i]
                costs = send_models[i].sender_costs(rate_i, rtt, footprint[i])
                tx_app += rate_i * costs.app_cyc_per_byte / budget_tx
                tx_irq += rate_i * costs.irq_cyc_per_byte / budget_tx
                zc_sum += costs.zc_fraction
                drate = delivered[i] / dt
                rcosts = recv_models[i].receiver_costs(drate, rtt)
                rx_app += drate * rcosts.app_cyc_per_byte / budget_rx
                rx_irq += drate * rcosts.irq_cyc_per_byte / budget_rx
                if want_zc and send_models[i].zc_model is not None:
                    # Edge-triggered: one event when the flow starts
                    # falling back to copying (optmem exhausted), one
                    # when it recovers.
                    bus.emit_edge(
                        ("zc", i),
                        "zerocopy",
                        "zc.fallback",
                        bool(costs.zc_fraction < 0.999),
                        flow=i,
                        zc_fraction=round(float(costs.zc_fraction), 4),
                    )

            if want_probe and step % probe_stride == 0:
                bus.emit(
                    "probe",
                    "probe.mpstat",
                    **mpstat_probe(
                        snd_app_pct=100.0 * tx_app / n,
                        snd_irq_pct=100.0 * tx_irq / n,
                        rcv_app_pct=100.0 * rx_app / n,
                        rcv_irq_pct=100.0 * rx_irq / n,
                    ),
                )
                bus.emit(
                    "probe",
                    "probe.nic",
                    **nic_probe(
                        q_switch, q_ring, flow_control=self.path.flow_control
                    ),
                )
                for i in range(n):
                    zc_model = send_models[i].zc_model
                    bus.emit(
                        "probe",
                        "probe.socket",
                        **socket_probe(
                            i,
                            cwnd=float(cwnd[i]),
                            pacing_rate=float(pace[i]),
                            rtt=rtt,
                            send_rate=float(alloc[i]),
                            delivered_rate=float(delivered[i]) / dt,
                            retrans_cum=float(drops_cum[i]) / geom_tx.mss,
                            zc_fraction=(
                                None
                                if zc_model is None
                                else zc_model.zc_fraction(float(alloc[i]), rtt)
                            ),
                        ),
                    )

            metrics.record_tick(
                dt,
                delivered,
                retr_segments,
                loss_events,
                (tx_app / n, tx_irq / n, rx_app / n, rx_irq / n),
                zc_sum / n,
            )

        result = metrics.finalize()
        if bus is not None:
            bus.emit(
                "run",
                "run.end",
                rep=rep,
                flows=n,
                gbps=round(result.total_gbps, 6),
                retransmit_segments=round(result.retransmit_segments, 3),
                loss_events=result.loss_events,
            )
        return result
