"""CPU cost model: cycles per byte/batch/packet for each side of a flow.

This module turns a configured :class:`~repro.host.Host` plus per-flow
options (zerocopy, GSO/GRO sizes, skip-rx-copy) into the quantities the
flow simulator needs every tick:

* ``sender_cycles_per_byte(rate, rtt, footprint)`` — app-core and
  IRQ-core cost of *sending* one goodput byte at the given operating
  point (rate and RTT matter because the MSG_ZEROCOPY fallback fraction
  and the cache footprint depend on them);
* ``receiver_cycles_per_byte(rate)`` — likewise for receiving;
* ``sender_cpu_rate_limit(...)`` / ``receiver_cpu_rate_limit(...)`` —
  the throughput at which the binding core saturates, solved by fixed
  point iteration (the cost depends on the rate, which depends on the
  cost).

Cost structure (see :mod:`repro.host.cpu` for the calibrated constants):

Sender app core, copying send::

    copy * cache_factor + stack + tx_batch / gso_size

Sender app core, MSG_ZEROCOPY send (fraction ``z`` true zerocopy,
``1-z`` fallback; see :mod:`repro.tcp.zerocopy`)::

    z   * (pin + stack + completion/block)
  + (1-z) * (copy * cache_factor + stack + zc_attempt_overhead)
  + tx_batch / gso_size

Receiver IRQ core::

    rx_pkt / mss [* hw_gro_residual] + rx_batch / gro_size + rx_stack

Receiver app core::

    copy * cache_factor + rx_read_batch / block     (or ~0 w/ MSG_TRUNC)

All terms are multiplied by the kernel-version efficiency scale, the
NUMA placement penalty, the VM factors, and (DMA-related terms) the
IOMMU factor.

The *cache factor* models the L3 working-set effect: a WAN-sized socket
buffer no longer fits in L3, so every copy goes to DRAM.  We use the
smooth ramp ``1 + penalty * f^2 / (f^2 + L3^2)`` where ``f`` is the
buffer footprint — ≈1.0 on the LAN (MB-scale windows) and ≈1+penalty on
long paths (hundred-MB windows).  AMD's per-CCX 32 MB slices plus its
higher miss cost make ``penalty`` larger than Intel's, which is the
mechanism behind the paper's Fig. 8 (AMD WAN sender CPU much higher
than Intel's in Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.host.machine import Host
from repro.host.numa import CorePlacement
from repro.tcp.segment import SegmentGeometry
from repro.host.kernel import KernelVersion
from repro.tcp.zerocopy import (
    DEFAULT_SEND_BLOCK,
    NOTIF_BYTES,
    NOTIF_BYTES_COALESCED,
    ZerocopyModel,
)

__all__ = [
    "CpuCostModel",
    "SendCosts",
    "RecvCosts",
    "SenderCostBatch",
    "ReceiverCostBatch",
]

#: Extra per-byte cost of a zerocopy send that *fell back* to copying
#: (failed pin attempt + notification setup/teardown), cycles/byte,
#: on top of the ordinary copy cost.  Calibrated so that zerocopy with
#: the default 20 KB optmem_max is visibly *worse* in CPU terms than
#: plain copying (paper Fig. 9, first group).
ZC_ATTEMPT_OVERHEAD = 0.25

#: Per-send completion-notification processing (MSG_ERRQUEUE reads),
#: cycles per sendmsg; amortized over the send block size.
ZC_COMPLETION_CYC = 15000.0

#: Fraction of TX batch cost landing on the IRQ cores (TX-completion
#: interrupts, qdisc dequeue softirq) rather than the app core.
TX_IRQ_SHARE = 0.35

#: Per-byte receive-stack residual on the IRQ core.
RX_STACK_CYC_PER_BYTE = 0.01

#: With hardware GRO + header/data split, payload lands in page-aligned
#: buffers, making the copy-to-user slightly cheaper as well.
HW_GRO_COPY_FACTOR = 0.9

#: Memory "touches" per goodput byte for aggregate-bandwidth ceilings:
#: copying path reads+writes the payload in the copy plus the DMA read.
MEM_TOUCHES_COPY = 3.0
MEM_TOUCHES_ZEROCOPY = 1.7

#: Receive-side aggregate headroom over the send side (no qdisc, DDIO).
RX_AGG_MARGIN = 1.06


@dataclass(frozen=True)
class SendCosts:
    """Per-byte cycle costs on the sending host at one operating point."""

    app_cyc_per_byte: float
    irq_cyc_per_byte: float
    zc_fraction: float


@dataclass(frozen=True)
class RecvCosts:
    """Per-byte cycle costs on the receiving host."""

    app_cyc_per_byte: float
    irq_cyc_per_byte: float


class CpuCostModel:
    """Cost model bound to one host and one flow configuration."""

    def __init__(
        self,
        host: Host,
        geometry: SegmentGeometry,
        placement: CorePlacement,
        zerocopy: bool = False,
        skip_rx_copy: bool = False,
        send_block: float = DEFAULT_SEND_BLOCK,
    ) -> None:
        self.host = host
        self.geometry = geometry
        self.placement = placement
        self.zerocopy = zerocopy
        self.skip_rx_copy = skip_rx_copy
        self.send_block = send_block
        coalesced = host.kernel.version >= KernelVersion(6, 6)
        self.zc_model = (
            ZerocopyModel(
                optmem_max=host.sysctls.optmem_max,
                send_block_bytes=send_block,
                notif_bytes=NOTIF_BYTES_COALESCED if coalesced else NOTIF_BYTES,
            )
            if zerocopy
            else None
        )

        cpu = host.cpu
        topo = host.numa
        kernel_scale = host.stack_cost_scale
        self._app_scale = kernel_scale * placement.app_penalty(topo) * host.vm.byte_cost_factor
        self._irq_scale = (
            kernel_scale
            * placement.irq_penalty(topo)
            * host.tuning.iommu_byte_cost_factor
        )
        self._batch_scale = kernel_scale * host.vm.batch_cost_factor
        self._core_budget = host.core_cycles_per_sec()
        self._cpu = cpu

    # ------------------------------------------------------------------
    # cache model
    # ------------------------------------------------------------------

    def cache_factor(self, footprint_bytes: float) -> float:
        """Per-byte copy-cost multiplier for a given working set."""
        l3 = self._cpu.l3_effective_bytes
        f2 = footprint_bytes * footprint_bytes
        return 1.0 + self._cpu.cache_penalty * f2 / (f2 + l3 * l3)

    # ------------------------------------------------------------------
    # sender
    # ------------------------------------------------------------------

    def sender_costs(self, rate: float, rtt: float, footprint_bytes: float) -> SendCosts:
        cpu = self._cpu
        cache = self.cache_factor(footprint_bytes)
        gso = max(1.0, self.geometry.gso_size)
        batch_pb = cpu.tx_batch_cyc / gso
        walk_pb = cpu.skb_walk_cyc / gso

        if self.zc_model is None:
            app_pb = cpu.copy_cyc_per_byte * cache + cpu.stack_cyc_per_byte
            zc_frac = 0.0
        else:
            zc_frac = self.zc_model.zc_fraction(rate, rtt)
            zc_pb = (
                cpu.pin_cyc_per_byte
                + cpu.stack_cyc_per_byte
                + ZC_COMPLETION_CYC / self.send_block
            )
            fb_pb = (
                cpu.copy_cyc_per_byte * cache
                + cpu.stack_cyc_per_byte
                + ZC_ATTEMPT_OVERHEAD
            )
            app_pb = zc_frac * zc_pb + (1.0 - zc_frac) * fb_pb

        app = (app_pb + walk_pb) * self._app_scale + (
            1.0 - TX_IRQ_SHARE
        ) * batch_pb * self._batch_scale
        irq = TX_IRQ_SHARE * batch_pb * self._batch_scale * self._irq_scale
        return SendCosts(app_cyc_per_byte=app, irq_cyc_per_byte=irq, zc_fraction=zc_frac)

    def sender_cpu_rate_limit(
        self, rtt: float, footprint_bytes: float, core_share: float = 1.0
    ) -> float:
        """Throughput at which the sending app core saturates, bytes/s.

        ``core_share`` is the fraction of an app core this flow owns
        (flows sharing a core split its budget).

        Solved in closed form: the cycles spent per second at rate ``r``
        are piecewise linear and monotone in ``r`` —

        * copying path: ``r * pb``;
        * zerocopy path with notification capacity ``C = optmem-covered
          bytes / rtt``: ``min(r, C) * zc_pb + max(0, r - C) * fb_pb``
          (bytes within the notification budget take the cheap path,
          the excess falls back to copying) —

        so the saturation rate is exact, with no fixed-point iteration
        (a naive ``r -> budget / pb(r)`` iteration oscillates because
        the zerocopy fraction makes ``pb`` decrease steeply in ``r``).
        """
        budget = self._core_budget * core_share
        cpu = self._cpu
        cache = self.cache_factor(footprint_bytes)
        gso = max(1.0, self.geometry.gso_size)
        batch_pb = (
            (1.0 - TX_IRQ_SHARE) * (cpu.tx_batch_cyc / gso) * self._batch_scale
            + (cpu.skb_walk_cyc / gso) * self._app_scale
        )

        if self.zc_model is None:
            pb = (
                cpu.copy_cyc_per_byte * cache + cpu.stack_cyc_per_byte
            ) * self._app_scale + batch_pb
            return budget / max(pb, 1e-9)

        zc_pb = (
            cpu.pin_cyc_per_byte
            + cpu.stack_cyc_per_byte
            + ZC_COMPLETION_CYC / self.send_block
        ) * self._app_scale + batch_pb
        fb_pb = (
            cpu.copy_cyc_per_byte * cache
            + cpu.stack_cyc_per_byte
            + ZC_ATTEMPT_OVERHEAD
        ) * self._app_scale + batch_pb

        if rtt <= 0:
            return budget / max(zc_pb, 1e-9)
        capacity = self.zc_model.max_inflight_bytes / rtt  # bytes/s on zc path
        r_all_zc = budget / max(zc_pb, 1e-9)
        if r_all_zc <= capacity:
            return r_all_zc
        # Spend capacity*zc_pb cycles on the zerocopy bytes, the rest of
        # the budget on fallback bytes.
        return capacity + (budget - capacity * zc_pb) / max(fb_pb, 1e-9)

    # ------------------------------------------------------------------
    # receiver
    # ------------------------------------------------------------------

    def receiver_costs(self, rate: float, rtt: float,
                       footprint_bytes: float = 0.0) -> RecvCosts:
        cpu = self._cpu
        geom = self.geometry
        gro = geom.effective_gro_batch(rate, rtt)
        pkt_cost = cpu.rx_pkt_cyc
        copy_factor = 1.0
        if self.host.hw_gro_active():
            pkt_cost *= self.host.nic.hw_gro_residual
            copy_factor = HW_GRO_COPY_FACTOR

        irq_pb = (
            pkt_cost / geom.mss
            + cpu.rx_batch_cyc / gro
            + RX_STACK_CYC_PER_BYTE
        ) * self._irq_scale

        if self.skip_rx_copy:
            # MSG_TRUNC: data is discarded in the kernel; the app core
            # only pays the syscall cost per block.
            app_pb = (cpu.tx_batch_cyc / self.send_block) * self._batch_scale
        else:
            cache = self.cache_factor(footprint_bytes)
            app_pb = (
                (
                    cpu.copy_cyc_per_byte * cache * copy_factor
                    + cpu.stack_cyc_per_byte
                    + 0.5 * cpu.skb_walk_cyc / gro
                )
                * self._app_scale
                + (cpu.tx_batch_cyc / self.send_block) * self._batch_scale
            )
        return RecvCosts(app_cyc_per_byte=app_pb, irq_cyc_per_byte=irq_pb)

    def receiver_cpu_rate_limit(
        self, rtt: float, footprint_bytes: float = 0.0,
        core_share: float = 1.0, irq_share: float = 1.0,
    ) -> float:
        """Throughput at which the receiver saturates (app or IRQ core)."""
        budget_app = self._core_budget * core_share
        budget_irq = self._core_budget * irq_share
        rate = budget_app / 0.6
        for _ in range(8):
            costs = self.receiver_costs(rate, rtt, footprint_bytes)
            app_limit = budget_app / max(costs.app_cyc_per_byte, 1e-9)
            irq_limit = budget_irq / max(costs.irq_cyc_per_byte, 1e-9)
            new_rate = min(app_limit, irq_limit)
            if abs(new_rate - rate) < 1e-3 * rate:
                rate = new_rate
                break
            rate = 0.5 * (rate + new_rate)
        return rate

    # ------------------------------------------------------------------
    # aggregate host ceiling
    # ------------------------------------------------------------------

    def aggregate_tx_ceiling(self) -> float:
        """Whole-host sender throughput ceiling, bytes/s.

        Multi-stream aggregate throughput saturates well below
        ``cores x per-core limit`` because all flows share the memory
        subsystem, the qdisc, and the NIC DMA engines.  We model the
        ceiling as an effective memory bandwidth divided by the number
        of memory touches per byte (3 for the copying path, 1.7 for
        zerocopy), scaled by kernel efficiency and the IOMMU factor.
        """
        touches = MEM_TOUCHES_ZEROCOPY if self.zerocopy else MEM_TOUCHES_COPY
        base = self._cpu.stack_mem_bw_bytes_per_sec / touches
        return base / (self.host.stack_cost_scale * self.host.tuning.iommu_byte_cost_factor)

    def aggregate_rx_ceiling(self) -> float:
        """Whole-host receiver throughput ceiling, bytes/s.

        Slightly above the sender-side ceiling (RX_AGG_MARGIN): the
        receive path has no qdisc and its DMA writes allocate directly
        into LLC (DDIO), so a host can absorb a little more than it can
        emit — which is why the paper's LAN unpaced runs show only a
        handful of retransmits.
        """
        touches = 1.5 if self.skip_rx_copy else MEM_TOUCHES_COPY
        base = RX_AGG_MARGIN * self._cpu.stack_mem_bw_bytes_per_sec / touches
        return base / (self.host.stack_cost_scale * self.host.tuning.iommu_byte_cost_factor)

    # ------------------------------------------------------------------

    @property
    def core_budget_cyc_per_sec(self) -> float:
        return self._core_budget

    def mem_touches(self) -> float:
        return MEM_TOUCHES_ZEROCOPY if self.zerocopy else MEM_TOUCHES_COPY


# ----------------------------------------------------------------------
# batched variants for the vectorized tick kernel
# ----------------------------------------------------------------------
#
# One simulation's flows all share a host, segment geometry, and core
# placement; the only per-flow variation on the sender is the zerocopy
# flag and on the receiver the skip-rx-copy flag.  The batches below
# evaluate the scalar formulas above as elementwise float64 array
# expressions with the same operation order, so each lane is bitwise
# identical to the corresponding scalar call — the property the kernel
# parity tests (tests/test_kernel_parity.py) pin down.


def _uniform(values) -> float:
    vals = set(values)
    if len(vals) != 1:
        raise ValueError(f"batch requires a uniform value, got {sorted(vals)}")
    return vals.pop()


class SenderCostBatch:
    """Array evaluation of sender costs/limits across one host's flows."""

    def __init__(self, models: list[CpuCostModel]) -> None:
        m0 = models[0]
        self._cpu = m0._cpu
        self._app_scale = _uniform(m._app_scale for m in models)
        self._irq_scale = _uniform(m._irq_scale for m in models)
        self._batch_scale = _uniform(m._batch_scale for m in models)
        self._core_budget = _uniform(m._core_budget for m in models)
        self._gso = max(1.0, _uniform(m.geometry.gso_size for m in models))
        self._send_block = _uniform(m.send_block for m in models)
        self.zc_mask = np.array([m.zc_model is not None for m in models])
        self._any_zc = bool(self.zc_mask.any())
        self._max_inflight = 0.0
        if self._any_zc:
            self._max_inflight = _uniform(
                m.zc_model.max_inflight_bytes for m in models if m.zc_model
            )
        # Scalar coefficients hoisted out of the per-tick calls — pure
        # functions of model constants, so the values (and therefore
        # every downstream bit) are unchanged.
        cpu = self._cpu
        self._l3_sq = cpu.l3_effective_bytes * cpu.l3_effective_bytes
        self._batch_pb = cpu.tx_batch_cyc / self._gso
        self._walk_pb = cpu.skb_walk_cyc / self._gso
        self._zc_pb = (
            cpu.pin_cyc_per_byte
            + cpu.stack_cyc_per_byte
            + ZC_COMPLETION_CYC / self._send_block
        )
        self._limit_batch_pb = (
            (1.0 - TX_IRQ_SHARE) * (cpu.tx_batch_cyc / self._gso) * self._batch_scale
            + (cpu.skb_walk_cyc / self._gso) * self._app_scale
        )
        self._limit_zc_pb = self._zc_pb * self._app_scale + self._limit_batch_pb
        self._irq_const = (
            TX_IRQ_SHARE * self._batch_pb * self._batch_scale * self._irq_scale
        )
        self._tx_tail = (1.0 - TX_IRQ_SHARE) * self._batch_pb * self._batch_scale
        # Scratch buffers sized once; every returned array is either a
        # fresh allocation or one of these, valid until the next call
        # on this batch (the tick kernel consumes results within the
        # tick, so reuse never aliases live data).
        n = len(models)
        self._all_zc = self._any_zc and bool(self.zc_mask.all())
        self._irq_arr = np.full(n, self._irq_const)
        self._no_zc_frac = np.zeros(n)
        self._prep_buf = np.empty(n)
        self._prep_tmp = np.empty(n)
        self._lim_buf = np.empty(n)
        self._zc_buf = np.empty(n)
        self._zcf_buf = np.empty(n)
        self._zcf_pos = np.empty(n, dtype=bool)
        self._costs_fb = np.empty(n)
        self._costs_t1 = np.empty(n)
        self._costs_t2 = np.empty(n)

    def _zc_fraction(self, rates: np.ndarray, rtt: float) -> np.ndarray:
        inflight = np.multiply(rates, rtt, out=self._zcf_buf)
        # min(inflight) > 0 iff every element is (no NaNs here).  All
        # in-flight means the two np.where masks select their first
        # operand everywhere — min(1, max_inflight/inflight) — so the
        # masked evaluation collapses to the expression itself.
        if inflight.size and float(np.minimum.reduce(inflight)) > 0.0:
            np.divide(self._max_inflight, inflight, out=inflight)
            np.minimum(inflight, 1.0, out=inflight)
            return inflight
        pos = np.greater(inflight, 0, out=self._zcf_pos)
        safe = np.where(pos, inflight, 1.0)
        return np.where(pos, np.minimum(1.0, self._max_inflight / safe), 1.0)

    def prepare(self, footprints: np.ndarray) -> np.ndarray:
        """Footprint-dependent copy+stack cyc/B, shared sub-expression
        of :meth:`costs` and :meth:`rate_limits` (both evaluate the
        identical formula, so computing it once per tick is bitwise
        neutral).  Commutative reorderings (``x * c`` for ``c * x``)
        round identically in IEEE-754, and in-place ``out=`` targets
        only change where results land, never their bits."""
        cpu = self._cpu
        b, t = self._prep_buf, self._prep_tmp
        np.multiply(footprints, footprints, out=b)  # f2
        np.add(b, self._l3_sq, out=t)  # f2 + l3^2
        np.multiply(b, cpu.cache_penalty, out=b)
        np.divide(b, t, out=b)
        np.add(b, 1.0, out=b)  # cache factor
        np.multiply(b, cpu.copy_cyc_per_byte, out=b)
        np.add(b, cpu.stack_cyc_per_byte, out=b)
        return b

    def costs(
        self,
        rates: np.ndarray,
        rtt: float,
        footprints: np.ndarray,
        copy_stack: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-flow (app cyc/B, irq cyc/B, zc fraction) arrays."""
        copy_pb = self.prepare(footprints) if copy_stack is None else copy_stack
        if self._any_zc:
            frac = self._zc_fraction(rates, rtt)
            fb_pb = np.add(copy_pb, ZC_ATTEMPT_OVERHEAD, out=self._costs_fb)
            t = np.multiply(frac, self._zc_pb, out=self._costs_t1)
            u = np.subtract(1.0, frac, out=self._costs_t2)
            np.multiply(u, fb_pb, out=u)
            zc_pb = np.add(t, u, out=t)
            if self._all_zc:
                # np.where with an all-true mask returns its first
                # operand's values verbatim.
                app_pb = zc_pb
                zc_frac = frac
            else:
                app_pb = np.where(self.zc_mask, zc_pb, copy_pb)
                zc_frac = np.where(self.zc_mask, frac, 0.0)
        else:
            app_pb = copy_pb
            zc_frac = self._no_zc_frac

        # In-place is safe: ``app_pb`` is one of this batch's scratch
        # buffers (or the per-tick prepare() result, fully rewritten
        # before its next read) — see the class docstring contract.
        app = np.add(app_pb, self._walk_pb, out=app_pb)
        np.multiply(app, self._app_scale, out=app)
        np.add(app, self._tx_tail, out=app)
        return app, self._irq_arr, zc_frac

    def rate_limits(
        self,
        rtt: float,
        footprints: np.ndarray | None = None,
        core_share: float = 1.0,
        copy_stack: np.ndarray | None = None,
    ) -> np.ndarray:
        """Per-flow sender CPU saturation rates (bytes/s)."""
        budget = self._core_budget * core_share
        # Shared sub-expression of the copy and fallback paths (the
        # scalar method evaluates it twice; once is bit-identical).
        copy_stack = (
            self.prepare(footprints) if copy_stack is None else copy_stack
        )
        batch_pb = self._limit_batch_pb
        if not self._all_zc:
            copy_limit = np.multiply(copy_stack, self._app_scale, out=self._lim_buf)
            np.add(copy_limit, batch_pb, out=copy_limit)
            np.maximum(copy_limit, 1e-9, out=copy_limit)
            np.divide(budget, copy_limit, out=copy_limit)
            if not self._any_zc:
                return copy_limit

        zc_pb = self._limit_zc_pb
        zc_limit = self._zc_buf
        if rtt <= 0:
            zc_limit.fill(budget / max(zc_pb, 1e-9))
        else:
            capacity = self._max_inflight / rtt
            r_all_zc = budget / max(zc_pb, 1e-9)
            if r_all_zc <= capacity:
                zc_limit.fill(r_all_zc)
            else:
                np.add(copy_stack, ZC_ATTEMPT_OVERHEAD, out=zc_limit)
                np.multiply(zc_limit, self._app_scale, out=zc_limit)
                np.add(zc_limit, batch_pb, out=zc_limit)  # fb_pb
                np.maximum(zc_limit, 1e-9, out=zc_limit)
                np.divide(budget - capacity * zc_pb, zc_limit, out=zc_limit)
                np.add(zc_limit, capacity, out=zc_limit)
        if self._all_zc:
            return zc_limit
        return np.where(self.zc_mask, zc_limit, copy_limit)


class ReceiverCostBatch:
    """Array evaluation of receiver costs across one host's flows."""

    def __init__(self, models: list[CpuCostModel]) -> None:
        m0 = models[0]
        cpu = m0._cpu
        self._cpu = cpu
        self._app_scale = _uniform(m._app_scale for m in models)
        self._irq_scale = _uniform(m._irq_scale for m in models)
        self._batch_scale = _uniform(m._batch_scale for m in models)
        self._send_block = _uniform(m.send_block for m in models)
        self._mss = _uniform(m.geometry.mss for m in models)
        self._gro_size = _uniform(m.geometry.gro_size for m in models)
        self.skip_mask = np.array([m.skip_rx_copy for m in models])
        pkt_cost = cpu.rx_pkt_cyc
        copy_factor = 1.0
        if m0.host.hw_gro_active():
            pkt_cost *= m0.host.nic.hw_gro_residual
            copy_factor = HW_GRO_COPY_FACTOR
        self._pkt_cost = pkt_cost
        self._copy_factor = copy_factor
        # Scalar coefficients hoisted out of the per-tick call — pure
        # functions of model constants, identical values.
        self._mss_f = float(self._mss)
        self._pkt_pb = pkt_cost / self._mss
        self._half_walk = 0.5 * cpu.skb_walk_cyc
        # cache_factor(0.0) is exactly 1.0 (0 / (0 + l3^2) == 0).
        self._copy_stack = (
            cpu.copy_cyc_per_byte * 1.0 * copy_factor + cpu.stack_cyc_per_byte
        )
        self._skip_pb = (cpu.tx_batch_cyc / self._send_block) * self._batch_scale
        n = len(models)
        self._no_skip = not bool(self.skip_mask.any())
        self._all_skip = bool(self.skip_mask.all())
        # Scratch buffers; results are valid until the next call.
        self._gro_buf = np.empty(n)
        self._irq_buf = np.empty(n)
        self._app_buf = np.empty(n)

    def costs(
        self, rates: np.ndarray, rtt: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-flow (app cyc/B, irq cyc/B) arrays at footprint 0.

        Elementwise IEEE-754 adds and multiplies are commutative, so
        the ``x + c`` / ``c * x`` reorderings below reproduce the
        scalar formulas bit-for-bit; ``out=`` reuse does not change
        any rounding.
        """
        cpu = self._cpu
        # SegmentGeometry.effective_gro_batch, elementwise.
        gro = np.multiply(rates, 100e-6, out=self._gro_buf)
        np.maximum(gro, self._mss_f, out=gro)
        np.minimum(gro, self._gro_size, out=gro)

        irq_pb = np.divide(cpu.rx_batch_cyc, gro, out=self._irq_buf)
        np.add(irq_pb, self._pkt_pb, out=irq_pb)
        np.add(irq_pb, RX_STACK_CYC_PER_BYTE, out=irq_pb)
        np.multiply(irq_pb, self._irq_scale, out=irq_pb)

        if self._all_skip:
            app_pb = self._app_buf
            app_pb.fill(self._skip_pb)
            return app_pb, irq_pb
        copy_pb = np.divide(self._half_walk, gro, out=self._app_buf)
        np.add(copy_pb, self._copy_stack, out=copy_pb)
        np.multiply(copy_pb, self._app_scale, out=copy_pb)
        np.add(copy_pb, self._skip_pb, out=copy_pb)
        if self._no_skip:
            return copy_pb, irq_pb
        return np.where(self.skip_mask, self._skip_pb, copy_pb), irq_pb
