"""Max-min fair bandwidth allocation with per-flow caps.

Each tick, every flow has an individual rate cap (the min of its window
rate, pacing rate, and sender/receiver per-core CPU limits) and all
flows share the bottleneck capacity (the min of the path rate net of
background traffic and the two hosts' aggregate ceilings).  TCP flows
sharing a clean bottleneck converge to max-min fairness, which
water-filling computes directly:

1. start with the fair share ``capacity / n``;
2. flows whose cap is below the share keep their cap; their unused
   share is redistributed over the rest;
3. repeat until no flow is capped below the share.

``weights`` skew the shares (used to model the unfairness of unpaced
flows — the paper observed 5-30 Gbps per-flow spreads in the same
unpaced run, Table III showing 9-16 Gbps; pacing equalizes them).
"""

from __future__ import annotations

import numpy as np

__all__ = ["maxmin_allocate"]


def maxmin_allocate(
    caps: np.ndarray,
    capacity: float,
    weights: np.ndarray | None = None,
    *,
    validate: bool = True,
) -> np.ndarray:
    """Allocate ``capacity`` across flows with individual ``caps``.

    Returns the per-flow allocation; ``sum(result) <= capacity`` and
    ``result <= caps`` elementwise.  Runs in O(n^2) worst case, which is
    irrelevant at n <= dozens of flows.  ``validate=False`` skips the
    weight sanity checks (no numeric effect) for hot-loop callers whose
    weights are positive by construction.
    """
    caps = np.asarray(caps, dtype=float)
    n = caps.size
    if n == 0:
        return caps.copy()
    if capacity <= 0:
        return np.zeros(n)
    if weights is None:
        w = np.ones(n)
    elif validate:
        w = np.asarray(weights, dtype=float)
        if w.shape != caps.shape:
            raise ValueError("weights shape mismatch")
        if np.any(w <= 0):
            raise ValueError("weights must be positive")
    else:
        w = weights

    # Uncongested fast path: when the caps fit inside the capacity,
    # water-filling terminates with every flow at its cap, so the loop
    # is pure overhead — return the caps directly.  This is the common
    # case for CPU/pacing-limited ticks.  (clip(x, 0, None) is
    # maximum(x, 0.0): identical result for every float, NaN included.)
    if float(np.add.reduce(caps)) <= capacity:
        return np.maximum(caps, 0.0)

    alloc = np.zeros(n)
    active = np.ones(n, dtype=bool)
    remaining = float(capacity)
    for _ in range(n):
        if not active.any() or remaining <= 1e-12:
            break
        wsum = w[active].sum()
        share = remaining / wsum  # capacity per unit weight
        fair = w * share
        limited = active & (caps <= fair)
        if not limited.any():
            alloc[active] = fair[active]
            remaining = 0.0
            break
        alloc[limited] = caps[limited]
        remaining -= caps[limited].sum()
        active &= ~limited
    # Numerical safety.
    np.minimum(alloc, caps, out=alloc)
    np.maximum(alloc, 0.0, out=alloc)
    return alloc
