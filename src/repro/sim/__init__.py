"""Fluid flow simulation: CPU cost model, loss model, allocation, driver."""

from repro.sim.bottleneck import maxmin_allocate
from repro.sim.cpumodel import CpuCostModel, RecvCosts, SendCosts
from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
from repro.sim.lossmodel import BurstModel, distribute_drops
from repro.sim.metrics import CpuUtil, MetricsAccumulator, RunResult
from repro.sim.sanitizer import SanitizerViolation, SimSanitizer, sanitized
from repro.sim.sanitizer import enabled as sanitizer_enabled
from repro.sim.shard import (
    FlowPopulation,
    ShardCrashError,
    ShardedFlowSimulator,
    ShardPlan,
    force_shards,
    forced_shards,
    shard_count,
)

__all__ = [
    "SimSanitizer",
    "SanitizerViolation",
    "sanitized",
    "sanitizer_enabled",
    "FlowSimulator",
    "FlowSpec",
    "SimProfile",
    "CpuCostModel",
    "SendCosts",
    "RecvCosts",
    "BurstModel",
    "distribute_drops",
    "maxmin_allocate",
    "MetricsAccumulator",
    "RunResult",
    "CpuUtil",
    "FlowPopulation",
    "ShardPlan",
    "ShardCrashError",
    "ShardedFlowSimulator",
    "shard_count",
    "force_shards",
    "forced_shards",
]
