"""Tick kernels: the scalar reference path and the vectorized fast path.

:meth:`repro.sim.flowsim.FlowSimulator.run` is a *driver* around four
per-tick hooks — pacing caps, CPU rate limits, congestion feedback, CPU
cost accounting.  This module provides two interchangeable
implementations of those hooks:

* :class:`ScalarKernel` — the reference: per-flow Python loops over the
  scalar :class:`~repro.tcp.cc.base.CongestionControl` objects and
  :class:`~repro.sim.cpumodel.CpuCostModel` methods, exactly as the
  original simulator ran them;
* :class:`VectorKernel` — numpy array kernels
  (:class:`~repro.tcp.cc.batch.CcBatch`,
  :class:`~repro.sim.cpumodel.SenderCostBatch`,
  :class:`~repro.sim.cpumodel.ReceiverCostBatch`) doing O(1)
  Python-level work per tick regardless of the flow count.

Parity guarantee
----------------
The two kernels are *byte-identical*: same `ExperimentResult.digest()`,
same trace ``events_digest``, on every golden config and on randomized
hypothesis configs (tests/test_kernel_parity.py).  This is provable, not
aspirational, because

* elementwise float64 ``+ - * / min max`` round identically whether
  evaluated by CPython or by a numpy ufunc, and every vector formula
  transcribes its scalar counterpart with the same association;
* everything stochastic (background samples, burst draws, drop
  placement) and every cross-flow reduction lives in the shared driver,
  so RNG consumption order and summation order cannot differ;
* rare per-event work (loss reactions needing a real cube root, BBR's
  windowed-max state) runs the scalar code in both kernels.

Selection mirrors the :mod:`repro.sim.sanitizer` opt-in pattern: the
``REPRO_SIM_KERNEL`` environment variable (``scalar`` | ``vector``),
with :func:`force_kernel` / :func:`forced_kernel` as programmatic
overrides for tests.  The default is ``vector``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.sim.cpumodel import (
    CpuCostModel,
    ReceiverCostBatch,
    SenderCostBatch,
)
from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.batch import CcBatch

__all__ = [
    "ENV_VAR",
    "KERNEL_NAMES",
    "DEFAULT_KERNEL",
    "TickKernel",
    "ScalarKernel",
    "VectorKernel",
    "kernel_name",
    "force_kernel",
    "forced_kernel",
    "make_kernel",
]

ENV_VAR = "REPRO_SIM_KERNEL"
KERNEL_NAMES = ("scalar", "vector")
DEFAULT_KERNEL = "vector"

#: Programmatic override: None defers to the environment variable.
_forced: str | None = None


def kernel_name() -> str:
    """The kernel the next simulation run will use."""
    if _forced is not None:
        return _forced
    raw = os.environ.get(ENV_VAR, "").strip().lower()
    if not raw:
        return DEFAULT_KERNEL
    if raw not in KERNEL_NAMES:
        raise ConfigurationError(
            f"{ENV_VAR}={raw!r} is not a tick kernel; "
            f"choose one of {list(KERNEL_NAMES)}"
        )
    return raw


def force_kernel(name: str | None) -> None:
    """Override the environment selection (None restores it)."""
    global _forced
    if name is not None and name not in KERNEL_NAMES:
        raise ConfigurationError(
            f"{name!r} is not a tick kernel; choose one of {list(KERNEL_NAMES)}"
        )
    _forced = name


@contextmanager
def forced_kernel(name: str) -> Iterator[None]:
    """Scope a kernel selection (used by the parity tests)."""
    prev = _forced
    force_kernel(name)
    try:
        yield
    finally:
        force_kernel(prev)


class TickKernel:
    """Per-run state and per-tick hooks shared by both kernels.

    The kernel owns the warm-started per-flow arrays that persist
    across ticks: the congestion windows (``cwnd``) and the damped
    receiver CPU limit fixed point (``rcv_limit``).
    """

    name = "base"

    def __init__(
        self,
        ccs: list[CongestionControl],
        send_models: list[CpuCostModel],
        recv_models: list[CpuCostModel],
        *,
        run_noise: float,
        snd_app_share: float,
        rcv_app_share: float,
        rcv_irq_share: float,
        budget_rx: float,
        agg_rx_base: float,
    ) -> None:
        self.n = len(ccs)
        self.ccs = ccs
        self.send_models = send_models
        self.recv_models = recv_models
        self.run_noise = run_noise
        self.snd_app_share = snd_app_share
        self.rcv_app_share = rcv_app_share
        self.rcv_irq_share = rcv_irq_share
        self.budget_rx = budget_rx
        self.cwnd = np.array([cc.cwnd_bytes for cc in ccs])
        self.needs_validation = np.array(
            [cc.needs_cwnd_validation for cc in ccs]
        )
        self.snd_limit = np.zeros(self.n)
        self.rcv_limit = np.full(self.n, agg_rx_base)

    def pacing(self, rtt: float, pace_eff: np.ndarray) -> np.ndarray:
        """Per-flow pacing caps: fq rate min'd with CC-internal pacing."""
        raise NotImplementedError

    def cpu_limits(
        self, rtt: float, footprint: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-flow sender/receiver CPU rate ceilings for this tick."""
        raise NotImplementedError

    def cc_feedback(
        self,
        now: float,
        dt: float,
        rtt: float,
        delivered: np.ndarray,
        loss_idx: np.ndarray,
        al_mask: np.ndarray,
        max_window: float,
    ) -> list[tuple[int, float, float]]:
        """Apply losses, window advance, and socket clamp; update
        ``self.cwnd``.  Returns (flow, before, after) per reacted loss."""
        raise NotImplementedError

    def cc_timeout(self, now: float, idx) -> list[tuple[int, float, float]]:
        """RTO collapse for the given flows; update ``self.cwnd``.
        Returns (flow, before, after) per flow.  The fluid driver never
        invokes this (its flows cannot starve into an RTO) — it exists
        so the timeout path stays under scalar<->vector parity tests."""
        raise NotImplementedError

    def cpu_costs(
        self,
        alloc: np.ndarray,
        drate: np.ndarray,
        rtt: float,
        footprint: np.ndarray,
    ) -> tuple[np.ndarray, ...]:
        """Per-flow (tx app, tx irq, zc fraction, rx app, rx irq) at
        this tick's operating point — cyc/byte arrays plus fractions."""
        raise NotImplementedError


class ScalarKernel(TickKernel):
    """Reference kernel: the original per-flow Python loops."""

    name = "scalar"

    def pacing(self, rtt: float, pace_eff: np.ndarray) -> np.ndarray:
        pace = pace_eff.copy()
        for i, cc in enumerate(self.ccs):
            cc_rate = cc.pacing_rate(rtt)
            if cc_rate is not None:
                pace[i] = min(pace[i], cc_rate)
        return pace

    def cpu_limits(self, rtt, footprint):
        snd_limit, rcv_limit = self.snd_limit, self.rcv_limit
        for i in range(self.n):
            snd_limit[i] = self.send_models[i].sender_cpu_rate_limit(
                rtt, footprint[i], core_share=self.snd_app_share
            ) * self.run_noise
            # Receiver limit: pb falls as the GRO batch fills, then
            # is rate-independent; one damped step per tick converges.
            rm = self.recv_models[i]
            rcosts = rm.receiver_costs(max(rcv_limit[i], units.M), rtt)
            app_lim = (
                self.budget_rx * self.rcv_app_share
                / max(rcosts.app_cyc_per_byte, 1e-9)
            )
            irq_lim = (
                self.budget_rx * self.rcv_irq_share
                / max(rcosts.irq_cyc_per_byte, 1e-9)
            )
            rcv_limit[i] = 0.5 * rcv_limit[i] + 0.5 * min(app_lim, irq_lim)
        return snd_limit, rcv_limit

    def cc_feedback(self, now, dt, rtt, delivered, loss_idx, al_mask, max_window):
        reacted = []
        for i in loss_idx:
            cc = self.ccs[i]
            before = float(cc.cwnd_bytes)
            if cc.on_loss(now, rtt):
                reacted.append((int(i), before, float(cc.cwnd_bytes)))
        for i, cc in enumerate(self.ccs):
            if al_mask[i]:
                cc.on_app_limited(now, dt)
            else:
                cc.on_tick(now, dt, delivered[i], rtt)
            cc.clamp(max_window)
            self.cwnd[i] = cc.cwnd_bytes
        return reacted

    def cc_timeout(self, now, idx):
        reacted = []
        for i in idx:
            cc = self.ccs[i]
            before = float(cc.cwnd_bytes)
            cc.on_timeout(now)
            reacted.append((int(i), before, float(cc.cwnd_bytes)))
            self.cwnd[i] = cc.cwnd_bytes
        return reacted

    def cpu_costs(self, alloc, drate, rtt, footprint):
        n = self.n
        tx_app = np.zeros(n)
        tx_irq = np.zeros(n)
        zc_frac = np.zeros(n)
        rx_app = np.zeros(n)
        rx_irq = np.zeros(n)
        for i in range(n):
            costs = self.send_models[i].sender_costs(alloc[i], rtt, footprint[i])
            tx_app[i] = costs.app_cyc_per_byte
            tx_irq[i] = costs.irq_cyc_per_byte
            zc_frac[i] = costs.zc_fraction
            rcosts = self.recv_models[i].receiver_costs(drate[i], rtt)
            rx_app[i] = rcosts.app_cyc_per_byte
            rx_irq[i] = rcosts.irq_cyc_per_byte
        return tx_app, tx_irq, zc_frac, rx_app, rx_irq


class VectorKernel(TickKernel):
    """Fast kernel: batched array state, O(1) Python work per tick.

    Three bit-neutral shortcuts keep the per-tick ufunc count low:

    * ``cpu_limits`` and ``cpu_costs`` share the footprint-dependent
      copy+stack sub-expression within a tick (both hooks evaluate the
      identical formula on the identical array — the driver calls
      ``cpu_limits`` first each tick).
    * The damped receiver-limit step contracts to an exact float fixed
      point; once an update returns its input bit-for-bit, the old
      array object is kept and an identity check skips the replay —
      which would reproduce the same bits — until ``rtt`` changes.
    * Returned arrays are scratch buffers reused across ticks; the
      driver consumes every hook result within the tick and never
      mutates one, which is what makes the reuse safe.
    """

    name = "vector"

    def __init__(self, ccs, send_models, recv_models, **kwargs) -> None:
        super().__init__(ccs, send_models, recv_models, **kwargs)
        self._bind(CcBatch(ccs))

    @classmethod
    def from_batch(
        cls,
        batch: CcBatch,
        send_models: list[CpuCostModel],
        recv_models: list[CpuCostModel],
        *,
        run_noise: float,
        snd_app_share: float,
        rcv_app_share: float,
        rcv_irq_share: float,
        budget_rx: float,
        agg_rx_base: float,
    ) -> "VectorKernel":
        """Build from a prebuilt :class:`CcBatch`, no per-flow CC objects.

        The sharded massive-flow path constructs its congestion state
        via :meth:`CcBatch.from_kinds` (one template per algorithm);
        this constructor accepts that batch directly, skipping the
        O(flows) object scans in :meth:`TickKernel.__init__`.
        """
        self = cls.__new__(cls)
        self.n = int(batch.cwnd.size)
        self.ccs = []
        self.send_models = send_models
        self.recv_models = recv_models
        self.run_noise = run_noise
        self.snd_app_share = snd_app_share
        self.rcv_app_share = rcv_app_share
        self.rcv_irq_share = rcv_irq_share
        self.budget_rx = budget_rx
        self.needs_validation = batch.needs_validation
        self.snd_limit = np.zeros(self.n)
        self.rcv_limit = np.full(self.n, agg_rx_base)
        self._bind(batch)
        return self

    def _bind(self, batch: CcBatch) -> None:
        """Attach the CC batch and (re)build the per-run scratch state."""
        self.batch = batch
        # The batch owns the authoritative window array.
        self.cwnd = self.batch.cwnd
        self.sender = SenderCostBatch(self.send_models)
        self.receiver = ReceiverCostBatch(self.recv_models)
        # Precomputed scalar coefficients (same association as the
        # scalar kernel's left-to-right evaluation).
        self._budget_app = self.budget_rx * self.rcv_app_share
        self._budget_irq = self.budget_rx * self.rcv_irq_share
        self._rcv_scratch = np.empty(self.n)
        # Within-tick share of the sender prep array, keyed by the
        # footprint array's identity.
        self._tick_foot: np.ndarray | None = None
        self._tick_prep: np.ndarray | None = None
        # Receiver-limit fixed point: (rtt, input array object).
        self._rl_rtt: float | None = None
        self._rl_obj: np.ndarray | None = None

    def pacing(self, rtt: float, pace_eff: np.ndarray) -> np.ndarray:
        if not self.batch.self_paced:
            # No flow imposes its own pacing rate (loss-based CCs return
            # None), so the caps pass through unchanged; the driver
            # never mutates the returned array.
            return pace_eff
        pace = pace_eff.copy()
        self.batch.pacing(rtt, pace)
        return pace

    def cpu_limits(self, rtt, footprint):
        prep = self.sender.prepare(footprint)
        self._tick_foot = footprint
        self._tick_prep = prep
        snd = self.sender.rate_limits(
            rtt, core_share=self.snd_app_share, copy_stack=prep
        )
        np.multiply(snd, self.run_noise, out=snd)
        self.snd_limit = snd

        rcv_in = self.rcv_limit
        if not (rtt == self._rl_rtt and rcv_in is self._rl_obj):
            np.maximum(rcv_in, units.M, out=self._rcv_scratch)
            rc_app, rc_irq = self.receiver.costs(self._rcv_scratch, rtt)
            np.maximum(rc_app, 1e-9, out=rc_app)
            np.divide(self._budget_app, rc_app, out=rc_app)
            np.maximum(rc_irq, 1e-9, out=rc_irq)
            np.divide(self._budget_irq, rc_irq, out=rc_irq)
            np.minimum(rc_app, rc_irq, out=rc_app)
            new = np.multiply(rcv_in, 0.5)
            np.multiply(rc_app, 0.5, out=rc_app)
            np.add(new, rc_app, out=new)
            self._rl_rtt = rtt
            if bool((new == rcv_in).all()):
                # Fixed point reached: keep the old object so the
                # identity check above short-circuits future ticks.
                # (Values here are strictly positive, so value equality
                # is bit equality — no ±0.0 ambiguity.)
                self._rl_obj = rcv_in
            else:
                self.rcv_limit = new
                self._rl_obj = None
        return self.snd_limit, self.rcv_limit

    def cc_feedback(self, now, dt, rtt, delivered, loss_idx, al_mask, max_window):
        return self.batch.feedback(
            now, dt, rtt, delivered, loss_idx, al_mask, max_window
        )

    def cc_timeout(self, now, idx):
        return self.batch.timeout(now, idx)

    def cpu_costs(self, alloc, drate, rtt, footprint):
        prep = self._tick_prep if footprint is self._tick_foot else None
        tx_app, tx_irq, zc_frac = self.sender.costs(
            alloc, rtt, footprint, copy_stack=prep
        )
        rx_app, rx_irq = self.receiver.costs(drate, rtt)
        return tx_app, tx_irq, zc_frac, rx_app, rx_irq


_KERNELS = {"scalar": ScalarKernel, "vector": VectorKernel}


def make_kernel(name: str | None = None, /, **kwargs) -> TickKernel:
    """Build the selected kernel (None = ambient selection)."""
    resolved = kernel_name() if name is None else name
    if resolved not in _KERNELS:
        raise ConfigurationError(
            f"{resolved!r} is not a tick kernel; choose one of {list(KERNEL_NAMES)}"
        )
    return _KERNELS[resolved](**kwargs)
