"""Per-run metric accumulation and the RunResult record.

The simulator accumulates everything post-``omit`` (like ``iperf3 -O``:
the slow-start ramp is excluded from averages).  A :class:`RunResult`
corresponds to one iperf3 invocation; the harness aggregates many runs
into the mean/stdev/min/max the paper's tables report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import units

__all__ = ["MetricsAccumulator", "RunResult", "CpuUtil"]


@dataclass(frozen=True)
class CpuUtil:
    """CPU utilization as mpstat-style percentages of one core.

    ``total`` = app + irq and can exceed 100% — matching the paper's
    "TX/RX Cores" curves, which aggregate the iperf3 core and the NIC
    interrupt cores.
    """

    app_pct: float
    irq_pct: float

    @property
    def total_pct(self) -> float:
        return self.app_pct + self.irq_pct


@dataclass(frozen=True)
class RunResult:
    """Outcome of a single simulated test (one iperf3 run)."""

    duration: float
    omit: float
    per_flow_goodput: np.ndarray  # bytes/s, post-omit mean
    retransmit_segments: float
    loss_events: int
    sender_cpu: CpuUtil
    receiver_cpu: CpuUtil
    zc_fraction_mean: float
    #: 1-second interval aggregate throughput samples (bytes/s), like
    #: iperf3's interval lines; used for within-run variability views.
    interval_goodput: np.ndarray = field(default_factory=lambda: np.zeros(0))

    @property
    def total_goodput(self) -> float:
        return float(self.per_flow_goodput.sum())

    @property
    def total_gbps(self) -> float:
        return units.to_gbps(self.total_goodput)

    @property
    def per_flow_gbps(self) -> np.ndarray:
        return units.to_gbps(self.per_flow_goodput)

    @property
    def flow_range_gbps(self) -> tuple[float, float]:
        g = self.per_flow_gbps
        return float(g.min()), float(g.max())


class MetricsAccumulator:
    """Streaming accumulation during a simulation run."""

    def __init__(self, n_flows: int, duration: float, omit: float) -> None:
        self.n_flows = n_flows
        self.duration = duration
        self.omit = omit
        self._bytes = np.zeros(n_flows)
        self._retr = 0.0
        self._loss_events = 0
        # Tick counters; the clock values are closed forms (ticks * dt)
        # so a million-tick run accumulates zero float drift.
        self._ticks = 0
        self._measured_ticks = 0
        self._time = 0.0
        self._measured_time = 0.0
        # CPU core-seconds (tx app, tx irq, rx app, rx irq) as scalar
        # accumulators: each lane is the same `sum += frac * dt` chain
        # of IEEE adds the array version performed elementwise.
        self._cpu_tx_app = 0.0
        self._cpu_tx_irq = 0.0
        self._cpu_rx_app = 0.0
        self._cpu_rx_irq = 0.0
        self._zc_sum = 0.0
        self._interval_bytes = 0.0
        self._interval_marks: list[float] = []
        self._next_interval = omit + 1.0

    def record_tick(
        self,
        dt: float,
        delivered: np.ndarray,
        retr_segments: float,
        loss_events: int,
        cpu_core_fracs: tuple[float, float, float, float],
        zc_fraction: float,
        delivered_sum: float | None = None,
    ) -> None:
        """Record one tick.  ``cpu_core_fracs`` are fractions of one core
        busy this tick for (tx app, tx irq, rx app, rx irq).
        ``delivered_sum``, when given, must equal
        ``float(np.add.reduce(delivered))`` — callers that already hold
        the sum pass it to skip the redundant reduction."""
        self._ticks += 1
        self._time = self._ticks * dt
        # ticks * dt rounds to exactly `omit` at the boundary for every
        # (tick, omit) pair in use, so no drift epsilon is needed: the
        # closed form made the comparison exact.
        if self._time <= self.omit:
            return
        self._measured_ticks += 1
        self._measured_time = self._measured_ticks * dt
        self._bytes += delivered
        self._retr += retr_segments
        self._loss_events += loss_events
        self._cpu_tx_app += cpu_core_fracs[0] * dt
        self._cpu_tx_irq += cpu_core_fracs[1] * dt
        self._cpu_rx_app += cpu_core_fracs[2] * dt
        self._cpu_rx_irq += cpu_core_fracs[3] * dt
        self._zc_sum += zc_fraction * dt
        # ndarray.sum() dispatches to np.add.reduce; same pairwise bits.
        if delivered_sum is None:
            delivered_sum = float(np.add.reduce(delivered))
        self._interval_bytes += delivered_sum
        if self._time >= self._next_interval:
            self._interval_marks.append(self._interval_bytes)
            self._interval_bytes = 0.0
            self._next_interval += 1.0

    def finalize(self) -> RunResult:
        t = max(self._measured_time, 1e-9)
        cpu = (
            np.array(
                [
                    self._cpu_tx_app,
                    self._cpu_tx_irq,
                    self._cpu_rx_app,
                    self._cpu_rx_irq,
                ]
            )
            / t
        )
        return RunResult(
            duration=self.duration,
            omit=self.omit,
            per_flow_goodput=self._bytes / t,
            retransmit_segments=self._retr,
            loss_events=self._loss_events,
            sender_cpu=CpuUtil(app_pct=100 * cpu[0], irq_pct=100 * cpu[1]),
            receiver_cpu=CpuUtil(app_pct=100 * cpu[2], irq_pct=100 * cpu[3]),
            zc_fraction_mean=self._zc_sum / t,
            interval_goodput=np.array(self._interval_marks),
        )
