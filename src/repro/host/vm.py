"""Virtual-machine layer (Section III.H of the paper).

AmLight's bare-metal hosts run Debian 11, ESnet's run Ubuntu 22.04; to
compare like with like, the paper runs an Ubuntu VM at AmLight with

* PCI passthrough of the NIC (no virtio/vhost data path), and
* vCPU pinning so every vCPU sits on a dedicated physical core on the
  NIC's NUMA node (their Fig. 3), plus host ``iommu=pt``.

With all three, VM performance is indistinguishable from bare metal
(their Fig. 4) — the differences were below the run-to-run standard
deviation.  Without passthrough or without pinning, each virtual
interrupt and exit costs host cycles and the scheduler can migrate
vCPUs across nodes, which both costs throughput and adds variance.

We model virtualization as (a) a multiplier on per-batch costs (exits,
interrupt injection) and (b) extra run-to-run jitter, both ≈ zero in the
tuned configuration.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VmConfig"]


@dataclass(frozen=True)
class VmConfig:
    """How (and whether) the host's workload runs inside a VM."""

    enabled: bool = False
    pci_passthrough: bool = True
    vcpu_pinned: bool = True
    vcpus: int = 16
    memory_gb: int = 16

    @classmethod
    def baremetal(cls) -> "VmConfig":
        return cls(enabled=False)

    @classmethod
    def paper_tuned(cls) -> "VmConfig":
        """The AmLight configuration: passthrough + pinned vCPUs."""
        return cls(enabled=True, pci_passthrough=True, vcpu_pinned=True)

    @classmethod
    def untuned(cls) -> "VmConfig":
        """A naive VM: emulated/virtio NIC path, floating vCPUs."""
        return cls(enabled=True, pci_passthrough=False, vcpu_pinned=False)

    # -- factors consumed by the cost model ---------------------------------

    @property
    def batch_cost_factor(self) -> float:
        """Multiplier on per-batch (syscall/interrupt) costs."""
        if not self.enabled:
            return 1.0
        factor = 1.02  # residual exit cost even when fully tuned
        if not self.pci_passthrough:
            factor *= 2.6  # virtio/vhost copies + interrupt emulation
        if not self.vcpu_pinned:
            factor *= 1.25
        return factor

    @property
    def byte_cost_factor(self) -> float:
        """Multiplier on per-byte costs (extra copy without passthrough)."""
        if not self.enabled or self.pci_passthrough:
            return 1.0
        return 1.8

    @property
    def jitter(self) -> float:
        """Extra relative run-to-run noise contributed by virtualization."""
        if not self.enabled:
            return 0.0
        if self.pci_passthrough and self.vcpu_pinned:
            return 0.004
        return 0.06
