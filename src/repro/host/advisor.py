"""Tuning advisor: the paper's Section V recommendations as a library.

Given a path (RTT, rate) and a host, produce the concrete settings the
paper recommends — sized `optmem_max`, a pacing rate, the sysctl set,
and warnings about feature conflicts — plus a machine-checkable
explanation for each.  This is the "practical guide" outcome of the
paper turned into an API; the `dtn_tuning_advisor` example and several
tests consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import units
from repro.host.machine import Host
from repro.host.sysctl import OPTMEM_1MB, Sysctls
from repro.net.path import NetworkPath
from repro.tcp.zerocopy import DEFAULT_SEND_BLOCK, NOTIF_BYTES, ZerocopyModel

__all__ = ["Recommendation", "TuningReport", "advise"]


@dataclass(frozen=True)
class Recommendation:
    """One actionable setting with its rationale."""

    key: str
    value: str
    rationale: str
    severity: str = "recommended"  # 'required' | 'recommended' | 'optional'

    def render(self) -> str:
        return f"[{self.severity:11s}] {self.key} = {self.value}\n    {self.rationale}"


@dataclass
class TuningReport:
    """The full advisory output for one host/path/workload combination."""

    host: Host
    path: NetworkPath
    target_gbps: float
    streams: int
    items: list[Recommendation] = field(default_factory=list)

    def add(self, key: str, value: str, rationale: str,
            severity: str = "recommended") -> None:
        self.items.append(Recommendation(key, value, rationale, severity))

    def by_key(self, key: str) -> Recommendation:
        for item in self.items:
            if item.key == key:
                return item
        raise KeyError(key)

    def render(self) -> str:
        head = (
            f"Tuning advice for {self.host.name} -> {self.path.name} "
            f"({self.path.rtt_ms:.0f} ms), target "
            f"{self.target_gbps:g} Gbps x {self.streams} stream(s)"
        )
        return "\n".join([head, "-" * len(head)] + [i.render() for i in self.items])


def recommended_optmem(rate_gbps: float, rtt_sec: float,
                       send_block: float = DEFAULT_SEND_BLOCK) -> int:
    """optmem_max sized for full zerocopy coverage of the path's BDP.

    The paper's Fig. 9 lesson: cover ``rate * rtt / block`` outstanding
    sendmsg notifications.  We add 25% headroom and floor at the 1 MB
    the MSG_ZEROCOPY authors recommend.
    """
    zc = ZerocopyModel(optmem_max=OPTMEM_1MB, send_block_bytes=send_block)
    needed = zc.required_optmem(units.gbps(rate_gbps), rtt_sec) * 1.25
    return int(max(OPTMEM_1MB, needed))


def recommended_pacing_gbps(path: NetworkPath, streams: int,
                            nic_gbps: float) -> float:
    """Per-stream pacing per the paper's Section V.B heuristics.

    Leave ~10% headroom under the smallest of: the path's usable
    capacity (net of average background traffic), and the NIC.  For
    single flows this lands at the paper's 50 Gbps-on-100G style
    values; for 8 streams on a ~120 Gbps-safe WAN it lands near their
    15 Gbps/stream recommendation.
    """
    usable = min(
        units.to_gbps(path.capacity - path.background.mean_bytes_per_sec),
        nic_gbps,
    )
    per_stream = 0.9 * usable / streams
    # round down to a half-gigabit for operator friendliness
    return max(1.0, int(per_stream * 2) / 2.0)


def advise(host: Host, path: NetworkPath, target_gbps: float | None = None,
           streams: int = 1) -> TuningReport:
    """Produce the full tuning report for a host/path/workload."""
    nic_gbps = host.nic.speed_gbps
    target = target_gbps if target_gbps is not None else min(
        nic_gbps, units.to_gbps(path.capacity)
    )
    report = TuningReport(host=host, path=path, target_gbps=target, streams=streams)

    # 1. Socket buffers vs BDP.
    bdp = units.gbps(target) * path.rtt_sec
    if host.sysctls.max_send_window() < bdp:
        report.add(
            "net.ipv4.tcp_wmem[max] / tcp_rmem[max]",
            "2147483647",
            f"path BDP is {units.fmt_bytes(bdp)}; current limits allow a "
            f"window of only {units.fmt_bytes(host.sysctls.max_send_window())} "
            f"(~{units.to_gbps(host.sysctls.max_send_window() / max(path.rtt_sec, 1e-6)):.1f} Gbps)",
            severity="required",
        )

    # 2. qdisc.
    if host.sysctls.default_qdisc != "fq":
        report.add(
            "net.core.default_qdisc", "fq",
            "fq implements fine-grained socket pacing; fq_codel falls back "
            "to coarse internal pacing (residual bursts overrun receivers "
            "on paths without 802.3x)",
            severity="required",
        )

    # 3. IRQ/process placement.
    if host.tuning.irqbalance:
        report.add(
            "irqbalance + core pinning",
            "disable irqbalance; IRQs on cores 0-7, application on 8-15 (NIC node)",
            "the paper measured 20-55 Gbps run-to-run variation on identical "
            "hardware from placement luck alone (Section III.A)",
            severity="required",
        )

    # 4. Zerocopy + optmem sizing.
    if host.zerocopy_available():
        optmem = recommended_optmem(target, path.rtt_sec)
        if host.sysctls.optmem_max < optmem:
            report.add(
                "net.core.optmem_max", str(optmem),
                f"covers {target:g} Gbps x {path.rtt_ms:.0f} ms of outstanding "
                f"MSG_ZEROCOPY completions ({NOTIF_BYTES:.0f} B each); "
                "undersized optmem silently falls back to copying and *raises* "
                "sender CPU (paper Fig. 9)",
                severity="recommended",
            )
        report.add(
            "application send path", "MSG_ZEROCOPY (--zerocopy=z)",
            "up to ~35% WAN throughput at a fraction of the sender CPU — "
            "but only together with pacing and sized optmem",
        )
    else:
        report.add(
            "kernel", ">= 4.17",
            f"kernel {host.kernel.version} predates MSG_ZEROCOPY",
            severity="required",
        )

    # 5. Pacing.
    if not path.flow_control:
        pace = recommended_pacing_gbps(path, streams, nic_gbps)
        note = "no IEEE 802.3x on this path: pacing is the only protection " \
               "against receiver burst overrun"
        if streams > 1:
            note += f"; {streams} x {pace:g} Gbps stays under the usable capacity"
        report.add("--fq-rate (per stream)", f"{pace:g}G", note,
                   severity="required")
        if units.gbps(pace) >= 2**32:
            report.add(
                "iperf3 build", "include PR#1728 (uint64 fq-rate)",
                "pacing above ~34 Gbps wraps modulo 2^32 B/s in unpatched "
                "iperf3 and the flow collapses",
                severity="required",
            )
    else:
        report.add(
            "--fq-rate (per stream)",
            f"{recommended_pacing_gbps(path, streams, nic_gbps):g}G (optional)",
            "802.3x flow control already prevents receiver loss; pacing only "
            "evens out per-flow rates and trims retransmits (paper Table III)",
            severity="optional",
        )

    # 6. Kernel version.
    if host.kernel.version.major < 6 or (
        host.kernel.version.major == 6 and host.kernel.version.minor < 8
    ):
        report.add(
            "kernel upgrade", "6.8 (Ubuntu 24.04 / HWE)",
            "up to ~30% single-stream gain over 5.15 (paper Figs. 12/13)",
        )

    # 7. Misc host tuning.
    if not host.tuning.iommu_passthrough:
        report.add(
            "kernel cmdline", "iommu=pt",
            "IOMMU translation throttled the paper's AMD hosts from 181 to "
            "80 Gbps aggregate",
            severity="required",
        )
    if host.tuning.smt_enabled:
        report.add("SMT", "off", "sibling threads steal cycles from saturated "
                   "networking cores")
    if host.tuning.governor != "performance":
        report.add("cpupower governor", "performance",
                   "clock sag under irregular softirq load costs throughput")
    if host.tuning.mtu < 9000:
        report.add(
            "MTU", "9000",
            "per-packet receive costs dominate at 1500 B (the paper measured "
            "24 vs 62 Gbps single-stream without hardware GRO)",
        )
    if (host.cpu.arch == "amd"
            and (host.tuning.ring_entries or host.nic.default_ring_entries) < 8192):
        report.add("ethtool -G rx/tx", "8192",
                   "larger rings absorb longer bursts; the paper found this "
                   "helps on the AMD hosts")

    # 8. Feature conflicts.
    if host.big_tcp_enabled():
        report.add(
            "BIG TCP + MSG_ZEROCOPY", "pick one (stock kernels)",
            "both consume skb fragment slots; combining them needs a custom "
            "CONFIG_MAX_SKB_FRAGS=45 build (paper Section V.C)",
            severity="required" if not host.kernel.allows_bigtcp_with_zerocopy
            else "optional",
        )

    return report
