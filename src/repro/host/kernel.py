"""Linux kernel version model: feature availability and efficiency.

The paper compares three kernels (5.15, 6.5, 6.8, plus Debian 11's 5.10
for the VM-validation experiment and 6.11 for the hardware-GRO preview).
Two things change between kernel versions:

1. **Feature availability** — hard gates with a first-supported version:

   ========================  =============================
   MSG_ZEROCOPY (send)       4.17
   BIG TCP, IPv6             5.19
   BIG TCP, IPv4             6.3
   HW GRO / header-data
   split on ConnectX-7       6.11
   fq qdisc                  3.12
   BBR v1                    4.9
   BBR v3                    6.6   (out-of-tree before; we gate at 6.6)
   multi-queue fq pacing     always (pacing itself is fq's job)
   ========================  =============================

2. **Stack efficiency** — the per-byte and per-batch CPU cost of pushing
   data through the stack drops in newer kernels (driver updates, AVX-512
   checksum/copy routines on Intel, buffer-management and memory-bandwidth
   work).  The paper measures the aggregate effect: on AMD hosts 6.5 is
   ~12% faster than 5.15 and 6.8 another ~17% faster (Fig. 12); on Intel,
   6.8 is ~27-30% faster than 5.15 on the LAN (Fig. 13).  We encode these
   as calibrated *cost multipliers* relative to a 6.8 == 1.0 baseline,
   per CPU architecture, interpolating for versions in between.

``MAX_SKB_FRAGS`` is also modelled: stock kernels build with 17 fragments
per skb, which is why BIG TCP and MSG_ZEROCOPY cannot be combined —
both consume skb fragment slots.  A custom build with
``CONFIG_MAX_SKB_FRAGS=45`` lifts the conflict (paper §V.C).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace

from repro.core.errors import ConfigurationError

__all__ = ["KernelVersion", "Kernel", "KERNELS"]

_VERSION_RE = re.compile(r"^(\d+)\.(\d+)(?:\.(\d+))?")


@dataclass(frozen=True, order=True)
class KernelVersion:
    """A sortable (major, minor, patch) kernel version."""

    major: int
    minor: int
    patch: int = 0

    @classmethod
    def parse(cls, text: str) -> "KernelVersion":
        m = _VERSION_RE.match(text.strip())
        if not m:
            raise ConfigurationError(f"unparseable kernel version: {text!r}")
        return cls(int(m.group(1)), int(m.group(2)), int(m.group(3) or 0))

    def __str__(self) -> str:
        if self.patch:
            return f"{self.major}.{self.minor}.{self.patch}"
        return f"{self.major}.{self.minor}"


# First-supported versions for the features the paper exercises.
_FEATURE_SINCE = {
    "msg_zerocopy": KernelVersion(4, 17),
    "big_tcp_ipv6": KernelVersion(5, 19),
    "big_tcp_ipv4": KernelVersion(6, 3),
    "hw_gro": KernelVersion(6, 11),
    "fq_qdisc": KernelVersion(3, 12),
    "bbr1": KernelVersion(4, 9),
    "bbr3": KernelVersion(6, 6),
}

# Calibrated network-stack cost multipliers relative to kernel 6.8 == 1.0.
# Keys are (arch, version-string).  Derived from the paper's measured
# ratios: AMD 5.15→6.5 +12%, 6.5→6.8 +17% (Fig. 12); Intel 5.15→6.8
# +27% LAN (Fig. 13).  5.10 (Debian 11) is slightly worse than 5.15;
# 6.11 carries 6.8 efficiency plus new receive-side features.
_COST_SCALE = {
    "amd": {
        "5.10": 1.34,
        "5.15": 1.31,
        "6.5": 1.17,
        "6.8": 1.00,
        "6.11": 1.00,
    },
    "intel": {
        "5.10": 1.31,
        "5.15": 1.28,
        "6.5": 1.14,
        "6.8": 1.00,
        "6.11": 1.00,
    },
}

# Default compile-time skb fragment budget.  BIG TCP batches above
# ~192 KB and MSG_ZEROCOPY pinned-page chains both consume fragment
# slots; at 17 they cannot coexist (see Dumazet, lore 20230323162842).
DEFAULT_MAX_SKB_FRAGS = 17
CUSTOM_MAX_SKB_FRAGS = 45

# Upper GSO/GRO sizes.  Stock behaviour is 64 KB; BIG TCP raises the
# ceiling to 512 KB for IPv6 and to ~512 KB (minus header room) for IPv4.
GSO_LEGACY_MAX = 65536
BIG_TCP_MAX_IPV6 = 524288
BIG_TCP_MAX_IPV4 = 524288 - 4096


@dataclass(frozen=True)
class Kernel:
    """A kernel as configured on a host.

    Combines the version with the two build/configuration knobs the
    paper varies: ``max_skb_frags`` (stock 17 vs custom 45) and an
    optional flag for distribution quirks.
    """

    version: KernelVersion
    max_skb_frags: int = DEFAULT_MAX_SKB_FRAGS
    distro: str = "ubuntu"

    @classmethod
    def named(cls, name: str, **overrides) -> "Kernel":
        """Build one of the paper's kernels by version string, e.g. '6.8'."""
        return cls(version=KernelVersion.parse(name), **overrides)

    def with_custom_skb_frags(self) -> "Kernel":
        """The paper's custom build: CONFIG_MAX_SKB_FRAGS=45."""
        return replace(self, max_skb_frags=CUSTOM_MAX_SKB_FRAGS)

    # -- feature gates ------------------------------------------------------

    def supports(self, feature: str) -> bool:
        try:
            return self.version >= _FEATURE_SINCE[feature]
        except KeyError:
            raise ConfigurationError(f"unknown kernel feature: {feature!r}") from None

    @property
    def supports_msg_zerocopy(self) -> bool:
        return self.supports("msg_zerocopy")

    @property
    def supports_big_tcp_ipv4(self) -> bool:
        return self.supports("big_tcp_ipv4")

    @property
    def supports_big_tcp_ipv6(self) -> bool:
        return self.supports("big_tcp_ipv6")

    @property
    def supports_hw_gro(self) -> bool:
        return self.supports("hw_gro")

    def big_tcp_limit(self, ipv6: bool = False) -> int:
        """Max configurable GSO/GRO size for this kernel, in bytes."""
        if ipv6 and self.supports_big_tcp_ipv6:
            return BIG_TCP_MAX_IPV6
        if not ipv6 and self.supports_big_tcp_ipv4:
            return BIG_TCP_MAX_IPV4
        return GSO_LEGACY_MAX

    @property
    def allows_bigtcp_with_zerocopy(self) -> bool:
        """BIG TCP + MSG_ZEROCOPY need >= 45 skb frags to coexist."""
        return self.max_skb_frags >= CUSTOM_MAX_SKB_FRAGS

    # -- efficiency ---------------------------------------------------------

    def stack_cost_scale(self, arch: str) -> float:
        """Per-byte/per-batch CPU cost multiplier vs the 6.8 baseline.

        ``arch`` is ``'intel'`` or ``'amd'``.  Unknown versions are
        interpolated linearly between the calibrated anchor versions,
        clamped at the ends; this keeps the model usable for kernels the
        paper did not measure (e.g. 6.2) without pretending precision.
        """
        if arch not in _COST_SCALE:
            raise ConfigurationError(f"unknown arch {arch!r}; want 'intel' or 'amd'")
        table = _COST_SCALE[arch]
        key = str(self.version)
        base_key = f"{self.version.major}.{self.version.minor}"
        if key in table:
            return table[key]
        if base_key in table:
            return table[base_key]
        # Interpolate on a scalar version coordinate (major + minor/100).
        anchors = sorted(
            (KernelVersion.parse(k), v) for k, v in table.items()
        )
        coord = self.version
        if coord <= anchors[0][0]:
            return anchors[0][1]
        if coord >= anchors[-1][0]:
            return anchors[-1][1]
        for (v0, s0), (v1, s1) in zip(anchors, anchors[1:]):
            if v0 <= coord <= v1:
                def scalar(v: KernelVersion) -> float:
                    return v.major + v.minor / 100.0
                t = (scalar(coord) - scalar(v0)) / (scalar(v1) - scalar(v0))
                return s0 + t * (s1 - s0)
        raise AssertionError("unreachable")

    def __str__(self) -> str:
        frags = "" if self.max_skb_frags == DEFAULT_MAX_SKB_FRAGS else (
            f" (MAX_SKB_FRAGS={self.max_skb_frags})"
        )
        return f"Linux {self.version}{frags}"


#: The kernels used in the paper, by short name.
KERNELS: dict[str, Kernel] = {
    "5.10": Kernel.named("5.10", distro="debian11"),
    "5.15": Kernel.named("5.15", distro="ubuntu22.04"),
    "6.5": Kernel.named("6.5", distro="ubuntu22.04-hwe"),
    "6.8": Kernel.named("6.8", distro="ubuntu24.04"),
    "6.11": Kernel.named("6.11", distro="mainline"),
}
