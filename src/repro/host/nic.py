"""NIC models (Nvidia/Mellanox ConnectX series).

The NIC matters to the paper in four ways:

1. **Line rate** — 100 Gbps (ConnectX-5 at AmLight) vs 200 Gbps
   (ConnectX-7 at ESnet) bounds everything.
2. **Receive rings** — when packets arrive faster than the host drains
   them and the network has no IEEE 802.3x flow control, the rings
   overrun and the NIC drops packets.  Ring size is an ethtool tunable
   (``ethtool -G eth100 rx 8192``); the paper found enlarging rings
   helps on the AMD hosts.
3. **Segmentation offloads** — the NIC slices GSO super-packets to MTU
   on transmit and GRO-aggregates on receive, so the *host* cost is per
   super-packet, not per wire packet.  BIG TCP raises the super-packet
   ceiling (kernel permitting).
4. **Hardware GRO / header-data split** — ConnectX-7 with Linux 6.11
   aggregates in hardware (SHAMPO), removing most per-wire-packet CPU
   cost; the paper previews +33% (9K MTU) and +160% (1500B MTU)
   single-stream gains (§V.C).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import units
from repro.core.errors import ConfigurationError

__all__ = ["NicSpec", "CONNECTX_5", "CONNECTX_6", "CONNECTX_7", "NICS"]


@dataclass(frozen=True)
class NicSpec:
    """A server NIC."""

    model: str
    speed_bytes_per_sec: float
    default_ring_entries: int
    max_ring_entries: int
    #: Supports IEEE 802.3x pause generation/honouring (they all do;
    #: whether it helps depends on the *switch*, modelled in repro.net).
    supports_pause: bool = True
    #: Hardware GRO with header/data split (ConnectX-7, kernel >= 6.11).
    supports_hw_gro: bool = False
    #: Fraction of per-wire-packet host CPU cost remaining when HW GRO
    #: is active (the NIC does the aggregation work instead).
    hw_gro_residual: float = 0.15

    def __post_init__(self) -> None:
        if self.speed_bytes_per_sec <= 0:
            raise ConfigurationError("NIC speed must be positive")
        if self.default_ring_entries > self.max_ring_entries:
            raise ConfigurationError("default ring larger than max ring")

    @property
    def speed_gbps(self) -> float:
        return units.to_gbps(self.speed_bytes_per_sec)

    def ring_bytes(self, entries: int, mtu: int) -> float:
        """Buffering capacity of a receive ring, in bytes.

        Each descriptor holds one wire packet; at 9000-byte MTU an
        8192-entry ring buffers ~70 MB of burst.
        """
        if entries <= 0 or entries > self.max_ring_entries:
            raise ConfigurationError(
                f"ring entries {entries} out of range 1..{self.max_ring_entries}"
            )
        return float(entries) * float(mtu)

    def with_speed_gbps(self, gbps_value: float) -> "NicSpec":
        """A copy at a different port speed (e.g. 400G what-if studies)."""
        return replace(self, speed_bytes_per_sec=units.gbps(gbps_value))


CONNECTX_5 = NicSpec(
    model="Nvidia ConnectX-5 (fw 16.35.3502)",
    speed_bytes_per_sec=units.gbps(100),
    default_ring_entries=1024,
    max_ring_entries=8192,
)

CONNECTX_6 = NicSpec(
    model="Nvidia ConnectX-6",
    speed_bytes_per_sec=units.gbps(200),
    default_ring_entries=1024,
    max_ring_entries=8192,
)

CONNECTX_7 = NicSpec(
    model="Nvidia ConnectX-7",
    speed_bytes_per_sec=units.gbps(200),
    default_ring_entries=1024,
    max_ring_entries=8192,
    supports_hw_gro=True,
)

NICS: dict[str, NicSpec] = {
    "cx5": CONNECTX_5,
    "cx6": CONNECTX_6,
    "cx7": CONNECTX_7,
}
