"""CPU models for the paper's two host platforms.

The paper's single-stream results are CPU-bound, so the CPU model is the
most load-bearing part of the reproduction.  We model a CPU as a set of
cores with a clock, organized into NUMA domains (see
:mod:`repro.host.numa`), plus calibrated *cycle costs* for the primitive
operations the network stack performs per byte and per batch:

per byte
    * ``copy_cyc_per_byte`` — user↔kernel copy (``copy_from_iter`` etc.).
      On AVX-512-capable Intel parts with a 6.x kernel the optimized
      copy/checksum routines make this markedly cheaper; this single
      number is most of the Intel-vs-AMD single-stream gap the paper
      observes (55 vs 42 Gbps LAN on kernel 6.8).
    * ``pin_cyc_per_byte`` — page pinning for MSG_ZEROCOPY; an order of
      magnitude cheaper than copying.
    * ``stack_cyc_per_byte`` — residual per-byte protocol work
      (checksum verify fallback, skb data touching).

per batch (one GSO/GRO super-packet traversing the stack)
    * ``tx_batch_cyc`` — sendmsg syscall + skb alloc + qdisc enqueue +
      doorbell, amortized over the GSO size.
    * ``rx_batch_cyc`` — GRO flush + protocol receive + socket wakeup.

per wire packet (MTU-sized, handled by the IRQ core's NAPI loop)
    * ``rx_pkt_cyc`` — driver descriptor processing before GRO
      aggregation.  Hardware GRO (ConnectX-7 + 6.11) moves aggregation
      into the NIC, slashing this cost; that is the §V.C preview.

Cache behaviour matters on the WAN: once the socket buffer outgrows the
effective L3 slice, every copy misses cache and the per-byte cost rises.
AMD EPYC's L3 is large in total but partitioned into 32 MB CCX slices,
so it degrades sooner and harder than the Xeon's unified cache — this is
the mechanism behind the paper's observation that AMD sender CPU on the
WAN is much higher than Intel's (Figs. 7 vs 8).  The cache factor is
computed in :mod:`repro.sim.cpumodel`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core import units

__all__ = ["CpuSpec", "XEON_6346", "EPYC_73F3", "CPUS"]


@dataclass(frozen=True)
class CpuSpec:
    """A dual-socket server CPU as the paper's testbeds use."""

    model: str
    arch: str  # 'intel' or 'amd'
    sockets: int
    cores_per_socket: int
    base_ghz: float
    max_ghz: float
    smt: int  # hardware threads per core when SMT is on
    avx512: bool
    #: Effective L3 a single core can stream through before misses
    #: dominate — unified per-socket for Intel, per-CCX for AMD.
    l3_effective_bytes: float
    #: How steeply per-byte copy cost rises once the working set
    #: (socket buffer) exceeds the effective L3.  Dimensionless multiplier
    #: at full saturation; see CpuCostModel.cache_factor.
    cache_penalty: float

    # -- calibrated cycle costs (at kernel 6.8 efficiency; the kernel's
    # stack_cost_scale multiplies these) --------------------------------
    copy_cyc_per_byte: float
    pin_cyc_per_byte: float
    stack_cyc_per_byte: float
    tx_batch_cyc: float
    rx_batch_cyc: float
    rx_pkt_cyc: float
    #: Per-GSO/GRO-batch stack traversal cost on the app core (skb
    #: walk, TCP bookkeeping, socket wakeups).  Amortized over the
    #: batch size; this is the term BIG TCP shrinks by raising the
    #: batch ceiling from 64 KB to 150-512 KB (paper: up to +16%).
    skb_walk_cyc: float = 6000.0
    #: Effective memory bandwidth available to the network stack on the
    #: NIC's NUMA node, bytes/s.  Divided by the number of memory
    #: touches per byte this bounds *aggregate* (multi-stream) host
    #: throughput; calibrated from the paper's unpaced 8-stream results
    #: (AmLight Intel ~62 Gbps on kernel 6.8; ESnet AMD ~166 Gbps on
    #: 5.15).  The Intel figure is lower than raw DRAM bandwidth because
    #: the ConnectX-5 hosts also contend on PCIe Gen3 and the qdisc.
    stack_mem_bw_bytes_per_sec: float = 60e9

    def __post_init__(self) -> None:
        if self.arch not in ("intel", "amd"):
            raise ValueError(f"arch must be 'intel' or 'amd', got {self.arch!r}")

    @property
    def total_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def cycles_per_second(self, turbo: bool = True) -> float:
        """Cycle budget of one core, assuming the performance governor.

        The paper sets the governor to ``performance`` and disables SMT,
        so a network-saturating core runs near its max turbo clock.
        """
        return units.ghz(self.max_ghz if turbo else self.base_ghz)

    def with_overrides(self, **kwargs) -> "CpuSpec":
        """A copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kwargs)


# ---------------------------------------------------------------------------
# The paper's two platforms.
#
# Calibration anchors (kernel 6.8, LAN, default iperf3, receiver-limited):
#   Intel Xeon 6346  : ~55 Gbps single stream  (Fig. 5)
#   AMD EPYC 73F3    : ~42 Gbps single stream  (Fig. 6)
# Receiver rate ≈ max_clock / (copy + stack + batch terms) bytes/s.
# For Intel: 3.6e9 / (0.40 + 0.04 + ~0.07)  ≈ 7.0 GB/s ≈ 56 Gbps.
# For AMD : 4.0e9 / (0.60 + 0.05 + ~0.08)  ≈ 5.5 GB/s ≈ 44 Gbps.
# ---------------------------------------------------------------------------

XEON_6346 = CpuSpec(
    model="Intel Xeon Gold 6346",
    arch="intel",
    sockets=2,
    cores_per_socket=16,
    base_ghz=3.1,
    max_ghz=3.6,
    smt=2,
    avx512=True,
    l3_effective_bytes=36 * units.MB,
    cache_penalty=0.57,
    copy_cyc_per_byte=0.40,
    pin_cyc_per_byte=0.055,
    stack_cyc_per_byte=0.040,
    tx_batch_cyc=2600.0,
    rx_batch_cyc=2100.0,
    rx_pkt_cyc=1700.0,
    skb_walk_cyc=6000.0,
    stack_mem_bw_bytes_per_sec=23.4e9,
)

EPYC_73F3 = CpuSpec(
    model="AMD EPYC 73F3",
    arch="amd",
    sockets=2,
    cores_per_socket=16,
    base_ghz=3.5,
    max_ghz=4.0,
    smt=2,
    avx512=False,
    l3_effective_bytes=32 * units.MB,  # one Zen3 CCX slice
    cache_penalty=1.10,
    copy_cyc_per_byte=0.60,
    pin_cyc_per_byte=0.075,
    stack_cyc_per_byte=0.050,
    tx_batch_cyc=3100.0,
    rx_batch_cyc=2500.0,
    rx_pkt_cyc=1900.0,
    skb_walk_cyc=7000.0,
    stack_mem_bw_bytes_per_sec=81e9,
)

#: Catalog by short name for CLI-ish front-ends.
CPUS: dict[str, CpuSpec] = {
    "xeon-6346": XEON_6346,
    "epyc-73f3": EPYC_73F3,
    "intel": XEON_6346,
    "amd": EPYC_73F3,
}
