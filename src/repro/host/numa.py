"""NUMA topology and core-placement effects.

Section III.A of the paper reports that without explicit core binding,
single-flow throughput on the same hardware varied from 20 to 55 Gbps
depending on where ``irqbalance`` and the scheduler happened to place
NIC interrupts and the iperf3 process.  The fix — the standard
fasterdata.es.net advice — is to disable irqbalance, pin IRQs to one
block of cores on the NIC's NUMA node, and run the application on a
*different* block of cores on the same node::

    set_irq_affinity_cpulist.sh 0-7 ethN
    numactl -C 8-15 iperf3

We model a dual-socket host as two NUMA nodes with the NIC attached to
node 0.  A placement assigns the IRQ core set and the application core
set; the cost model then applies:

* ``remote_memory_penalty`` to per-byte costs for any core on the wrong
  node (packet buffers live in NIC-node memory);
* ``shared_core_penalty`` when the application shares a core with the
  NIC IRQs (cache thrash + scheduling contention — the worst case the
  paper warns about, and what Hock et al. also found).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigurationError
from repro.host.cpu import CpuSpec

__all__ = ["NumaTopology", "CorePlacement"]


@dataclass(frozen=True)
class NumaTopology:
    """Maps cores to NUMA nodes and records the NIC's node."""

    cpu: CpuSpec
    nic_node: int = 0
    #: Per-byte cost multiplier when buffers are on the remote node.
    remote_memory_penalty: float = 1.35
    #: Per-byte cost multiplier when app and IRQ share the same core.
    shared_core_penalty: float = 1.9

    @property
    def nodes(self) -> int:
        return self.cpu.sockets

    def node_of(self, core: int) -> int:
        """NUMA node of a core.  Cores are numbered node-major, i.e.
        cores [0, cores_per_socket) are node 0, matching how the paper's
        hosts enumerate them."""
        if not 0 <= core < self.cpu.total_cores:
            raise ConfigurationError(
                f"core {core} out of range 0..{self.cpu.total_cores - 1}"
            )
        return core // self.cpu.cores_per_socket

    def cores_of_node(self, node: int) -> list[int]:
        if not 0 <= node < self.nodes:
            raise ConfigurationError(f"node {node} out of range 0..{self.nodes - 1}")
        start = node * self.cpu.cores_per_socket
        return list(range(start, start + self.cpu.cores_per_socket))


@dataclass(frozen=True)
class CorePlacement:
    """An assignment of IRQ cores and application cores.

    ``pinned`` placements are what the paper uses for all reported
    results (IRQs on 0-7, iperf3 on 8-15, both on the NIC node).
    ``irqbalance`` placements are drawn at random per run to reproduce
    the 20-55 Gbps variability of §III.A.
    """

    irq_cores: tuple[int, ...]
    app_cores: tuple[int, ...]
    label: str = "custom"

    def __post_init__(self) -> None:
        if not self.irq_cores:
            raise ConfigurationError("placement needs at least one IRQ core")
        if not self.app_cores:
            raise ConfigurationError("placement needs at least one app core")

    @property
    def overlap(self) -> frozenset[int]:
        """Cores used for both IRQs and the application."""
        return frozenset(self.irq_cores) & frozenset(self.app_cores)

    @classmethod
    def paper_pinned(cls, topo: NumaTopology) -> "CorePlacement":
        """The paper's configuration: IRQs 0-7, app 8-15, NIC node."""
        node_cores = topo.cores_of_node(topo.nic_node)
        if len(node_cores) < 16:
            half = len(node_cores) // 2
            return cls(tuple(node_cores[:half]), tuple(node_cores[half:]), "pinned")
        return cls(tuple(node_cores[:8]), tuple(node_cores[8:16]), "pinned")

    @classmethod
    def irqbalanced(cls, topo: NumaTopology, rng: np.random.Generator,
                    n_irq: int = 8, n_app: int = 8) -> "CorePlacement":
        """A random placement as irqbalance + the scheduler would make.

        IRQs and the app process land on arbitrary cores across both
        sockets, sometimes overlapping — the source of the paper's
        run-to-run variability.
        """
        total = topo.cpu.total_cores
        irq = tuple(int(c) for c in rng.choice(total, size=min(n_irq, total), replace=False))
        app = tuple(int(c) for c in rng.choice(total, size=min(n_app, total), replace=False))
        return cls(irq, app, "irqbalance")

    # -- penalty factors consumed by the cost model -------------------------

    def irq_penalty(self, topo: NumaTopology) -> float:
        """Average per-byte multiplier for IRQ-side (driver/GRO) work."""
        factors = [
            topo.remote_memory_penalty if topo.node_of(c) != topo.nic_node else 1.0
            for c in self.irq_cores
        ]
        return float(np.mean(factors))

    def app_penalty(self, topo: NumaTopology) -> float:
        """Average per-byte multiplier for application-side work.

        Includes both the remote-node penalty and the shared-core penalty
        when the app competes with IRQ processing for the same core.
        """
        overlap = self.overlap
        factors = []
        for c in self.app_cores:
            f = topo.remote_memory_penalty if topo.node_of(c) != topo.nic_node else 1.0
            if c in overlap:
                f *= topo.shared_core_penalty
            factors.append(f)
        return float(np.mean(factors))
