"""Host models: CPU, NUMA, NIC, kernel, sysctls, tuning, VM layer."""

from repro.host.advisor import Recommendation, TuningReport, advise
from repro.host.cpu import CPUS, EPYC_73F3, XEON_6346, CpuSpec
from repro.host.kernel import KERNELS, Kernel, KernelVersion
from repro.host.machine import Host
from repro.host.nic import CONNECTX_5, CONNECTX_6, CONNECTX_7, NICS, NicSpec
from repro.host.numa import CorePlacement, NumaTopology
from repro.host.sysctl import OPTMEM_1MB, OPTMEM_BEST_WAN, OPTMEM_DEFAULT, Sysctls
from repro.host.tuning import HostTuning
from repro.host.vm import VmConfig

__all__ = [
    "Host",
    "advise",
    "TuningReport",
    "Recommendation",
    "CpuSpec",
    "XEON_6346",
    "EPYC_73F3",
    "CPUS",
    "Kernel",
    "KernelVersion",
    "KERNELS",
    "NicSpec",
    "CONNECTX_5",
    "CONNECTX_6",
    "CONNECTX_7",
    "NICS",
    "NumaTopology",
    "CorePlacement",
    "Sysctls",
    "OPTMEM_DEFAULT",
    "OPTMEM_1MB",
    "OPTMEM_BEST_WAN",
    "HostTuning",
    "VmConfig",
]
