"""Host-level (non-sysctl) tuning: ethtool, SMT, governor, IOMMU, MTU.

These are the "other tuning" items from Section III.D of the paper:

.. code-block:: none

    /usr/sbin/ethtool -G eth100 rx 8192 tx 8192    # AMD hosts
    echo off > /sys/devices/system/cpu/smt/control
    cpupower frequency-set -g performance
    iommu=pt                                        # kernel cmdline

and the IRQ/process binding from Section III.A.  The `iommu=pt` setting
is modelled as a per-byte DMA-translation overhead that disappears in
passthrough mode — the paper saw 8-stream throughput jump from 80 to
181 Gbps on the ESnet AMD hosts when it was set, so the penalty factor
for translated mode is large.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.errors import ConfigurationError

__all__ = ["HostTuning"]


@dataclass(frozen=True)
class HostTuning:
    """Knobs outside sysctl."""

    #: MTU on the data interface.  The paper uses 9000 everywhere except
    #: the §V.C hardware-GRO preview, which also tests 1500.
    mtu: int = 1500
    #: rx/tx ring entries (ethtool -G).  None = driver default.
    ring_entries: int | None = None
    #: SMT (hyper-threading).  The paper turns it off; leaving it on
    #: halves the effective cycle budget of a saturated core's thread.
    smt_enabled: bool = True
    #: CPU frequency governor.  'performance' pins max turbo;
    #: 'powersave'/'schedutil' let the clock sag under irregular load.
    governor: str = "schedutil"
    #: IOMMU passthrough (iommu=pt).  Off = every DMA goes through the
    #: IOMMU page tables, which throttles aggregate throughput hard on
    #: the AMD hosts (80 -> 181 Gbps with pt, per the paper).
    iommu_passthrough: bool = False
    #: irqbalance daemon running?  The paper disables it and pins IRQs.
    irqbalance: bool = True

    def __post_init__(self) -> None:
        if self.mtu < 576 or self.mtu > 9216:
            raise ConfigurationError(f"implausible MTU {self.mtu}")
        if self.governor not in ("performance", "powersave", "schedutil", "ondemand"):
            raise ConfigurationError(f"unknown governor {self.governor!r}")

    @classmethod
    def paper(cls, ring_entries: int | None = 8192) -> "HostTuning":
        """The tuning used for all of the paper's reported results."""
        return cls(
            mtu=9000,
            ring_entries=ring_entries,
            smt_enabled=False,
            governor="performance",
            iommu_passthrough=True,
            irqbalance=False,
        )

    @classmethod
    def stock(cls) -> "HostTuning":
        """An untouched distro install (for ablation experiments)."""
        return cls()

    def set(self, **kwargs) -> "HostTuning":
        return replace(self, **kwargs)

    # -- factors consumed by the cost model ---------------------------------

    @property
    def clock_factor(self) -> float:
        """Fraction of max turbo the busy core actually sustains."""
        return 1.0 if self.governor == "performance" else 0.9

    @property
    def smt_factor(self) -> float:
        """Cycle-budget multiplier for a saturated networking core.

        With SMT on, the sibling thread steals issue slots; the paper
        disables SMT on all hosts.  0.85 reflects a mostly-idle sibling.
        """
        return 0.85 if self.smt_enabled else 1.0

    @property
    def iommu_byte_cost_factor(self) -> float:
        """Multiplier on DMA-related per-byte costs without iommu=pt."""
        return 1.0 if self.iommu_passthrough else 2.2
