"""The :class:`Host` aggregate: CPU + NUMA + NIC + kernel + tuning.

A ``Host`` is one end of a test: it validates that the requested feature
combination is actually possible (the same checks the real tools and
kernel enforce), and computes the derived quantities the flow simulator
consumes — effective GSO/GRO sizes, per-core cycle budgets, placement
penalties.

Example::

    host = Host.build(cpu="intel", nic="cx5", kernel="6.8",
                      sysctls=Sysctls.fasterdata_tuned(),
                      tuning=HostTuning.paper())
    host.effective_gso_size()   # 65536 unless BIG TCP is enabled
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.errors import ConfigurationError, FeatureUnavailableError
from repro.host.cpu import CPUS, CpuSpec
from repro.host.kernel import KERNELS, Kernel
from repro.host.nic import NICS, NicSpec
from repro.host.numa import CorePlacement, NumaTopology
from repro.host.sysctl import Sysctls
from repro.host.tuning import HostTuning
from repro.host.vm import VmConfig

__all__ = ["Host"]


@dataclass(frozen=True)
class Host:
    """A fully configured test host."""

    name: str
    cpu: CpuSpec
    nic: NicSpec
    kernel: Kernel
    sysctls: Sysctls = field(default_factory=Sysctls)
    tuning: HostTuning = field(default_factory=HostTuning)
    vm: VmConfig = field(default_factory=VmConfig.baremetal)
    placement: CorePlacement | None = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def build(
        cls,
        name: str = "host",
        cpu: str | CpuSpec = "intel",
        nic: str | NicSpec = "cx5",
        kernel: str | Kernel = "6.8",
        sysctls: Sysctls | None = None,
        tuning: HostTuning | None = None,
        vm: VmConfig | None = None,
        placement: CorePlacement | None = None,
    ) -> "Host":
        """Build a host from catalog short-names or full specs."""
        cpu_spec = CPUS[cpu] if isinstance(cpu, str) else cpu
        nic_spec = NICS[nic] if isinstance(nic, str) else nic
        kern = KERNELS[kernel] if isinstance(kernel, str) else kernel
        host = cls(
            name=name,
            cpu=cpu_spec,
            nic=nic_spec,
            kernel=kern,
            sysctls=sysctls if sysctls is not None else Sysctls(),
            tuning=tuning if tuning is not None else HostTuning(),
            vm=vm if vm is not None else VmConfig.baremetal(),
            placement=placement,
        )
        host.validate()
        return host

    def validate(self) -> None:
        """Cross-component consistency checks."""
        ring = self.tuning.ring_entries
        if ring is not None and ring > self.nic.max_ring_entries:
            raise ConfigurationError(
                f"{self.nic.model} supports at most "
                f"{self.nic.max_ring_entries} ring entries, got {ring}"
            )
        if self.placement is not None:
            topo = self.numa
            for core in (*self.placement.irq_cores, *self.placement.app_cores):
                topo.node_of(core)  # raises if out of range
        if self.sysctls.gso_max_size > 65536 and not (
            self.kernel.supports_big_tcp_ipv4 or self.kernel.supports_big_tcp_ipv6
        ):
            raise FeatureUnavailableError(
                "BIG TCP",
                f"kernel {self.kernel.version} predates BIG TCP "
                "(5.19 for IPv6, 6.3 for IPv4)",
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------

    @property
    def numa(self) -> NumaTopology:
        return NumaTopology(cpu=self.cpu)

    def resolved_placement(self, rng: np.random.Generator | None = None) -> CorePlacement:
        """The core placement in effect for a run.

        Explicit placement wins; otherwise irqbalance-style random
        placement when irqbalance is on (needs ``rng``), else the paper's
        pinned layout.
        """
        if self.placement is not None:
            return self.placement
        if self.tuning.irqbalance:
            if rng is None:
                raise ConfigurationError(
                    "irqbalance placement is random; pass an rng to resolve it"
                )
            return CorePlacement.irqbalanced(self.numa, rng)
        return CorePlacement.paper_pinned(self.numa)

    def core_cycles_per_sec(self) -> float:
        """Cycle budget of one busy core under this host's tuning."""
        return (
            self.cpu.cycles_per_second(turbo=True)
            * self.tuning.clock_factor
            * self.tuning.smt_factor
        )

    @property
    def stack_cost_scale(self) -> float:
        """Kernel-version efficiency multiplier for this CPU arch."""
        return self.kernel.stack_cost_scale(self.cpu.arch)

    # -- feature resolution --------------------------------------------------

    def zerocopy_available(self) -> bool:
        return self.kernel.supports_msg_zerocopy

    def require_zerocopy(self) -> None:
        if not self.zerocopy_available():
            raise FeatureUnavailableError(
                "MSG_ZEROCOPY", f"kernel {self.kernel.version} < 4.17"
            )

    def big_tcp_enabled(self) -> bool:
        return self.sysctls.gso_max_size > 65536

    def effective_gso_size(self, ipv6: bool = False) -> float:
        """The GSO super-packet size the send path actually uses."""
        limit = self.kernel.big_tcp_limit(ipv6=ipv6)
        return float(min(self.sysctls.gso_max_size, limit))

    def effective_gro_size(self, ipv6: bool = False) -> float:
        """The GRO aggregate size the receive path actually builds.

        GRO cannot aggregate beyond what arrives in a burst window, so
        the simulator may further cap this; here we apply only the
        configured/kernel limits.
        """
        limit = self.kernel.big_tcp_limit(ipv6=ipv6)
        return float(min(self.sysctls.gro_max_size, limit))

    def hw_gro_active(self) -> bool:
        """Hardware GRO (SHAMPO): needs ConnectX-7-class NIC and >= 6.11."""
        return self.nic.supports_hw_gro and self.kernel.supports_hw_gro

    def check_zerocopy_bigtcp_combo(self) -> None:
        """Stock kernels cannot run BIG TCP and MSG_ZEROCOPY together."""
        if self.big_tcp_enabled() and not self.kernel.allows_bigtcp_with_zerocopy:
            raise FeatureUnavailableError(
                "BIG TCP + MSG_ZEROCOPY",
                "both consume skb fragment slots; needs a custom kernel "
                "built with CONFIG_MAX_SKB_FRAGS=45",
            )

    def rx_ring_bytes(self) -> float:
        """Receive-ring burst capacity in bytes under current tuning."""
        entries = self.tuning.ring_entries or self.nic.default_ring_entries
        return self.nic.ring_bytes(entries, self.tuning.mtu)

    def set(self, **kwargs) -> "Host":
        """Copy with fields replaced, then re-validated."""
        new = replace(self, **kwargs)
        new.validate()
        return new

    def describe(self) -> str:
        """Multi-line human-readable summary (examples/logs)."""
        lines = [
            f"Host {self.name}: {self.cpu.model}, {self.nic.model}, {self.kernel}",
            f"  cores: {self.cpu.total_cores} ({self.cpu.sockets} sockets), "
            f"clock {self.cpu.base_ghz}/{self.cpu.max_ghz} GHz, "
            f"SMT {'on' if self.tuning.smt_enabled else 'off'}, "
            f"governor {self.tuning.governor}",
            f"  mtu {self.tuning.mtu}, rings "
            f"{self.tuning.ring_entries or self.nic.default_ring_entries}, "
            f"iommu=pt {'yes' if self.tuning.iommu_passthrough else 'no'}, "
            f"irqbalance {'on' if self.tuning.irqbalance else 'off'}",
            f"  vm: {'none' if not self.vm.enabled else ('tuned' if self.vm.pci_passthrough and self.vm.vcpu_pinned else 'untuned')}",
        ]
        return "\n".join(lines)
