"""The sysctl surface the paper tunes.

Defaults below are stock Linux values; :func:`Sysctls.fasterdata_tuned`
returns the paper's /etc/sysctl.conf (Section III.D):

.. code-block:: none

    net.core.rmem_max=2147483647
    net.core.wmem_max=2147483647
    net.ipv4.tcp_rmem=4096 131072 2147483647
    net.ipv4.tcp_wmem=4096 16384 2147483647
    net.ipv4.tcp_no_metrics_save=1
    net.core.default_qdisc=fq
    net.core.optmem_max=1048576        # needed for MSG_ZEROCOPY

``optmem_max`` is the star of Fig. 9: it caps the ancillary buffer
space per socket, which MSG_ZEROCOPY uses for its completion
notifications.  Too small, and zerocopy sends silently fall back to
copying (with the failed-attempt overhead on top); see
:mod:`repro.tcp.zerocopy` for the mechanics.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core import units
from repro.core.errors import ConfigurationError

__all__ = ["Sysctls", "OPTMEM_DEFAULT", "OPTMEM_1MB", "OPTMEM_BEST_WAN"]

# Stock Linux default (20 KB) and the two tuned values the paper studies.
OPTMEM_DEFAULT = 20480
OPTMEM_1MB = 1048576
#: The empirically best WAN value the paper found on kernel 6.5
#: (~3.25 MB) — enough notification space for a 104 ms x 50 Gbps path.
OPTMEM_BEST_WAN = 3405376


@dataclass(frozen=True)
class TcpMem:
    """A ``tcp_rmem``/``tcp_wmem`` triple: min, default, max (bytes)."""

    min: int
    default: int
    max: int

    def __post_init__(self) -> None:
        if not self.min <= self.default <= self.max:
            raise ConfigurationError(
                f"tcp mem triple must be ordered: {self.min} {self.default} {self.max}"
            )


@dataclass(frozen=True)
class Sysctls:
    """Kernel network tunables, stock-Linux defaults."""

    rmem_max: int = 212992
    wmem_max: int = 212992
    tcp_rmem: TcpMem = field(default_factory=lambda: TcpMem(4096, 131072, 6291456))
    tcp_wmem: TcpMem = field(default_factory=lambda: TcpMem(4096, 16384, 4194304))
    tcp_no_metrics_save: bool = False
    default_qdisc: str = "fq_codel"
    optmem_max: int = OPTMEM_DEFAULT
    tcp_congestion_control: str = "cubic"
    #: BIG TCP knobs (ip link set ... gso_ipv4_max_size / gro_ipv4_max_size).
    gso_max_size: int = 65536
    gro_max_size: int = 65536

    @classmethod
    def fasterdata_tuned(cls, optmem_max: int = OPTMEM_1MB) -> "Sysctls":
        """The paper's base tuning (Section III.D)."""
        return cls(
            rmem_max=2147483647,
            wmem_max=2147483647,
            tcp_rmem=TcpMem(4096, 131072, 2147483647),
            tcp_wmem=TcpMem(4096, 16384, 2147483647),
            tcp_no_metrics_save=True,
            default_qdisc="fq",
            optmem_max=optmem_max,
        )

    # -- derived quantities --------------------------------------------------

    def max_send_window(self) -> float:
        """Largest send-side window autotuning can reach, in bytes.

        TCP autotuning grows the send buffer up to ``tcp_wmem.max`` (the
        socket-level ``wmem_max`` applies only to explicit SO_SNDBUF).
        The usable window is roughly buffer/2 due to skb overhead
        bookkeeping (``tcp_adv_win_scale`` semantics approximated).
        """
        return self.tcp_wmem.max / 2.0

    def max_recv_window(self) -> float:
        """Largest receive window autotuning can advertise, in bytes."""
        return self.tcp_rmem.max / 2.0

    def set(self, **kwargs) -> "Sysctls":
        """Return a copy with the given sysctls changed.

        Mirrors ``sysctl -w``; names use underscores as in the dataclass.
        """
        return replace(self, **kwargs)

    def enable_big_tcp(self, size: int = 196608) -> "Sysctls":
        """Raise GSO/GRO max sizes (``ip link set ... gso_ipv4_max_size``).

        The paper uses 150 KB-class sizes for its BIG TCP runs; the
        kernel caps the effective value (checked at host level where the
        kernel version is known).
        """
        if size < 65536:
            raise ConfigurationError("BIG TCP size below the 64 KB legacy max")
        return replace(self, gso_max_size=size, gro_max_size=size)

    def describe(self) -> str:
        """sysctl.conf-style rendering, for logs and examples."""
        lines = [
            f"net.core.rmem_max={self.rmem_max}",
            f"net.core.wmem_max={self.wmem_max}",
            f"net.ipv4.tcp_rmem={self.tcp_rmem.min} {self.tcp_rmem.default} {self.tcp_rmem.max}",
            f"net.ipv4.tcp_wmem={self.tcp_wmem.min} {self.tcp_wmem.default} {self.tcp_wmem.max}",
            f"net.ipv4.tcp_no_metrics_save={int(self.tcp_no_metrics_save)}",
            f"net.core.default_qdisc={self.default_qdisc}",
            f"net.core.optmem_max={self.optmem_max}",
            f"net.ipv4.tcp_congestion_control={self.tcp_congestion_control}",
        ]
        return "\n".join(lines)
