"""Generic parameter-sweep utilities.

Several analyses want "run this flow configuration over a grid of one
or two parameters and collect a metric" — the optmem sweep, pacing
sweeps, kernel ladders, and user what-ifs.  :func:`sweep1d` and
:func:`sweep2d` capture that pattern once, returning labelled records
that render as tables or feed further analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

__all__ = ["SweepPoint", "SweepResult", "sweep1d", "sweep2d"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point and its measured metrics."""

    params: dict
    metrics: dict


@dataclass
class SweepResult:
    """All points of a sweep, with table rendering."""

    name: str
    points: list[SweepPoint] = field(default_factory=list)

    def column(self, key: str) -> list:
        """Metric (or parameter) values in sweep order."""
        out = []
        for p in self.points:
            if key in p.metrics:
                out.append(p.metrics[key])
            else:
                out.append(p.params.get(key))
        return out

    def best(self, metric: str, maximize: bool = True) -> SweepPoint:
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p.metrics[metric])

    def render(self) -> str:
        if not self.points:
            return f"{self.name}: (empty sweep)"
        param_keys = list(self.points[0].params)
        metric_keys = list(self.points[0].metrics)
        headers = param_keys + metric_keys
        rows = [
            [str(p.params[k]) for k in param_keys]
            + [f"{p.metrics[k]:.2f}" if isinstance(p.metrics[k], float) else str(p.metrics[k])
               for k in metric_keys]
            for p in self.points
        ]
        widths = [
            max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)
        ]
        lines = [
            self.name,
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines += [" | ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
        return "\n".join(lines)


def sweep1d(
    name: str,
    param: str,
    values: Iterable,
    measure: Callable[..., dict],
) -> SweepResult:
    """Run ``measure(param=value)`` over the grid.

    ``measure`` returns a dict of metrics for each point.
    """
    result = SweepResult(name=name)
    for value in values:
        metrics = measure(**{param: value})
        result.points.append(SweepPoint(params={param: value}, metrics=metrics))
    return result


def sweep2d(
    name: str,
    param_a: str,
    values_a: Iterable,
    param_b: str,
    values_b: Iterable,
    measure: Callable[..., dict],
) -> SweepResult:
    """Run ``measure`` over the cross product of two parameter grids."""
    result = SweepResult(name=name)
    values_b = list(values_b)
    for a in values_a:
        for b in values_b:
            metrics = measure(**{param_a: a, param_b: b})
            result.points.append(
                SweepPoint(params={param_a: a, param_b: b}, metrics=metrics)
            )
    return result
