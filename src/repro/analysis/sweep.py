"""Generic parameter-sweep utilities.

Several analyses want "run this flow configuration over a grid of one
or two parameters and collect a metric" — the optmem sweep, pacing
sweeps, kernel ladders, and user what-ifs.  :func:`sweep1d` and
:func:`sweep2d` capture that pattern once, returning labelled records
that render as tables or feed further analysis.

Both take an optional ``executor`` (anything with an order-preserving
``map(fn, items) -> list`` method, e.g.
:class:`~repro.runner.executors.ProcessExecutor`) so independent grid
points can run on worker processes; the default is an inline serial
loop.  Point order in the result is the grid order either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Iterable

__all__ = ["SweepPoint", "SweepResult", "sweep1d", "sweep2d"]


@dataclass(frozen=True)
class SweepPoint:
    """One grid point and its measured metrics."""

    params: dict
    metrics: dict


@dataclass
class SweepResult:
    """All points of a sweep, with table rendering."""

    name: str
    points: list[SweepPoint] = field(default_factory=list)

    def column(self, key: str) -> list:
        """Metric (or parameter) values in sweep order."""
        out = []
        for p in self.points:
            if key in p.metrics:
                out.append(p.metrics[key])
            else:
                out.append(p.params.get(key))
        return out

    def best(self, metric: str, maximize: bool = True) -> SweepPoint:
        chooser = max if maximize else min
        return chooser(self.points, key=lambda p: p.metrics[metric])

    def render(self) -> str:
        if not self.points:
            return f"{self.name}: (empty sweep)"
        # Points may carry heterogeneous key sets (a measure that only
        # reports some metrics at some grid points); headers are the
        # first-seen union, missing cells render empty.
        param_keys: list[str] = []
        metric_keys: list[str] = []
        for p in self.points:
            param_keys += [k for k in p.params if k not in param_keys]
            metric_keys += [k for k in p.metrics if k not in metric_keys]

        def cell(value) -> str:
            if value is None:
                return ""
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        headers = param_keys + metric_keys
        rows = [
            [cell(p.params.get(k)) for k in param_keys]
            + [cell(p.metrics.get(k)) for k in metric_keys]
            for p in self.points
        ]
        widths = [
            max(len(h), *(len(r[i]) for r in rows)) for i, h in enumerate(headers)
        ]
        lines = [
            self.name,
            " | ".join(h.ljust(w) for h, w in zip(headers, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        lines += [" | ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
        return "\n".join(lines)


def _measure_point(measure: Callable[..., dict], params: dict) -> dict:
    """Top-level (picklable) trampoline for executor-driven sweeps."""
    return measure(**params)


def _run_grid(
    name: str,
    measure: Callable[..., dict],
    grid: list[dict],
    executor,
) -> SweepResult:
    if executor is None:
        metrics_list = [measure(**params) for params in grid]
    else:
        metrics_list = executor.map(partial(_measure_point, measure), grid)
    return SweepResult(
        name=name,
        points=[
            SweepPoint(params=params, metrics=metrics)
            for params, metrics in zip(grid, metrics_list)
        ],
    )


def sweep1d(
    name: str,
    param: str,
    values: Iterable,
    measure: Callable[..., dict],
    executor=None,
) -> SweepResult:
    """Run ``measure(param=value)`` over the grid.

    ``measure`` returns a dict of metrics for each point.  With an
    ``executor``, points run through it (``measure`` and the values
    must then be picklable); results keep grid order regardless.
    """
    grid = [{param: value} for value in values]
    return _run_grid(name, measure, grid, executor)


def sweep2d(
    name: str,
    param_a: str,
    values_a: Iterable,
    param_b: str,
    values_b: Iterable,
    measure: Callable[..., dict],
    executor=None,
) -> SweepResult:
    """Run ``measure`` over the cross product of two parameter grids."""
    values_b = list(values_b)
    grid = [
        {param_a: a, param_b: b} for a in values_a for b in values_b
    ]
    return _run_grid(name, measure, grid, executor)
