"""The paper's reported numbers, encoded for comparison.

These are the values the paper states in its text and tables (figures
are bar charts; where the text gives no number, we record the claim as
a ratio or ordering instead).  The EXPERIMENTS.md generator and the
shape-assertion tests both read from here, so there is exactly one
place that says what the paper says.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PaperClaim", "PAPER_CLAIMS", "claims_for"]


@dataclass(frozen=True)
class PaperClaim:
    """One checkable statement from the paper."""

    exp_id: str
    claim_id: str
    description: str
    #: 'ratio' claims compare two measured quantities; 'value' claims
    #: compare one measured quantity against the paper's number;
    #: 'ordering' claims only assert a direction.
    kind: str
    paper_value: float | None = None
    tolerance: float = 0.25  # relative


PAPER_CLAIMS: list[PaperClaim] = [
    # --- headline abstract numbers --------------------------------------
    PaperClaim(
        "fig05", "zc-pace-gain",
        "MSG_ZEROCOPY + pacing improves WAN throughput by up to ~35% "
        "over default", "ratio", 1.35, 0.30,
    ),
    PaperClaim(
        "fig05", "zc-alone-flat",
        "zerocopy alone does not reach the zerocopy+pacing WAN result",
        "ordering",
    ),
    PaperClaim(
        "fig05", "bigtcp-gain",
        "BIG TCP improves throughput by up to ~16%", "ratio", 1.16, 0.50,
    ),
    PaperClaim(
        "fig06", "amd-wan-gap",
        "AMD default WAN ~40% slower than LAN", "ratio", 0.6, 0.30,
    ),
    PaperClaim(
        "fig06", "amd-zc-gain",
        "zerocopy+pacing improves AMD WAN by ~85%", "ratio", 1.85, 0.30,
    ),
    PaperClaim(
        "fig09", "optmem-default-hurts",
        "default 20KB optmem: sender CPU-limited, WAN severely affected",
        "ordering",
    ),
    PaperClaim(
        "fig09", "optmem-1mb-104ms",
        "1MB optmem reaches ~40 Gbps on the 104 ms path (kernel 6.5)",
        "value", 40.0, 0.25,
    ),
    PaperClaim(
        "fig12", "kernel-65-gain",
        "kernel 6.5 ~12% faster than 5.15 (AMD)", "ratio", 1.12, 0.08,
    ),
    PaperClaim(
        "fig12", "kernel-68-gain",
        "kernel 6.8 ~17% faster than 6.5 (AMD)", "ratio", 1.17, 0.08,
    ),
    PaperClaim(
        "fig13", "kernel-lan-gain",
        "kernel 6.8 ~27% faster than 5.15 on Intel LAN", "ratio", 1.27, 0.12,
    ),
    PaperClaim(
        "fig13", "kernel-wan-flat",
        "WAN single stream identical on all kernels (50G pacing cap)",
        "ordering",
    ),
    # --- tables ----------------------------------------------------------
    PaperClaim("tab1", "lan-unpaced", "LAN unpaced ~166 Gbps", "value", 166.0, 0.10),
    PaperClaim("tab1", "lan-15g", "LAN 15G/stream ~8x15=120 Gbps", "value", 119.0, 0.05),
    PaperClaim(
        "tab2", "wan-ceiling",
        "WAN aggregate interferes above ~120 Gbps: unpaced lands ~127",
        "value", 127.0, 0.15,
    ),
    PaperClaim(
        "tab2", "wan-15g-clean",
        "15G/stream is the cleanest WAN configuration (lowest stdev)",
        "ordering",
    ),
    PaperClaim("tab3", "fc-unpaced", "flow control: unpaced ~98 Gbps", "value", 98.0, 0.08),
    PaperClaim("tab3", "fc-10g", "flow control: 10G/stream ~79 Gbps", "value", 79.0, 0.05),
    PaperClaim(
        "tab3", "fc-range-narrows",
        "pacing narrows the per-flow range (9-16 unpaced -> 10-10 at 10G)",
        "ordering",
    ),
    # --- future work -------------------------------------------------------
    PaperClaim(
        "fw-hwgro", "hwgro-1500",
        "HW GRO at 1500B MTU: ~160% improvement (24 -> 62 Gbps)",
        "ratio", 2.6, 0.40,
    ),
    PaperClaim(
        "fw-hwgro", "hwgro-9k",
        "HW GRO at 9K MTU: modest single-stream improvement",
        "ordering",
    ),
    PaperClaim(
        "var", "irqbalance-spread",
        "irqbalance: 20-55 Gbps spread on identical hardware", "ordering",
    ),
]


def claims_for(exp_id: str) -> list[PaperClaim]:
    return [c for c in PAPER_CLAIMS if c.exp_id == exp_id]
