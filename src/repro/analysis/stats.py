"""Small statistics helpers shared by harness, tests, and reports."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["Summary", "summarize", "ratio", "within"]


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of repeated measurements."""

    n: int
    mean: float
    stdev: float
    min: float
    max: float

    @property
    def cv(self) -> float:
        """Coefficient of variation (stdev / mean)."""
        return self.stdev / self.mean if self.mean else math.inf


def summarize(values) -> Summary:
    """Summary of a sequence of measurements."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sequence")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        stdev=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        max=float(arr.max()),
    )


def ratio(a: float, b: float) -> float:
    """a/b guarded against division by ~zero."""
    if abs(b) < 1e-12:
        return math.inf
    return a / b


def within(value: float, target: float, rel_tol: float) -> bool:
    """True when ``value`` is within ``rel_tol`` (relative) of ``target``."""
    if target == 0:
        return abs(value) <= rel_tol
    return abs(value - target) <= rel_tol * abs(target)
