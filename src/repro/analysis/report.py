"""Render experiment results and paper comparisons (EXPERIMENTS.md).

``build_experiments_md`` runs every registered experiment and writes a
markdown document with, per artifact: the reproduced table, the paper's
claims from :mod:`repro.analysis.paper`, and the measured counterpart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.paper import claims_for
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import all_experiment_ids
from repro.tools.harness import HarnessConfig

__all__ = ["result_to_markdown", "build_experiments_md"]


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a markdown section."""
    lines = [f"### {result.exp_id} — {result.title}", ""]
    lines.append(f"*Reproduces:* {result.paper_ref}")
    lines.append("")
    header = "| " + " | ".join(result.columns) + " |"
    rule = "|" + "|".join("---" for _ in result.columns) + "|"
    lines += [header, rule]
    for row in result.rows:
        cells = []
        for c in result.columns:
            v = row.get(c)
            cells.append(f"{v:.1f}" if isinstance(v, float) else str(v if v is not None else ""))
        lines.append("| " + " | ".join(cells) + " |")
    if result.notes:
        lines += ["", f"_{result.notes}_"]
    if result.appendix:
        lines += ["", result.appendix]
    claims = claims_for(result.exp_id)
    if claims:
        lines += ["", "Paper claims:"]
        for c in claims:
            target = f" (paper: {c.paper_value:g})" if c.paper_value else ""
            lines.append(f"- **{c.claim_id}** — {c.description}{target}")
    lines.append("")
    return "\n".join(lines)


def build_experiments_md(
    config: HarnessConfig | None = None,
    exp_ids: list[str] | None = None,
    preamble: str = "",
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir=None,
) -> str:
    """Run experiments and assemble the full markdown document.

    Routes through the parallel runner, so regeneration can fan out
    across ``jobs`` workers and reuse cached results — section order
    stays the registry (paper) order regardless.
    """
    from repro.experiments.registry import run_experiments

    config = config or HarnessConfig.bench()
    report = run_experiments(
        exp_ids or all_experiment_ids(),
        config=config,
        jobs=jobs,
        use_cache=use_cache,
        cache_dir=cache_dir,
    )
    parts = [preamble] if preamble else []
    parts += [result_to_markdown(result) for result in report.results]
    return "\n".join(parts)
