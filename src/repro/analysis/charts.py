"""Terminal bar charts for experiment results.

The paper's figures are grouped bar charts (config x RTT).  This module
renders :class:`~repro.experiments.base.ExperimentResult` rows the same
way, in plain text, so `examples/figures.py` and the CLI can show the
reproduced figures without a plotting dependency.  Error whiskers mirror
the paper's one-standard-deviation markers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.base import ExperimentResult

__all__ = ["BarChart", "chart_from_result"]

FULL = "█"
HALF = "▌"


@dataclass
class BarChart:
    """A grouped horizontal bar chart."""

    title: str
    value_label: str
    #: (group, label, value, whisker) rows in display order
    bars: list[tuple[str, str, float, float]]
    width: int = 48

    def render(self) -> str:
        if not self.bars:
            return f"{self.title}\n(no data)"
        vmax = max(v + w for _, _, v, w in self.bars) or 1.0
        label_w = max(len(b[1]) for b in self.bars)
        group_w = max(len(b[0]) for b in self.bars)
        lines = [self.title, "=" * len(self.title)]
        prev_group: str | None = None
        for group, label, value, whisker in self.bars:
            if group != prev_group:
                if prev_group is not None:
                    lines.append("")
                lines.append(f"{group}:")
                prev_group = group
            filled = value / vmax * self.width
            n_full = int(filled)
            bar = FULL * n_full + (HALF if filled - n_full >= 0.5 else "")
            whisker_mark = ""
            if whisker > 0:
                w_cells = max(1, int(round(whisker / vmax * self.width)))
                whisker_mark = "─" * (w_cells - 1) + "┤"
            lines.append(
                f"  {label:<{label_w}} |{bar}{whisker_mark} "
                f"{value:.1f} {self.value_label}"
            )
        return "\n".join(lines)


def chart_from_result(
    result: ExperimentResult,
    group_col: str,
    label_col: str,
    value_col: str = "gbps",
    whisker_col: str = "stdev",
    value_label: str = "Gbps",
    width: int = 48,
) -> BarChart:
    """Build a chart from experiment rows (grouped like the paper's
    figures: one group per RTT/path, one bar per configuration)."""
    bars = []
    for row in result.rows:
        bars.append(
            (
                str(row.get(group_col, "")),
                str(row.get(label_col, "")),
                float(row.get(value_col) or 0.0),
                float(row.get(whisker_col) or 0.0),
            )
        )
    # Cluster bars by group (first-appearance order), like the paper's
    # grouped-bar layout, regardless of row production order.
    group_order = {g: i for i, g in enumerate(dict.fromkeys(b[0] for b in bars))}
    bars.sort(key=lambda b: group_order[b[0]])
    return BarChart(
        title=f"{result.exp_id}: {result.title} [{result.paper_ref}]",
        value_label=value_label,
        bars=bars,
        width=width,
    )
