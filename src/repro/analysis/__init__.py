"""Statistics, paper-claim records, and report generation."""

from repro.analysis.charts import BarChart, chart_from_result
from repro.analysis.paper import PAPER_CLAIMS, PaperClaim, claims_for
from repro.analysis.report import build_experiments_md, result_to_markdown
from repro.analysis.stats import Summary, ratio, summarize, within
from repro.analysis.sweep import SweepPoint, SweepResult, sweep1d, sweep2d

__all__ = [
    "Summary",
    "BarChart",
    "chart_from_result",
    "SweepPoint",
    "SweepResult",
    "sweep1d",
    "sweep2d",
    "summarize",
    "ratio",
    "within",
    "PaperClaim",
    "PAPER_CLAIMS",
    "claims_for",
    "result_to_markdown",
    "build_experiments_md",
]
