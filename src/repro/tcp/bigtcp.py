"""BIG TCP configuration (GSO/GRO sizes above 64 KB).

BIG TCP (Dumazet, netdev 0x15) raises the GSO/GRO super-packet ceiling
from the legacy 64 KB to up to 512 KB, cutting the number of times the
stack is traversed per byte.  The paper tests 150 KB-class sizes via::

    ip link set dev eth100 gso_ipv4_max_size 150000 gro_ipv4_max_size 150000

Constraints reproduced here:

* needs kernel >= 5.19 (IPv6) or >= 6.3 (IPv4); the configuring tool
  (iproute2 >= 6.2) is assumed;
* cannot be combined with MSG_ZEROCOPY on stock kernels — both consume
  skb fragment slots and the stock ``MAX_SKB_FRAGS=17`` cannot hold a
  512 KB zerocopy chain.  A custom ``CONFIG_MAX_SKB_FRAGS=45`` build
  (paper §V.C) lifts this; the paper measured up to +65% with the
  combination but found it unstable (it also required an mlx5 driver
  patch), which we mirror with a configurable instability jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError, FeatureUnavailableError
from repro.host.kernel import Kernel

__all__ = ["BigTcpConfig", "PAPER_BIG_TCP_SIZE"]

#: The GSO/GRO size used in the paper's BIG TCP runs (~150 KB).
PAPER_BIG_TCP_SIZE = 153600


@dataclass(frozen=True)
class BigTcpConfig:
    """A validated BIG TCP setting for one host."""

    gso_size: int
    gro_size: int
    ipv6: bool = False

    def __post_init__(self) -> None:
        if self.gso_size < 65536 or self.gro_size < 65536:
            raise ConfigurationError(
                "BIG TCP sizes start at the 64 KB legacy maximum"
            )

    @classmethod
    def paper(cls) -> "BigTcpConfig":
        return cls(gso_size=PAPER_BIG_TCP_SIZE, gro_size=PAPER_BIG_TCP_SIZE)

    def validate_for(self, kernel: Kernel, with_zerocopy: bool = False) -> None:
        """Raise unless this kernel can run the configuration."""
        limit = kernel.big_tcp_limit(ipv6=self.ipv6)
        if limit <= 65536:
            family = "IPv6" if self.ipv6 else "IPv4"
            raise FeatureUnavailableError(
                "BIG TCP",
                f"kernel {kernel.version} lacks {family} BIG TCP "
                f"(needs {'5.19' if self.ipv6 else '6.3'}+)",
            )
        if self.gso_size > limit or self.gro_size > limit:
            raise ConfigurationError(
                f"BIG TCP size exceeds kernel limit {limit} bytes"
            )
        if with_zerocopy and not kernel.allows_bigtcp_with_zerocopy:
            raise FeatureUnavailableError(
                "BIG TCP + MSG_ZEROCOPY",
                "requires a custom kernel with CONFIG_MAX_SKB_FRAGS=45",
            )

    def effective_gso(self, kernel: Kernel) -> float:
        return float(min(self.gso_size, kernel.big_tcp_limit(ipv6=self.ipv6)))

    def effective_gro(self, kernel: Kernel) -> float:
        return float(min(self.gro_size, kernel.big_tcp_limit(ipv6=self.ipv6)))
