"""TCP stack models: segments, congestion control, pacing, zerocopy, BIG TCP."""

from repro.tcp.bigtcp import BigTcpConfig, PAPER_BIG_TCP_SIZE
from repro.tcp.cc import CC_ALGORITHMS, Bbr1, Bbr3, CongestionControl, Cubic, Reno, make_cc
from repro.tcp.pacing import PacingConfig, UINT32_MAX_BYTES
from repro.tcp.segment import SegmentGeometry
from repro.tcp.sockets import SocketProfile
from repro.tcp.zerocopy import DEFAULT_SEND_BLOCK, NOTIF_BYTES, ZerocopyModel

__all__ = [
    "SegmentGeometry",
    "CongestionControl",
    "Cubic",
    "Reno",
    "Bbr1",
    "Bbr3",
    "make_cc",
    "CC_ALGORITHMS",
    "PacingConfig",
    "UINT32_MAX_BYTES",
    "ZerocopyModel",
    "NOTIF_BYTES",
    "DEFAULT_SEND_BLOCK",
    "BigTcpConfig",
    "PAPER_BIG_TCP_SIZE",
    "SocketProfile",
]
