"""CUBIC congestion control (RFC 8312bis), the paper's default CCA.

CUBIC grows the window as a cubic function of time since the last
congestion event::

    W(t) = C * (t - K)^3 + W_max          [in MSS units]
    K    = cbrt(W_max * (1 - beta) / C)

with ``C = 0.4`` and ``beta = 0.7``.  At ``t = 0`` (just after the
multiplicative decrease) ``W = beta * W_max``; the window plateaus near
``W_max`` around ``t = K`` and then probes beyond it — the
concave/convex shape that makes CUBIC RTT-fair on long paths.

TCP-friendliness: CUBIC also tracks the window standard AIMD (Reno)
would have reached and uses it when larger, which matters at low BDP —
the LAN cases of the paper.

The fluid simulator calls :meth:`on_tick` every ``dt``; since CUBIC's
window is an explicit function of elapsed time, the tick update simply
re-evaluates W(t).
"""

from __future__ import annotations

from repro.tcp.cc.base import CongestionControl

__all__ = ["Cubic"]


class Cubic(CongestionControl):
    """CUBIC per RFC 8312bis, fluid-adapted."""

    name = "cubic"
    C = 0.4  # scaling constant, segments/sec^3
    BETA = 0.7  # multiplicative decrease factor

    def __init__(self, mss: float = 8960.0, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self._w_max_seg = 0.0  # window (MSS) at last congestion event
        self._epoch_start: float | None = None
        self._k = 0.0
        # Reno-tracking state for the TCP-friendly region.  The slope is
        # the standard 3(1-beta)/(1+beta) segments per cwnd of ACKs;
        # precomputed from (possibly instance-level) BETA so TunableCubic
        # can shadow BETA or override the slope outright.
        self._w_est_seg = 0.0
        self._alpha = 3.0 * (1.0 - self.BETA) / (1.0 + self.BETA)

    # ------------------------------------------------------------------

    def _w_cubic_seg(self, t: float) -> float:
        # Written as an explicit product (not ``** 3``) so the batched
        # kernel (repro.tcp.cc.batch) can mirror the arithmetic bit for
        # bit: numpy's integer-power ufunc and libm's pow round the cube
        # differently by 1 ulp, which would break kernel byte-parity.
        d = t - self._k
        return self.C * (d * d * d) + self._w_max_seg

    def _open_epoch(self, now: float, w_max_seg: float, w_start_seg: float) -> None:
        """Start a cubic epoch: W grows from ``w_start`` toward ``w_max``.

        ``K`` is chosen so that W(0) == w_start, the RFC's formula
        generalized to any starting window (it reduces to the standard
        K when w_start == beta * w_max).
        """
        self._w_max_seg = w_max_seg
        delta = max(0.0, (w_max_seg - w_start_seg) / self.C)
        self._k = delta ** (1.0 / 3.0)
        self._epoch_start = now
        self._w_est_seg = w_start_seg

    def on_tick(self, now: float, dt: float, delivered_bytes: float, rtt: float) -> None:
        st = self.state
        if st.in_slow_start:
            self._slow_start_tick(delivered_bytes)
            if st.in_slow_start:
                return
            self._open_epoch(now, st.cwnd_bytes / self.mss, st.cwnd_bytes / self.mss)
        if self._epoch_start is None:
            self._open_epoch(now, st.cwnd_bytes / self.mss, st.cwnd_bytes / self.mss)

        t = now - self._epoch_start
        target_seg = self._w_cubic_seg(t)

        # TCP-friendly (Reno-equivalent) estimate: grows ``_alpha``
        # segments per delivered cwnd of ACKs.
        if st.cwnd_bytes > 0 and rtt > 0:
            self._w_est_seg += self._alpha * (delivered_bytes / st.cwnd_bytes)

        new_bytes = max(target_seg, self._w_est_seg) * self.mss
        if new_bytes > st.cwnd_bytes:
            st.cwnd_bytes = new_bytes

    def on_app_limited(self, now: float, dt: float) -> None:
        """Freeze the cubic clock while app-limited: W(t) is a function
        of time-in-epoch, so the epoch origin slides forward with us."""
        if self._epoch_start is not None:
            # Legitimate duration integral: the epoch *origin* slides
            # with app-limited wall time; there is no closed form.
            self._epoch_start += dt  # repro: noqa-FLOAT002

    def _react_to_loss(self, now: float, rtt: float) -> None:
        st = self.state
        w_seg = st.cwnd_bytes / self.mss
        # Fast convergence: when the peak is lower than last time,
        # remember a further-reduced W_max to release bandwidth sooner.
        if w_seg < self._w_max_seg:
            w_max = w_seg * (1.0 + self.BETA) / 2.0
        else:
            w_max = w_seg
        st.cwnd_bytes = max(2 * self.mss, st.cwnd_bytes * self.BETA)
        st.ssthresh_bytes = st.cwnd_bytes
        st.in_slow_start = False
        self._open_epoch(now, w_max, st.cwnd_bytes / self.mss)

    def _react_to_timeout(self, now: float) -> None:
        """RTO: forget the epoch entirely (mirrors Linux's state reset on
        entering TCP_CA_Loss).  The next congestion-avoidance tick opens
        a fresh epoch from wherever slow start ends, and fast convergence
        must not compare against the pre-timeout peak."""
        self._w_max_seg = 0.0
        self._epoch_start = None
        self._k = 0.0
        self._w_est_seg = 0.0
