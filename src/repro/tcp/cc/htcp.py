"""H-TCP (Leith & Shorten), time-based high-BDP congestion avoidance.

Where HighSpeed keys its aggressiveness on the *window*, H-TCP keys it
on the *time elapsed since the last congestion event*: for the first
``DELTA_L = 1`` second after backoff it behaves like Reno, after that
the per-RTT increase grows quadratically::

    alpha(delta) = 1 + 10 (delta - DELTA_L) + ((delta - DELTA_L) / 2)^2

so flows that have gone a long time without loss (big-BDP pipes) probe
aggressively, while short-epoch flows compete like standard TCP.  The
backoff factor adapts to queue standing: ``beta = RTT_min / RTT_max``
over the epoch, clipped to ``[0.5, 0.8]`` — an empty-queue path backs
off gently (0.8), a deeply-queued one halves like Reno.

The quadratic is written ``half * half`` with ``half = ex * 0.5`` (not
``** 2``) so the batched stepper can mirror it bit for bit; the epoch
clock slides under app-limiting exactly like CUBIC's epoch origin, and
an RTO discards the clock entirely via :meth:`_react_to_timeout` —
otherwise the first post-recovery tick would inherit a huge ``delta``
and grow the fresh 2-MSS window at hundreds of segments per RTT.
"""

from __future__ import annotations

from repro.tcp.cc.base import CongestionControl

__all__ = ["HTcp"]


class HTcp(CongestionControl):
    """H-TCP: quadratic-in-time increase, RTT-ratio adaptive backoff."""

    name = "htcp"
    #: Low-speed region: behave like Reno for this long after a loss.
    DELTA_L = 1.0
    BETA_MIN = 0.5
    BETA_MAX = 0.8

    def __init__(self, mss: float = 8960.0, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        #: Start of the current increase epoch (None until congestion
        #: avoidance begins, and again after an RTO).
        self._delta_start: float | None = None
        # Per-epoch RTT extremes for the adaptive backoff.
        self._rtt_min = float("inf")
        self._rtt_max = 0.0

    def _alpha(self, delta: float) -> float:
        if delta <= self.DELTA_L:
            return 1.0
        ex = delta - self.DELTA_L
        half = ex * 0.5
        return 1.0 + 10.0 * ex + half * half

    def on_tick(self, now: float, dt: float, delivered_bytes: float, rtt: float) -> None:
        st = self.state
        if rtt > 0:
            if rtt < self._rtt_min:
                self._rtt_min = rtt
            if rtt > self._rtt_max:
                self._rtt_max = rtt
        if st.in_slow_start:
            self._slow_start_tick(delivered_bytes)
            if st.in_slow_start:
                return
            self._delta_start = now
        if self._delta_start is None:
            self._delta_start = now
        if st.cwnd_bytes <= 0 or rtt <= 0:
            return
        a = self._alpha(now - self._delta_start)
        st.cwnd_bytes += a * (self.mss * (delivered_bytes / st.cwnd_bytes))

    def on_app_limited(self, now: float, dt: float) -> None:
        """alpha is a function of time-in-epoch, so the epoch origin
        slides with app-limited wall time (same rule as CUBIC)."""
        if self._delta_start is not None:
            # Legitimate duration integral: no closed form for the slide.
            self._delta_start += dt  # repro: noqa-FLOAT002

    def _react_to_loss(self, now: float, rtt: float) -> None:
        st = self.state
        if self._rtt_max > 0.0:
            beta = self._rtt_min / self._rtt_max
            if beta < self.BETA_MIN:
                beta = self.BETA_MIN
            elif beta > self.BETA_MAX:
                beta = self.BETA_MAX
        else:
            beta = self.BETA_MIN
        st.cwnd_bytes = max(2 * self.mss, st.cwnd_bytes * beta)
        st.ssthresh_bytes = st.cwnd_bytes
        st.in_slow_start = False
        self._delta_start = now
        self._rtt_min = float("inf")
        self._rtt_max = 0.0

    def _react_to_timeout(self, now: float) -> None:
        """RTO: the epoch clock and its RTT extremes are meaningless for
        the post-recovery window; restart both when avoidance resumes."""
        self._delta_start = None
        self._rtt_min = float("inf")
        self._rtt_max = 0.0
