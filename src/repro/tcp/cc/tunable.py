"""TCPTuner-style CUBIC with runtime-settable alpha / beta / C.

"TCPTuner: Congestion Control Your Way" (Miller & Hsiao) exposes
CUBIC's compiled-in constants as knobs.  This class does the same for
the fluid model: ``c`` scales the cubic growth term, ``beta`` the
multiplicative decrease, and ``alpha`` the TCP-friendly Reno-tracking
slope (default: the standard ``3(1-beta)/(1+beta)`` derived from the
chosen beta).  A parameter sweep is then just a set of flow kinds —
``make_cc`` accepts ``"tunable-cubic:alpha=1.5,beta=0.5,c=0.8"`` — so
an alpha x beta grid is an ordinary experiment campaign
(``repro run cc-tuner``).

The implementation *is* :class:`~repro.tcp.cc.cubic.Cubic`: the knobs
shadow the class constants as instance attributes, which the parent's
methods already read through ``self``.  The batch layer keeps these
per-flow (a ``_TunableCubicBatch`` carries parameter arrays), so mixed
parameterizations batch together.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.tcp.cc.cubic import Cubic

__all__ = ["TunableCubic"]


class TunableCubic(Cubic):
    """CUBIC whose C / beta / alpha are constructor parameters."""

    name = "tunable-cubic"

    def __init__(
        self,
        mss: float = 8960.0,
        initial_cwnd_segments: int = 10,
        *,
        alpha: float | None = None,
        beta: float = Cubic.BETA,
        c: float = Cubic.C,
    ):
        beta = float(beta)
        c = float(c)
        if not 0.0 < beta < 1.0:
            raise ConfigurationError(f"tunable-cubic beta must be in (0, 1), got {beta}")
        if c <= 0.0:
            raise ConfigurationError(f"tunable-cubic c must be positive, got {c}")
        # Shadow the class constants before Cubic.__init__ derives the
        # default TCP-friendly slope from self.BETA.
        self.BETA = beta
        self.C = c
        super().__init__(mss, initial_cwnd_segments)
        if alpha is not None:
            alpha = float(alpha)
            if alpha <= 0.0:
                raise ConfigurationError(
                    f"tunable-cubic alpha must be positive, got {alpha}"
                )
            self._alpha = alpha
