"""Congestion-control algorithms.

CUBIC (paper default), BBRv1/v3, Reno, and the high-BDP zoo: HighSpeed
(RFC 3649), H-TCP, Scalable, Westwood+, and a TCPTuner-style CUBIC with
constructor-parameter alpha/beta/C.
"""

from repro.core.errors import ConfigurationError
from repro.tcp.cc.base import CcState, CongestionControl
from repro.tcp.cc.bbr import Bbr1, Bbr3
from repro.tcp.cc.cubic import Cubic
from repro.tcp.cc.highspeed import HighSpeed
from repro.tcp.cc.htcp import HTcp
from repro.tcp.cc.reno import Reno
from repro.tcp.cc.scalable import Scalable
from repro.tcp.cc.tunable import TunableCubic
from repro.tcp.cc.westwood import WestwoodPlus

__all__ = [
    "CongestionControl",
    "CcState",
    "Cubic",
    "Reno",
    "Bbr1",
    "Bbr3",
    "HighSpeed",
    "HTcp",
    "Scalable",
    "WestwoodPlus",
    "TunableCubic",
    "make_cc",
    "CC_ALGORITHMS",
]

CC_ALGORITHMS = {
    "cubic": Cubic,
    "reno": Reno,
    "bbr1": Bbr1,
    "bbr": Bbr1,
    "bbr3": Bbr3,
    "highspeed": HighSpeed,
    "htcp": HTcp,
    "scalable": Scalable,
    "westwood": WestwoodPlus,
    "westwood+": WestwoodPlus,
    "tunable-cubic": TunableCubic,
}


def _parse_params(raw: str, name: str) -> dict[str, float]:
    """Parse ``key=value,key=value`` from a parameterized cc name."""
    params: dict[str, float] = {}
    for part in raw.split(","):
        key, eq, val = part.partition("=")
        key = key.strip()
        if not eq or not key:
            raise ConfigurationError(
                f"malformed cc parameter {part!r} in {name!r}; "
                f"expected 'key=value[,key=value...]'"
            )
        try:
            params[key] = float(val)
        except ValueError:
            raise ConfigurationError(
                f"cc parameter {key}={val.strip()!r} in {name!r} is not a number"
            ) from None
    return params


def make_cc(name: str, mss: float = 8960.0) -> CongestionControl:
    """Instantiate a congestion-control algorithm by sysctl-style name.

    Parameterized algorithms append ``:key=value,...`` to the name —
    e.g. ``"tunable-cubic:alpha=1.5,beta=0.5"`` — mirroring how a sweep
    would set the module parameters of a real pluggable CC.  The full
    string is a valid :class:`~repro.sim.flowsim.FlowSpec.cc` kind, so
    parameterized flows work through every path (harness, vector
    batching, sharding) that plain kinds do.
    """
    base, _, raw = name.partition(":")
    try:
        cls = CC_ALGORITHMS[base.strip().lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown congestion control {base.strip()!r}; "
            f"have {sorted(set(CC_ALGORITHMS))}"
        ) from None
    if not raw:
        return cls(mss=mss)
    params = _parse_params(raw, name)
    try:
        return cls(mss=mss, **params)
    except TypeError:
        raise ConfigurationError(
            f"cc {base.strip()!r} does not accept parameters {sorted(params)}"
        ) from None
