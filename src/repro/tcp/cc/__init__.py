"""Congestion-control algorithms: CUBIC (paper default), BBRv1/v3, Reno."""

from repro.core.errors import ConfigurationError
from repro.tcp.cc.base import CcState, CongestionControl
from repro.tcp.cc.bbr import Bbr1, Bbr3
from repro.tcp.cc.cubic import Cubic
from repro.tcp.cc.reno import Reno

__all__ = [
    "CongestionControl",
    "CcState",
    "Cubic",
    "Reno",
    "Bbr1",
    "Bbr3",
    "make_cc",
    "CC_ALGORITHMS",
]

CC_ALGORITHMS = {
    "cubic": Cubic,
    "reno": Reno,
    "bbr1": Bbr1,
    "bbr": Bbr1,
    "bbr3": Bbr3,
}


def make_cc(name: str, mss: float = 8960.0) -> CongestionControl:
    """Instantiate a congestion-control algorithm by sysctl-style name."""
    try:
        cls = CC_ALGORITHMS[name.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown congestion control {name!r}; "
            f"have {sorted(set(CC_ALGORITHMS))}"
        ) from None
    return cls(mss=mss)
