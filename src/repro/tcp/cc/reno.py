"""NewReno-style AIMD congestion control.

Not used in the paper's headline results (CUBIC is the configured
algorithm), but included as the canonical baseline: one MSS of window
growth per RTT in congestion avoidance, halving on loss.  Useful in
tests as the simplest-possible CC against which CUBIC/BBR behaviour can
be contrasted.
"""

from __future__ import annotations

from repro.tcp.cc.base import CongestionControl

__all__ = ["Reno"]


class Reno(CongestionControl):
    """Classic AIMD: +1 MSS per RTT, x0.5 on loss."""

    name = "reno"
    BETA = 0.5

    def on_tick(self, now: float, dt: float, delivered_bytes: float, rtt: float) -> None:
        st = self.state
        if st.in_slow_start:
            self._slow_start_tick(delivered_bytes)
            return
        if st.cwnd_bytes <= 0 or rtt <= 0:
            return
        # cwnd += MSS * (bytes acked / cwnd): one MSS per cwnd of ACKs.
        st.cwnd_bytes += self.mss * (delivered_bytes / st.cwnd_bytes)

    def _react_to_loss(self, now: float, rtt: float) -> None:
        st = self.state
        st.ssthresh_bytes = max(2 * self.mss, st.cwnd_bytes * self.BETA)
        st.cwnd_bytes = st.ssthresh_bytes
        st.in_slow_start = False
