"""Batched congestion-control state for the vectorized tick kernel.

The scalar simulator keeps one :class:`~repro.tcp.cc.base.CongestionControl`
object per flow and advances them in a Python loop every tick.  For the
vector kernel (``REPRO_SIM_KERNEL=vector``) this module groups flows by
algorithm and keeps each group's state in flat numpy arrays, so a tick
touches every window with O(1) Python-level work.

Stepper registry
----------------
Each array-batched algorithm registers its stepper with the
:func:`batch_stepper` decorator, which stamps the CC class's
``batch_group`` attribute and appends to one ordered ``_REGISTRY``
list.  That single list drives *both* :class:`CcBatch` constructors —
the object path (``__init__``) and the template path (``from_kinds``) —
so their group ordering cannot diverge (it used to be hard-coded twice,
and a divergence would silently break scalar<->batch digest parity).
Dispatch walks the CC class's MRO: a class with its own registration
batches; a class that *inherits* a stepper without registering its own
raises (the parent's stepper would compute the parent's dynamics for
the subclass's flows — silently demoting it to the slow object path,
the old behaviour, is exactly the bug this replaces); a class with
``batch_group = None`` anywhere on the MRO runs as scalar objects in an
:class:`_ObjectGroup`.

Byte-parity discipline
----------------------
The arrays must produce *bit-identical* trajectories to the scalar
objects, because golden digests and trace ``events_digest`` values are
compared across kernels.  Three rules make that provable:

* every formula is a literal transcription of the scalar method with
  the same association (e.g. ``C * (d * d * d)`` — see
  :meth:`~repro.tcp.cc.cubic.Cubic._w_cubic_seg` — because elementwise
  float64 ``+ - * /`` round identically in numpy ufuncs and CPython);
* rare per-event work (loss reactions and RTO collapses, which need
  real cube roots or per-flow branches) stays scalar: it loops over the
  handful of affected flows running the same arithmetic the object
  method runs;
* algorithms whose state does not vectorize (BBR's windowed-max deques)
  fall back to the scalar objects inside an :class:`_ObjectGroup`, so
  they are not merely equivalent but literally the same code.

Table-driven responses (HighSpeed's RFC 3649 a/b lookup) precompute
their tables once at import; the per-tick work is then a
``searchsorted`` — the same comparisons ``bisect`` runs in the scalar
class — plus the elementwise subset.

Flow-local event order is preserved (loss -> tick -> clamp per flow and
flows are independent), so reordering the loops across flows cannot
change any number.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigurationError
from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.cubic import Cubic
from repro.tcp.cc.highspeed import A_STEP, B_STEP, W_BOUNDS, HighSpeed
from repro.tcp.cc.htcp import HTcp
from repro.tcp.cc.reno import Reno
from repro.tcp.cc.scalable import Scalable
from repro.tcp.cc.tunable import TunableCubic
from repro.tcp.cc.westwood import WestwoodPlus

__all__ = [
    "CcBatch",
    "batch_stepper",
    "group_class_for",
    "is_batchable",
    "template_kinds",
]


#: (CC class, stepper class) in registration order — the one canonical
#: group ordering shared by both :class:`CcBatch` constructors.
_REGISTRY: list[tuple[type[CongestionControl], type["_ArrayGroup"]]] = []


def batch_stepper(cc_cls: type[CongestionControl]):
    """Class decorator: register an :class:`_ArrayGroup` for ``cc_cls``."""

    def register(group_cls: type["_ArrayGroup"]) -> type["_ArrayGroup"]:
        cc_cls.batch_group = group_cls
        _REGISTRY.append((cc_cls, group_cls))
        return group_cls

    return register


def group_class_for(cc_cls: type) -> type["_ArrayGroup"] | None:
    """The stepper for ``cc_cls``, ``None`` for the object path.

    Raises :class:`ConfigurationError` for a subclass of an
    array-batched algorithm that has no registration of its own —
    never silently degrade, never silently compute the wrong dynamics.
    """
    for klass in cc_cls.__mro__:
        if "batch_group" not in vars(klass):
            continue
        group = vars(klass)["batch_group"]
        if group is None or klass is cc_cls:
            return group
        raise ConfigurationError(
            f"{cc_cls.__name__} inherits {klass.__name__}'s batch stepper "
            f"{group.__name__} but registers none of its own; add a "
            f"@batch_stepper({cc_cls.__name__}) stepper in "
            f"repro.tcp.cc.batch, or set batch_group = None on "
            f"{cc_cls.__name__} to run it as scalar objects"
        )
    return None


def is_batchable(kind: str) -> bool:
    """Whether a cc *kind* string names a template-batchable algorithm.

    Accepts the same parameterized kind grammar as
    :func:`repro.tcp.cc.make_cc` (``"tunable-cubic:c=0.8,beta=0.9"``).
    This is the one batchability predicate shared by every consumer of
    the registry — the sharded simulator's validation and the QUIC
    stack's pacer/cc wiring both route through it, so "which kinds can
    batch" has exactly one answer.
    """
    from repro.tcp.cc import CC_ALGORITHMS

    base = kind.partition(":")[0].strip().lower()
    cc_cls = CC_ALGORITHMS.get(base)
    return cc_cls is not None and group_class_for(cc_cls) is not None


def template_kinds() -> list[str]:
    """Registered algorithm names that support template batching."""
    from repro.tcp.cc import CC_ALGORITHMS

    return sorted(
        name
        for name, cc_cls in CC_ALGORITHMS.items()
        if group_class_for(cc_cls) is not None
    )


class _ArrayGroup:
    """Shared slow-start machinery for array-backed algorithm groups."""

    def __init__(self, idx: np.ndarray, ccs: list[CongestionControl]) -> None:
        g = len(ccs)
        self.idx = idx
        #: True when this group holds every flow in natural order, so
        #: per-flow inputs can be used directly instead of gathered and
        #: the group window array can back the full ``CcBatch.cwnd``.
        self.full = False
        self.mss = ccs[0].mss
        self.cwnd = np.array([cc.state.cwnd_bytes for cc in ccs])
        self.ssthresh = np.array([cc.state.ssthresh_bytes for cc in ccs])
        self.in_ss = np.array([cc.state.in_slow_start for cc in ccs])
        self.any_ss = bool(self.in_ss.any())
        self.last_loss = np.full(g, float("-inf"))
        self.loss_events = np.zeros(g, dtype=int)

    @classmethod
    def _from_template(
        cls, idx: np.ndarray, template: CongestionControl
    ) -> "_ArrayGroup":
        """Build a group by replicating one template CC's initial state.

        The per-object constructor reads identical freshly-constructed
        state from every object of a kind, so replicating one template's
        values produces the same arrays without materializing one Python
        CC object per flow — the massive-flow (sharded) path relies on
        this to stay O(kinds) rather than O(flows) at setup.
        """
        self = cls.__new__(cls)
        g = int(idx.size)
        self.idx = idx
        self.full = False
        self.mss = template.mss
        self.cwnd = np.full(g, float(template.state.cwnd_bytes))
        self.ssthresh = np.full(g, float(template.state.ssthresh_bytes))
        self.in_ss = np.full(g, bool(template.state.in_slow_start))
        self.any_ss = bool(self.in_ss.any())
        self.last_loss = np.full(g, float("-inf"))
        self.loss_events = np.zeros(g, dtype=int)
        return self

    def pacing(self, rtt: float, pace: np.ndarray) -> None:
        return  # loss-based algorithms are window-limited (pacing_rate None)

    def _slow_start(self, delivered: np.ndarray, ss_idx: np.ndarray) -> np.ndarray:
        """Advance slow start for ``ss_idx``; returns the exiting subset.

        Mirrors ``CongestionControl._slow_start_tick``: cwnd grows by the
        ACKed bytes and collapses onto ssthresh on crossing.
        """
        self.cwnd[ss_idx] += delivered[ss_idx]
        ex = ss_idx[self.cwnd[ss_idx] >= self.ssthresh[ss_idx]]
        if ex.size:
            self.cwnd[ex] = self.ssthresh[ex]
            self.in_ss[ex] = False
            self.any_ss = bool(self.in_ss.any())
        return ex

    def _loss_gate(self, now: float, rtt: float, pos: int) -> bool:
        """Rate limit mirroring ``CongestionControl.on_loss``."""
        if now - self.last_loss[pos] < CongestionControl.LOSS_REACTION_RTTS * rtt:
            return False
        self.last_loss[pos] = now
        self.loss_events[pos] += 1
        return True

    def timeout_one(self, now: float, pos: int) -> tuple[float, float]:
        """Scalar transcription of ``CongestionControl.on_timeout`` for
        one flow; subclass epoch state resets via :meth:`_timeout_reset`
        (the batch mirror of ``_react_to_timeout``)."""
        before = float(self.cwnd[pos])
        self.ssthresh[pos] = max(2 * self.mss, self.cwnd[pos] * 0.5)
        self.cwnd[pos] = 2 * self.mss
        if not self.in_ss[pos]:
            self.in_ss[pos] = True
            self.any_ss = True
        self.loss_events[pos] += 1
        self.last_loss[pos] = now
        self._timeout_reset(now, pos)
        return before, float(self.cwnd[pos])

    def _timeout_reset(self, now: float, pos: int) -> None:
        return

    def clamp(self, max_window: float) -> None:
        np.minimum(self.cwnd, max_window, out=self.cwnd)

    def sync(self, cwnd_full: np.ndarray) -> None:
        if cwnd_full is self.cwnd:
            return  # full group: the batch shares this very array
        cwnd_full[self.idx] = self.cwnd


#: Cubic's TCP-friendly Reno-tracking slope, 3(1-β)/(1+β) — the same
#: scalar expression ``Cubic.__init__`` evaluates, precomputed once.
_CUBIC_ALPHA = 3.0 * (1.0 - Cubic.BETA) / (1.0 + Cubic.BETA)


@batch_stepper(Cubic)
class _CubicBatch(_ArrayGroup):
    """Array transcription of :class:`~repro.tcp.cc.cubic.Cubic`.

    The CUBIC constants live in ``self._c`` / ``self._beta`` /
    ``self._alpha`` — Python floats here, per-flow arrays in the
    :class:`_TunableCubicBatch` subclass.  Elementwise multiplication
    by a scalar and by an array of that scalar round identically, so
    the shared formulas stay bit-exact in both shapes.
    """

    def __init__(self, idx: np.ndarray, ccs: list[Cubic]) -> None:
        super().__init__(idx, ccs)
        self._init_cubic_state(len(ccs))
        self._init_params(ccs)

    @classmethod
    def _from_template(cls, idx: np.ndarray, template: Cubic) -> "_CubicBatch":
        self = super()._from_template(idx, template)
        self._init_cubic_state(int(idx.size))
        self._init_template_params(template, int(idx.size))
        return self

    def _init_cubic_state(self, g: int) -> None:
        self.w_max = np.zeros(g)
        self.k = np.zeros(g)
        # NaN encodes the scalar model's ``_epoch_start is None``; the
        # bool array and count mirror it so the hot path never needs a
        # per-tick isnan scan.
        self.epoch = np.full(g, np.nan)
        self.epoch_open = np.zeros(g, dtype=bool)
        self.n_open = 0
        self.w_est = np.zeros(g)
        # Steady-state scratch buffers (out= targets only move where
        # results land, never their bits).
        self._t1 = np.empty(g)
        self._t2 = np.empty(g)

    # -- parameter plumbing (scalars here, arrays in the tunable subclass) --

    def _init_params(self, ccs: list[Cubic]) -> None:
        self._c = Cubic.C
        self._beta = Cubic.BETA
        self._alpha = _CUBIC_ALPHA

    def _init_template_params(self, template: Cubic, g: int) -> None:
        self._c = Cubic.C
        self._beta = Cubic.BETA
        self._alpha = _CUBIC_ALPHA

    def _c_at(self, sel: np.ndarray):
        return self._c

    def _alpha_at(self, sel: np.ndarray):
        return self._alpha

    def _loss_params(self, pos: int) -> tuple[float, float]:
        return self._c, self._beta

    # -----------------------------------------------------------------------

    def _open_epoch(self, now: float, sel: np.ndarray) -> None:
        """Epoch open at a slow-start exit: w_start == w_max, so the
        scalar ``delta ** (1/3)`` is exactly 0.0 and no cbrt is needed."""
        w = self.cwnd[sel] / self.mss
        self.w_max[sel] = w
        self.k[sel] = 0.0
        self.epoch[sel] = now
        self.epoch_open[sel] = True
        self.n_open += int(sel.size)
        self.w_est[sel] = w

    def tick(self, now: float, dt: float, rtt: float,
             delivered: np.ndarray, al_mask: np.ndarray) -> None:
        full = self.full
        d = delivered if full else delivered[self.idx]
        al = al_mask if full else al_mask[self.idx]
        any_al = bool(al.any())
        g = self.cwnd.size
        if not self.any_ss and not any_al and self.n_open == g:
            # Steady state: the whole group is in congestion avoidance
            # with open epochs — same formulas (left-to-right, with
            # commutative swaps like ``x * C`` for ``C * x`` that round
            # identically), no gathers, scatters, or allocations.
            b1, b2 = self._t1, self._t2
            np.subtract(now, self.epoch, out=b1)  # t
            np.subtract(b1, self.k, out=b1)  # dd
            np.multiply(b1, b1, out=b2)
            np.multiply(b2, b1, out=b2)  # dd**3
            np.multiply(b2, self._c, out=b2)
            np.add(b2, self.w_max, out=b2)  # target
            if rtt > 0:
                # min(cwnd) > 0 iff every cwnd > 0 (no NaNs here); one
                # reduce is cheaper than a compare plus .all().
                if float(np.minimum.reduce(self.cwnd)) > 0.0:
                    np.divide(d, self.cwnd, out=b1)
                    np.multiply(b1, self._alpha, out=b1)
                    np.add(self.w_est, b1, out=self.w_est)
                else:
                    pi = np.nonzero(self.cwnd > 0)[0]
                    self.w_est[pi] += self._alpha_at(pi) * (d[pi] / self.cwnd[pi])
            np.maximum(b2, self.w_est, out=b2)
            np.multiply(b2, self.mss, out=b2)
            # where(new > cw, new, cw) == maximum(new, cw) bit-for-bit
            # (both operands are ordinary positive floats).
            np.maximum(b2, self.cwnd, out=self.cwnd)
            return
        if any_al and self.n_open == g and al.all():
            # Whole group app-limited with open epochs: no flow runs the
            # growth step, and the slide mask equals ``al`` (all true) —
            # a masked += with an all-true mask adds the same bits
            # elementwise.
            np.add(self.epoch, dt, out=self.epoch)
            return
        run = ~al
        if self.any_ss:
            ss = run & self.in_ss
            if ss.any():
                ex = self._slow_start(d, np.nonzero(ss)[0])
                if ex.size:
                    self._open_epoch(now, ex)
            gi = np.nonzero(run & ~self.in_ss)[0]
        else:
            gi = np.nonzero(run)[0]
        if gi.size:
            if self.n_open < g:
                need = gi[~self.epoch_open[gi]]
                if need.size:
                    self._open_epoch(now, need)
            t = now - self.epoch[gi]
            dd = t - self.k[gi]
            target = self._c_at(gi) * (dd * dd * dd) + self.w_max[gi]
            if rtt > 0:
                pi = gi[self.cwnd[gi] > 0]
                self.w_est[pi] += self._alpha_at(pi) * (d[pi] / self.cwnd[pi])
            new_bytes = np.maximum(target, self.w_est[gi]) * self.mss
            cw = self.cwnd[gi]
            self.cwnd[gi] = np.where(new_bytes > cw, new_bytes, cw)
        if any_al:
            slide = al & self.epoch_open
            if slide.any():
                # Cubic.on_app_limited: the epoch origin slides with
                # app-limited wall time (legitimate duration integral).
                self.epoch[slide] += dt  # repro: noqa-FLOAT002

    def loss_one(self, now: float, rtt: float, pos: int):
        """Scalar transcription of ``Cubic._react_to_loss`` for one flow."""
        if not self._loss_gate(now, rtt, pos):
            return None
        c, beta = self._loss_params(pos)
        before = float(self.cwnd[pos])
        w_seg = self.cwnd[pos] / self.mss
        if w_seg < self.w_max[pos]:
            w_max = w_seg * (1.0 + beta) / 2.0
        else:
            w_max = w_seg
        self.cwnd[pos] = max(2 * self.mss, self.cwnd[pos] * beta)
        self.ssthresh[pos] = self.cwnd[pos]
        if self.in_ss[pos]:
            self.in_ss[pos] = False
            self.any_ss = bool(self.in_ss.any())
        w_start = self.cwnd[pos] / self.mss
        self.w_max[pos] = w_max
        delta = max(0.0, (w_max - w_start) / c)
        self.k[pos] = delta ** (1.0 / 3.0)
        self.epoch[pos] = now
        if not self.epoch_open[pos]:
            self.epoch_open[pos] = True
            self.n_open += 1
        self.w_est[pos] = w_start
        return before, float(self.cwnd[pos])

    def _timeout_reset(self, now: float, pos: int) -> None:
        """Mirror of ``Cubic._react_to_timeout``: forget the epoch."""
        self.w_max[pos] = 0.0
        self.k[pos] = 0.0
        self.w_est[pos] = 0.0
        self.epoch[pos] = np.nan
        if self.epoch_open[pos]:
            self.epoch_open[pos] = False
            self.n_open -= 1


@batch_stepper(Reno)
class _RenoBatch(_ArrayGroup):
    """Array transcription of :class:`~repro.tcp.cc.reno.Reno`."""

    def tick(self, now: float, dt: float, rtt: float,
             delivered: np.ndarray, al_mask: np.ndarray) -> None:
        full = self.full
        d = delivered if full else delivered[self.idx]
        al = al_mask if full else al_mask[self.idx]
        run = ~al
        # Reno returns after a slow-start tick even when it exits, so the
        # avoidance set is fixed *before* the slow-start advance.
        if self.any_ss:
            ca = run & ~self.in_ss
            ss = run & self.in_ss
            if ss.any():
                self._slow_start(d, np.nonzero(ss)[0])
        else:
            ca = run
        if rtt > 0:
            ci = np.nonzero(ca)[0]
            ci = ci[self.cwnd[ci] > 0]
            if ci.size:
                cw = self.cwnd[ci]
                self.cwnd[ci] = cw + self.mss * (d[ci] / cw)

    def loss_one(self, now: float, rtt: float, pos: int):
        if not self._loss_gate(now, rtt, pos):
            return None
        before = float(self.cwnd[pos])
        self.ssthresh[pos] = max(2 * self.mss, self.cwnd[pos] * Reno.BETA)
        self.cwnd[pos] = self.ssthresh[pos]
        if self.in_ss[pos]:
            self.in_ss[pos] = False
            self.any_ss = bool(self.in_ss.any())
        return before, float(self.cwnd[pos])


@batch_stepper(HighSpeed)
class _HighSpeedBatch(_ArrayGroup):
    """Array transcription of :class:`~repro.tcp.cc.highspeed.HighSpeed`.

    ``np.searchsorted(..., side="right")`` on the import-time table
    runs the same comparisons as the scalar class's ``bisect_right`` on
    the same values, so the gathered a/b steps are identical floats.
    """

    def tick(self, now: float, dt: float, rtt: float,
             delivered: np.ndarray, al_mask: np.ndarray) -> None:
        full = self.full
        d = delivered if full else delivered[self.idx]
        al = al_mask if full else al_mask[self.idx]
        run = ~al
        # HighSpeed returns after a slow-start tick (Reno-style exit).
        if self.any_ss:
            ca = run & ~self.in_ss
            ss = run & self.in_ss
            if ss.any():
                self._slow_start(d, np.nonzero(ss)[0])
        else:
            ca = run
        if rtt > 0:
            ci = np.nonzero(ca)[0]
            ci = ci[self.cwnd[ci] > 0]
            if ci.size:
                cw = self.cwnd[ci]
                a = A_STEP[np.searchsorted(W_BOUNDS, cw / self.mss, side="right")]
                self.cwnd[ci] = cw + a * (self.mss * (d[ci] / cw))

    def loss_one(self, now: float, rtt: float, pos: int):
        if not self._loss_gate(now, rtt, pos):
            return None
        before = float(self.cwnd[pos])
        w_seg = self.cwnd[pos] / self.mss
        b = float(B_STEP[int(np.searchsorted(W_BOUNDS, w_seg, side="right"))])
        self.cwnd[pos] = max(2 * self.mss, self.cwnd[pos] * (1.0 - b))
        self.ssthresh[pos] = self.cwnd[pos]
        if self.in_ss[pos]:
            self.in_ss[pos] = False
            self.any_ss = bool(self.in_ss.any())
        return before, float(self.cwnd[pos])


@batch_stepper(HTcp)
class _HtcpBatch(_ArrayGroup):
    """Array transcription of :class:`~repro.tcp.cc.htcp.HTcp`.

    The epoch clock uses the cubic NaN encoding (``start`` is NaN while
    the scalar model's ``_delta_start`` is None, with a bool mirror).
    """

    def __init__(self, idx: np.ndarray, ccs: list[HTcp]) -> None:
        super().__init__(idx, ccs)
        self._init_htcp_state(len(ccs))

    @classmethod
    def _from_template(cls, idx: np.ndarray, template: HTcp) -> "_HtcpBatch":
        self = super()._from_template(idx, template)
        self._init_htcp_state(int(idx.size))
        return self

    def _init_htcp_state(self, g: int) -> None:
        self.start = np.full(g, np.nan)
        self.started = np.zeros(g, dtype=bool)
        self.rtt_min = np.full(g, float("inf"))
        self.rtt_max = np.zeros(g)

    def tick(self, now: float, dt: float, rtt: float,
             delivered: np.ndarray, al_mask: np.ndarray) -> None:
        full = self.full
        d = delivered if full else delivered[self.idx]
        al = al_mask if full else al_mask[self.idx]
        run = ~al
        ri = np.nonzero(run)[0]
        if rtt > 0 and ri.size:
            # `if rtt < min: min = rtt` == minimum() for NaN-free floats.
            self.rtt_min[ri] = np.minimum(self.rtt_min[ri], rtt)
            self.rtt_max[ri] = np.maximum(self.rtt_max[ri], rtt)
        if self.any_ss:
            ss = run & self.in_ss
            if ss.any():
                self._slow_start(d, np.nonzero(ss)[0])
            gi = np.nonzero(run & ~self.in_ss)[0]
        else:
            gi = ri
        if gi.size:
            # Seed the epoch clock at slow-start exit / first CA tick
            # (scalar: ``_delta_start = now`` in both branches).
            need = gi[~self.started[gi]]
            if need.size:
                self.start[need] = now
                self.started[need] = True
            if rtt > 0:
                pi = gi[self.cwnd[gi] > 0]
                if pi.size:
                    delta = now - self.start[pi]
                    ex_t = delta - HTcp.DELTA_L
                    half = ex_t * 0.5
                    a_poly = 1.0 + 10.0 * ex_t + half * half
                    # Branch select, not arithmetic — parity-safe.
                    a = np.where(delta <= HTcp.DELTA_L, 1.0, a_poly)
                    cw = self.cwnd[pi]
                    self.cwnd[pi] = cw + a * (self.mss * (d[pi] / cw))
        if al.any():
            slide = al & self.started
            if slide.any():
                # HTcp.on_app_limited: the epoch clock slides with
                # app-limited wall time (legitimate duration integral).
                self.start[slide] += dt  # repro: noqa-FLOAT002

    def loss_one(self, now: float, rtt: float, pos: int):
        if not self._loss_gate(now, rtt, pos):
            return None
        before = float(self.cwnd[pos])
        if self.rtt_max[pos] > 0.0:
            beta = self.rtt_min[pos] / self.rtt_max[pos]
            if beta < HTcp.BETA_MIN:
                beta = HTcp.BETA_MIN
            elif beta > HTcp.BETA_MAX:
                beta = HTcp.BETA_MAX
        else:
            beta = HTcp.BETA_MIN
        self.cwnd[pos] = max(2 * self.mss, self.cwnd[pos] * beta)
        self.ssthresh[pos] = self.cwnd[pos]
        if self.in_ss[pos]:
            self.in_ss[pos] = False
            self.any_ss = bool(self.in_ss.any())
        self.start[pos] = now
        self.started[pos] = True
        self.rtt_min[pos] = float("inf")
        self.rtt_max[pos] = 0.0
        return before, float(self.cwnd[pos])

    def _timeout_reset(self, now: float, pos: int) -> None:
        """Mirror of ``HTcp._react_to_timeout``: drop the epoch clock."""
        self.start[pos] = np.nan
        self.started[pos] = False
        self.rtt_min[pos] = float("inf")
        self.rtt_max[pos] = 0.0


@batch_stepper(Scalable)
class _ScalableBatch(_ArrayGroup):
    """Array transcription of :class:`~repro.tcp.cc.scalable.Scalable`."""

    def tick(self, now: float, dt: float, rtt: float,
             delivered: np.ndarray, al_mask: np.ndarray) -> None:
        full = self.full
        d = delivered if full else delivered[self.idx]
        al = al_mask if full else al_mask[self.idx]
        run = ~al
        if self.any_ss:
            ca = run & ~self.in_ss
            ss = run & self.in_ss
            if ss.any():
                self._slow_start(d, np.nonzero(ss)[0])
        else:
            ca = run
        if rtt > 0:
            ci = np.nonzero(ca)[0]
            ci = ci[self.cwnd[ci] > 0]
            if ci.size:
                cw = self.cwnd[ci]
                self.cwnd[ci] = cw + Scalable.AI * d[ci]

    def loss_one(self, now: float, rtt: float, pos: int):
        if not self._loss_gate(now, rtt, pos):
            return None
        before = float(self.cwnd[pos])
        self.cwnd[pos] = max(2 * self.mss, self.cwnd[pos] * Scalable.BETA)
        self.ssthresh[pos] = self.cwnd[pos]
        if self.in_ss[pos]:
            self.in_ss[pos] = False
            self.any_ss = bool(self.in_ss.any())
        return before, float(self.cwnd[pos])


@batch_stepper(WestwoodPlus)
class _WestwoodBatch(_ArrayGroup):
    """Array transcription of :class:`~repro.tcp.cc.westwood.WestwoodPlus`."""

    def __init__(self, idx: np.ndarray, ccs: list[WestwoodPlus]) -> None:
        super().__init__(idx, ccs)
        self._init_westwood_state(len(ccs))

    @classmethod
    def _from_template(
        cls, idx: np.ndarray, template: WestwoodPlus
    ) -> "_WestwoodBatch":
        self = super()._from_template(idx, template)
        self._init_westwood_state(int(idx.size))
        return self

    def _init_westwood_state(self, g: int) -> None:
        self.bw = np.zeros(g)
        self.acked = np.zeros(g)
        self.win_start = np.zeros(g)
        self.rtt_min = np.full(g, float("inf"))

    def tick(self, now: float, dt: float, rtt: float,
             delivered: np.ndarray, al_mask: np.ndarray) -> None:
        full = self.full
        d = delivered if full else delivered[self.idx]
        al = al_mask if full else al_mask[self.idx]
        run = ~al
        ri = np.nonzero(run)[0]
        if ri.size:
            if rtt > 0:
                self.rtt_min[ri] = np.minimum(self.rtt_min[ri], rtt)
            # Sample-window byte counter, consumed by the filter below.
            self.acked[ri] += d[ri]  # repro: noqa-FLOAT002
            if rtt > 0:
                span = now - self.win_start[ri]
                closing = span >= rtt
                ui = ri[closing]
                if ui.size:
                    sample = self.acked[ui] / span[closing]
                    self.bw[ui] = (
                        WestwoodPlus.FILTER_OLD * self.bw[ui]
                        + WestwoodPlus.FILTER_NEW * sample
                    )
                    self.acked[ui] = 0.0
                    self.win_start[ui] = now
        # Growth is exactly Reno's (returns after a slow-start tick).
        if self.any_ss:
            ca = run & ~self.in_ss
            ss = run & self.in_ss
            if ss.any():
                self._slow_start(d, np.nonzero(ss)[0])
        else:
            ca = run
        if rtt > 0:
            ci = np.nonzero(ca)[0]
            ci = ci[self.cwnd[ci] > 0]
            if ci.size:
                cw = self.cwnd[ci]
                self.cwnd[ci] = cw + self.mss * (d[ci] / cw)

    def _bdp_at(self, pos: int) -> float:
        if self.rtt_min[pos] == float("inf"):
            return 0.0
        return self.bw[pos] * self.rtt_min[pos]

    def loss_one(self, now: float, rtt: float, pos: int):
        if not self._loss_gate(now, rtt, pos):
            return None
        before = float(self.cwnd[pos])
        self.ssthresh[pos] = max(2 * self.mss, self._bdp_at(pos))
        if self.cwnd[pos] > self.ssthresh[pos]:
            self.cwnd[pos] = self.ssthresh[pos]
        if self.in_ss[pos]:
            self.in_ss[pos] = False
            self.any_ss = bool(self.in_ss.any())
        return before, float(self.cwnd[pos])

    def _timeout_reset(self, now: float, pos: int) -> None:
        """Mirror of ``WestwoodPlus._react_to_timeout``."""
        self.ssthresh[pos] = max(2 * self.mss, self._bdp_at(pos))
        self.acked[pos] = 0.0
        self.win_start[pos] = now


@batch_stepper(TunableCubic)
class _TunableCubicBatch(_CubicBatch):
    """:class:`_CubicBatch` with per-flow alpha/beta/C parameter arrays.

    The object constructor may mix parameterizations in one group; the
    template path builds one group per distinct kind string, so the
    arrays are then constant — still bit-identical, since elementwise
    array arithmetic equals the scalar-constant arithmetic lane by lane.
    """

    def _init_params(self, ccs: list[TunableCubic]) -> None:
        self._c = np.array([cc.C for cc in ccs])
        self._beta = np.array([cc.BETA for cc in ccs])
        self._alpha = np.array([cc._alpha for cc in ccs])

    def _init_template_params(self, template: TunableCubic, g: int) -> None:
        self._c = np.full(g, float(template.C))
        self._beta = np.full(g, float(template.BETA))
        self._alpha = np.full(g, float(template._alpha))

    def _c_at(self, sel: np.ndarray):
        return self._c[sel]

    def _alpha_at(self, sel: np.ndarray):
        return self._alpha[sel]

    def _loss_params(self, pos: int) -> tuple[float, float]:
        return float(self._c[pos]), float(self._beta[pos])


class _ObjectGroup:
    """Fallback: flows advanced through their scalar CC objects.

    BBR's windowed-max filters and phase wheels are deque/state-machine
    shaped; batching them buys nothing and risks divergence.  Running
    the objects directly makes parity trivial — it *is* the scalar path.
    """

    def __init__(self, idx: np.ndarray, ccs: list[CongestionControl]) -> None:
        self.idx = idx
        self.ccs = ccs

    def pacing(self, rtt: float, pace: np.ndarray) -> None:
        for pos, i in enumerate(self.idx):
            rate = self.ccs[pos].pacing_rate(rtt)
            if rate is not None:
                pace[i] = min(pace[i], rate)

    def tick(self, now: float, dt: float, rtt: float,
             delivered: np.ndarray, al_mask: np.ndarray) -> None:
        for pos, i in enumerate(self.idx):
            cc = self.ccs[pos]
            if al_mask[i]:
                cc.on_app_limited(now, dt)
            else:
                cc.on_tick(now, dt, delivered[i], rtt)

    def loss_one(self, now: float, rtt: float, pos: int):
        cc = self.ccs[pos]
        before = float(cc.cwnd_bytes)
        if cc.on_loss(now, rtt):
            return before, float(cc.cwnd_bytes)
        return None

    def timeout_one(self, now: float, pos: int) -> tuple[float, float]:
        cc = self.ccs[pos]
        before = float(cc.cwnd_bytes)
        cc.on_timeout(now)
        return before, float(cc.cwnd_bytes)

    def clamp(self, max_window: float) -> None:
        for cc in self.ccs:
            cc.clamp(max_window)

    def sync(self, cwnd_full: np.ndarray) -> None:
        for pos, i in enumerate(self.idx):
            cwnd_full[i] = self.ccs[pos].cwnd_bytes


class CcBatch:
    """Batched congestion feedback over a mixed set of flows."""

    def __init__(self, ccs: list[CongestionControl]) -> None:
        self.cwnd = np.array([cc.cwnd_bytes for cc in ccs])
        self.needs_validation = np.array(
            [cc.needs_cwnd_validation for cc in ccs]
        )
        by_group: dict[type, list[int]] = {}
        other: list[int] = []
        for i, cc in enumerate(ccs):
            gcls = group_class_for(type(cc))
            if gcls is None:
                other.append(i)
            else:
                by_group.setdefault(gcls, []).append(i)
        self._groups: list = []
        # Deterministic group order: registry (definition) order, object
        # fallback last — from_kinds derives its order from the same
        # registry list, so the two constructors cannot diverge.
        for _cc_cls, gcls in _REGISTRY:
            idx = by_group.pop(gcls, None)
            if idx:
                self._groups.append(gcls(np.array(idx), [ccs[i] for i in idx]))
        if other:
            self._groups.append(
                _ObjectGroup(np.array(other), [ccs[i] for i in other])
            )
        # flow index -> (owning group, position within the group)
        self._owner: dict[int, tuple] = {}
        for grp in self._groups:
            for pos, i in enumerate(grp.idx):
                self._owner[int(i)] = (grp, pos)
        #: Whether any flow imposes its own pacing rate (only scalar
        #: object CCs like BBR do); lets the kernel skip the fold.
        self.self_paced = any(
            isinstance(grp, _ObjectGroup) for grp in self._groups
        )
        # Homogeneous common case: one array group holding every flow
        # in natural order.  The group's state array then backs
        # ``self.cwnd`` directly — per-flow inputs need no gather, the
        # window sync no scatter.
        if len(self._groups) == 1 and isinstance(self._groups[0], _ArrayGroup):
            grp = self._groups[0]
            grp.full = True
            self.cwnd = grp.cwnd

    @classmethod
    def from_kinds(cls, kinds: list[str], mss: float) -> "CcBatch":
        """Build a batch from per-flow algorithm *names* via templates.

        The object constructor above needs one Python CC object per
        flow; at sharded campaign scale (10k–1M flows) that is the
        setup bottleneck.  Freshly-constructed CCs of a kind are
        interchangeable, so one template per kind supplies the initial
        state (:meth:`_ArrayGroup._from_template`) and group membership
        comes straight from the name list.  Parameterized kinds
        (``"tunable-cubic:alpha=..."``) group per distinct string, each
        with its own template.  Only array-backed algorithms are
        supported — object-group CCs (BBR) would need per-flow objects,
        defeating the point.
        """
        from repro.tcp.cc import CC_ALGORITHMS, make_cc

        self = cls.__new__(cls)
        n = len(kinds)
        if n == 0:
            raise ConfigurationError("need at least one flow")
        reg_pos = {cc_cls: p for p, (cc_cls, _g) in enumerate(_REGISTRY)}
        by_kind: dict[str, list[int]] = {}
        group_types: dict[str, type] = {}
        # Kind -> (registry position, first appearance): the same
        # registry order the object constructor walks, sub-ordered by
        # first appearance for parameterized variants of one algorithm.
        order: dict[str, tuple[int, int]] = {}
        for i, kind in enumerate(kinds):
            if kind not in group_types:
                base = kind.partition(":")[0].strip().lower()
                cc_cls = CC_ALGORITHMS.get(base)
                gcls = group_class_for(cc_cls) if cc_cls is not None else None
                if gcls is None:
                    raise ConfigurationError(
                        f"cc {kind!r} does not support template batching; "
                        f"choose one of {template_kinds()}"
                    )
                group_types[kind] = gcls
                order[kind] = (reg_pos[cc_cls], len(order))
            by_kind.setdefault(kind, []).append(i)
        self.cwnd = np.empty(n)
        self.needs_validation = np.empty(n, dtype=bool)
        self._groups = []
        for kind in sorted(by_kind, key=order.__getitem__):
            idx = by_kind[kind]
            template = make_cc(kind, mss=mss)
            grp = group_types[kind]._from_template(np.array(idx), template)
            self._groups.append(grp)
            self.cwnd[idx] = template.cwnd_bytes
            self.needs_validation[idx] = template.needs_cwnd_validation
        self._owner = {}
        for grp in self._groups:
            for pos, i in enumerate(grp.idx):
                self._owner[int(i)] = (grp, pos)
        self.self_paced = False
        if len(self._groups) == 1:
            grp = self._groups[0]
            grp.full = True
            self.cwnd = grp.cwnd
        return self

    def pacing(self, rtt: float, pace: np.ndarray) -> None:
        """Fold self-imposed (BBR) pacing rates into ``pace`` in place."""
        for grp in self._groups:
            grp.pacing(rtt, pace)

    def feedback(
        self,
        now: float,
        dt: float,
        rtt: float,
        delivered: np.ndarray,
        loss_idx: np.ndarray,
        al_mask: np.ndarray,
        max_window: float,
    ) -> list[tuple[int, float, float]]:
        """One tick of congestion feedback for every flow.

        Applies loss reactions for ``loss_idx`` (ascending), then the
        window advance (tick or app-limited freeze), then the socket
        clamp — the same flow-local order as the scalar loop.  Returns
        ``(flow, cwnd_before, cwnd_after)`` per *reacted* loss, for the
        driver's ``cc.loss`` trace events.
        """
        reacted: list[tuple[int, float, float]] = []
        for i in loss_idx:
            grp, pos = self._owner[int(i)]
            res = grp.loss_one(now, rtt, pos)
            if res is not None:
                reacted.append((int(i), res[0], res[1]))
        for grp in self._groups:
            grp.tick(now, dt, rtt, delivered, al_mask)
            grp.clamp(max_window)
            grp.sync(self.cwnd)
        return reacted

    def timeout(self, now: float, idx) -> list[tuple[int, float, float]]:
        """RTO collapse for the given flows (rare; scalar per flow).

        The fluid driver never starves a flow long enough to RTO — this
        exists so the timeout path has a batch transcription at all,
        keeping ``on_timeout``/``_react_to_timeout`` under the same
        scalar<->vector parity tests as the tick and loss paths.
        """
        reacted: list[tuple[int, float, float]] = []
        for i in idx:
            grp, pos = self._owner[int(i)]
            before, after = grp.timeout_one(now, pos)
            reacted.append((int(i), before, after))
        for grp in self._groups:
            grp.sync(self.cwnd)
        return reacted
