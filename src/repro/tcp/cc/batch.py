"""Batched congestion-control state for the vectorized tick kernel.

The scalar simulator keeps one :class:`~repro.tcp.cc.base.CongestionControl`
object per flow and advances them in a Python loop every tick.  For the
vector kernel (``REPRO_SIM_KERNEL=vector``) this module groups flows by
algorithm and keeps each group's state in flat numpy arrays, so a tick
touches every window with O(1) Python-level work.

Byte-parity discipline
----------------------
The arrays must produce *bit-identical* trajectories to the scalar
objects, because golden digests and trace ``events_digest`` values are
compared across kernels.  Three rules make that provable:

* every formula is a literal transcription of the scalar method with
  the same association (e.g. ``C * (d * d * d)`` — see
  :meth:`~repro.tcp.cc.cubic.Cubic._w_cubic_seg` — because elementwise
  float64 ``+ - * /`` round identically in numpy ufuncs and CPython);
* rare per-event work (loss reactions, which need a real cube root)
  stays scalar: it loops over the handful of affected flows running the
  same arithmetic the object method runs;
* algorithms whose state does not vectorize (BBR's windowed-max deques)
  fall back to the scalar objects inside an :class:`_ObjectGroup`, so
  they are not merely equivalent but literally the same code.

Flow-local event order is preserved (loss -> tick -> clamp per flow and
flows are independent), so reordering the loops across flows cannot
change any number.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import ConfigurationError
from repro.tcp.cc.base import CongestionControl
from repro.tcp.cc.cubic import Cubic
from repro.tcp.cc.reno import Reno

__all__ = ["CcBatch"]


class _ArrayGroup:
    """Shared slow-start machinery for array-backed algorithm groups."""

    def __init__(self, idx: np.ndarray, ccs: list[CongestionControl]) -> None:
        g = len(ccs)
        self.idx = idx
        #: True when this group holds every flow in natural order, so
        #: per-flow inputs can be used directly instead of gathered and
        #: the group window array can back the full ``CcBatch.cwnd``.
        self.full = False
        self.mss = ccs[0].mss
        self.cwnd = np.array([cc.state.cwnd_bytes for cc in ccs])
        self.ssthresh = np.array([cc.state.ssthresh_bytes for cc in ccs])
        self.in_ss = np.array([cc.state.in_slow_start for cc in ccs])
        self.any_ss = bool(self.in_ss.any())
        self.last_loss = np.full(g, float("-inf"))
        self.loss_events = np.zeros(g, dtype=int)

    @classmethod
    def _from_template(
        cls, idx: np.ndarray, template: CongestionControl
    ) -> "_ArrayGroup":
        """Build a group by replicating one template CC's initial state.

        The per-object constructor reads identical freshly-constructed
        state from every object of a kind, so replicating one template's
        values produces the same arrays without materializing one Python
        CC object per flow — the massive-flow (sharded) path relies on
        this to stay O(kinds) rather than O(flows) at setup.
        """
        self = cls.__new__(cls)
        g = int(idx.size)
        self.idx = idx
        self.full = False
        self.mss = template.mss
        self.cwnd = np.full(g, float(template.state.cwnd_bytes))
        self.ssthresh = np.full(g, float(template.state.ssthresh_bytes))
        self.in_ss = np.full(g, bool(template.state.in_slow_start))
        self.any_ss = bool(self.in_ss.any())
        self.last_loss = np.full(g, float("-inf"))
        self.loss_events = np.zeros(g, dtype=int)
        return self

    def pacing(self, rtt: float, pace: np.ndarray) -> None:
        return  # loss-based algorithms are window-limited (pacing_rate None)

    def _slow_start(self, delivered: np.ndarray, ss_idx: np.ndarray) -> np.ndarray:
        """Advance slow start for ``ss_idx``; returns the exiting subset.

        Mirrors ``CongestionControl._slow_start_tick``: cwnd grows by the
        ACKed bytes and collapses onto ssthresh on crossing.
        """
        self.cwnd[ss_idx] += delivered[ss_idx]
        ex = ss_idx[self.cwnd[ss_idx] >= self.ssthresh[ss_idx]]
        if ex.size:
            self.cwnd[ex] = self.ssthresh[ex]
            self.in_ss[ex] = False
            self.any_ss = bool(self.in_ss.any())
        return ex

    def _loss_gate(self, now: float, rtt: float, pos: int) -> bool:
        """Rate limit mirroring ``CongestionControl.on_loss``."""
        if now - self.last_loss[pos] < CongestionControl.LOSS_REACTION_RTTS * rtt:
            return False
        self.last_loss[pos] = now
        self.loss_events[pos] += 1
        return True

    def clamp(self, max_window: float) -> None:
        np.minimum(self.cwnd, max_window, out=self.cwnd)

    def sync(self, cwnd_full: np.ndarray) -> None:
        if cwnd_full is self.cwnd:
            return  # full group: the batch shares this very array
        cwnd_full[self.idx] = self.cwnd


#: Cubic's TCP-friendly Reno-tracking slope, 3(1-β)/(1+β) — the same
#: scalar expression ``Cubic.on_tick`` evaluates, precomputed once.
_CUBIC_ALPHA = 3.0 * (1.0 - Cubic.BETA) / (1.0 + Cubic.BETA)


class _CubicBatch(_ArrayGroup):
    """Array transcription of :class:`~repro.tcp.cc.cubic.Cubic`."""

    def __init__(self, idx: np.ndarray, ccs: list[Cubic]) -> None:
        super().__init__(idx, ccs)
        self._init_cubic_state(len(ccs))

    @classmethod
    def _from_template(cls, idx: np.ndarray, template: Cubic) -> "_CubicBatch":
        self = super()._from_template(idx, template)
        self._init_cubic_state(int(idx.size))
        return self

    def _init_cubic_state(self, g: int) -> None:
        self.w_max = np.zeros(g)
        self.k = np.zeros(g)
        # NaN encodes the scalar model's ``_epoch_start is None``; the
        # bool array and count mirror it so the hot path never needs a
        # per-tick isnan scan.
        self.epoch = np.full(g, np.nan)
        self.epoch_open = np.zeros(g, dtype=bool)
        self.n_open = 0
        self.w_est = np.zeros(g)
        # Steady-state scratch buffers (out= targets only move where
        # results land, never their bits).
        self._t1 = np.empty(g)
        self._t2 = np.empty(g)

    def _open_epoch(self, now: float, sel: np.ndarray) -> None:
        """Epoch open at a slow-start exit: w_start == w_max, so the
        scalar ``delta ** (1/3)`` is exactly 0.0 and no cbrt is needed."""
        w = self.cwnd[sel] / self.mss
        self.w_max[sel] = w
        self.k[sel] = 0.0
        self.epoch[sel] = now
        self.epoch_open[sel] = True
        self.n_open += int(sel.size)
        self.w_est[sel] = w

    def tick(self, now: float, dt: float, rtt: float,
             delivered: np.ndarray, al_mask: np.ndarray) -> None:
        full = self.full
        d = delivered if full else delivered[self.idx]
        al = al_mask if full else al_mask[self.idx]
        any_al = bool(al.any())
        g = self.cwnd.size
        if not self.any_ss and not any_al and self.n_open == g:
            # Steady state: the whole group is in congestion avoidance
            # with open epochs — same formulas (left-to-right, with
            # commutative swaps like ``x * C`` for ``C * x`` that round
            # identically), no gathers, scatters, or allocations.
            b1, b2 = self._t1, self._t2
            np.subtract(now, self.epoch, out=b1)  # t
            np.subtract(b1, self.k, out=b1)  # dd
            np.multiply(b1, b1, out=b2)
            np.multiply(b2, b1, out=b2)  # dd**3
            np.multiply(b2, Cubic.C, out=b2)
            np.add(b2, self.w_max, out=b2)  # target
            if rtt > 0:
                # min(cwnd) > 0 iff every cwnd > 0 (no NaNs here); one
                # reduce is cheaper than a compare plus .all().
                if float(np.minimum.reduce(self.cwnd)) > 0.0:
                    np.divide(d, self.cwnd, out=b1)
                    np.multiply(b1, _CUBIC_ALPHA, out=b1)
                    np.add(self.w_est, b1, out=self.w_est)
                else:
                    pi = np.nonzero(self.cwnd > 0)[0]
                    self.w_est[pi] += _CUBIC_ALPHA * (d[pi] / self.cwnd[pi])
            np.maximum(b2, self.w_est, out=b2)
            np.multiply(b2, self.mss, out=b2)
            # where(new > cw, new, cw) == maximum(new, cw) bit-for-bit
            # (both operands are ordinary positive floats).
            np.maximum(b2, self.cwnd, out=self.cwnd)
            return
        if any_al and self.n_open == g and al.all():
            # Whole group app-limited with open epochs: no flow runs the
            # growth step, and the slide mask equals ``al`` (all true) —
            # a masked += with an all-true mask adds the same bits
            # elementwise.
            np.add(self.epoch, dt, out=self.epoch)
            return
        run = ~al
        if self.any_ss:
            ss = run & self.in_ss
            if ss.any():
                ex = self._slow_start(d, np.nonzero(ss)[0])
                if ex.size:
                    self._open_epoch(now, ex)
            gi = np.nonzero(run & ~self.in_ss)[0]
        else:
            gi = np.nonzero(run)[0]
        if gi.size:
            if self.n_open < g:
                need = gi[~self.epoch_open[gi]]
                if need.size:
                    self._open_epoch(now, need)
            t = now - self.epoch[gi]
            dd = t - self.k[gi]
            target = Cubic.C * (dd * dd * dd) + self.w_max[gi]
            if rtt > 0:
                pi = gi[self.cwnd[gi] > 0]
                self.w_est[pi] += _CUBIC_ALPHA * (d[pi] / self.cwnd[pi])
            new_bytes = np.maximum(target, self.w_est[gi]) * self.mss
            cw = self.cwnd[gi]
            self.cwnd[gi] = np.where(new_bytes > cw, new_bytes, cw)
        if any_al:
            slide = al & self.epoch_open
            if slide.any():
                # Cubic.on_app_limited: the epoch origin slides with
                # app-limited wall time (legitimate duration integral).
                self.epoch[slide] += dt  # repro: noqa-FLOAT002

    def loss_one(self, now: float, rtt: float, pos: int):
        """Scalar transcription of ``Cubic._react_to_loss`` for one flow."""
        if not self._loss_gate(now, rtt, pos):
            return None
        before = float(self.cwnd[pos])
        w_seg = self.cwnd[pos] / self.mss
        if w_seg < self.w_max[pos]:
            w_max = w_seg * (1.0 + Cubic.BETA) / 2.0
        else:
            w_max = w_seg
        self.cwnd[pos] = max(2 * self.mss, self.cwnd[pos] * Cubic.BETA)
        self.ssthresh[pos] = self.cwnd[pos]
        if self.in_ss[pos]:
            self.in_ss[pos] = False
            self.any_ss = bool(self.in_ss.any())
        w_start = self.cwnd[pos] / self.mss
        self.w_max[pos] = w_max
        delta = max(0.0, (w_max - w_start) / Cubic.C)
        self.k[pos] = delta ** (1.0 / 3.0)
        self.epoch[pos] = now
        if not self.epoch_open[pos]:
            self.epoch_open[pos] = True
            self.n_open += 1
        self.w_est[pos] = w_start
        return before, float(self.cwnd[pos])


class _RenoBatch(_ArrayGroup):
    """Array transcription of :class:`~repro.tcp.cc.reno.Reno`."""

    def tick(self, now: float, dt: float, rtt: float,
             delivered: np.ndarray, al_mask: np.ndarray) -> None:
        full = self.full
        d = delivered if full else delivered[self.idx]
        al = al_mask if full else al_mask[self.idx]
        run = ~al
        # Reno returns after a slow-start tick even when it exits, so the
        # avoidance set is fixed *before* the slow-start advance.
        if self.any_ss:
            ca = run & ~self.in_ss
            ss = run & self.in_ss
            if ss.any():
                self._slow_start(d, np.nonzero(ss)[0])
        else:
            ca = run
        if rtt > 0:
            ci = np.nonzero(ca)[0]
            ci = ci[self.cwnd[ci] > 0]
            if ci.size:
                cw = self.cwnd[ci]
                self.cwnd[ci] = cw + self.mss * (d[ci] / cw)

    def loss_one(self, now: float, rtt: float, pos: int):
        if not self._loss_gate(now, rtt, pos):
            return None
        before = float(self.cwnd[pos])
        self.ssthresh[pos] = max(2 * self.mss, self.cwnd[pos] * Reno.BETA)
        self.cwnd[pos] = self.ssthresh[pos]
        if self.in_ss[pos]:
            self.in_ss[pos] = False
            self.any_ss = bool(self.in_ss.any())
        return before, float(self.cwnd[pos])


class _ObjectGroup:
    """Fallback: flows advanced through their scalar CC objects.

    BBR's windowed-max filters and phase wheels are deque/state-machine
    shaped; batching them buys nothing and risks divergence.  Running
    the objects directly makes parity trivial — it *is* the scalar path.
    """

    def __init__(self, idx: np.ndarray, ccs: list[CongestionControl]) -> None:
        self.idx = idx
        self.ccs = ccs

    def pacing(self, rtt: float, pace: np.ndarray) -> None:
        for pos, i in enumerate(self.idx):
            rate = self.ccs[pos].pacing_rate(rtt)
            if rate is not None:
                pace[i] = min(pace[i], rate)

    def tick(self, now: float, dt: float, rtt: float,
             delivered: np.ndarray, al_mask: np.ndarray) -> None:
        for pos, i in enumerate(self.idx):
            cc = self.ccs[pos]
            if al_mask[i]:
                cc.on_app_limited(now, dt)
            else:
                cc.on_tick(now, dt, delivered[i], rtt)

    def loss_one(self, now: float, rtt: float, pos: int):
        cc = self.ccs[pos]
        before = float(cc.cwnd_bytes)
        if cc.on_loss(now, rtt):
            return before, float(cc.cwnd_bytes)
        return None

    def clamp(self, max_window: float) -> None:
        for cc in self.ccs:
            cc.clamp(max_window)

    def sync(self, cwnd_full: np.ndarray) -> None:
        for pos, i in enumerate(self.idx):
            cwnd_full[i] = self.ccs[pos].cwnd_bytes


class CcBatch:
    """Batched congestion feedback over a mixed set of flows."""

    def __init__(self, ccs: list[CongestionControl]) -> None:
        self.cwnd = np.array([cc.cwnd_bytes for cc in ccs])
        self.needs_validation = np.array(
            [cc.needs_cwnd_validation for cc in ccs]
        )
        cubic: list[int] = []
        reno: list[int] = []
        other: list[int] = []
        for i, cc in enumerate(ccs):
            if type(cc) is Cubic:
                cubic.append(i)
            elif type(cc) is Reno:
                reno.append(i)
            else:
                other.append(i)
        self._groups: list = []
        if cubic:
            self._groups.append(
                _CubicBatch(np.array(cubic), [ccs[i] for i in cubic])
            )
        if reno:
            self._groups.append(
                _RenoBatch(np.array(reno), [ccs[i] for i in reno])
            )
        if other:
            self._groups.append(
                _ObjectGroup(np.array(other), [ccs[i] for i in other])
            )
        # flow index -> (owning group, position within the group)
        self._owner: dict[int, tuple] = {}
        for grp in self._groups:
            for pos, i in enumerate(grp.idx):
                self._owner[int(i)] = (grp, pos)
        #: Whether any flow imposes its own pacing rate (only scalar
        #: object CCs like BBR do); lets the kernel skip the fold.
        self.self_paced = any(
            isinstance(grp, _ObjectGroup) for grp in self._groups
        )
        # Homogeneous common case: one array group holding every flow
        # in natural order.  The group's state array then backs
        # ``self.cwnd`` directly — per-flow inputs need no gather, the
        # window sync no scatter.
        if len(self._groups) == 1 and isinstance(self._groups[0], _ArrayGroup):
            grp = self._groups[0]
            grp.full = True
            self.cwnd = grp.cwnd

    @classmethod
    def from_kinds(cls, kinds: list[str], mss: float) -> "CcBatch":
        """Build a batch from per-flow algorithm *names* via templates.

        The object constructor above needs one Python CC object per
        flow; at sharded campaign scale (10k–1M flows) that is the
        setup bottleneck.  Freshly-constructed CCs of a kind are
        interchangeable, so one template per kind supplies the initial
        state (:meth:`_ArrayGroup._from_template`) and group membership
        comes straight from the name list.  Only the array-backed
        algorithms are supported — object-group CCs (BBR) would need
        per-flow objects, defeating the point.
        """
        from repro.tcp.cc import make_cc

        self = cls.__new__(cls)
        n = len(kinds)
        if n == 0:
            raise ConfigurationError("need at least one flow")
        group_types = {"cubic": _CubicBatch, "reno": _RenoBatch}
        by_kind: dict[str, list[int]] = {}
        for i, kind in enumerate(kinds):
            if kind not in group_types:
                raise ConfigurationError(
                    f"cc {kind!r} does not support template batching; "
                    f"choose one of {sorted(group_types)}"
                )
            by_kind.setdefault(kind, []).append(i)
        self.cwnd = np.empty(n)
        self.needs_validation = np.empty(n, dtype=bool)
        self._groups = []
        # Same group order as the object constructor: cubic, then reno.
        for kind in ("cubic", "reno"):
            idx = by_kind.get(kind)
            if not idx:
                continue
            template = make_cc(kind, mss=mss)
            grp = group_types[kind]._from_template(np.array(idx), template)
            self._groups.append(grp)
            self.cwnd[idx] = template.cwnd_bytes
            self.needs_validation[idx] = template.needs_cwnd_validation
        self._owner = {}
        for grp in self._groups:
            for pos, i in enumerate(grp.idx):
                self._owner[int(i)] = (grp, pos)
        self.self_paced = False
        if len(self._groups) == 1:
            grp = self._groups[0]
            grp.full = True
            self.cwnd = grp.cwnd
        return self

    def pacing(self, rtt: float, pace: np.ndarray) -> None:
        """Fold self-imposed (BBR) pacing rates into ``pace`` in place."""
        for grp in self._groups:
            grp.pacing(rtt, pace)

    def feedback(
        self,
        now: float,
        dt: float,
        rtt: float,
        delivered: np.ndarray,
        loss_idx: np.ndarray,
        al_mask: np.ndarray,
        max_window: float,
    ) -> list[tuple[int, float, float]]:
        """One tick of congestion feedback for every flow.

        Applies loss reactions for ``loss_idx`` (ascending), then the
        window advance (tick or app-limited freeze), then the socket
        clamp — the same flow-local order as the scalar loop.  Returns
        ``(flow, cwnd_before, cwnd_after)`` per *reacted* loss, for the
        driver's ``cc.loss`` trace events.
        """
        reacted: list[tuple[int, float, float]] = []
        for i in loss_idx:
            grp, pos = self._owner[int(i)]
            res = grp.loss_one(now, rtt, pos)
            if res is not None:
                reacted.append((int(i), res[0], res[1]))
        for grp in self._groups:
            grp.tick(now, dt, rtt, delivered, al_mask)
            grp.clamp(max_window)
            grp.sync(self.cwnd)
        return reacted
