"""Scalable TCP (Kelly), multiplicative-increase/multiplicative-decrease.

Standard TCP's recovery time after a loss grows linearly with the
window — at 10 Gbps and 100 ms that is measured in hours.  Scalable TCP
makes the response *scale-invariant*: the window grows by a fixed
fraction of the ACKed bytes (``a = 0.01``, i.e. +1 segment per 100
ACKed) and shrinks by a fixed factor ``b = 0.125`` on loss, so the
loss-recovery time is a constant number of RTTs (~13.4 at these
constants) regardless of window size.

Both the increase and the decrease are single multiplies — the entire
algorithm is already in the ``+ - * /`` subset the batched stepper can
transcribe bit for bit.
"""

from __future__ import annotations

from repro.tcp.cc.base import CongestionControl

__all__ = ["Scalable"]


class Scalable(CongestionControl):
    """MIMD: cwnd += 0.01 * acked bytes, cwnd *= 0.875 on loss."""

    name = "scalable"
    #: Increase per ACKed byte (Kelly's a = 0.01).
    AI = 0.01
    #: Multiplicative decrease survivor fraction (1 - b, b = 1/8).
    BETA = 0.875

    def on_tick(self, now: float, dt: float, delivered_bytes: float, rtt: float) -> None:
        st = self.state
        if st.in_slow_start:
            self._slow_start_tick(delivered_bytes)
            return
        if st.cwnd_bytes <= 0 or rtt <= 0:
            return
        st.cwnd_bytes += self.AI * delivered_bytes

    def _react_to_loss(self, now: float, rtt: float) -> None:
        st = self.state
        st.cwnd_bytes = max(2 * self.mss, st.cwnd_bytes * self.BETA)
        st.ssthresh_bytes = st.cwnd_bytes
        st.in_slow_start = False
