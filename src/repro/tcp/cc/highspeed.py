"""HighSpeed TCP (RFC 3649).

Standard AIMD needs a packet loss rate below ~1e-8 to sustain a
10 Gbps window — unrealistic on real paths.  HighSpeed TCP keeps the
standard response below a window of ``W_LOW = 38`` segments and above
it switches to a more aggressive response function: the additive
increase ``a(w)`` grows and the multiplicative decrease ``b(w)``
shrinks with the window, log-linearly between ``(W_LOW, p=1.5e-3)``
and ``(W_HIGH = 83000, p=1e-7)``::

    b(w) = B_LOW + (B_HIGH - B_LOW) * (ln w - ln W_LOW) / (ln W_HIGH - ln W_LOW)
    p(w) = 0.078 / w^1.2                      # RFC 3649 section 5
    a(w) = w^2 * p(w) * 2 * b(w) / (2 - b(w))

Like Linux's ``tcp_highspeed.c`` we precompute an ``a``/``b`` lookup
table instead of evaluating logs per ACK.  The table is built once at
import (geometric window grid, same arrays for the scalar class and the
batched stepper), so the per-tick path is a ``bisect``/``searchsorted``
plus pure ``+ - * /`` arithmetic — the operations that round
identically between CPython and numpy, which the kernel byte-parity
discipline requires (see :mod:`repro.tcp.cc.batch`).
"""

from __future__ import annotations

import bisect

import numpy as np

from repro.tcp.cc.base import CongestionControl

__all__ = ["HighSpeed"]

W_LOW = 38.0
W_HIGH = 83000.0
B_LOW = 0.5
B_HIGH = 0.1
#: Linux's tcp_highspeed.c quantizes the response into 73 rows; we use
#: the same resolution over a geometric window grid.
TABLE_ROWS = 73


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(window bounds, a-steps, b-steps) for the RFC 3649 response.

    The step arrays have one more entry than the bounds: index 0 is the
    standard-TCP region (a=1 segment/RTT, b=0.5) used below ``W_LOW``.
    Transcendentals are fine *here* — this runs once at import and both
    kernels read the very same arrays — but never in the tick path.
    """
    w = np.geomspace(W_LOW, W_HIGH, num=TABLE_ROWS)
    frac = (np.log(w) - np.log(W_LOW)) / (np.log(W_HIGH) - np.log(W_LOW))
    b = B_LOW + (B_HIGH - B_LOW) * frac
    p = 0.078 / w**1.2
    a = w * w * p * 2.0 * b / (2.0 - b)
    a_step = np.concatenate(([1.0], a))
    b_step = np.concatenate(([0.5], b))
    return w, a_step, b_step


#: Shared by the scalar class (via the list copies below) and the
#: batched stepper in :mod:`repro.tcp.cc.batch` (directly).
W_BOUNDS, A_STEP, B_STEP = _build_tables()

# bisect on these lists yields the same index as np.searchsorted on the
# arrays above: identical values, identical comparisons.
_W_BOUNDS_LIST = W_BOUNDS.tolist()
_A_STEP_LIST = A_STEP.tolist()
_B_STEP_LIST = B_STEP.tolist()


class HighSpeed(CongestionControl):
    """RFC 3649 HighSpeed TCP with a Linux-style a/b lookup table."""

    name = "highspeed"

    def on_tick(self, now: float, dt: float, delivered_bytes: float, rtt: float) -> None:
        st = self.state
        if st.in_slow_start:
            self._slow_start_tick(delivered_bytes)
            return
        if st.cwnd_bytes <= 0 or rtt <= 0:
            return
        a = _A_STEP_LIST[bisect.bisect_right(_W_BOUNDS_LIST, st.cwnd_bytes / self.mss)]
        # a(w) segments per cwnd of ACKs (a=1 reduces to Reno).
        st.cwnd_bytes += a * (self.mss * (delivered_bytes / st.cwnd_bytes))

    def _react_to_loss(self, now: float, rtt: float) -> None:
        st = self.state
        b = _B_STEP_LIST[bisect.bisect_right(_W_BOUNDS_LIST, st.cwnd_bytes / self.mss)]
        st.cwnd_bytes = max(2 * self.mss, st.cwnd_bytes * (1.0 - b))
        st.ssthresh_bytes = st.cwnd_bytes
        st.in_slow_start = False
