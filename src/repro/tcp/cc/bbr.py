"""BBR congestion control, versions 1 and 3 (fluid-model adaptations).

The paper (§IV.F) ran CUBIC and BBR side by side and found single-stream
throughput essentially identical on their loss-free testbeds, with BBR —
especially v1 — generating more retransmits, ramping up faster on the
WAN, and benefiting strongly from pacing in the parallel-stream case.
We model both versions faithfully enough to reproduce those qualitative
statements:

**BBRv1** (Cardwell et al. 2016)
  * model-based: tracks ``btl_bw`` (windowed-max delivery rate) and
    ``rt_prop`` (windowed-min RTT);
  * STARTUP at 2/ln(2) ≈ 2.89x pacing gain until bandwidth plateaus,
    then DRAIN, then PROBE_BW cycling gains [1.25, 0.75, 1x6];
  * **ignores packet loss** — the source of its retransmit reputation.

**BBRv3** (2023 IETF drafts)
  * reacts to loss: bounds inflight to ~0.85x on loss and backs off
    ``beta = 0.7`` on a congestion round, like v2/v3;
  * gentler probing (1.25 probe gain but shorter probes), lower
    STARTUP exit threshold, so far fewer retransmits.

The fluid adaptation replaces per-packet bookkeeping with per-tick
updates of the bandwidth/RTT filters.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.tcp.cc.base import CongestionControl

__all__ = ["Bbr1", "Bbr3"]


@dataclass
class _WindowedMax:
    """Max-filter over a sliding time window (btl_bw estimator).

    Implemented as a monotonic deque: amortized O(1) per update, which
    matters in the packet-level micro simulator where this runs once
    per ACK.
    """

    window: float
    samples: deque = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.samples = deque()  # (time, value), values strictly decreasing

    def update(self, now: float, value: float) -> float:
        while self.samples and self.samples[-1][1] <= value:
            self.samples.pop()
        self.samples.append((now, value))
        cutoff = now - self.window
        while self.samples and self.samples[0][0] < cutoff:
            self.samples.popleft()
        return self.samples[0][1]


class _BbrBase(CongestionControl):
    """Shared BBR machinery."""

    needs_cwnd_validation = False  # cwnd comes from the bw*rtt model
    STARTUP_GAIN = 2.885  # 2/ln(2)
    DRAIN_GAIN = 1.0 / 2.885
    CWND_GAIN = 2.0
    BW_WINDOW_SEC = 10.0  # ~10 round trips at WAN RTTs; simplified to time
    #: Gain cycle for PROBE_BW (v1's 8-phase wheel).
    PROBE_CYCLE = (1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)

    def __init__(self, mss: float = 8960.0, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self.phase = "STARTUP"
        self.btl_bw = 0.0  # bytes/s
        self.rt_prop = float("inf")
        self._bw_filter = _WindowedMax(self.BW_WINDOW_SEC)
        self._full_bw = 0.0
        self._full_bw_rounds = 0
        self._cycle_index = 0
        self._cycle_start = 0.0

    # -- pacing-rate interface used by the flow simulator -------------------

    def pacing_rate(self, rtt: float) -> float | None:
        if self.btl_bw <= 0:
            # No estimate yet: pace at cwnd/rtt * startup gain.
            if rtt > 0:
                return self.STARTUP_GAIN * self.state.cwnd_bytes / rtt
            return None
        return self._gain() * self.btl_bw

    def _gain(self) -> float:
        if self.phase == "STARTUP":
            return self.STARTUP_GAIN
        if self.phase == "DRAIN":
            return self.DRAIN_GAIN
        return self.PROBE_CYCLE[self._cycle_index]

    # -- tick update -----------------------------------------------------------

    def on_tick(self, now: float, dt: float, delivered_bytes: float, rtt: float) -> None:
        st = self.state
        if rtt > 0:
            self.rt_prop = min(self.rt_prop, rtt)
        if dt > 0 and delivered_bytes > 0:
            rate = delivered_bytes / dt
            self.btl_bw = self._bw_filter.update(now, rate)

        if self.phase == "STARTUP":
            self._check_full_pipe(now)
            st.cwnd_bytes += delivered_bytes  # exponential like slow start
        elif self.phase == "DRAIN":
            if self._inflight_target() >= st.cwnd_bytes:
                self.phase = "PROBE_BW"
                self._cycle_start = now
        else:  # PROBE_BW
            self._advance_cycle(now)
            st.cwnd_bytes = max(4 * self.mss, self._inflight_target())

    def _inflight_target(self) -> float:
        if self.btl_bw <= 0 or self.rt_prop == float("inf"):
            return self.state.cwnd_bytes
        return self.CWND_GAIN * self.btl_bw * self.rt_prop

    def _check_full_pipe(self, now: float) -> None:
        """Exit STARTUP once bandwidth stops growing ≥25% per round."""
        if self.btl_bw > self._full_bw * 1.25:
            self._full_bw = self.btl_bw
            self._full_bw_rounds = 0
            return
        self._full_bw_rounds += 1
        if self._full_bw_rounds >= 3:
            self.phase = "DRAIN"

    def _advance_cycle(self, now: float) -> None:
        period = max(self.rt_prop, 1e-3)
        if now - self._cycle_start >= period:
            self._cycle_start = now
            self._cycle_index = (self._cycle_index + 1) % len(self.PROBE_CYCLE)


class Bbr1(_BbrBase):
    """BBR version 1: loss-blind."""

    name = "bbr1"

    def _react_to_loss(self, now: float, rtt: float) -> None:
        # v1 deliberately does not reduce on loss (beyond rare RTO
        # handling we do not model).  The loss still counts as an event
        # for retransmit accounting, which is exactly the paper's
        # observation: more retransmits under BBRv1.
        return


class Bbr3(_BbrBase):
    """BBR version 3: bounded loss response, gentler probing."""

    name = "bbr3"
    BETA = 0.7
    PROBE_CYCLE = (1.25, 0.75, 1.0, 1.0)  # shorter wheel than v1

    def _react_to_loss(self, now: float, rtt: float) -> None:
        st = self.state
        st.cwnd_bytes = max(4 * self.mss, st.cwnd_bytes * self.BETA)
        # Also haircut the bandwidth model so pacing backs off.
        self.btl_bw *= 0.9
        self.phase = "PROBE_BW"
