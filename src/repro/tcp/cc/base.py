"""Congestion-control interface for the fluid flow simulator.

The simulator advances in small ticks.  Each tick it tells the CC module
how many bytes were delivered (cumulatively ACKed) and the current RTT;
the CC maintains ``cwnd_bytes`` and optionally a self-imposed pacing
rate (BBR).  Loss events — at most one per round trip, as real TCP
reacts per congestion *event*, not per lost packet — arrive through
:meth:`on_loss`.

Window units are bytes throughout; algorithms that are naturally
expressed in MSS units (CUBIC) convert internally.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

__all__ = ["CongestionControl", "CcState"]


@dataclass
class CcState:
    """Common mutable state shared by the concrete algorithms."""

    cwnd_bytes: float
    ssthresh_bytes: float
    in_slow_start: bool = True
    last_loss_time: float = float("-inf")
    loss_events: int = 0


class CongestionControl(abc.ABC):
    """Base class for congestion-control algorithms.

    Subclasses must set :attr:`name` and implement :meth:`on_tick` and
    :meth:`on_loss`.
    """

    name: str = "base"
    #: Batch stepper class for the vector kernel, assigned by the
    #: registry in :mod:`repro.tcp.cc.batch`.  ``None`` means the
    #: algorithm runs as scalar objects inside the vector kernel (the
    #: ``_ObjectGroup`` path — correct for any CC, just not array-fast).
    #: Subclasses of an array-batched algorithm must register their own
    #: stepper (or explicitly set ``batch_group = None``); the batch
    #: layer refuses to silently reuse a parent's stepper, which would
    #: compute the parent's dynamics for the subclass's flows.
    batch_group = None
    #: Minimum interval between reactions to loss, in RTTs.  Real TCP
    #: reduces once per window of data; we enforce one reduction per RTT.
    LOSS_REACTION_RTTS = 1.0
    #: Loss-based algorithms grow cwnd without bound in the absence of
    #: loss, so the simulator must apply congestion-window validation
    #: (RFC 7661): when the flow is application/CPU/pacing-limited, the
    #: window must not grow.  Rate-based algorithms (BBR) size cwnd from
    #: their bandwidth model and need no external validation.
    needs_cwnd_validation = True

    def __init__(self, mss: float = 8960.0, initial_cwnd_segments: int = 10):
        self.mss = float(mss)
        self.state = CcState(
            cwnd_bytes=initial_cwnd_segments * self.mss,
            ssthresh_bytes=float("inf"),
        )

    # -- queries -------------------------------------------------------------

    @property
    def cwnd_bytes(self) -> float:
        return self.state.cwnd_bytes

    @property
    def loss_events(self) -> int:
        return self.state.loss_events

    def pacing_rate(self, rtt: float) -> float | None:
        """Self-imposed pacing rate in bytes/s, or None (window-limited).

        Loss-based algorithms return None (the fq qdisc may still pace
        them at ``2 * cwnd/rtt`` internally, but that never binds).
        Rate-based algorithms (BBR) return their pacing rate.
        """
        return None

    # -- event hooks -----------------------------------------------------------

    @abc.abstractmethod
    def on_tick(self, now: float, dt: float, delivered_bytes: float, rtt: float) -> None:
        """Advance the window given ``delivered_bytes`` ACKed this tick."""

    def on_loss(self, now: float, rtt: float) -> bool:
        """Register a congestion event.  Returns True if the algorithm
        reacted (reductions are rate-limited to one per RTT)."""
        if now - self.state.last_loss_time < self.LOSS_REACTION_RTTS * rtt:
            return False
        self.state.last_loss_time = now
        self.state.loss_events += 1
        self._react_to_loss(now, rtt)
        return True

    @abc.abstractmethod
    def _react_to_loss(self, now: float, rtt: float) -> None:
        """Algorithm-specific loss reaction."""

    def on_timeout(self, now: float) -> None:
        """Retransmission timeout: collapse to slow start (RFC 5681).

        Used by the packet-level micro simulator; the fluid model never
        starves a flow long enough to RTO.
        """
        st = self.state
        st.ssthresh_bytes = max(2 * self.mss, st.cwnd_bytes * 0.5)
        st.cwnd_bytes = 2 * self.mss
        st.in_slow_start = True
        st.loss_events += 1
        st.last_loss_time = now
        self._react_to_timeout(now)

    def _react_to_timeout(self, now: float) -> None:
        """Algorithm-specific RTO reaction.

        An RTO abandons the current congestion epoch entirely, so any
        state derived from the pre-timeout window — CUBIC's epoch origin
        and W_max, H-TCP's increase clock, Westwood's sample window —
        must be discarded here.  Keeping it would make the first
        post-recovery tick evaluate the growth law against a stale
        pre-timeout epoch and jump the window far above slow start.
        """
        return

    def on_app_limited(self, now: float, dt: float) -> None:
        """The flow spent this tick limited by something other than the
        window (CPU, pacing, link share): freeze window growth
        (RFC 7661 congestion-window validation).  Time-based algorithms
        override this to stop their clock as well."""
        return

    # -- helpers ---------------------------------------------------------------

    def _slow_start_tick(self, delivered_bytes: float) -> None:
        """Classic slow start: cwnd += bytes ACKed (doubles per RTT)."""
        st = self.state
        st.cwnd_bytes += delivered_bytes
        if st.cwnd_bytes >= st.ssthresh_bytes:
            st.cwnd_bytes = st.ssthresh_bytes
            st.in_slow_start = False

    def clamp(self, max_cwnd_bytes: float) -> None:
        """Apply the socket-buffer cap (min of send/recv windows)."""
        if self.state.cwnd_bytes > max_cwnd_bytes:
            self.state.cwnd_bytes = max_cwnd_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(cwnd={self.state.cwnd_bytes / self.mss:.1f} MSS, "
            f"ss={self.state.in_slow_start}, losses={self.state.loss_events})"
        )
