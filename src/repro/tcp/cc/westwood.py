"""TCP Westwood+ — bandwidth-estimate backoff for lossy paths.

Reno-family algorithms treat every loss as congestion and halve (or
worse).  Westwood+ instead keeps a low-pass-filtered estimate of the
*delivery rate* from the ACK stream and, on loss, sets ``ssthresh`` to
the estimated bandwidth-delay product ``BWE * RTT_min`` — the window
the path demonstrably sustains.  Random (non-congestion) loss, where
the delivery rate has not actually dropped, therefore costs almost
nothing, which is why Westwood degrades most gracefully of the classic
variants on paths with stochastic loss.

Per RTT-long sample window the estimate updates with the standard
7/8 : 1/8 filter::

    BWE = 0.875 * BWE + 0.125 * (acked_bytes / window_span)

Growth is exactly Reno's.  Every step is ``+ - * /`` plus comparisons,
so the batched stepper transcribes it bit for bit; the sample window
restarts on RTO via :meth:`_react_to_timeout`.
"""

from __future__ import annotations

from repro.tcp.cc.base import CongestionControl

__all__ = ["WestwoodPlus"]


class WestwoodPlus(CongestionControl):
    """Westwood+: Reno growth, BWE * RTT_min backoff."""

    name = "westwood"
    #: Low-pass filter weights for the bandwidth estimate (7/8, 1/8).
    FILTER_OLD = 0.875
    FILTER_NEW = 0.125

    def __init__(self, mss: float = 8960.0, initial_cwnd_segments: int = 10):
        super().__init__(mss, initial_cwnd_segments)
        self._bw_est = 0.0  # filtered delivery rate, bytes/s
        self._acked = 0.0  # bytes ACKed in the current sample window
        self._win_start = 0.0  # when the current sample window opened
        self._rtt_min = float("inf")

    def _bdp_bytes(self) -> float:
        """Estimated bandwidth-delay product; 0 before any RTT sample."""
        if self._rtt_min == float("inf"):
            return 0.0
        return self._bw_est * self._rtt_min

    def on_tick(self, now: float, dt: float, delivered_bytes: float, rtt: float) -> None:
        st = self.state
        if rtt > 0 and rtt < self._rtt_min:
            self._rtt_min = rtt
        # Bandwidth sampling runs in every phase, slow start included.
        # Byte counter over the current sample window, consumed (and
        # reset) by the filter update below.
        self._acked += delivered_bytes  # repro: noqa-FLOAT002
        if rtt > 0:
            span = now - self._win_start
            if span >= rtt:
                sample = self._acked / span
                self._bw_est = self.FILTER_OLD * self._bw_est + self.FILTER_NEW * sample
                self._acked = 0.0
                self._win_start = now
        if st.in_slow_start:
            self._slow_start_tick(delivered_bytes)
            return
        if st.cwnd_bytes <= 0 or rtt <= 0:
            return
        st.cwnd_bytes += self.mss * (delivered_bytes / st.cwnd_bytes)

    def _react_to_loss(self, now: float, rtt: float) -> None:
        st = self.state
        st.ssthresh_bytes = max(2 * self.mss, self._bdp_bytes())
        if st.cwnd_bytes > st.ssthresh_bytes:
            st.cwnd_bytes = st.ssthresh_bytes
        st.in_slow_start = False

    def _react_to_timeout(self, now: float) -> None:
        """RTO: aim slow start at the measured BDP instead of half the
        collapsed window, and restart the sample window — the stalled
        pre-timeout window must not contribute a bogus low sample."""
        st = self.state
        st.ssthresh_bytes = max(2 * self.mss, self._bdp_bytes())
        self._acked = 0.0
        self._win_start = now
