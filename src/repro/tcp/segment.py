"""Segment sizing: MTU, MSS, wire overhead, GSO/GRO batch geometry.

The simulator works in *goodput* bytes (application payload).  This
module owns the conversions between goodput and wire occupancy, and the
GSO/GRO batch sizes that the CPU cost model amortizes per-batch costs
over.

Wire overhead per MTU-sized packet (IPv4/TCP over Ethernet):

* 14 B Ethernet header + 4 B FCS + 8 B preamble + 12 B inter-frame gap
  = 38 B of framing per packet
* 20 B IP + 20 B TCP (+12 B timestamps when negotiated, ignored here
  for simplicity; it is <1% at 9000 MTU)

So a 9000-byte MTU carries 8960 payload bytes in 9038 wire bytes
(99.1% efficient); a 1500-byte MTU carries 1460 in 1538 (94.9%).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError

__all__ = ["SegmentGeometry", "ETH_FRAMING", "IP_TCP_HEADERS"]

ETH_FRAMING = 38  # header + FCS + preamble + IFG
IP_TCP_HEADERS = 40  # IPv4 + TCP, no options


@dataclass(frozen=True)
class SegmentGeometry:
    """Derived packet geometry for a given MTU and GSO/GRO config."""

    mtu: int
    gso_size: float = 65536.0
    gro_size: float = 65536.0
    ipv6: bool = False

    def __post_init__(self) -> None:
        if self.mtu <= IP_TCP_HEADERS + (20 if self.ipv6 else 0):
            raise ConfigurationError(f"MTU {self.mtu} too small for TCP")
        if self.gso_size < self.mss:
            raise ConfigurationError("GSO size below one MSS")

    @property
    def header_bytes(self) -> int:
        return IP_TCP_HEADERS + (20 if self.ipv6 else 0)

    @property
    def mss(self) -> int:
        """Maximum segment (payload) size per wire packet."""
        return self.mtu - self.header_bytes

    @property
    def wire_efficiency(self) -> float:
        """Goodput bytes per wire byte (<1)."""
        return self.mss / (self.mtu + ETH_FRAMING)

    def goodput_to_wire(self, goodput_rate: float) -> float:
        """Convert a goodput rate to wire occupancy (bytes/s)."""
        return goodput_rate / self.wire_efficiency

    def wire_to_goodput(self, wire_rate: float) -> float:
        """Convert line rate to the maximum goodput it can carry."""
        return wire_rate * self.wire_efficiency

    def packets_for(self, goodput_bytes: float) -> float:
        """Wire packets needed to carry ``goodput_bytes`` of payload."""
        return goodput_bytes / self.mss

    @property
    def segments_per_gso_batch(self) -> float:
        """Wire packets produced per GSO super-packet."""
        return max(1.0, self.gso_size / self.mss)

    def effective_gro_batch(self, arrival_rate: float, rtt: float) -> float:
        """The GRO aggregate size achievable at a given arrival rate.

        GRO can only merge segments that arrive within one NAPI poll
        window (~50-100 us); slow flows produce small aggregates.  We
        cap the configured ``gro_size`` by the bytes arriving in a
        100 us window, with a floor of one MSS.
        """
        window = 100e-6
        achievable = max(float(self.mss), arrival_rate * window)
        return float(min(self.gro_size, achievable))
