"""Packet pacing: the ``fq`` qdisc and the iperf3 ``--fq-rate`` flag.

Pacing is the paper's single most important tuning lever.  Mechanisms
modelled here:

* **fq socket pacing** — ``SO_MAX_PACING_RATE`` set by iperf3's
  ``--fq-rate``; the fq qdisc releases the flow's packets smoothly at
  that rate, eliminating the line-rate packet trains that overrun
  receiver NICs on paths without 802.3x flow control.

* **The 32 Gbps overflow bug** — ``SO_MAX_PACING_RATE`` takes a rate in
  *bytes per second*, and iperf3 (pre PR#1728) plumbed ``--fq-rate``
  through an ``unsigned int``.  A 32-bit byte rate caps at
  2^32 B/s ≈ 34.4 Gbps — which is exactly why the paper notes that
  *"pacing single flows above 32 Gbps ... requires a recent patch to
  iperf3"* (their PR#1728 widens the field to ``uint64_t``).  We
  reproduce the user-visible symptom: an unpatched tool wraps the
  requested byte rate modulo 2^32, so a requested 50 Gbps flow is
  actually paced at ~15.6 Gbps.

* **qdisc choice** — the paper recommends ``fq`` over the default
  ``fq_codel`` in high-throughput environments because fq implements
  per-flow pacing with fine-grained packet spacing.  Since kernel 4.20
  TCP falls back to internal pacing under other qdiscs, which enforces
  the average rate but with burst slack; the residual burstiness feeds
  the receiver-overrun loss model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units
from repro.core.errors import ConfigurationError

__all__ = ["PacingConfig", "UINT32_MAX_BYTES"]

#: Largest byte rate representable in the unpatched unsigned int field.
UINT32_MAX_BYTES = 2**32  # bytes/s  (≈ 34.4 Gbps)


@dataclass(frozen=True)
class PacingConfig:
    """Pacing as requested by the application (iperf3 ``--fq-rate``).

    ``requested_bytes_per_sec`` is what the user asked for;
    :meth:`effective_rate` applies the uint32 truncation when the tool
    is unpatched, reproducing the >32 Gbps failure mode PR#1728 fixes.
    """

    requested_bytes_per_sec: float | None = None
    #: iperf3 with PR#1728 (uint64 fq-rate)?
    patched_uint64: bool = True
    #: qdisc in effect on the sender ('fq' paces precisely; others fall
    #: back to internal TCP pacing with burst slack).
    qdisc: str = "fq"

    def __post_init__(self) -> None:
        if self.requested_bytes_per_sec is not None and self.requested_bytes_per_sec <= 0:
            raise ConfigurationError("pacing rate must be positive")
        if self.qdisc not in ("fq", "fq_codel", "pfifo_fast", "noqueue"):
            raise ConfigurationError(f"unknown qdisc {self.qdisc!r}")

    @classmethod
    def unpaced(cls, qdisc: str = "fq") -> "PacingConfig":
        return cls(requested_bytes_per_sec=None, qdisc=qdisc)

    @classmethod
    def fq_rate_gbps(cls, gbps_value: float, patched: bool = True,
                     qdisc: str = "fq") -> "PacingConfig":
        """Build from a ``--fq-rate`` value in Gbps."""
        return cls(
            requested_bytes_per_sec=units.gbps(gbps_value),
            patched_uint64=patched,
            qdisc=qdisc,
        )

    @property
    def enabled(self) -> bool:
        """Whether the kernel is actually pacing this flow.

        Not the same question as "did the user ask for pacing": an
        unpatched tool whose requested rate wraps to exactly 0 mod 2^32
        sets ``SO_MAX_PACING_RATE`` to 0, which *disables* pacing — the
        flow reverts to unpaced line-rate bursts.
        """
        return self.effective_rate() is not None

    def effective_rate(self) -> float | None:
        """The rate the kernel actually enforces, in bytes/s.

        Unpatched iperf3 passes the bytes/s value through a 32-bit
        unsigned field, so requested rates >= 2^32 B/s (≈34.4 Gbps)
        wrap modulo 2^32: a requested 50 Gbps (6.25e9 B/s) becomes
        6.25e9 - 2^32 ≈ 1.96e9 B/s ≈ 15.6 Gbps — far below the request,
        and throughput collapses accordingly.  A rate that wraps to
        exactly 0 means ``SO_MAX_PACING_RATE`` 0 — pacing disabled —
        reported here as ``None``, identical to never requesting it.
        """
        if self.requested_bytes_per_sec is None:
            return None
        rate = self.requested_bytes_per_sec
        if not self.patched_uint64 and rate >= UINT32_MAX_BYTES:
            rate = rate % UINT32_MAX_BYTES
            if rate == 0:
                return None
        return rate

    @property
    def smooths_bursts(self) -> bool:
        """True when packets are released with fine-grained spacing."""
        return self.enabled and self.qdisc == "fq"

    @property
    def burst_slack(self) -> float:
        """Residual burstiness fed into the loss model.

        0.0 = perfectly smooth (fq pacing), 1.0 = fully bursty
        (no pacing).  Internal TCP pacing under fq_codel lands between.
        """
        if not self.enabled:
            return 1.0
        return 0.0 if self.qdisc == "fq" else 0.35

    def describe(self) -> str:
        req = self.requested_bytes_per_sec
        if req is None:
            return "unpaced"
        eff = self.effective_rate()
        if eff is None:
            return (
                f"fq-rate {units.fmt_gbps(req)} (WRAPPED to unpaced "
                f"by unpatched uint32!)"
            )
        # Exact on purpose: eff is req after integer truncation (mod
        # 2^32), not after arithmetic — any difference at all means the
        # wrap fired, so a magnitude threshold would only hide wraps.
        if eff != req:  # repro: noqa-FLOAT001
            return (
                f"fq-rate {units.fmt_gbps(req)} (WRAPPED to "
                f"{units.fmt_gbps(eff)} by unpatched uint32!)"
            )
        return f"fq-rate {units.fmt_gbps(req)} ({self.qdisc})"
