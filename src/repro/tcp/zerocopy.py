"""MSG_ZEROCOPY send-path model with ``optmem_max`` accounting.

How the real mechanism works (de Bruijn & Dumazet, netdev 2017):

1. ``send(fd, buf, len, MSG_ZEROCOPY)`` *pins* the user pages and links
   them into skb fragments instead of copying — cheap per byte.
2. The kernel must tell the application when the pages are safe to
   reuse, which happens only once the data is cumulatively ACKed —
   i.e. roughly one RTT later.  The pending completion notification is
   charged against the socket's *ancillary buffer* allowance,
   ``net.core.optmem_max``, at a fixed kernel-structure cost per
   outstanding sendmsg.
3. If the allowance is exhausted, the send does **not** block — it
   silently *falls back to copying*, after having paid part of the
   zerocopy setup cost.  Fallback is therefore strictly more expensive
   than an ordinary copying send.

Consequences, all visible in the paper's Fig. 9:

* default ``optmem_max`` (20 KB) → nearly every send falls back →
  zerocopy *hurts*: same throughput, higher sender CPU;
* 1 MB → enough notification space for the 25/54 ms paths at 50 Gbps,
  but on the 104 ms path a large fraction still falls back and the
  sender tops out near 40 Gbps, CPU-bound;
* ~3.25 MB (the paper's empirically best 3405376) → the whole
  bandwidth-delay product's worth of sends fits → full pacing rate at
  every RTT and minimum CPU.

Model: with block size ``B`` per sendmsg (iperf3 default 128 KB),
notification structure cost ``NOTIF_BYTES`` each, and round-trip time
``rtt``, the number of in-flight sends at goodput rate ``r`` is
``r * rtt / B``; the socket can hold ``optmem_max / NOTIF_BYTES``
pending notifications, so the fraction of sends taking the true
zerocopy path is::

    zc_fraction = min(1, (optmem_max / NOTIF_BYTES) * B / (r * rtt))

``NOTIF_BYTES = 687`` is back-solved from the paper's own data point:
3405376 B of optmem was exactly enough for 104 ms x ~50 Gbps with
128 KB sends (3405376 / (0.104 * 6.25e9 / 131072) ≈ 687).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units
from repro.core.errors import ConfigurationError

__all__ = ["ZerocopyModel", "NOTIF_BYTES", "NOTIF_BYTES_COALESCED", "DEFAULT_SEND_BLOCK"]

#: Ancillary-space cost per outstanding zerocopy sendmsg, back-solved
#: from the paper's best-value measurement (see module docstring).
#: Kernels >= 6.6 coalesce completion notifications more aggressively,
#: shrinking the effective per-send cost — which is how kernel 6.8
#: reaches the full 50 Gbps pacing rate on the 104 ms path with only
#: 1 MB of optmem where 6.5 needed ~3.25 MB (paper Figs. 5 vs 9, and
#: the paper's own note that the best optmem value "didn't have
#: consistent behaviour across all kernel versions").
NOTIF_BYTES = 687.0
NOTIF_BYTES_COALESCED = 350.0

#: iperf3's default TCP read/write block size.
DEFAULT_SEND_BLOCK = 131072.0


@dataclass(frozen=True)
class ZerocopyModel:
    """Per-socket MSG_ZEROCOPY accounting."""

    optmem_max: float
    send_block_bytes: float = DEFAULT_SEND_BLOCK
    notif_bytes: float = NOTIF_BYTES

    def __post_init__(self) -> None:
        if self.optmem_max <= 0:
            raise ConfigurationError("optmem_max must be positive")
        if self.send_block_bytes <= 0:
            raise ConfigurationError("send block must be positive")
        if self.notif_bytes <= 0:
            raise ConfigurationError("notification size must be positive")

    @property
    def max_pending_sends(self) -> float:
        """Completion notifications the socket can hold at once."""
        return self.optmem_max / self.notif_bytes

    @property
    def max_inflight_bytes(self) -> float:
        """Unacked bytes coverable by true-zerocopy sends."""
        return self.max_pending_sends * self.send_block_bytes

    def inflight_sends(self, rate: float, rtt: float) -> float:
        """Sends awaiting completion at goodput ``rate`` over ``rtt``."""
        return max(0.0, rate * rtt / self.send_block_bytes)

    def zc_fraction(self, rate: float, rtt: float) -> float:
        """Fraction of sends taking the true zerocopy path.

        At rate 0 (or zero RTT — loopback-ish LAN) everything fits and
        the fraction is 1.
        """
        inflight = rate * rtt
        if inflight <= 0:
            return 1.0
        return min(1.0, self.max_inflight_bytes / inflight)

    def required_optmem(self, rate: float, rtt: float) -> float:
        """optmem_max needed for 100% zerocopy at ``rate`` over ``rtt``.

        This is the planning helper the paper's recommendations imply:
        size optmem to the BDP's worth of notifications.
        """
        return self.inflight_sends(rate, rtt) * self.notif_bytes

    def probe_args(self, rate: float, rtt: float) -> dict:
        """ss/ethtool-style counters for trace probes at one operating
        point — pure observation, shares no state with the cost model."""
        frac = self.zc_fraction(rate, rtt)
        return {
            "zc_fraction": round(frac, 6),
            "inflight_sends": round(self.inflight_sends(rate, rtt), 3),
            "max_pending_sends": round(self.max_pending_sends, 3),
            "required_optmem": round(self.required_optmem(rate, rtt), 1),
            "fallback": bool(frac < 1.0),
        }

    def describe(self, rate: float, rtt: float) -> str:
        frac = self.zc_fraction(rate, rtt)
        return (
            f"optmem_max={self.optmem_max:.0f}B -> "
            f"{self.max_pending_sends:.0f} pending sends "
            f"({self.max_inflight_bytes / units.M:.0f} MB coverable); "
            f"zerocopy fraction at load: {frac:.0%}"
        )
