"""Socket buffer sizing and window caps.

TCP throughput over a long path requires window ≥ BDP; windows are
bounded by the send/receive buffer autotuning limits (``tcp_wmem`` /
``tcp_rmem`` max).  Stock Ubuntu limits (6 MB receive, 4 MB send) cap a
104 ms path at roughly ``3 MB / 0.104 s ≈ 230 Mbps`` — three orders of
magnitude below the testbed links, which is why buffer tuning is item
one on fasterdata.es.net and why the paper's base tuning raises both
maxima to 2 GiB.

The *effective* window also drives the cache-footprint term of the CPU
model: a WAN-sized send buffer no longer fits in L3, raising per-byte
copy cost (see :mod:`repro.sim.cpumodel`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.sysctl import Sysctls

__all__ = ["SocketProfile"]


@dataclass(frozen=True)
class SocketProfile:
    """Window limits derived from the two endpoints' sysctls."""

    max_send_window: float
    max_recv_window: float

    @classmethod
    def from_sysctls(cls, sender: Sysctls, receiver: Sysctls) -> "SocketProfile":
        return cls(
            max_send_window=sender.max_send_window(),
            max_recv_window=receiver.max_recv_window(),
        )

    @property
    def max_window(self) -> float:
        """The binding window limit (min of both sides)."""
        return min(self.max_send_window, self.max_recv_window)

    def window_limited_rate(self, rtt: float) -> float:
        """Ceiling on throughput from window limits alone, bytes/s."""
        if rtt <= 0:
            return float("inf")
        return self.max_window / rtt

    def buffer_footprint(self, cwnd_bytes: float) -> float:
        """Bytes of send-buffer memory the sender actively touches.

        The sender keeps the full unacked window in the socket buffer;
        the working set for copies is ~min(cwnd, max send buffer).
        """
        return min(cwnd_bytes, self.max_send_window * 2.0)
