"""Periodic probes modeled on the paper's measurement tools.

The paper's evidence is not throughput numbers alone — it is what
``ss -ti``, ``mpstat``, and NIC/switch counters showed *while* the
numbers happened: cwnd collapse under burst loss, the IRQ core pinned
at 100% behind a throughput knee, pause-frame storms on the 802.3x
production path.  These builders produce the ``args`` dicts for the
simulator's equivalents, sampled on the trace bus's probe interval:

====================  =================================================
event name            real-world tool it emulates
====================  =================================================
``probe.socket``      ``ss -ti`` — per-socket cwnd, pacing rate,
                      cumulative retransmissions, smoothed RTT
``probe.mpstat``      ``mpstat -P ALL`` — per-core application vs
                      softirq utilisation on both hosts
``probe.nic``         ``ethtool -S`` + switch telemetry — queue
                      occupancy, drop counters, pause time
====================  =================================================

Builders are pure functions of simulator state: no RNG, no mutation —
sampling a probe can never change a simulated number.
"""

from __future__ import annotations

import math

__all__ = ["PROBE_TOOLS", "socket_probe", "mpstat_probe", "nic_probe", "spin_probe"]

#: probe event name -> the paper-workflow tool it emulates (docs, CLI).
PROBE_TOOLS = {
    "probe.socket": "ss -ti (cwnd / pacing rate / retrans / rtt per socket)",
    "probe.mpstat": "mpstat -P ALL (per-core app vs softirq utilisation)",
    "probe.nic": "ethtool -S + switch counters (occupancy, drops, pauses)",
    "probe.spin": "passive QUIC spin-bit tap (estimated vs ground-truth RTT)",
}

_MS_PER_SEC = 1e3


def socket_probe(
    flow: int,
    *,
    cwnd: float,
    pacing_rate: float,
    rtt: float,
    send_rate: float,
    delivered_rate: float,
    retrans_cum: float,
    zc_fraction: float | None = None,
) -> dict:
    """``ss -ti``-style snapshot of one flow's socket.

    ``pacing_rate`` may be ``inf`` (unpaced fq); it is exported as
    ``None`` since JSON has no infinity and ``ss`` simply omits the
    field for unpaced sockets.
    """
    args = {
        "flow": int(flow),
        "cwnd": float(cwnd),
        "pacing_rate": None if math.isinf(pacing_rate) else float(pacing_rate),
        "rtt_ms": float(rtt) * _MS_PER_SEC,
        "send_rate": float(send_rate),
        "delivered_rate": float(delivered_rate),
        "retrans": int(round(retrans_cum)),
    }
    if zc_fraction is not None:
        args["zc_fraction"] = round(float(zc_fraction), 6)
    return args


def spin_probe(flow: int, *, est_rtt: float, true_rtt: float) -> dict:
    """Spin-bit tap sample: one passively estimated RTT for one flow.

    Emitted per recovered edge pair by the QUIC spin observer's replay
    (:func:`repro.quic.spin.replay_spin_probes`).  All three values are
    numeric, so the Perfetto converter renders a
    ``probe.spin/flow<N>`` counter track of estimate vs ground truth.
    """
    err_pct = abs(est_rtt - true_rtt) / true_rtt * 100.0
    return {
        "flow": int(flow),
        "est_rtt_ms": round(float(est_rtt) * _MS_PER_SEC, 6),
        "true_rtt_ms": round(float(true_rtt) * _MS_PER_SEC, 6),
        "err_pct": round(float(err_pct), 4),
    }


def mpstat_probe(
    *,
    snd_app_pct: float,
    snd_irq_pct: float,
    rcv_app_pct: float,
    rcv_irq_pct: float,
) -> dict:
    """mpstat-style per-core sample for sender and receiver.

    Values are percentages of one core (app = the iperf3/copy core,
    irq = the NIC interrupt core), matching the units of
    :class:`repro.sim.metrics.CpuUtil` and the paper's TX/RX curves.
    """
    return {
        "snd_app_pct": round(float(snd_app_pct), 4),
        "snd_irq_pct": round(float(snd_irq_pct), 4),
        "snd_total_pct": round(float(snd_app_pct) + float(snd_irq_pct), 4),
        "rcv_app_pct": round(float(rcv_app_pct), 4),
        "rcv_irq_pct": round(float(rcv_irq_pct), 4),
        "rcv_total_pct": round(float(rcv_app_pct) + float(rcv_irq_pct), 4),
    }


def nic_probe(switch_queue, ring_queue, *, flow_control: bool) -> dict:
    """ethtool/switch-counter sample of both queues in the data path.

    ``switch_queue`` is the bottleneck switch's shared buffer,
    ``ring_queue`` the receiver NIC ring (both
    :class:`repro.net.switch.SharedBufferQueue`).  Counters are
    cumulative, exactly like ``ethtool -S`` output.
    """
    return {
        "switch_occupancy": float(switch_queue.occupancy),
        "switch_fill": round(float(switch_queue.fill_fraction), 6),
        "switch_dropped": float(switch_queue.dropped_bytes),
        "ring_occupancy": float(ring_queue.occupancy),
        "ring_fill": round(float(ring_queue.fill_fraction), 6),
        "ring_dropped": float(ring_queue.dropped_bytes),
        "ring_paused_sec": round(float(ring_queue.paused_time), 9),
        "flow_control": bool(flow_control),
    }
