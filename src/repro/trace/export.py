"""Trace exporters: Perfetto/Chrome ``trace_event`` JSON and CSV.

The Perfetto export targets the JSON Array/Object format the Chrome
tracing ecosystem defined and https://ui.perfetto.dev still loads:

* each distinct event ``track`` becomes a process (a ``process_name``
  metadata event assigns the label; pids are first-seen order, which is
  deterministic because the event stream is);
* ``probe.*`` events become ``"ph": "C"`` counter events — Perfetto
  renders them as time-series tracks, the closest thing to the paper's
  mpstat/ss plots;
* everything else becomes a thread-scoped instant (``"ph": "i"``,
  ``"s": "t"``);
* timestamps are simulated microseconds (the format's unit).

All functions accept either :class:`~repro.trace.events.TraceEvent`
objects or their ``to_dict`` forms.  Serialization is canonical
(sorted keys, fixed separators): the same event stream always produces
the same bytes, so file-level comparison works across ``--jobs`` modes.
"""

from __future__ import annotations

import hashlib
import json

from repro.trace.events import TraceEvent, events_digest

__all__ = [
    "to_perfetto",
    "to_csv",
    "dump_perfetto",
    "perfetto_digest",
    "validate_perfetto",
]


def _event_docs(events) -> list[dict]:
    return [
        e.to_dict() if isinstance(e, TraceEvent) else e for e in events
    ]


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def to_perfetto(events, meta: dict | None = None) -> dict:
    """Build a Chrome/Perfetto ``trace_event`` JSON document."""
    docs = _event_docs(events)
    pids: dict[str, int] = {}
    trace_events: list[dict] = []
    for doc in docs:
        track = doc["track"] or "sim"
        pid = pids.get(track)
        if pid is None:
            pid = len(pids) + 1
            pids[track] = pid
            trace_events.append({
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": track},
            })
        ts = round(doc["t"] * 1e6, 3)  # simulated microseconds
        if doc["cat"] == "probe":
            args = doc["args"]
            flow = args.get("flow")
            name = doc["name"] if flow is None else f"{doc['name']}/flow{int(flow)}"
            counters = {
                k: v
                for k, v in args.items()
                if k != "flow" and _numeric(v)
            }
            trace_events.append({
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": ts,
                "cat": doc["cat"],
                "name": name,
                "args": counters,
            })
        else:
            trace_events.append({
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": 0,
                "ts": ts,
                "cat": doc["cat"],
                "name": doc["name"],
                "args": dict(doc["args"]),
            })
    other = {"event_count": len(docs), "digest": events_digest(docs)}
    if meta:
        other.update(meta)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {k: other[k] for k in sorted(other)},
    }


def dump_perfetto(doc: dict) -> str:
    """Canonical serialization — same document, same bytes, always."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def perfetto_digest(doc: dict) -> str:
    """sha256 of the canonical serialization of a Perfetto document."""
    return hashlib.sha256(dump_perfetto(doc).encode()).hexdigest()


def to_csv(events) -> str:
    """Flat CSV time series: one row per event, one column per arg key.

    Columns appear in first-seen order across the stream (deterministic
    for a deterministic stream); missing args render as empty cells.
    """
    docs = _event_docs(events)
    keys: list[str] = []
    seen: set = set()
    for doc in docs:
        for k in doc["args"]:
            if k not in seen:
                seen.add(k)
                keys.append(k)
    lines = [",".join(["seq", "t", "cat", "name", "track"] + keys)]
    for doc in docs:
        row = [
            str(doc["seq"]),
            f"{doc['t']:.9f}",
            doc["cat"],
            doc["name"],
            json.dumps(doc["track"]) if "," in doc["track"] else doc["track"],
        ]
        for k in keys:
            v = doc["args"].get(k)
            row.append("" if v is None else json.dumps(v))
        lines.append(",".join(row))
    return "\n".join(lines) + "\n"


_PHASES = frozenset({"C", "i", "M"})
_INSTANT_SCOPES = frozenset({"t", "p", "g"})


def validate_perfetto(doc) -> list[str]:
    """Schema-check a document produced by :func:`to_perfetto`.

    Returns a list of human-readable problems; empty means valid.  The
    checks cover what the Perfetto/Chrome loader actually requires of
    the JSON Object format plus this package's own guarantees (counter
    args numeric, digest present).
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' missing or not a list"]
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        problems.append("'displayTimeUnit' must be 'ms' or 'ns'")
    other = doc.get("otherData")
    if not isinstance(other, dict) or "digest" not in other:
        problems.append("'otherData.digest' missing (event-stream digest)")
    for idx, ev in enumerate(events):
        where = f"traceEvents[{idx}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: 'name' missing or empty")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: 'pid' missing or not an int")
        if not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: 'args' missing or not an object")
            continue
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not _numeric(ts) or ts < 0:
            problems.append(f"{where}: 'ts' missing, non-numeric, or negative")
        if not isinstance(ev.get("cat"), str) or not ev["cat"]:
            problems.append(f"{where}: 'cat' missing or empty")
        if ph == "C":
            bad = [k for k, v in ev["args"].items() if not _numeric(v)]
            if bad:
                problems.append(
                    f"{where}: counter args must be numeric, got {sorted(bad)}"
                )
        if ph == "i" and ev.get("s") not in _INSTANT_SCOPES:
            problems.append(f"{where}: instant scope 's' must be t/p/g")
    return problems
