"""Trace exporters: Perfetto/Chrome ``trace_event`` JSON and CSV.

The Perfetto export targets the JSON Array/Object format the Chrome
tracing ecosystem defined and https://ui.perfetto.dev still loads:

* each distinct event ``track`` becomes a process (a ``process_name``
  metadata event assigns the label; pids are first-seen order, which is
  deterministic because the event stream is);
* ``probe.*`` events become ``"ph": "C"`` counter events — Perfetto
  renders them as time-series tracks, the closest thing to the paper's
  mpstat/ss plots;
* ``flow.tick`` events (recorded when the ``flow`` category is opted
  in) become per-flow **ledger counter tracks** — the in-flight bytes
  estimate the :class:`~repro.trace.ledger.FlowConservationLedger`
  checks, plotted against the ``cwnd`` that bounded it;
* everything else becomes a thread-scoped instant (``"ph": "i"``,
  ``"s": "t"``);
* timestamps are simulated microseconds (the format's unit).

All functions accept either :class:`~repro.trace.events.TraceEvent`
objects or their ``to_dict`` forms.  Serialization is canonical
(sorted keys, fixed separators): the same event stream always produces
the same bytes, so file-level comparison works across ``--jobs`` modes
— and across the in-memory and the streaming
(:mod:`repro.trace.stream`) export paths, which share the per-event
conversion in :class:`PerfettoEventStream` and the CSV row writer
here.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json

from repro.trace.events import TraceEvent, events_digest
from repro.trace.ledger import inflight_bytes

__all__ = [
    "PerfettoEventStream",
    "to_perfetto",
    "to_csv",
    "csv_arg_keys",
    "write_csv",
    "dump_perfetto",
    "perfetto_digest",
    "validate_perfetto",
]


def _event_docs(events) -> list[dict]:
    return [
        e.to_dict() if isinstance(e, TraceEvent) else e for e in events
    ]


def _numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class PerfettoEventStream:
    """Stateful per-event converter shared by both export paths.

    Holds the track→pid map (first-seen order); :meth:`convert` returns
    the Perfetto records for one event — a ``process_name`` metadata
    record the first time a track appears, then the event itself.
    Because the only state is that small map, the streaming exporter
    stays O(distinct tracks) in memory however long the stream.
    """

    def __init__(self) -> None:
        self._pids: dict[str, int] = {}

    def convert(self, doc: dict) -> list[dict]:
        out: list[dict] = []
        track = doc["track"] or "sim"
        pid = self._pids.get(track)
        if pid is None:
            pid = len(self._pids) + 1
            self._pids[track] = pid
            out.append({
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "name": "process_name",
                "args": {"name": track},
            })
        ts = round(doc["t"] * 1e6, 3)  # simulated microseconds
        args = doc["args"]
        if doc["cat"] == "probe":
            flow = args.get("flow")
            name = doc["name"] if flow is None else f"{doc['name']}/flow{int(flow)}"
            counters = {
                k: v
                for k, v in args.items()
                if k != "flow" and _numeric(v)
            }
            out.append({
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": ts,
                "cat": doc["cat"],
                "name": name,
                "args": counters,
            })
        elif doc["cat"] == "flow" and doc["name"] == "flow.tick":
            # The conservation ledger's own quantity, as a counter
            # track: in-flight bytes (alloc × sRTT) against the cwnd
            # that bounded the allocation.  Pure function of the event,
            # so exports stay independent of whether a ledger ran.
            out.append({
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": ts,
                "cat": doc["cat"],
                "name": f"ledger.inflight/flow{int(args['flow'])}",
                "args": {
                    "cwnd": float(args["cwnd"]),
                    "inflight": inflight_bytes(args["alloc"], args["rtt"]),
                },
            })
        else:
            out.append({
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": 0,
                "ts": ts,
                "cat": doc["cat"],
                "name": doc["name"],
                "args": dict(args),
            })
        return out


def to_perfetto(events, meta: dict | None = None) -> dict:
    """Build a Chrome/Perfetto ``trace_event`` JSON document."""
    docs = _event_docs(events)
    conv = PerfettoEventStream()
    trace_events: list[dict] = []
    for doc in docs:
        trace_events.extend(conv.convert(doc))
    other = {"event_count": len(docs), "digest": events_digest(docs)}
    if meta:
        other.update(meta)
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {k: other[k] for k in sorted(other)},
    }


def dump_perfetto(doc: dict) -> str:
    """Canonical serialization — same document, same bytes, always."""
    return json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"


def perfetto_digest(doc: dict) -> str:
    """sha256 of the canonical serialization of a Perfetto document."""
    return hashlib.sha256(dump_perfetto(doc).encode()).hexdigest()


# -- CSV -------------------------------------------------------------------


def csv_arg_keys(docs) -> list[str]:
    """Argument columns in first-seen order across the stream.

    Deterministic for a deterministic stream; accepts any iterable of
    event dicts (the streaming exporter passes a disk iterator).
    """
    keys: list[str] = []
    seen: set = set()
    for doc in docs:
        for k in doc["args"]:
            if k not in seen:
                seen.add(k)
                keys.append(k)
    return keys


def _csv_cell(value) -> str:
    """Render one cell; the :mod:`csv` writer handles all quoting.

    ``None`` is an empty cell, booleans keep their JSON spelling,
    numbers use canonical JSON rendering, strings pass through raw
    (RFC-4180 quoting is the writer's job, not escaping-by-JSON), and
    anything structured falls back to canonical JSON text.
    """
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return json.dumps(value)
    if isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def write_csv(docs, keys: list[str], fh) -> None:
    """Write header + one RFC-4180 row per event dict to ``fh``.

    Shared by :func:`to_csv` (in-memory) and
    :func:`repro.trace.stream.stream_csv` (from disk) so both produce
    identical bytes.  Fields containing commas, quotes, or newlines are
    quoted per RFC 4180 by the :mod:`csv` writer.
    """
    writer = csv.writer(fh, lineterminator="\n")
    writer.writerow(["seq", "t", "cat", "name", "track"] + keys)
    for doc in docs:
        row = [
            str(doc["seq"]),
            f"{doc['t']:.9f}",
            _csv_cell(doc["cat"]),
            _csv_cell(doc["name"]),
            _csv_cell(doc["track"]),
        ]
        args = doc["args"]
        row.extend(_csv_cell(args.get(k)) for k in keys)
        writer.writerow(row)


def to_csv(events) -> str:
    """Flat CSV time series: one row per event, one column per arg key.

    Columns appear in first-seen order across the stream (deterministic
    for a deterministic stream); missing args render as empty cells.
    """
    docs = _event_docs(events)
    buf = io.StringIO()
    write_csv(docs, csv_arg_keys(docs), buf)
    return buf.getvalue()


_PHASES = frozenset({"C", "i", "M"})
_INSTANT_SCOPES = frozenset({"t", "p", "g"})


def validate_perfetto(doc) -> list[str]:
    """Schema-check a document produced by :func:`to_perfetto`.

    Returns a list of human-readable problems; empty means valid.  The
    checks cover what the Perfetto/Chrome loader actually requires of
    the JSON Object format plus this package's own guarantees (counter
    args numeric, digest present).
    """
    problems: list[str] = []
    if not isinstance(doc, dict):
        return ["top level must be a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' missing or not a list"]
    if doc.get("displayTimeUnit") not in ("ms", "ns"):
        problems.append("'displayTimeUnit' must be 'ms' or 'ns'")
    other = doc.get("otherData")
    if not isinstance(other, dict) or "digest" not in other:
        problems.append("'otherData.digest' missing (event-stream digest)")
    for idx, ev in enumerate(events):
        where = f"traceEvents[{idx}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if ph not in _PHASES:
            problems.append(f"{where}: unsupported phase {ph!r}")
            continue
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            problems.append(f"{where}: 'name' missing or empty")
        if not isinstance(ev.get("pid"), int):
            problems.append(f"{where}: 'pid' missing or not an int")
        if not isinstance(ev.get("args"), dict):
            problems.append(f"{where}: 'args' missing or not an object")
            continue
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not _numeric(ts) or ts < 0:
            problems.append(f"{where}: 'ts' missing, non-numeric, or negative")
        if not isinstance(ev.get("cat"), str) or not ev["cat"]:
            problems.append(f"{where}: 'cat' missing or empty")
        if ph == "C":
            bad = [k for k, v in ev["args"].items() if not _numeric(v)]
            if bad:
                problems.append(
                    f"{where}: counter args must be numeric, got {sorted(bad)}"
                )
        if ph == "i" and ev.get("s") not in _INSTANT_SCOPES:
            problems.append(f"{where}: instant scope 's' must be t/p/g")
    return problems
