"""File-backed JSONL trace streams: spill, re-read, stream-export.

The in-memory sinks in :mod:`repro.trace.bus` either keep everything
(:class:`~repro.trace.bus.ListSink` — O(events) memory) or forget
(:class:`~repro.trace.bus.RingSink` — bounded, lossy).  Long ``paper``
profile campaigns need a third mode, the one production tracers use:
**keep everything, hold almost nothing** — append each event to an
on-disk JSONL stream as it happens, so peak resident event memory is
O(flush batch), not O(run length).

The stream format is line-oriented so a crashed or killed writer
leaves a readable file:

* line 1 — a *header record* ``{"kind": "header", "format": 1, ...}``
  written (and flushed) before any event;
* one line per event — the exact canonical JSON of
  :meth:`TraceEvent.to_dict` that :func:`~repro.trace.events.events_digest`
  hashes, so re-reading and re-hashing a stream reproduces the digest
  the writer computed incrementally;
* last line — a *finalize record* ``{"kind": "end", "count": N,
  "digest": ...}`` appended by :meth:`JsonlSink.finalize`; its absence
  marks the stream as truncated (the writer crashed mid-run).

Readers are tolerant by construction: a partial trailing line (the
kill-mid-write case) or a missing finalize record terminates iteration
cleanly instead of raising — every complete event before the
truncation point is still served.

The streaming exporters re-serialize from disk without materializing
the event list: :func:`stream_perfetto` and :func:`stream_csv` make
two passes (count/digest or column discovery first, then rows) and
produce **byte-identical** output to their in-memory counterparts in
:mod:`repro.trace.export` — the tests compare them with ``==`` on
bytes.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core.errors import SimulationError
from repro.trace.bus import Sink, _check_categories
from repro.trace.events import TraceEvent

__all__ = [
    "STREAM_FORMAT",
    "JsonlSink",
    "StreamInfo",
    "iter_stream_events",
    "read_stream_header",
    "stream_summary",
    "stream_perfetto",
    "stream_csv",
]

#: Bump when the stream layout changes; readers reject other formats.
STREAM_FORMAT = 1

#: Default write-batch size: the sink's resident-memory bound.  256
#: pending lines is a few tens of KB however many millions of events
#: the run emits.
DEFAULT_FLUSH_EVERY = 256


def _canonical(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


class JsonlSink(Sink):
    """Streams accepted events to a JSONL file with bounded memory.

    Events buffer as serialized lines and spill every ``flush_every``
    writes; :attr:`peak_buffered` records the high-water mark of the
    buffer, which is how the tests (and the acceptance criterion)
    assert O(1)-in-event-count residency.  The stream digest is
    accumulated incrementally with the exact byte recipe of
    :func:`~repro.trace.events.events_digest`, so it never requires
    the events to be in memory at once.
    """

    #: JSONL streams are lossless; mirrors the other sinks' counter.
    dropped = 0

    def __init__(
        self,
        path,
        categories=None,
        flush_every: int = DEFAULT_FLUSH_EVERY,
        meta: dict | None = None,
    ) -> None:
        if flush_every < 1:
            raise SimulationError(
                f"flush_every must be >= 1, got {flush_every}"
            )
        self.categories = _check_categories(categories)
        self.path = Path(path)
        self.flush_every = flush_every
        self.written = 0
        self.peak_buffered = 0
        self._buf: list[str] = []
        self._hash = hashlib.sha256()
        self._closed = False
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = self.path.open("w", encoding="utf-8")
        header = {
            "kind": "header",
            "format": STREAM_FORMAT,
            "categories": sorted(self.categories)
            if self.categories is not None
            else None,
            "meta": {k: meta[k] for k in sorted(meta)} if meta else {},
        }
        # The header is one atomic line, flushed before any event: even
        # an immediately-killed writer leaves an identifiable stream.
        self._fh.write(_canonical(header) + "\n")
        self._fh.flush()

    def write(self, event: TraceEvent) -> None:
        if self._closed:
            raise SimulationError(
                f"JsonlSink({self.path}) is finalized; no further writes"
            )
        line = _canonical(event.to_dict())
        self._hash.update(line.encode("utf-8"))
        self._hash.update(b"\n")
        self._buf.append(line)
        self.written += 1
        if len(self._buf) > self.peak_buffered:
            self.peak_buffered = len(self._buf)
        if len(self._buf) >= self.flush_every:
            self._flush()

    def _flush(self) -> None:
        if self._buf:
            self._fh.write("\n".join(self._buf) + "\n")
            self._fh.flush()
            self._buf.clear()

    def digest(self) -> str:
        """The incremental stream digest == ``events_digest(events)``."""
        return self._hash.hexdigest()

    def finalize(self) -> None:
        """Flush, append the finalize record, and close the file.

        Idempotent: the record is written exactly once, as one atomic
        line, so a finalized stream always ends in a complete ``end``
        record and an unfinalized one simply lacks it.
        """
        if self._closed:
            return
        self._flush()
        end = {
            "kind": "end",
            "count": self.written,
            "digest": self.digest(),
            "peak_buffered": self.peak_buffered,
        }
        self._fh.write(_canonical(end) + "\n")
        self._fh.close()
        self._closed = True

    close = finalize

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc) -> None:
        self.finalize()


# -- reading ---------------------------------------------------------------


@dataclass(frozen=True)
class StreamInfo:
    """Summary of one JSONL stream, recomputed from its event lines."""

    path: Path
    header: dict
    count: int
    digest: str
    #: True when the finalize record was present and intact.
    finalized: bool
    end: dict | None

    @property
    def consistent(self) -> bool:
        """Finalize record (when present) agrees with the re-scan."""
        if self.end is None:
            return True
        return (
            self.end.get("count") == self.count
            and self.end.get("digest") == self.digest
        )


def _records(path) -> Iterator[tuple[str, dict]]:
    """Yield ``(kind, doc)`` pairs: one header, events, maybe an end.

    Tolerates truncation anywhere after the header: an unparsable or
    non-object line (the partial write of a killed process) terminates
    iteration instead of raising, so every complete event survives a
    crash.  A missing or malformed *header*, by contrast, means the
    file is not a trace stream at all and raises.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
        if not first.strip():
            raise SimulationError(f"{path}: empty file, not a JSONL trace stream")
        try:
            header = json.loads(first)
        except ValueError:
            raise SimulationError(
                f"{path}: not a JSONL trace stream (first line is not JSON)"
            ) from None
        if not isinstance(header, dict) or header.get("kind") != "header":
            raise SimulationError(
                f"{path}: missing stream header record "
                "(expected {\"kind\": \"header\", ...} on line 1)"
            )
        if header.get("format") != STREAM_FORMAT:
            raise SimulationError(
                f"{path}: unsupported stream format "
                f"{header.get('format')!r} (have {STREAM_FORMAT})"
            )
        yield "header", header
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except ValueError:
                return  # partial trailing line — truncated write
            if not isinstance(doc, dict):
                return
            if doc.get("kind") == "end":
                yield "end", doc
                return
            yield "event", doc


def read_stream_header(path) -> dict:
    """The stream's header record; raises if ``path`` is not a stream."""
    for kind, doc in _records(path):
        return doc
    raise SimulationError(f"{path}: empty stream")  # pragma: no cover


def iter_stream_events(path) -> Iterator[dict]:
    """Iterate event dicts from a JSONL stream without materializing it."""
    for kind, doc in _records(path):
        if kind == "event":
            yield doc


def stream_summary(path) -> StreamInfo:
    """One tolerant pass: recomputed count + digest, finalize status."""
    header: dict = {}
    end: dict | None = None
    count = 0
    h = hashlib.sha256()
    for kind, doc in _records(path):
        if kind == "header":
            header = doc
        elif kind == "end":
            end = doc
        else:
            h.update(_canonical(doc).encode("utf-8"))
            h.update(b"\n")
            count += 1
    return StreamInfo(
        path=Path(path),
        header=header,
        count=count,
        digest=h.hexdigest(),
        finalized=end is not None,
        end=end,
    )


# -- streaming exporters ---------------------------------------------------


def stream_perfetto(src, out, meta: dict | None = None) -> StreamInfo:
    """Export a JSONL stream as Perfetto JSON without loading it.

    Two passes over ``src``: the first recomputes event count and
    digest (``otherData`` needs them up front), the second converts and
    appends events one at a time.  The output bytes are identical to
    ``dump_perfetto(to_perfetto(events, meta))`` on the same stream —
    the canonical top-level key order (``displayTimeUnit`` <
    ``otherData`` < ``traceEvents``) is written literally here.
    """
    from repro.trace.export import PerfettoEventStream

    info = stream_summary(src)
    other = {"event_count": info.count, "digest": info.digest}
    if meta:
        other.update(meta)
    conv = PerfettoEventStream()
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", encoding="utf-8") as fh:
        fh.write('{"displayTimeUnit":"ms","otherData":')
        fh.write(_canonical(other))
        fh.write(',"traceEvents":[')
        first = True
        for doc in iter_stream_events(src):
            for ev in conv.convert(doc):
                if not first:
                    fh.write(",")
                fh.write(_canonical(ev))
                first = False
        fh.write("]}\n")
    return info


def stream_csv(src, out) -> StreamInfo:
    """Export a JSONL stream as CSV without loading it.

    Pass one discovers the first-seen argument-column order (the same
    rule :func:`~repro.trace.export.to_csv` uses), pass two writes
    RFC-4180 rows; output bytes match the in-memory exporter.
    """
    from repro.trace.export import csv_arg_keys, write_csv

    keys = csv_arg_keys(iter_stream_events(src))
    out = Path(out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w", encoding="utf-8", newline="") as fh:
        write_csv(iter_stream_events(src), keys, fh)
    return stream_summary(src)
