"""Typed, timestamped trace events.

A :class:`TraceEvent` is one observation from a simulation hot path:
an engine dispatch, a cwnd change, a queue drop, a pause frame, or a
periodic probe sample.  Events are immutable and carry

* ``seq`` — a bus-wide monotonic sequence number that totally orders
  the stream (timestamps alone tie within a tick);
* ``t``   — *simulated* time in seconds (never wall-clock);
* ``cat`` — one of :data:`CATEGORIES`, the coarse filter sinks and the
  CLI select on;
* ``name`` — the specific event type (``"fc.pause"``, ``"probe.socket"``);
* ``track`` — a hierarchical origin label (``"<case>#r<rep>"`` when the
  harness is running repetitions) that exporters map to process rows;
* ``args`` — a flat dict of JSON-able values (numpy scalars collapse).

Determinism contract: an event stream is a pure function of (code,
seed, trace configuration).  :func:`events_digest` hashes the canonical
JSON form, which is what the runner/CLI compare across ``--jobs 1`` vs
``--jobs 4`` and across repeated same-seed runs.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

__all__ = [
    "CATEGORIES",
    "DEFAULT_EXPORT_CATEGORIES",
    "TraceEvent",
    "events_digest",
]

#: Every event category the simulator emits, in taxonomy order:
#: ``run``         — run lifecycle (start/end, per iperf3 invocation);
#: ``engine``      — discrete-event kernel dispatches;
#: ``flow``        — per-flow per-tick byte accounting (high volume;
#:                   feeds the conservation ledger, off by default);
#: ``cc``          — congestion-control loss reactions;
#: ``zerocopy``    — MSG_ZEROCOPY fallback edges (optmem exhaustion);
#: ``flowcontrol`` — IEEE 802.3x pause/resume edges;
#: ``switch``      — switch/NIC-ring drop episodes;
#: ``probe``       — periodic ss/mpstat/ethtool-style samples.
CATEGORIES = (
    "run",
    "engine",
    "flow",
    "cc",
    "zerocopy",
    "flowcontrol",
    "switch",
    "probe",
)

#: What ``repro trace`` records unless ``--events`` says otherwise:
#: everything except the per-tick ``flow`` stream, which is O(ticks x
#: flows) and exists for the conservation ledger rather than for humans.
DEFAULT_EXPORT_CATEGORIES = tuple(c for c in CATEGORIES if c != "flow")


def _plain(value):
    """Collapse numpy scalars to builtins; pass everything else through."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return value


@dataclass(frozen=True)
class TraceEvent:
    """One observation from the simulation (see module docstring)."""

    seq: int
    t: float
    cat: str
    name: str
    track: str = ""
    args: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Canonical plain-dict form: sorted args, builtin scalars."""
        return {
            "seq": self.seq,
            "t": round(float(self.t), 9),
            "cat": self.cat,
            "name": self.name,
            "track": self.track,
            "args": {k: _plain(self.args[k]) for k in sorted(self.args)},
        }

    def render(self) -> str:
        """One human-readable line (flight-recorder dumps)."""
        args = " ".join(
            f"{k}={_plain(self.args[k])!r}" for k in sorted(self.args)
        )
        origin = f" <{self.track}>" if self.track else ""
        return f"t={self.t:.6f} [{self.cat}] {self.name}{origin} {args}".rstrip()


def events_digest(events) -> str:
    """sha256 over the canonical JSON of an event stream.

    Accepts :class:`TraceEvent` objects or their ``to_dict`` forms, so
    the worker, the scheduler, and the tests hash identical bytes.
    """
    h = hashlib.sha256()
    for event in events:
        doc = event.to_dict() if isinstance(event, TraceEvent) else event
        h.update(json.dumps(doc, sort_keys=True, separators=(",", ":")).encode())
        h.update(b"\n")
    return h.hexdigest()
