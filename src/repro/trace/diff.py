"""Structural diff of two trace artifacts — ``repro trace --diff``.

The determinism contract says an event stream is a pure function of
(code, seed, trace configuration).  When a regression breaks that —
two runs that should match don't — the digests tell you *that* they
diverged; this module tells you *where*: the first event index at
which the streams disagree, which fields differ, and both values,
plus a per-stream count/digest summary.

Both artifact formats diff:

* JSONL streams written by :class:`~repro.trace.stream.JsonlSink`
  (compared event-by-event on the canonical ``to_dict`` form);
* Perfetto ``.trace.json`` documents from the exporters (compared on
  their ``traceEvents`` records).

Streams are consumed as iterators — two multi-gigabyte JSONL spills
diff in O(1) memory.  Comparison is exact (``!=`` on the parsed JSON
values): the streams were serialized canonically, so any byte-level
divergence shows up as a field-level one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from itertools import zip_longest
from pathlib import Path
from typing import Iterator

from repro.core.errors import SimulationError

__all__ = ["FieldDiff", "TraceDiff", "diff_event_streams", "diff_files"]


@dataclass(frozen=True)
class FieldDiff:
    """One field that differs at the first divergent event."""

    field: str
    a: object
    b: object


@dataclass(frozen=True)
class TraceDiff:
    """Outcome of diffing two event streams."""

    label_a: str
    label_b: str
    count_a: int
    count_b: int
    digest_a: str
    digest_b: str
    #: Index (0-based position in the stream) of the first divergent
    #: event; None when the streams are identical.
    index: int | None = None
    #: ``seq`` of the divergent event in each stream (None when that
    #: stream ended before the divergence point).
    seq_a: int | None = None
    seq_b: int | None = None
    fields: tuple = ()

    @property
    def identical(self) -> bool:
        return (
            self.index is None
            and self.count_a == self.count_b
            and self.digest_a == self.digest_b
        )

    def render(self) -> str:
        lines = [
            f"A: {self.label_a} — {self.count_a} events, "
            f"digest {self.digest_a[:16]}",
            f"B: {self.label_b} — {self.count_b} events, "
            f"digest {self.digest_b[:16]}",
        ]
        if self.identical:
            lines.append("traces identical")
            return "\n".join(lines)
        if self.index is None:
            lines.append("traces differ (digest/count mismatch)")
            return "\n".join(lines)
        if self.seq_a is None or self.seq_b is None:
            ended, continues = ("A", "B") if self.seq_a is None else ("B", "A")
            lines.append(
                f"first divergence at event index {self.index}: stream "
                f"{ended} ended here, {continues} continues"
            )
        else:
            lines.append(
                f"first divergence at event index {self.index} "
                f"(seq {self.seq_a} vs {self.seq_b}):"
            )
        for fd in self.fields:
            lines.append(f"  {fd.field}: {fd.a!r} != {fd.b!r}")
        return "\n".join(lines)


def _field_diffs(da: dict, db: dict) -> tuple:
    """Per-field differences, with ``args`` flattened to ``args.<k>``."""
    out: list[FieldDiff] = []
    for k in sorted(set(da) | set(db)):
        va, vb = da.get(k), db.get(k)
        if k == "args" and isinstance(va, dict) and isinstance(vb, dict):
            for ak in sorted(set(va) | set(vb)):
                if va.get(ak) != vb.get(ak):
                    out.append(FieldDiff(f"args.{ak}", va.get(ak), vb.get(ak)))
        elif va != vb:
            out.append(FieldDiff(k, va, vb))
    return tuple(out)


def _canonical(doc: dict) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def diff_event_streams(
    events_a, events_b, label_a: str = "A", label_b: str = "B"
) -> TraceDiff:
    """Lockstep-compare two iterables of event dicts.

    Both streams are consumed to the end even after a divergence, so
    the summary always carries total counts and full-stream digests.
    """
    h_a, h_b = hashlib.sha256(), hashlib.sha256()
    count_a = count_b = 0
    index = seq_a = seq_b = None
    fields: tuple = ()
    for i, (da, db) in enumerate(zip_longest(events_a, events_b)):
        if da is not None:
            h_a.update(_canonical(da).encode("utf-8"))
            h_a.update(b"\n")
            count_a += 1
        if db is not None:
            h_b.update(_canonical(db).encode("utf-8"))
            h_b.update(b"\n")
            count_b += 1
        if index is None and da != db:
            index = i
            seq_a = None if da is None else da.get("seq")
            seq_b = None if db is None else db.get("seq")
            if da is not None and db is not None:
                fields = _field_diffs(da, db)
    return TraceDiff(
        label_a=label_a,
        label_b=label_b,
        count_a=count_a,
        count_b=count_b,
        digest_a=h_a.hexdigest(),
        digest_b=h_b.hexdigest(),
        index=index,
        seq_a=seq_a,
        seq_b=seq_b,
        fields=fields,
    )


def _open_artifact(path: Path) -> Iterator[dict]:
    """Event iterator for either artifact format (JSONL or Perfetto)."""
    with path.open("r", encoding="utf-8") as fh:
        first = fh.readline()
    try:
        doc = json.loads(first)
        is_jsonl = isinstance(doc, dict) and doc.get("kind") == "header"
    except ValueError:
        is_jsonl = False
    if is_jsonl:
        from repro.trace.stream import iter_stream_events

        return iter_stream_events(path)
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except ValueError:
        raise SimulationError(
            f"{path}: neither a JSONL trace stream nor a Perfetto document"
        ) from None
    events = doc.get("traceEvents") if isinstance(doc, dict) else None
    if not isinstance(events, list):
        raise SimulationError(
            f"{path}: JSON document has no 'traceEvents' list"
        )
    return iter(events)


def diff_files(path_a, path_b) -> TraceDiff:
    """Diff two trace artifacts on disk (JSONL streams or Perfetto JSON)."""
    path_a, path_b = Path(path_a), Path(path_b)
    for path in (path_a, path_b):
        if not path.exists():
            raise SimulationError(f"{path}: no such trace artifact")
    return diff_event_streams(
        _open_artifact(path_a),
        _open_artifact(path_b),
        label_a=str(path_a),
        label_b=str(path_b),
    )
