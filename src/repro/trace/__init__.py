"""``repro.trace`` — in-simulation observability.

A structured event bus with typed, timestamped events from the
simulator's hot paths, periodic probes modeled on the paper's tools
(``ss -ti``, ``mpstat``, ``ethtool -S``), a bounded ring-buffer flight
recorder, and Perfetto/CSV exporters.  See README "Tracing & probes"
and DESIGN §2 item 15.

Quick tour::

    from repro.trace import ListSink, TraceBus, tracing

    sink = ListSink()
    with tracing(TraceBus(sinks=[sink], probe_interval=0.25)):
        result = tool.run(options)          # numbers unchanged
    print(sink.events[0].render())          # ... but now explainable

Tracing is **zero-cost when disabled** (hot paths read one module
global and bail on ``None``) and **deterministic when enabled** (the
event stream is a pure function of code, seed, and trace config — the
runner asserts digest equality across ``--jobs 1`` vs ``--jobs 4``).
"""

from repro.trace.bus import (
    ListSink,
    RingSink,
    Sink,
    TraceBus,
    TraceSpec,
    active,
    flight_recorder_tail,
    install,
    tracing,
    uninstall,
)
from repro.trace.events import (
    CATEGORIES,
    DEFAULT_EXPORT_CATEGORIES,
    TraceEvent,
    events_digest,
)
from repro.trace.diff import TraceDiff, diff_event_streams, diff_files
from repro.trace.export import (
    dump_perfetto,
    perfetto_digest,
    to_csv,
    to_perfetto,
    validate_perfetto,
)
from repro.trace.ledger import FlowConservationLedger, inflight_bytes
from repro.trace.probes import PROBE_TOOLS, mpstat_probe, nic_probe, socket_probe
from repro.trace.stream import (
    JsonlSink,
    StreamInfo,
    iter_stream_events,
    read_stream_header,
    stream_csv,
    stream_perfetto,
    stream_summary,
)

__all__ = [
    "CATEGORIES",
    "DEFAULT_EXPORT_CATEGORIES",
    "TraceEvent",
    "events_digest",
    "Sink",
    "ListSink",
    "RingSink",
    "TraceBus",
    "TraceSpec",
    "active",
    "install",
    "uninstall",
    "tracing",
    "flight_recorder_tail",
    "FlowConservationLedger",
    "inflight_bytes",
    "PROBE_TOOLS",
    "socket_probe",
    "mpstat_probe",
    "nic_probe",
    "to_perfetto",
    "to_csv",
    "dump_perfetto",
    "perfetto_digest",
    "validate_perfetto",
    "JsonlSink",
    "StreamInfo",
    "iter_stream_events",
    "read_stream_header",
    "stream_summary",
    "stream_perfetto",
    "stream_csv",
    "TraceDiff",
    "diff_event_streams",
    "diff_files",
]
