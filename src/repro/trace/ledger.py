"""Per-flow byte-conservation ledger — a sanitizer on the trace stream.

The link-level conservation check in :mod:`repro.sim.sanitizer` audits
each queue's aggregate accounting; this ledger audits *per flow*, by
consuming the ``flow.tick`` event stream the simulator emits on the
trace bus.  Implementing it as a :class:`~repro.trace.bus.Sink` means
one wire format serves both debugging (exports) and verification (this
ledger): whatever the events claim is exactly what gets checked.

Invariants per flow per tick (``sent``/``delivered``/``dropped`` are
bytes this tick, ``alloc`` the allocated rate, ``cwnd`` the congestion
window that bounded it, ``rtt`` the smoothed RTT used for the window
rate):

* no negative byte counts;
* ``delivered <= sent`` — a flow cannot deliver bytes it never emitted;
* ``delivered + dropped >= sent`` — every emitted byte is delivered or
  dropped (burst-train concentration can drop *more* than this tick's
  emission — time-compressed per-RTT losses — so only the lower bound
  holds per tick);
* ``alloc * rtt <= cwnd`` (+ a few MSS of slack) — the cwnd-bounded
  in-flight constraint: the allocator may never hand a flow more than
  its congestion window covers;
* cumulatively, total delivered never exceeds total sent.

Violations raise :class:`~repro.core.errors.SanitizerViolation` with
the ambient flight-recorder tail appended, exactly like the link-level
sanitizer.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import SanitizerViolation
from repro.trace.bus import Sink, flight_recorder_tail
from repro.trace.events import TraceEvent

__all__ = ["FlowConservationLedger", "inflight_bytes"]

#: The window bound gets this many MSS of absolute slack: allocation
#: happens at float precision against ``cwnd / max(rtt, eps)``.
_WINDOW_SLACK_MSS = 4.0


def inflight_bytes(alloc, rtt) -> float:
    """The ledger's in-flight estimate: allocated rate × smoothed RTT.

    This is the exact quantity the cwnd bound below checks, and the one
    the Perfetto exporter renders as per-flow ``ledger.inflight``
    counter tracks (against ``cwnd``), so what you see plotted is what
    gets verified.
    """
    return float(alloc) * max(float(rtt), 1e-6)


class FlowConservationLedger(Sink):
    """Checks per-flow conservation by consuming ``flow.tick`` events."""

    categories = frozenset({"flow"})

    def __init__(
        self,
        n_flows: int,
        mss: float,
        context: str = "flowsim",
        rel_tol: float = 1e-6,
        abs_tol: float = 1e-3,
    ) -> None:
        self.context = context
        self.mss = float(mss)
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol
        #: Assertions run; tests use this to prove the ledger was live.
        self.checks = 0
        self.sent_cum = np.zeros(n_flows)
        self.delivered_cum = np.zeros(n_flows)
        self.dropped_cum = np.zeros(n_flows)

    # Mirrors SimSanitizer._fail so both oracles speak the same dialect.
    def _fail(self, what: str) -> None:
        message = f"[{self.context}] {what}"
        tail = flight_recorder_tail()
        if tail:
            message = f"{message}\n{tail}"
        raise SanitizerViolation(message)

    def write(self, event: TraceEvent) -> None:
        if event.name != "flow.tick":
            return
        a = event.args
        i = int(a["flow"])
        sent = float(a["sent"])
        delivered = float(a["delivered"])
        dropped = float(a["dropped"])
        alloc = float(a["alloc"])
        cwnd = float(a["cwnd"])
        rtt = float(a["rtt"])

        self.checks += 1
        tol = self.abs_tol + self.rel_tol * max(sent, 1.0)
        if min(sent, delivered, dropped) < -tol:
            self._fail(
                f"flow {i} t={event.t:.6f}: negative byte count "
                f"(sent={sent:.3f} delivered={delivered:.3f} "
                f"dropped={dropped:.3f})"
            )
        if delivered > sent + tol:
            self._fail(
                f"flow {i} t={event.t:.6f}: delivered {delivered:.3f} B "
                f"of only {sent:.3f} B sent — a flow cannot deliver "
                f"bytes it never emitted"
            )
        if delivered + dropped < sent - tol:
            self._fail(
                f"flow {i} t={event.t:.6f}: "
                f"{sent - delivered - dropped:.3f} B vanished "
                f"(sent={sent:.3f} delivered={delivered:.3f} "
                f"dropped={dropped:.3f})"
            )
        inflight = inflight_bytes(alloc, rtt)
        bound = (
            cwnd * (1.0 + self.rel_tol)
            + _WINDOW_SLACK_MSS * self.mss
            + self.abs_tol
        )
        if inflight > bound:
            self._fail(
                f"flow {i} t={event.t:.6f}: in-flight {inflight:.0f} B "
                f"exceeds cwnd {cwnd:.0f} B — the allocator ignored the "
                f"congestion window (alloc={alloc:.0f} B/s rtt={rtt:.6f}s)"
            )

        self.sent_cum[i] += sent
        self.delivered_cum[i] += delivered
        self.dropped_cum[i] += dropped
        cum_tol = self.abs_tol + self.rel_tol * max(self.sent_cum[i], 1.0)
        if self.delivered_cum[i] > self.sent_cum[i] + cum_tol:
            self._fail(
                f"flow {i} t={event.t:.6f}: cumulative delivered "
                f"{self.delivered_cum[i]:.0f} B exceeds cumulative sent "
                f"{self.sent_cum[i]:.0f} B"
            )
