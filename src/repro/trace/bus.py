"""The trace event bus, sinks, and the ambient installation switch.

Mirrors the :mod:`repro.sim.sanitizer` opt-in pattern: hot paths read
one module global (:func:`active`) and pay a single ``None`` check when
tracing is off — no event objects, no dict building, no RNG draws.
When a bus *is* installed, emission is purely observational: nothing
the simulator computes depends on it, which is why golden result
digests are byte-identical with tracing on or off.

Sinks receive every event whose category they accept.  Two concrete
sinks ship here:

* :class:`ListSink` — unbounded, keeps everything (exports);
* :class:`RingSink` — bounded drop-oldest ring, the *flight recorder*:
  O(capacity) memory however long the run, with a ``dropped`` counter
  so exports can report what the ring forgot.

The sanitizer consumes the same stream: on any invariant violation,
:func:`flight_recorder_tail` renders the last events of the ambient
bus into the exception message for post-mortem context.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator

from repro.core.errors import SimulationError
from repro.trace.events import (
    CATEGORIES,
    DEFAULT_EXPORT_CATEGORIES,
    TraceEvent,
)

__all__ = [
    "Sink",
    "ListSink",
    "RingSink",
    "TraceBus",
    "TraceSpec",
    "active",
    "install",
    "uninstall",
    "tracing",
    "flight_recorder_tail",
]


def _check_categories(categories) -> frozenset | None:
    if categories is None:
        return None
    cats = frozenset(categories)
    unknown = sorted(cats - frozenset(CATEGORIES))
    if unknown:
        raise SimulationError(
            f"unknown trace categories {unknown}; have {list(CATEGORIES)}"
        )
    return cats


class Sink:
    """Receives events; ``categories`` (None = all) filters per sink."""

    categories: frozenset | None = None

    def accepts(self, cat: str) -> bool:
        return self.categories is None or cat in self.categories

    def write(self, event: TraceEvent) -> None:
        raise NotImplementedError


class ListSink(Sink):
    """Unbounded in-order capture of every accepted event."""

    def __init__(self, categories=None) -> None:
        self.categories = _check_categories(categories)
        self.events: list[TraceEvent] = []

    #: Mirrors :attr:`RingSink.dropped` so exporters treat sinks alike.
    dropped = 0

    def write(self, event: TraceEvent) -> None:
        self.events.append(event)

    def tail(self, n: int) -> list[TraceEvent]:
        return self.events[-n:]


class RingSink(Sink):
    """Bounded drop-oldest ring buffer — the flight recorder.

    Keeps the most recent ``capacity`` accepted events in O(capacity)
    memory; ``dropped`` counts how many older events were overwritten,
    so consumers can state exactly how much history is missing.
    """

    def __init__(self, capacity: int, categories=None) -> None:
        if capacity < 1:
            raise SimulationError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.categories = _check_categories(categories)
        self._buf: list[TraceEvent] = []
        self.written = 0

    def write(self, event: TraceEvent) -> None:
        if len(self._buf) < self.capacity:
            self._buf.append(event)
        else:
            self._buf[self.written % self.capacity] = event
        self.written += 1

    @property
    def dropped(self) -> int:
        """Events overwritten because the ring was full."""
        return max(0, self.written - self.capacity)

    @property
    def events(self) -> list[TraceEvent]:
        """Retained events, oldest first."""
        if self.written <= self.capacity:
            return list(self._buf)
        head = self.written % self.capacity
        return self._buf[head:] + self._buf[:head]

    def tail(self, n: int) -> list[TraceEvent]:
        return self.events[-n:]


@dataclass(frozen=True)
class TraceSpec:
    """Picklable description of what a traced task should record.

    The runner ships one of these to worker processes; the worker
    builds the matching bus/sink around the experiment (see
    :func:`repro.runner.worker.execute_task`).
    """

    #: Probe sampling interval in simulated seconds.
    interval: float = 0.25
    #: Event categories to record; None means
    #: :data:`~repro.trace.events.DEFAULT_EXPORT_CATEGORIES`.
    categories: tuple | None = None
    #: Flight-recorder capacity; 0 keeps every event (ListSink).
    buffer: int = 0
    #: Spill mode: when set, the worker streams events to a JSONL file
    #: in this directory (:class:`~repro.trace.stream.JsonlSink` —
    #: lossless, O(1) resident memory in event count) instead of
    #: shipping the full event list back through the process pool.
    #: Kept as a string so the spec pickles/canonicalizes plainly.
    spill_dir: str | None = None

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise SimulationError(f"probe interval must be > 0, got {self.interval}")
        if self.buffer < 0:
            raise SimulationError(f"buffer must be >= 0, got {self.buffer}")
        if self.buffer and self.spill_dir is not None:
            raise SimulationError(
                "buffer and spill_dir are mutually exclusive: the ring "
                "bounds memory by forgetting, the JSONL spill by "
                "streaming to disk — pick one"
            )
        _check_categories(self.categories)

    def resolved_categories(self) -> tuple:
        if self.categories is None:
            return DEFAULT_EXPORT_CATEGORIES
        return tuple(self.categories)

    def make_sink(self, stem: str | None = None, meta: dict | None = None) -> Sink:
        """Build the sink this spec describes.

        ``stem`` names the spill file (``<spill_dir>/<stem>.trace.jsonl``)
        and is required in spill mode — the runner passes
        :attr:`~repro.runner.tasks.TaskSpec.artifact_stem` so concurrent
        tasks never collide on a path.  ``meta`` lands in the stream's
        header record.  Both are ignored by the in-memory sinks.
        """
        cats = self.resolved_categories()
        if self.spill_dir is not None:
            if stem is None:
                raise SimulationError(
                    "spill mode needs an artifact stem to name the "
                    "JSONL file; pass make_sink(stem=...)"
                )
            from repro.trace.stream import JsonlSink

            path = Path(self.spill_dir) / f"{stem}.trace.jsonl"
            return JsonlSink(path, categories=cats, meta=meta)
        if self.buffer:
            return RingSink(self.buffer, categories=cats)
        return ListSink(categories=cats)


class TraceBus:
    """Routes events from instrumentation points to sinks.

    The bus owns the sequence counter and the current simulated time
    (drivers call :meth:`set_time` as their clock advances, so emitters
    deeper in the stack never thread a timestamp through).  It
    precomputes the union of sink categories: :meth:`emit` on an
    unwanted category returns before building the event.
    """

    def __init__(self, sinks=(), probe_interval: float = 0.25) -> None:
        if probe_interval <= 0:
            raise SimulationError(
                f"probe interval must be > 0, got {probe_interval}"
            )
        self.probe_interval = probe_interval
        self.now = 0.0
        self.emitted = 0
        self._seq = 0
        self._track = ""
        self._edges: dict = {}
        self._sinks: list[Sink] = []
        self._wanted: frozenset = frozenset()
        for sink in sinks:
            self.add_sink(sink)

    # -- sink management --------------------------------------------------

    @property
    def sinks(self) -> tuple:
        return tuple(self._sinks)

    def add_sink(self, sink: Sink) -> None:
        self._sinks.append(sink)
        self._recompute_wanted()

    def remove_sink(self, sink: Sink) -> None:
        self._sinks.remove(sink)
        self._recompute_wanted()

    def _recompute_wanted(self) -> None:
        wanted: set = set()
        for sink in self._sinks:
            if sink.categories is None:
                wanted = set(CATEGORIES)
                break
            wanted |= sink.categories
        self._wanted = frozenset(wanted)

    def wants(self, cat: str) -> bool:
        """Would any sink accept ``cat``?  Hot paths guard on this once
        per run so disabled categories cost nothing per tick."""
        return cat in self._wanted

    # -- emission ---------------------------------------------------------

    def set_time(self, t: float) -> None:
        """Advance the bus clock (simulated seconds)."""
        self.now = t

    def emit(self, cat: str, name: str, **args) -> TraceEvent | None:
        """Emit one event at the current bus time; None if unwanted."""
        if cat not in self._wanted:
            return None
        event = TraceEvent(
            seq=self._seq, t=self.now, cat=cat, name=name,
            track=self._track, args=args,
        )
        self._seq += 1
        self.emitted += 1
        for sink in self._sinks:
            if sink.accepts(cat):
                sink.write(event)
        return event

    def emit_edge(self, key, cat: str, name: str, value, **args):
        """Emit only when ``value`` changes for ``key`` (edge trigger).

        The initial observation is silent when falsy — a flow that never
        falls back to copying produces zero ``zc.fallback`` events, not
        one reassuring ``False``.
        """
        prev = self._edges.get(key, _UNSET)
        if prev is _UNSET:
            self._edges[key] = value
            if not value:
                return None
            return self.emit(cat, name, value=value, **args)
        if _same_value(prev, value):
            return None
        self._edges[key] = value
        return self.emit(cat, name, value=value, **args)

    @contextmanager
    def scoped(self, track: str) -> Iterator[None]:
        """Prefix events emitted inside with a hierarchical track label."""
        prev = self._track
        self._track = f"{prev}/{track}" if prev else track
        try:
            yield
        finally:
            self._track = prev

    # -- flight recorder --------------------------------------------------

    def tail(self, n: int = 20) -> list[TraceEvent]:
        """The most recent ``n`` events across all sinks, in seq order."""
        merged: dict[int, TraceEvent] = {}
        for sink in self._sinks:
            for event in sink.tail(n) if hasattr(sink, "tail") else []:
                merged[event.seq] = event
        return [merged[seq] for seq in sorted(merged)][-n:]


_UNSET = object()


def _same_value(prev, value) -> bool:
    """Identity-or-equal, treating two NaNs as the same observation.

    Plain ``prev == value`` makes a NaN edge re-fire on every tick
    (NaN never equals itself), flooding the stream with non-edges —
    the runtime variant of what lint rule FLOAT001 exists to prevent.
    """
    if prev is value or prev == value:
        return True
    # Both NaN (x != x is the type-safe NaN test; False for non-floats).
    return prev != prev and value != value

#: The ambient bus; ``None`` (the default) disables all tracing.
_active: TraceBus | None = None


def active() -> TraceBus | None:
    """The installed bus, or None — the one global hot paths read."""
    return _active


def install(bus: TraceBus) -> None:
    """Install ``bus`` as the ambient trace bus."""
    global _active
    if _active is not None:
        raise SimulationError(
            "a trace bus is already installed; uninstall() it first "
            "(buses do not nest — add a sink to the active bus instead)"
        )
    _active = bus


def uninstall() -> None:
    """Remove the ambient bus; tracing reverts to zero-cost no-ops."""
    global _active
    _active = None


@contextmanager
def tracing(bus: TraceBus | None = None) -> Iterator[TraceBus]:
    """Scope an ambient bus; builds a capture-everything one if omitted."""
    owned = bus if bus is not None else TraceBus(sinks=[ListSink()])
    install(owned)
    try:
        yield owned
    finally:
        uninstall()


def flight_recorder_tail(limit: int = 20) -> str:
    """Render the ambient bus's recent events for exception messages.

    Returns "" when no bus is installed or nothing was recorded, so the
    sanitizer can append it unconditionally.
    """
    bus = _active
    if bus is None:
        return ""
    events = bus.tail(limit)
    if not events:
        return ""
    lines = "\n  ".join(event.render() for event in events)
    return f"flight recorder (last {len(events)} events):\n  {lines}"
