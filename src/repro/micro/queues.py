"""Event-driven network elements: links with drop-tail queues.

A :class:`LinkQueue` serializes packets at a configured rate, holds at
most ``buffer_bytes`` of backlog (tail-dropping the excess), and
delivers each packet ``delay`` seconds after its serialization
completes.  Chain two of them (forward data path, reverse ACK path) and
you have the micro simulator's network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.core.engine import Engine

__all__ = ["LinkQueue"]


@dataclass
class LinkQueue:
    """A rate-limited, delay-imposing, finite drop-tail queue."""

    engine: Engine
    rate: float  # bytes/s
    delay: float  # one-way propagation, seconds
    buffer_bytes: float = float("inf")
    deliver: Callable[[object], None] = lambda pkt: None
    #: byte-size accessor for queued objects
    size_of: Callable[[object], float] = lambda pkt: getattr(pkt, "length", 60.0)

    backlog: float = 0.0
    busy: bool = False
    dropped_packets: int = 0
    dropped_bytes: float = 0.0
    delivered_bytes: float = 0.0
    _queue: list = field(default_factory=list)

    def send(self, pkt: object) -> bool:
        """Offer a packet; returns False when it was tail-dropped."""
        size = self.size_of(pkt)
        if self.backlog + size > self.buffer_bytes:
            self.dropped_packets += 1
            self.dropped_bytes += size
            return False
        self.backlog += size
        self._queue.append(pkt)
        if not self.busy:
            self._serve_next()
        return True

    def _serve_next(self) -> None:
        if not self._queue:
            self.busy = False
            return
        self.busy = True
        pkt = self._queue.pop(0)
        size = self.size_of(pkt)
        tx_time = size / self.rate
        self.engine.call_in(tx_time, lambda: self._on_serialized(pkt, size))

    def _on_serialized(self, pkt: object, size: float) -> None:
        self.backlog -= size
        self.delivered_bytes += size
        # propagation happens in parallel with serving the next packet
        self.engine.call_in(self.delay, lambda: self.deliver(pkt))
        self._serve_next()

    @property
    def queueing_delay(self) -> float:
        """Current backlog drain time, seconds."""
        return self.backlog / self.rate
