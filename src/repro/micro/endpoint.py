"""TCP endpoints for the micro simulator.

The sender reuses the congestion-control classes from
:mod:`repro.tcp.cc` (CUBIC by default) and implements:

* window-based transmission, clocked by ACK arrivals;
* optional fq-style pacing: segments are released by a token timer at
  the pacing rate instead of back-to-back;
* loss recovery: three duplicate ACKs trigger a retransmission of the
  missing segment and a congestion event; a coarse retransmission
  timeout (RTO) backstops tail loss;
* an application-limited mode (the sender only has ``app_rate`` bytes/s
  available), used to emulate CPU-bound senders at micro scale.

The receiver delivers in-order data, buffers out-of-order segments, and
acknowledges every arrival cumulatively (no delayed ACKs — at GSO-batch
granularity every batch earns an ACK, which matches GRO reality).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.engine import Engine
from repro.micro.packets import Ack, Segment
from repro.micro.queues import LinkQueue
from repro.tcp.cc import CongestionControl, make_cc

__all__ = ["MicroSender", "MicroReceiver"]

DUPACK_THRESHOLD = 3


@dataclass
class MicroReceiver:
    """Cumulative-ACK receiver with out-of-order buffering."""

    engine: Engine
    ack_path: LinkQueue
    rcv_next: int = 0
    ooo: dict = field(default_factory=dict)  # seq -> Segment
    delivered_bytes: int = 0
    dup_count: int = 0

    def on_segment(self, seg: Segment) -> None:
        if seg.seq <= self.rcv_next < seg.end:
            # in-order (or fills the gap partially)
            self.rcv_next = seg.end
            self.delivered_bytes += seg.length
            # drain any now-contiguous buffered segments
            while self.rcv_next in self.ooo:
                nxt = self.ooo.pop(self.rcv_next)
                self.rcv_next = nxt.end
                self.delivered_bytes += nxt.length
            self.dup_count = 0
        elif seg.seq > self.rcv_next:
            self.ooo.setdefault(seg.seq, seg)
            self.dup_count += 1
        # else: duplicate of already-delivered data; still ACK
        self.ack_path.send(
            Ack(cum_ack=self.rcv_next, sent_at=self.engine.now,
                dup_hint=self.dup_count, sack_holes=self._holes())
        )

    def _holes(self, limit: int = 8) -> tuple[int, ...]:
        """First missing segment offsets above rcv_next (SACK hints)."""
        if not self.ooo:
            return ()
        holes: list[int] = []
        expected = self.rcv_next
        for seq in sorted(self.ooo):
            while seq > expected and len(holes) < limit:
                holes.append(expected)
                expected += self.ooo[seq].length  # fixed-size segments
            expected = max(expected, self.ooo[seq].end)
            if len(holes) >= limit:
                break
        return tuple(holes)


@dataclass
class MicroSender:
    """Window/pacing-driven sender."""

    engine: Engine
    data_path: LinkQueue
    mss: int = 65536  # GSO-batch granularity
    cc_name: str = "cubic"
    pacing_rate: float | None = None  # bytes/s, None = ACK-clocked
    app_limit_rate: float | None = None  # sender-CPU emulation
    max_window: float = float("inf")
    rto: float = 0.2

    snd_next: int = 0
    snd_una: int = 0
    cc: CongestionControl = field(init=False)
    retransmissions: int = 0
    delivered_updates: int = 0
    _dupacks: int = 0
    _recovery_until: int = -1
    _pace_timer_armed: bool = False
    _app_retry_armed: bool = False
    _retransmitted: set = field(default_factory=set)
    _app_credit: float = 0.0
    _last_cc_tick: float = 0.0
    _last_app_refill: float = 0.0
    _srtt: float = 0.1
    _rto_event = None

    def __post_init__(self) -> None:
        self.cc = make_cc(self.cc_name, mss=float(self.mss))

    # ------------------------------------------------------------------

    def start(self) -> None:
        self._last_app_refill = self.engine.now
        self._try_send()
        self._arm_rto()

    @property
    def inflight(self) -> int:
        return self.snd_next - self.snd_una

    def _window(self) -> float:
        w = min(self.cc.cwnd_bytes, self.max_window)
        if self.snd_una < self._recovery_until:
            # fast recovery: hold new data back while repairing
            w *= 0.65
        return w

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------

    def _current_pacing(self) -> float | None:
        """Effective pacing: min of fq (--fq-rate) and the CC's own
        model-based rate (BBR paces itself even without fq)."""
        cc_rate = self.cc.pacing_rate(self._srtt)
        rates = [r for r in (self.pacing_rate, cc_rate) if r is not None and r > 0]
        return min(rates) if rates else None

    def _try_send(self) -> None:
        if self._current_pacing() is not None:
            if not self._pace_timer_armed:
                self._release_paced()
            return
        while self.inflight + self.mss <= self._window() and self._app_allows():
            self._emit(self.snd_next, False)

    def _release_paced(self) -> None:
        self._pace_timer_armed = False
        if self.inflight + self.mss <= self._window() and self._app_allows():
            self._emit(self.snd_next, False)
        rate = self._current_pacing()
        if rate is None:
            return  # pacing vanished; fall back to ACK clocking
        # keep the release clock running as long as the flow lives
        self._pace_timer_armed = True
        self.engine.call_in(self.mss / rate, self._release_paced)

    def _app_allows(self) -> bool:
        """Application-limited senders only produce app_rate bytes/s."""
        if self.app_limit_rate is None:
            return True
        now = self.engine.now
        self._app_credit += (now - self._last_app_refill) * self.app_limit_rate
        self._app_credit = min(self._app_credit, 4.0 * self.mss)
        self._last_app_refill = now
        if self._app_credit >= self.mss - 0.5:  # float-drift tolerance
            self._app_credit = max(self._app_credit, float(self.mss))
            return True
        if not self._app_retry_armed:
            # exactly one pending retry timer, or credit checks snowball
            self._app_retry_armed = True
            wait = (self.mss - self._app_credit) / self.app_limit_rate
            self.engine.call_in(max(wait, 1e-6), self._app_retry)
        return False

    def _app_retry(self) -> None:
        self._app_retry_armed = False
        self._try_send()

    def _emit(self, seq: int, retrans: bool) -> None:
        seg = Segment(seq=seq, length=self.mss, sent_at=self.engine.now,
                      retransmission=retrans)
        if self.app_limit_rate is not None:
            self._app_credit -= self.mss
        if retrans:
            self.retransmissions += 1
        else:
            self.snd_next = max(self.snd_next, seq + self.mss)
        self.data_path.send(seg)  # tail drop handled by the queue

    # ------------------------------------------------------------------
    # feedback
    # ------------------------------------------------------------------

    def on_ack(self, ack: Ack) -> None:
        now = self.engine.now
        rtt_sample = max(1e-6, now - ack.sent_at) * 2.0  # crude: 2x one-way
        self._srtt = 0.875 * self._srtt + 0.125 * rtt_sample

        if ack.cum_ack > self.snd_una:
            self._retransmitted = {
                s for s in self._retransmitted if s >= ack.cum_ack
            }
            newly = ack.cum_ack - self.snd_una
            self.snd_una = ack.cum_ack
            self._dupacks = 0
            self.delivered_updates += 1
            dt = max(1e-9, now - self._last_cc_tick)
            self._last_cc_tick = now
            if self.snd_una >= self._recovery_until:
                self.cc.on_tick(now, dt, float(newly), self._srtt)
            else:
                # no window growth while repairing losses
                self.cc.on_app_limited(now, dt)
            self.cc.clamp(self.max_window)
            self._arm_rto()
            if self.snd_una < self._recovery_until:
                self._sack_retransmit(ack)
        elif ack.dup_hint > 0:
            self._dupacks += 1
            if self._dupacks >= DUPACK_THRESHOLD:
                # the CC rate-limits reactions to one per RTT itself,
                # so persistent overload decays the window geometrically
                if self.cc.on_loss(now, self._srtt):
                    self._recovery_until = self.snd_next
                self._sack_retransmit(ack)
        self._try_send()

    def _sack_retransmit(self, ack: Ack) -> None:
        """Retransmit the reported holes (each at most once per pass)."""
        holes = ack.sack_holes or (self.snd_una,)
        for seq in holes:
            if seq < self.snd_una or seq in self._retransmitted:
                continue
            self._retransmitted.add(seq)
            self._emit(seq, True)

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        self._rto_event = self.engine.call_in(
            max(self.rto, 4.0 * self._srtt), self._on_rto
        )

    def _on_rto(self) -> None:
        if self.inflight <= 0:
            return
        # timeout: collapse to slow start, invalidate the SACK
        # scoreboard (retransmissions may themselves have been lost),
        # and retransmit the head
        self.cc.on_timeout(self.engine.now)
        self._recovery_until = self.snd_next
        self._retransmitted.clear()
        self._emit(self.snd_una, True)
        self._arm_rto()
