"""Packet-level micro simulator (cross-validates the fluid model)."""

from repro.micro.endpoint import MicroReceiver, MicroSender
from repro.micro.packets import Ack, Segment
from repro.micro.queues import LinkQueue
from repro.micro.simulation import MicroResult, MicroSimulation

__all__ = [
    "Segment",
    "Ack",
    "LinkQueue",
    "MicroSender",
    "MicroReceiver",
    "MicroSimulation",
    "MicroResult",
]
