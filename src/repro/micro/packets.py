"""Packet-level primitives for the micro simulator.

The micro simulator (see :mod:`repro.micro.simulation`) complements the
fluid model: it moves *individual segments* through an event-driven
pipeline — sender qdisc, bottleneck queue, receiver, ACK return path —
using the same congestion-control classes as the fluid simulator.  It
is exact but slow, so it runs at GSO-batch granularity on scaled-down
(1-20 Gbps) links; its role is validating the fluid model's dynamics
(window limits, pacing, drop-tail loss, CUBIC sawtooth) at small scale,
and serving as a teaching tool.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

__all__ = ["Segment", "Ack"]

_ids = itertools.count()


@dataclass(frozen=True)
class Segment:
    """One data segment (a GSO batch in wire terms)."""

    seq: int  # first byte carried
    length: int
    sent_at: float
    retransmission: bool = False
    uid: int = field(default_factory=lambda: next(_ids))

    @property
    def end(self) -> int:
        return self.seq + self.length


@dataclass(frozen=True)
class Ack:
    """A cumulative acknowledgment with SACK-style hole hints."""

    cum_ack: int  # next byte expected by the receiver
    sent_at: float
    #: count of out-of-order segments seen since the gap opened —
    #: the sender reads dupacks off this.
    dup_hint: int = 0
    #: start offsets of the first few missing segments above cum_ack
    #: (a compact SACK encoding at fixed segment granularity).
    sack_holes: tuple[int, ...] = ()
