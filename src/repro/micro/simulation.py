"""The micro simulator: one TCP flow, packet by packet.

Wires sender → bottleneck link queue → receiver → ACK link → sender on
the event engine and runs for a configured duration.  Intended for
scaled-down scenarios (1-20 Gbps, milliseconds-to-tens-of-ms RTT) where
packet-level dynamics are observable and event counts stay manageable;
the cross-validation tests compare its steady state against the fluid
simulator's.

Example::

    result = MicroSimulation(
        rate_gbps=10, rtt_ms=20, buffer_mb=2.0, pacing_gbps=8.0,
    ).run(duration=4.0)
    result.goodput_gbps   # ~8
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units
from repro.core.engine import Engine
from repro.micro.endpoint import MicroReceiver, MicroSender
from repro.micro.queues import LinkQueue

__all__ = ["MicroSimulation", "MicroResult"]


@dataclass(frozen=True)
class MicroResult:
    """Outcome of one micro run."""

    duration: float
    delivered_bytes: int
    retransmissions: int
    drops: int
    loss_events: int
    final_cwnd_bytes: float
    events_processed: int

    @property
    def goodput(self) -> float:
        return self.delivered_bytes / self.duration

    @property
    def goodput_gbps(self) -> float:
        return units.to_gbps(self.goodput)


@dataclass
class MicroSimulation:
    """A single-flow dumbbell: sender, bottleneck, receiver."""

    rate_gbps: float = 10.0
    rtt_ms: float = 20.0
    buffer_mb: float = 4.0
    segment_bytes: int = 65536
    cc: str = "cubic"
    pacing_gbps: float | None = None
    app_limit_gbps: float | None = None
    max_window_bytes: float = float("inf")

    def run(self, duration: float = 4.0, max_events: int = 5_000_000) -> MicroResult:
        eng = Engine()
        one_way = units.ms(self.rtt_ms) / 2.0
        rate = units.gbps(self.rate_gbps)

        # Receiver and its ACK return path (ACKs are small; give the
        # reverse path ample rate and no meaningful buffering limit).
        ack_path = LinkQueue(
            engine=eng, rate=rate, delay=one_way,
            size_of=lambda pkt: 60.0,
        )
        receiver = MicroReceiver(engine=eng, ack_path=ack_path)

        data_path = LinkQueue(
            engine=eng,
            rate=rate,
            delay=one_way,
            buffer_bytes=self.buffer_mb * units.MB,
            deliver=receiver.on_segment,
        )
        sender = MicroSender(
            engine=eng,
            data_path=data_path,
            mss=self.segment_bytes,
            cc_name=self.cc,
            pacing_rate=(
                units.gbps(self.pacing_gbps) if self.pacing_gbps is not None else None
            ),
            app_limit_rate=(
                units.gbps(self.app_limit_gbps)
                if self.app_limit_gbps is not None
                else None
            ),
            max_window=self.max_window_bytes,
        )
        ack_path.deliver = sender.on_ack

        sender.start()
        eng.run(until=duration, max_events=max_events)

        return MicroResult(
            duration=duration,
            delivered_bytes=receiver.delivered_bytes,
            retransmissions=sender.retransmissions,
            drops=data_path.dropped_packets,
            loss_events=sender.cc.loss_events,
            final_cwnd_bytes=sender.cc.cwnd_bytes,
            events_processed=eng.processed,
        )
