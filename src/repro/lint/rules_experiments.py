"""Experiment-coverage rule: EXP001 (registry & benchmark wiring).

Every ``experiments/fig*.py`` module must be (a) imported by
``experiments/registry.py`` — otherwise ``repro experiment`` cannot run
it and EXPERIMENTS.md silently omits it — and (b) covered by a
``benchmarks/test_bench_<figNN>*.py`` file, so the artifact keeps being
exercised.  Modules reproducing several figures (``fig12_fig13_*``)
need a benchmark per ``figNN`` token in their name.

This is a :class:`~repro.lint.core.ProjectRule`: it looks at the file
set as a whole rather than any single AST, and anchors its violations
on line 1 of the offending fig module.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterable, Iterator

from repro.lint.core import FileContext, ProjectRule, Violation, register

__all__ = ["ExperimentCoverageRule"]

_FIG_TOKEN = re.compile(r"fig\d+")


def _find_repo_root(experiments_dir: Path) -> Path | None:
    """Nearest ancestor that has a ``benchmarks`` directory."""
    probe = experiments_dir
    for _ in range(6):
        probe = probe.parent
        if (probe / "benchmarks").is_dir():
            return probe
    return None


@register
class ExperimentCoverageRule(ProjectRule):
    """EXP001: every fig module registered and benchmarked.

    An ``experiments/fig*.py`` module missing from
    ``experiments/registry.py`` cannot be run by ``repro experiment``
    and silently drops out of EXPERIMENTS.md; one without a
    ``benchmarks/test_bench_<figNN>*`` file stops being exercised.
    Modules reproducing several figures need a benchmark per ``figNN``
    token.
    """

    code = "EXP001"
    name = "experiment-registry-and-benchmark-coverage"
    description = (
        "Every experiments/fig*.py module must be imported by "
        "experiments/registry.py and have a matching "
        "benchmarks/test_bench_<figNN> file."
    )

    def check_project(
        self, ctxs: Iterable[FileContext]
    ) -> Iterator[Violation]:
        for ctx in ctxs:
            path = ctx.path
            if (
                path.parent.name != "experiments"
                or not path.name.startswith("fig")
                or path.suffix != ".py"
            ):
                continue
            anchor = Violation(
                path=str(path), line=1, col=1, code=self.code, message=""
            )
            registry = path.parent / "registry.py"
            if not registry.is_file():
                yield Violation(
                    **{**anchor.to_dict(), "message": (
                        "no registry.py beside this fig module; every "
                        "experiment must be registered"
                    )}
                )
                continue
            if path.stem not in registry.read_text(encoding="utf-8"):
                yield Violation(
                    **{**anchor.to_dict(), "message": (
                        f"experiments/{path.name} is not referenced by "
                        f"experiments/registry.py; register it so "
                        f"`repro experiment` can run it"
                    )}
                )
            root = _find_repo_root(path.parent)
            bench_dir = root / "benchmarks" if root is not None else None
            for token in _FIG_TOKEN.findall(path.stem):
                covered = bench_dir is not None and any(
                    bench_dir.glob(f"test_bench_{token}*.py")
                )
                if not covered:
                    yield Violation(
                        **{**anchor.to_dict(), "message": (
                            f"no benchmarks/test_bench_{token}*.py "
                            f"covering experiments/{path.name}"
                        )}
                    )
