"""Project-wide symbol table and import graph for the deep lint rules.

The per-file rules (DET/UNIT/FLOAT) see one AST at a time.  The deep
rules (RNG001, PURE001, SHARD001, IMP001) need facts that only exist at
the project level: which module a name comes from, which class a base
name resolves to, which modules import which.  :class:`ProjectGraph`
computes those facts once per lint run and every deep rule reads them.

Three layers, built in one pass over the linted file set:

* **module table** — every file becomes a :class:`ModuleInfo` keyed by
  its dotted module name (``repro.sim.flowsim``; files outside any
  ``repro`` package use their stem, so lint fixtures participate);
* **symbol table** — per module, every top-level binding classified as
  ``import`` / ``function`` / ``class`` / ``constant`` (assigned once,
  immutable-looking value) / ``mutable`` (reassigned, augmented, or
  written through a ``global`` statement anywhere in the module);
* **import graph** — edges between in-project modules, with the source
  line of each edge, plus Tarjan SCCs for cycle detection and base-class
  resolution across modules (``class MyKernel(kernels.TickKernel)``).

Everything is derived from the ASTs alone — no imports are executed, so
linting a broken or cyclic tree is safe.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.lint.core import (
    FileContext,
    ProjectRule,
    Violation,
    dotted_name,
    register,
)

__all__ = [
    "Binding",
    "ImportEdge",
    "ModuleInfo",
    "ProjectGraph",
    "ImportHygieneRule",
]


@dataclass(frozen=True)
class Binding:
    """One module-level name: how it was bound and whether it mutates."""

    name: str
    kind: str  # "import" | "function" | "class" | "constant" | "mutable"
    lineno: int
    #: For imports: the dotted target the local name refers to
    #: (``np`` -> ``numpy``, ``TraceBus`` -> ``repro.trace.bus.TraceBus``).
    target: str | None = None
    #: For single-assignment bindings: the bound value expression.
    value: ast.expr | None = None


@dataclass(frozen=True)
class ImportEdge:
    """One import statement: source module -> target dotted module.

    ``nested`` marks imports inside a function or method body.  They
    still execute (so layering rules must see them) but they are the
    standard way to *break* a cycle, so cycle detection skips them.
    """

    source: str
    target: str
    lineno: int
    col: int
    nested: bool = False


def _module_name(ctx: FileContext) -> str:
    """Dotted module name for a file (fixtures fall back to the stem)."""
    rp = ctx.repro_parts
    if rp is None:
        return ctx.path.stem
    parts = ("repro",) + rp
    if parts[-1] == "__init__.py":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + (ctx.path.stem,)
    return ".".join(parts)


def _is_immutable_value(node: ast.expr) -> bool:
    """Value expressions that cannot be mutated through the binding."""
    if isinstance(node, ast.Constant):
        return True
    if isinstance(node, ast.Tuple):
        return all(_is_immutable_value(e) for e in node.elts)
    if isinstance(node, ast.UnaryOp):
        return _is_immutable_value(node.operand)
    if isinstance(node, ast.BinOp):
        return _is_immutable_value(node.left) and _is_immutable_value(node.right)
    if isinstance(node, ast.Call):
        fn = dotted_name(node.func)
        return fn in ("frozenset", "re.compile") and all(
            _is_immutable_value(a) for a in node.args
        )
    # Attribute chains (Cubic.BETA, np.inf) read someone else's state;
    # treat the binding itself as constant — purity checks the *read*.
    if isinstance(node, (ast.Attribute, ast.Name)):
        return True
    return False


def _assign_targets(node: ast.stmt) -> list[ast.expr]:
    if isinstance(node, ast.Assign):
        return list(node.targets)
    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        return [node.target]
    return []


@dataclass
class ModuleInfo:
    """Everything the deep rules need to know about one module."""

    name: str
    ctx: FileContext
    imports: list[ImportEdge] = field(default_factory=list)
    #: local name -> dotted target of the import that bound it.
    import_aliases: dict[str, str] = field(default_factory=dict)
    bindings: dict[str, Binding] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    functions: dict[str, ast.FunctionDef] = field(default_factory=dict)

    @property
    def package(self) -> str:
        """Package the module lives in (itself, for ``__init__``)."""
        if self.ctx.path.name == "__init__.py":
            return self.name
        return self.name.rpartition(".")[0]

    def resolve(self, local_name: str) -> str | None:
        """Dotted project-level name a local name refers to, if imported."""
        head, _, tail = local_name.partition(".")
        target = self.import_aliases.get(head)
        if target is None:
            return None
        return f"{target}.{tail}" if tail else target


class _ModuleBuilder(ast.NodeVisitor):
    """Single AST walk filling in a :class:`ModuleInfo`."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self._store_counts: dict[str, int] = {}
        self._global_written: set[str] = set()
        self._values: dict[str, ast.expr] = {}
        self._lines: dict[str, int] = {}
        self._top_level_imports: set[int] = set()

    def build(self) -> ModuleInfo:
        info = self.info
        for stmt in info.ctx.tree.body:
            self._top_level(stmt)
        # Function bodies can rebind module names via ``global``, and
        # function-local imports still create (nested) edges.
        for node in ast.walk(info.ctx.tree):
            if isinstance(node, ast.Global):
                self._global_written.update(node.names)
            elif isinstance(node, ast.Import):
                if id(node) in self._top_level_imports:
                    continue
                for alias in node.names:
                    info.imports.append(
                        ImportEdge(
                            info.name,
                            alias.name,
                            node.lineno,
                            node.col_offset,
                            nested=True,
                        )
                    )
            elif isinstance(node, ast.ImportFrom):
                if id(node) in self._top_level_imports:
                    continue
                base = self._resolve_from(node)
                if base is not None:
                    info.imports.append(
                        ImportEdge(
                            info.name,
                            base,
                            node.lineno,
                            node.col_offset,
                            nested=True,
                        )
                    )
        for name, count in sorted(self._store_counts.items()):
            mutable = count > 1 or name in self._global_written
            value = self._values.get(name)
            if not mutable and value is not None:
                mutable = not _is_immutable_value(value)
            info.bindings[name] = Binding(
                name=name,
                kind="mutable" if mutable else "constant",
                lineno=self._lines.get(name, 1),
                value=value,
            )
        # ``global``-written names with no top-level assignment at all
        # are still module state (kernels.py's ``_forced`` pattern).
        for name in sorted(self._global_written - set(self._store_counts)):
            info.bindings[name] = Binding(name=name, kind="mutable", lineno=1)
        return info

    # -- top-level statement classification ----------------------------

    def _top_level(self, stmt: ast.stmt) -> None:
        info = self.info
        if isinstance(stmt, ast.Import):
            self._top_level_imports.add(id(stmt))
            for alias in stmt.names:
                local = alias.asname or alias.name.partition(".")[0]
                target = alias.name if alias.asname else alias.name.partition(".")[0]
                info.import_aliases[local] = alias.name if alias.asname else target
                info.bindings[local] = Binding(
                    local, "import", stmt.lineno, target=alias.name
                )
                info.imports.append(
                    ImportEdge(info.name, alias.name, stmt.lineno, stmt.col_offset)
                )
        elif isinstance(stmt, ast.ImportFrom):
            self._top_level_imports.add(id(stmt))
            base = self._resolve_from(stmt)
            if base is not None:
                info.imports.append(
                    ImportEdge(info.name, base, stmt.lineno, stmt.col_offset)
                )
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    target = f"{base}.{alias.name}"
                    info.import_aliases[local] = target
                    info.bindings[local] = Binding(
                        local, "import", stmt.lineno, target=target
                    )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.functions[stmt.name] = stmt  # type: ignore[assignment]
            info.bindings[stmt.name] = Binding(stmt.name, "function", stmt.lineno)
        elif isinstance(stmt, ast.ClassDef):
            info.classes[stmt.name] = stmt
            info.bindings[stmt.name] = Binding(stmt.name, "class", stmt.lineno)
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = getattr(stmt, "value", None)
            for target in _assign_targets(stmt):
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        n = leaf.id
                        count = 2 if isinstance(stmt, ast.AugAssign) else 1
                        self._store_counts[n] = (
                            self._store_counts.get(n, 0) + count
                        )
                        self._lines.setdefault(n, stmt.lineno)
                        if value is not None:
                            self._values.setdefault(n, value)
        elif isinstance(stmt, (ast.If, ast.Try)):
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._top_level(sub)

    def _resolve_from(self, stmt: ast.ImportFrom) -> str | None:
        if stmt.level == 0:
            return stmt.module
        # Relative import: climb from the containing package.
        parts = self.info.package.split(".") if self.info.package else []
        if stmt.level - 1 > len(parts):
            return None
        base_parts = parts[: len(parts) - (stmt.level - 1)]
        if stmt.module:
            base_parts.append(stmt.module)
        return ".".join(base_parts) if base_parts else None


class ProjectGraph:
    """The whole linted file set, resolved: modules, symbols, imports."""

    def __init__(self, modules: dict[str, ModuleInfo]) -> None:
        self.modules = modules

    @classmethod
    def build(cls, ctxs: Iterable[FileContext]) -> "ProjectGraph":
        modules: dict[str, ModuleInfo] = {}
        for ctx in sorted(ctxs, key=lambda c: str(c.path)):
            info = _ModuleBuilder(ModuleInfo(_module_name(ctx), ctx)).build()
            # First file wins on a name clash (two fixtures sharing a
            # stem); deterministic because ctxs are path-sorted.
            modules.setdefault(info.name, info)
        return cls(modules)

    # -- import graph ---------------------------------------------------

    def project_edges(self) -> list[ImportEdge]:
        """Import edges whose source and target are both in-project.

        ``from repro.trace import bus`` targets ``repro.trace`` — the
        edge is narrowed to the most specific module in the project, so
        package ``__init__`` indirection does not hide an edge.
        """
        edges: list[ImportEdge] = []
        for info in self.modules.values():
            for edge in info.imports:
                target = self._narrow(edge)
                if target is not None and target != edge.source:
                    edges.append(
                        ImportEdge(
                            edge.source,
                            target,
                            edge.lineno,
                            edge.col,
                            nested=edge.nested,
                        )
                    )
        return edges

    def _narrow(self, edge: ImportEdge) -> str | None:
        if edge.target in self.modules:
            return edge.target
        # ``from pkg import name`` where pkg.name is itself a module.
        for alias, target in self.modules[edge.source].import_aliases.items():
            if target.startswith(edge.target + ".") and target in self.modules:
                return target
        # Prefix match: importing a package we only know members of.
        prefix = edge.target + "."
        hits = sorted(m for m in self.modules if m.startswith(prefix))
        return hits[0] if hits else None

    def cycles(self) -> list[list[str]]:
        """Strongly connected components with more than one module."""
        adjacency: dict[str, list[str]] = {m: [] for m in self.modules}
        for edge in self.project_edges():
            # A function-local import is the sanctioned cycle-breaker:
            # it runs after module init, so it cannot deadlock imports.
            if edge.source in adjacency and not edge.nested:
                adjacency[edge.source].append(edge.target)
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[list[str]] = []
        counter = [0]

        def strongconnect(v: str) -> None:
            # Iterative Tarjan: recursion depth tracks import-chain
            # length, which real trees can make deep.
            work = [(v, iter(adjacency[v]))]
            index[v] = low[v] = counter[0]
            counter[0] += 1
            stack.append(v)
            on_stack.add(v)
            while work:
                node, it = work[-1]
                advanced = False
                for w in it:
                    if w not in index:
                        index[w] = low[w] = counter[0]
                        counter[0] += 1
                        stack.append(w)
                        on_stack.add(w)
                        work.append((w, iter(adjacency[w])))
                        advanced = True
                        break
                    if w in on_stack:
                        low[node] = min(low[node], index[w])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    if len(scc) > 1:
                        sccs.append(sorted(scc))

        for module in sorted(adjacency):
            if module not in index:
                strongconnect(module)
        return sorted(sccs)

    # -- class resolution ----------------------------------------------

    def base_names(self, module: str, cls: ast.ClassDef) -> Iterator[str]:
        """Transitive base-class names of ``cls``, project-resolved.

        Yields both the spelled name of every base (``TickKernel``,
        ``kernels.TickKernel``) and — when a base resolves to a class
        defined in a linted module — its fully-qualified project name
        (``repro.sim.kernels.TickKernel``), recursing through it.
        """
        seen: set[tuple[str, str]] = set()
        work: list[tuple[str, ast.ClassDef]] = [(module, cls)]
        while work:
            mod_name, node = work.pop()
            info = self.modules.get(mod_name)
            for base in node.bases:
                spelled = dotted_name(base)
                if spelled is None:
                    continue
                yield spelled
                resolved = self._resolve_class(info, spelled)
                if resolved is None or resolved in seen:
                    continue
                seen.add(resolved)
                target_mod, target_cls = resolved
                yield f"{target_mod}.{target_cls}"
                work.append(
                    (target_mod, self.modules[target_mod].classes[target_cls])
                )

    def _resolve_class(
        self, info: ModuleInfo | None, spelled: str
    ) -> tuple[str, str] | None:
        if info is None:
            return None
        if "." not in spelled and spelled in info.classes:
            return (info.name, spelled)
        dotted = info.resolve(spelled)
        if dotted is None:
            return None
        mod, _, cls = dotted.rpartition(".")
        if mod in self.modules and cls in self.modules[mod].classes:
            return (mod, cls)
        return None

    # -- call sites -----------------------------------------------------

    def call_sites(self, func_name: str) -> Iterator[tuple[ModuleInfo, ast.Call]]:
        """Every call in the project whose callee is named ``func_name``.

        Matches both ``func(...)`` and ``obj.func(...)`` spellings —
        one-hop, name-based call-graph resolution, deliberately
        over-approximate (extra sites only make the analysis stricter).
        """
        for name in sorted(self.modules):
            info = self.modules[name]
            for node in ast.walk(info.ctx.tree):
                if not isinstance(node, ast.Call):
                    continue
                fn = node.func
                if isinstance(fn, ast.Name) and fn.id == func_name:
                    yield info, node
                elif isinstance(fn, ast.Attribute) and fn.attr == func_name:
                    yield info, node


#: Layering contract: ``sim`` is the bottom of the stack and may not
#: reach up into orchestration (``runner``) or observability (``trace``).
_SIM_PREFIX = "repro.sim"
_FORBIDDEN_TARGETS = ("repro.runner", "repro.trace")


@register
class ImportHygieneRule(ProjectRule):
    """IMP001: no import cycles, and no ``sim`` -> ``runner``/``trace`` edges.

    Sharded campaigns (ROADMAP item 1) ship the ``sim`` package into
    worker processes; every upward import from ``sim`` drags the
    orchestration or observability layer (and its ambient state) into
    the shard image.  Cycles additionally make module initialisation
    order depend on which entry point ran first — a classic source of
    "works from the CLI, breaks under pytest" divergence.  The rule
    walks the project import graph: Tarjan SCCs for cycles, plus a
    layering check that ``repro.sim.*`` never imports ``repro.runner.*``
    or ``repro.trace.*`` (function-local imports count — they still
    execute inside the shard).
    """

    code = "IMP001"
    name = "import-hygiene"
    deep = True
    description = (
        "Import cycles and sim->runner/sim->trace back-edges couple the "
        "shardable simulation core to orchestration state; keep `sim` "
        "importable on its own."
    )

    def check_project(
        self, ctxs: Iterable[FileContext]
    ) -> Iterator[Violation]:
        graph = ProjectGraph.build(ctxs)
        yield from self._check(graph)

    def _check(self, graph: ProjectGraph) -> Iterator[Violation]:
        edges = graph.project_edges()
        for scc in graph.cycles():
            members = set(scc)
            loop = " -> ".join(scc + [scc[0]])
            for edge in edges:
                if edge.nested:
                    continue
                if edge.source in members and edge.target in members:
                    ctx = graph.modules[edge.source].ctx
                    yield Violation(
                        path=str(ctx.path),
                        line=edge.lineno,
                        col=edge.col + 1,
                        code=self.code,
                        message=(
                            f"import of {edge.target} closes an import "
                            f"cycle ({loop}); break the cycle"
                        ),
                    )
        for info in graph.modules.values():
            if not _in_layer(info.name, _SIM_PREFIX):
                continue
            for edge in info.imports:
                for forbidden in _FORBIDDEN_TARGETS:
                    if _in_layer(edge.target, forbidden):
                        yield Violation(
                            path=str(info.ctx.path),
                            line=edge.lineno,
                            col=edge.col + 1,
                            code=self.code,
                            message=(
                                f"{info.name} (simulation core) imports "
                                f"{edge.target}: sim may not depend on "
                                f"{forbidden.split('.')[1]}; invert the "
                                f"dependency (inject it from the driver)"
                            ),
                        )


def _in_layer(module: str, prefix: str) -> bool:
    return module == prefix or module.startswith(prefix + ".")
