"""RNG001 — stream-label provenance and static crc32 collision freedom.

:class:`repro.core.rng.RngFactory` derives every random stream from a
string label hashed with ``zlib.crc32``.  The factory raises at runtime
when two different labels collide, but only for labels that the *same*
factory instance happens to see in the *same* process — a sharded
campaign (ROADMAP item 1) builds one factory per shard, so a collision
between labels used in different shards sails through every runtime
guard and silently correlates "independent" streams across the run.

RNG001 closes that hole statically: every ``.stream(...)`` /
``.fork(...)`` label in the project must be **statically derivable**,
and the derived label population must be **globally collision-free**
under the same crc32 scheme the factory uses.
"""

from __future__ import annotations

import ast
import zlib
from typing import Iterable, Iterator

from repro.lint.core import (
    FileContext,
    ProjectRule,
    Violation,
    register,
)
from repro.lint.dataflow import (
    UNKNOWN,
    FunctionScope,
    StrValue,
    local_env,
    module_env,
    resolve_str,
)
from repro.lint.graph import ModuleInfo, ProjectGraph

__all__ = ["RngStreamProvenanceRule"]


def _crc32(label: str) -> int:
    # Mirrors repro.core.rng.label_entropy; duplicated here so the lint
    # package stays importable without pulling in numpy-backed modules.
    return zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF


def _enclosing_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.AST, ast.FunctionDef | ast.AsyncFunctionDef | None]]:
    """Yield (node, innermost enclosing function) for every AST node."""
    def walk(node: ast.AST, func) -> Iterator[tuple[ast.AST, ast.AST | None]]:
        for child in ast.iter_child_nodes(node):
            inner = (
                child
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                else func
            )
            yield child, inner
            yield from walk(child, inner)

    yield from walk(tree, None)  # type: ignore[misc]


class _LabelSite:
    """One resolved label occurrence: where it is, what it says."""

    def __init__(
        self, kind: str, label: str, ctx: FileContext, node: ast.AST
    ) -> None:
        self.kind = kind
        self.label = label
        self.ctx = ctx
        self.line = getattr(node, "lineno", 1)
        self.node = node

    @property
    def where(self) -> str:
        return f"{self.ctx.path}:{self.line}"


@register
class RngStreamProvenanceRule(ProjectRule):
    """RNG001: every RNG stream/fork label statically derivable & collision-free.

    For each ``*.stream(label, ...)`` and ``*.fork(label)`` call the rule
    resolves the label through the dataflow layer: string literals,
    single-assignment local/module constants, ``+`` concatenation, and
    f-strings.  Three outcomes:

    * **fully static** — the label joins the project-wide population;
      any two distinct labels mapping to the same crc32 entropy are
      flagged at both sites (streams and forks check against separate
      pools, mirroring ``RngFactory``'s separate owner registries);
    * **namespaced dynamic** — an f-string whose constant prefix ends in
      ``":"`` (``f"task:{label}"``) is accepted: the namespace isolates
      it from every static label, and the runtime collision guard covers
      clashes within the namespace.  Two *different* call sites sharing
      one namespace prefix are flagged — they would silently share the
      namespace;
    * **anything else** — flagged as not statically derivable.  When the
      label is a bare parameter of the enclosing function, the rule first
      tries one call-graph hop: if every project call site passes a
      statically derivable label, those labels are checked instead.
    """

    code = "RNG001"
    name = "rng-stream-label-provenance"
    deep = True
    description = (
        "RNG stream/fork labels must be statically derivable (literal, "
        "resolved constant, or 'prefix:'-namespaced f-string) and "
        "globally collision-free under the crc32 label scheme."
    )

    def check_project(
        self, ctxs: Iterable[FileContext]
    ) -> Iterator[Violation]:
        graph = ProjectGraph.build(ctxs)
        sites: list[_LabelSite] = []
        namespaces: dict[tuple[str, str], _LabelSite] = {}
        violations: list[Violation] = []
        for name in sorted(graph.modules):
            info = graph.modules[name]
            if info.name == "repro.core.rng":
                continue  # the factory itself (docstring examples aside)
            menv = module_env(info)
            for node, func in _enclosing_functions(info.ctx.tree):
                call = self._label_call(node)
                if call is None:
                    continue
                kind, label_expr = call
                env = local_env(func, menv) if func is not None else menv
                resolved = resolve_str(label_expr, env)
                if resolved.complete:
                    sites.append(
                        _LabelSite(kind, resolved.value, info.ctx, node)
                    )
                    continue
                if resolved.prefix.endswith(":"):
                    key = (kind, resolved.prefix)
                    first = namespaces.get(key)
                    site = _LabelSite(kind, resolved.prefix, info.ctx, node)
                    if first is not None:
                        violations.append(
                            info.ctx.violation(
                                node,
                                self.code,
                                f"dynamic {kind} labels at {first.where} and "
                                f"here share the namespace "
                                f"{resolved.prefix!r}; two sites feeding one "
                                f"namespace can collide at runtime — give "
                                f"each site its own prefix",
                            )
                        )
                    else:
                        namespaces[key] = site
                    continue
                hop = self._call_graph_hop(
                    graph, info, func, label_expr, kind, node
                )
                if hop is None:
                    violations.append(
                        info.ctx.violation(
                            node,
                            self.code,
                            f"RNG {kind} label is not statically derivable; "
                            f"use a string literal, a resolvable constant, "
                            f"or an f-string with a constant 'prefix:' "
                            f"namespace",
                        )
                    )
                else:
                    sites.extend(hop)
        violations.extend(self._collisions(sites))
        yield from sorted(violations)

    # -- pieces ---------------------------------------------------------

    @staticmethod
    def _label_call(node: ast.AST) -> tuple[str, ast.expr] | None:
        """Match ``obj.stream(label, ...)`` / ``obj.fork(label)`` calls."""
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in ("stream", "fork")
        ):
            return None
        kind = node.func.attr
        if node.args:
            return kind, node.args[0]
        for kw in node.keywords:
            if kw.arg == "label":
                return kind, kw.value
        return None

    def _call_graph_hop(
        self,
        graph: ProjectGraph,
        info: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef | None,
        label_expr: ast.expr,
        kind: str,
        node: ast.AST,
    ) -> list[_LabelSite] | None:
        """Resolve a parameter-valued label at the function's call sites.

        Returns the resolved sites, or None when the label is not a bare
        parameter or any call site stays dynamic.
        """
        if func is None or not isinstance(label_expr, ast.Name):
            return None
        scope = FunctionScope(func)
        if not scope.is_param(label_expr.id):
            return None
        index = scope.param_index(label_expr.id)
        resolved: list[_LabelSite] = []
        found_any = False
        for caller_info, call in graph.call_sites(func.name):
            if call is node:
                continue
            found_any = True
            arg = self._argument(call, index, label_expr.id)
            if arg is None:
                return None
            caller_env = self._env_at(caller_info, call)
            value = resolve_str(arg, caller_env)
            if not value.complete:
                return None
            resolved.append(_LabelSite(kind, value.value, caller_info.ctx, call))
        return resolved if found_any else None

    @staticmethod
    def _argument(
        call: ast.Call, index: int | None, name: str
    ) -> ast.expr | None:
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        if index is not None and index < len(call.args):
            return call.args[index]
        return None

    @staticmethod
    def _env_at(info: ModuleInfo, call: ast.Call) -> dict[str, StrValue]:
        menv = module_env(info)
        for node, func in _enclosing_functions(info.ctx.tree):
            if node is call and func is not None:
                return local_env(func, menv)
        return menv

    def _collisions(self, sites: list[_LabelSite]) -> Iterator[Violation]:
        pools: dict[str, dict[int, _LabelSite]] = {"stream": {}, "fork": {}}
        seen_labels: dict[str, set[str]] = {"stream": set(), "fork": set()}
        for site in sites:
            pool = pools[site.kind]
            if site.label in seen_labels[site.kind]:
                continue  # same label reused — same stream by design
            seen_labels[site.kind].add(site.label)
            entropy = _crc32(site.label)
            owner = pool.get(entropy)
            if owner is None:
                pool[entropy] = site
                continue
            for a, b in ((owner, site), (site, owner)):
                yield Violation(
                    path=str(a.ctx.path),
                    line=a.line,
                    col=getattr(a.node, "col_offset", 0) + 1,
                    code=self.code,
                    message=(
                        f"{a.kind} label {a.label!r} crc32-collides with "
                        f"{b.label!r} (at {b.where}): both map to entropy "
                        f"{entropy}, so the two streams would be "
                        f"identical — rename one label"
                    ),
                )
