"""Checker framework: rule registry, file context, suppressions.

A *rule* owns one code (``DET001``) and yields :class:`Violation`
objects.  Most rules are per-file AST visitors; rules that need the
whole file set at once (registry/benchmark cross-checks) subclass
:class:`ProjectRule`.

Suppression: appending ``# repro: noqa-DET001`` (comma-separated codes
allowed) to the flagged line silences exactly those codes on that line.
There is deliberately no blanket ``noqa`` — every suppression names
what it suppresses, so greps for a code find its waivers too.
"""

from __future__ import annotations

import ast
import inspect
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "SIM_SUBSYSTEMS",
    "Violation",
    "FileContext",
    "Rule",
    "ProjectRule",
    "register",
    "all_rules",
    "get_rule",
    "dotted_name",
    "suppressed",
]

#: Subsystems that hold simulation math, where unit/float rules apply.
SIM_SUBSYSTEMS = frozenset({"sim", "tcp", "net", "micro"})

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa-([A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
)


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: file position, rule code, human message."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


@dataclass
class FileContext:
    """One source file under analysis: path, text, lazily parsed AST."""

    path: Path
    source: str
    _tree: ast.Module | None = field(default=None, repr=False)
    _lines: list[str] | None = field(default=None, repr=False)

    @classmethod
    def load(cls, path: Path) -> "FileContext":
        return cls(path=path, source=path.read_text(encoding="utf-8"))

    @property
    def tree(self) -> ast.Module:
        if self._tree is None:
            self._tree = ast.parse(self.source, filename=str(self.path))
        return self._tree

    @property
    def lines(self) -> list[str]:
        if self._lines is None:
            self._lines = self.source.splitlines()
        return self._lines

    @property
    def repro_parts(self) -> tuple[str, ...] | None:
        """Path segments below the last ``repro`` package directory.

        ``src/repro/sim/flowsim.py`` → ``('sim', 'flowsim.py')``;
        returns None for files outside any ``repro`` package (the lint
        self-test fixtures), which rules treat as *unscoped*: every rule
        applies, so a fixture exercises its rule without needing to live
        inside the package tree.
        """
        parts = self.path.parts
        for i in range(len(parts) - 1, -1, -1):
            if parts[i] == "repro":
                return parts[i + 1 :]
        return None

    @property
    def subsystem(self) -> str | None:
        """First directory below ``repro`` ('sim', 'core', …).

        Top-level modules (``cli.py``) map to ``""``; files outside the
        package map to None.
        """
        rp = self.repro_parts
        if rp is None:
            return None
        return rp[0] if len(rp) > 1 else ""

    def in_sim_code(self) -> bool:
        """Does this file hold simulation math (or is it unscoped)?"""
        return self.subsystem is None or self.subsystem in SIM_SUBSYSTEMS

    def is_module(self, *tail: str) -> bool:
        """Is this file exactly ``repro/<tail...>`` (e.g. 'core', 'rng.py')?"""
        return self.repro_parts == tail

    def violation(self, node: ast.AST, code: str, message: str) -> Violation:
        return Violation(
            path=str(self.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=code,
            message=message,
        )


class Rule:
    """Base class: one code, one ``check`` over a file's AST."""

    code: str = ""
    name: str = ""
    description: str = ""
    #: Deep rules (whole-program dataflow) only run under ``--deep`` or
    #: when selected explicitly — they are priced for CI, not for the
    #: save-hook loop the per-file rules serve.
    deep: bool = False

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        raise NotImplementedError

    def summary(self) -> str:
        """One-line summary: the first line of the rule's docstring."""
        doc = type(self).__doc__ or ""
        first = doc.strip().splitlines()[0].strip() if doc.strip() else ""
        return first or self.description.strip()

    def explain(self) -> str:
        """Full rationale: the rule's docstring, else its description."""
        doc = inspect.cleandoc(type(self).__doc__ or "")
        return doc or self.description

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Rule {self.code} {self.name}>"


class ProjectRule(Rule):
    """A rule that inspects the whole linted file set at once."""

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        return iter(())

    def check_project(
        self, ctxs: Iterable[FileContext]
    ) -> Iterator[Violation]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule (by instance) to the registry."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> list[Rule]:
    """Registered rules, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    try:
        return _REGISTRY[code]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {code!r}; have {sorted(_REGISTRY)}"
        ) from None


def dotted_name(node: ast.expr) -> str | None:
    """Render ``a.b.c`` attribute chains; None for anything fancier."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def suppressed(ctx: FileContext, violation: Violation) -> bool:
    """Does the flagged line carry ``# repro: noqa-<CODE>`` for this code?"""
    if not 1 <= violation.line <= len(ctx.lines):
        return False
    match = _NOQA_RE.search(ctx.lines[violation.line - 1])
    if match is None:
        return False
    codes = {c.strip() for c in match.group(1).split(",")}
    return violation.code in codes
