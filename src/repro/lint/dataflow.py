"""Lightweight dataflow for the deep rules: string provenance & taint.

This is deliberately not a full abstract interpreter.  The deep rules
need three narrow capabilities, each conservative (an unresolved value
is reported as such, never guessed):

* **string resolution** (:func:`resolve_str`) — statically derive the
  value of a string expression: literals, single-assignment local and
  module names, ``+`` concatenation, and f-strings.  F-strings resolve
  to a :class:`StrValue` carrying the longest constant *prefix* even
  when a formatted field is dynamic, which is how RNG001 recognises
  ``f"task:{label}"`` as a namespaced label;
* **reaching definitions** (:func:`local_env`, :func:`module_env`) —
  name -> value environments where a name participates only if it has
  exactly one reaching assignment (multiple textual assignments make it
  ``UNKNOWN``; correctness over coverage);
* **scope classification** (:class:`FunctionScope`) — the local names
  of a function (parameters, assignments, loop and comprehension
  targets), so a rule can tell a local read from a module-global read.

The one-hop call-graph layer lives with its consumer (RNG001 in
:mod:`repro.lint.rules_rng`): when a label expression is a bare
parameter, the rule resolves the matching argument at every call site
found through :meth:`repro.lint.graph.ProjectGraph.call_sites`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Mapping

from repro.lint.graph import ModuleInfo

__all__ = [
    "StrValue",
    "UNKNOWN",
    "resolve_str",
    "local_env",
    "module_env",
    "FunctionScope",
    "is_dict_or_set_expr",
]


@dataclass(frozen=True)
class StrValue:
    """Result of resolving a string expression.

    ``complete`` means ``prefix`` is the whole value.  An incomplete
    result still carries the longest statically-known leading constant
    (possibly empty) — enough to recognise namespaced dynamic labels.
    """

    prefix: str
    complete: bool

    @property
    def value(self) -> str | None:
        return self.prefix if self.complete else None

    def __add__(self, other: "StrValue") -> "StrValue":
        if not self.complete:
            return self
        return StrValue(self.prefix + other.prefix, other.complete)


#: The bottom element: nothing statically known about the value.
UNKNOWN = StrValue("", False)


def resolve_str(
    node: ast.expr, env: Mapping[str, StrValue] | None = None
) -> StrValue:
    """Statically resolve a string expression against ``env``."""
    env = env or {}
    if isinstance(node, ast.Constant):
        if isinstance(node.value, str):
            return StrValue(node.value, True)
        return UNKNOWN
    if isinstance(node, ast.Name):
        return env.get(node.id, UNKNOWN)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        return resolve_str(node.left, env) + resolve_str(node.right, env)
    if isinstance(node, ast.JoinedStr):
        out = StrValue("", True)
        for part in node.values:
            if isinstance(part, ast.Constant):
                out = out + StrValue(str(part.value), True)
            elif isinstance(part, ast.FormattedValue):
                # Only plain interpolation and !s keep the value's text;
                # !r/!a and format specs rewrite it.
                if part.format_spec is not None or part.conversion not in (-1, 115):
                    out = out + UNKNOWN
                else:
                    out = out + resolve_str(part.value, env)
            else:
                out = out + UNKNOWN
            if not out.complete:
                break
        return out
    return UNKNOWN


def _collect_env(stmts: list[ast.stmt]) -> dict[str, StrValue]:
    """Name -> resolved string for single-assignment names in ``stmts``.

    Two passes: count textual stores per name (any second store, an
    augmented assignment, or a loop/with target demotes the name to
    UNKNOWN), then resolve the single assignments in source order so
    chains (``a = "x"; b = a + ":y"``) resolve.
    """
    stores: dict[str, int] = {}
    assigns: list[tuple[str, ast.expr]] = []
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
                node.targets[0], ast.Name
            ):
                name = node.targets[0].id
                stores[name] = stores.get(name, 0) + 1
                assigns.append((name, node.value))
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                name = node.target.id
                stores[name] = stores.get(name, 0) + 1
                if node.value is not None:
                    assigns.append((name, node.value))
            else:
                for target in _other_store_targets(node):
                    stores[target] = stores.get(target, 0) + 2
    env: dict[str, StrValue] = {}
    for name, value in assigns:
        if stores.get(name, 0) != 1:
            continue
        resolved = resolve_str(value, env)
        if resolved is not UNKNOWN:
            env[name] = resolved
    return env


def _other_store_targets(node: ast.AST) -> list[str]:
    """Names stored by constructs other than plain assignment."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.AugAssign):
        targets = [node.target]
    elif isinstance(node, ast.For):
        targets = [node.target]
    elif isinstance(node, ast.withitem) and node.optional_vars is not None:
        targets = [node.optional_vars]
    elif isinstance(node, ast.comprehension):
        targets = [node.target]
    elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return [node.name]
    names: list[str] = []
    for t in targets:
        for leaf in ast.walk(t):
            if isinstance(leaf, ast.Name):
                names.append(leaf.id)
    return names


def local_env(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    outer: Mapping[str, StrValue] | None = None,
) -> dict[str, StrValue]:
    """String environment for a function body, over ``outer`` (module) env.

    Parameters shadow outer names (their values are call-site facts, not
    module facts), as does any locally stored name.
    """
    env = dict(outer or {})
    scope = FunctionScope(func)
    for name in scope.locals:
        env.pop(name, None)
    env.update(_collect_env(list(func.body)))
    return env


def module_env(info: ModuleInfo) -> dict[str, StrValue]:
    """String environment of a module's top-level constants."""
    env: dict[str, StrValue] = {}
    for name, binding in sorted(info.bindings.items()):
        if binding.kind == "constant" and binding.value is not None:
            resolved = resolve_str(binding.value, env)
            if resolved.complete:
                env[name] = resolved
    return env


class FunctionScope:
    """Local-name classification for one function body."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        args = func.args
        self.params: list[str] = [
            a.arg
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            )
        ]
        stored: set[str] = set()
        declared_global: set[str] = set()
        for stmt in func.body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Global, ast.Nonlocal)):
                    declared_global.update(node.names)
                elif isinstance(node, (ast.Assign,)):
                    for target in node.targets:
                        for leaf in ast.walk(target):
                            if isinstance(leaf, ast.Name):
                                stored.add(leaf.id)
                elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                    if isinstance(node.target, ast.Name):
                        stored.add(node.target.id)
                else:
                    stored.update(_other_store_targets(node))
        self.declared_global = declared_global
        #: Names that resolve locally inside the body (params + stores),
        #: minus names routed to module scope by a ``global`` statement.
        self.locals: set[str] = (set(self.params) | stored) - declared_global

    def is_param(self, name: str) -> bool:
        return name in self.params

    def param_index(self, name: str) -> int | None:
        """Positional index of a parameter, skipping ``self``/``cls``."""
        params = self.params
        if params and params[0] in ("self", "cls"):
            params = params[1:]
        try:
            return params.index(name)
        except ValueError:
            return None


#: ``.keys()/.values()/.items()`` peel off to the underlying mapping.
_VIEW_METHODS = ("keys", "values", "items")


def _strip_views(node: ast.expr) -> ast.expr:
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _VIEW_METHODS
        and not node.args
        and not node.keywords
    ):
        node = node.func.value
    return node


def is_dict_or_set_expr(
    node: ast.expr, bindings: Mapping[str, str] | None = None
) -> bool:
    """Does this expression (or the name it reads) denote a dict or set?

    ``bindings`` maps local/module names known to be dict- or set-valued
    (from single-assignment inference) to the kind string; view calls
    (``d.values()``) are peeled first.
    """
    node = _strip_views(node)
    if isinstance(node, (ast.Set, ast.SetComp, ast.Dict, ast.DictComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in ("set", "frozenset", "dict")
    if isinstance(node, ast.Name) and bindings is not None:
        return node.id in bindings
    return False
