"""Lint driver: file discovery, rule application, output rendering.

:func:`lint_paths` is the programmatic entry point (the CLI and tests
both use it): collect ``.py`` files, run every registered per-file rule
and then every project rule, drop ``# repro: noqa-<CODE>``-suppressed
findings, and return the survivors sorted by position.

Deep rules (``rule.deep``, the whole-program dataflow family) only run
when ``deep=True`` or when their code is selected explicitly — so the
default ``repro lint src/`` stays cheap and the committed-baseline
workflow owns the deep findings.

Discovery is deterministic (paths sorted as strings) and, when
*expanding a directory*, prunes non-production subtrees — ``tests``,
``benchmarks``, ``examples``, and the rule fixtures in
``lint_fixtures`` — so ``repro lint .`` at the repo root is clean and
stable.  Targeting one of those trees explicitly (``repro lint
tests/lint_fixtures/det001.py`` or a fixture directory) still lints it:
pruning applies only to directories *below* the expansion root.

Files that fail to parse yield a single ``PARSE001`` violation rather
than aborting the run — a broken file should show up in the report next
to everything else.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.errors import ReproError
from repro.lint.core import (
    FileContext,
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    suppressed,
)

__all__ = [
    "iter_python_files",
    "lint_paths",
    "render_text",
    "render_json",
    "render_sarif",
]

#: Cache/VCS directories: never linted, wherever they appear.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})

#: Subtrees pruned during directory *expansion* only (explicit targets
#: win): test/bench/example code legitimately breaks the src invariants,
#: and lint_fixtures exists to violate them.
_EXCLUDED_SUBTREES = frozenset(
    {"tests", "benchmarks", "examples", "lint_fixtures"}
)


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                found.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if any(part in _SKIP_DIRS for part in sub.parts):
                    continue
                below_root = sub.relative_to(path).parts[:-1]
                if any(
                    part in _EXCLUDED_SUBTREES or part.startswith(".")
                    for part in below_root
                ):
                    continue
                found.add(sub)
        else:
            raise ReproError(f"lint path does not exist: {path}")
    return sorted(found, key=str)


def _select_rules(
    select: Iterable[str] | None, deep: bool
) -> list[Rule]:
    wanted = set(select) if select is not None else None
    if wanted is not None:
        rules = [r for r in all_rules() if r.code in wanted]
        unknown = wanted - {r.code for r in rules}
        if unknown:
            raise ReproError(
                f"unknown lint rule code(s): {sorted(unknown)}; "
                f"have {[r.code for r in all_rules()]}"
            )
        return rules
    return [r for r in all_rules() if deep or not r.deep]


def lint_paths(
    paths: Sequence[str | Path],
    select: Iterable[str] | None = None,
    *,
    deep: bool = False,
) -> list[Violation]:
    """Lint ``paths``; return violations.

    ``select`` restricts to the named codes (deep or not); without it,
    ``deep`` controls whether the whole-program rules join the run.
    """
    rules = _select_rules(select, deep)

    ctxs: list[FileContext] = []
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        try:
            ctx = FileContext.load(path)
            ctx.tree  # parse eagerly so syntax errors surface here
        except SyntaxError as exc:
            violations.append(
                Violation(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    code="PARSE001",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        ctxs.append(ctx)

    by_path = {str(c.path): c for c in ctxs}
    for ctx in ctxs:
        for rule in rules:
            violations.extend(rule.check(ctx))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            violations.extend(rule.check_project(ctxs))

    kept = [
        v
        for v in violations
        if str(v.path) not in by_path or not suppressed(by_path[str(v.path)], v)
    ]
    return sorted(kept)


def render_text(violations: Sequence[Violation]) -> str:
    """flake8-style ``path:line:col: CODE message`` lines + summary."""
    lines = [v.render() for v in violations]
    if violations:
        lines.append(f"found {len(violations)} violation(s)")
    else:
        lines.append("clean: no violations")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    return json.dumps(
        {
            "violations": [v.to_dict() for v in violations],
            "count": len(violations),
        },
        indent=2,
        sort_keys=True,
    )


def render_sarif(violations: Sequence[Violation]) -> str:
    """SARIF 2.1.0 report (what code-scanning UIs ingest).

    One run, one ``repro-lint`` driver; every registered rule appears in
    the rule table so suppressed-to-zero codes still show up as present.
    """
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary()},
            "fullDescription": {"text": rule.description},
        }
        for rule in all_rules()
    ]
    results = [
        {
            "ruleId": v.code,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": Path(v.path).as_posix(),
                        },
                        "region": {
                            "startLine": v.line,
                            "startColumn": v.col,
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
            "master/Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/repro/repro#invariants--linting"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)
