"""Lint driver: file discovery, rule application, output rendering.

:func:`lint_paths` is the programmatic entry point (the CLI and tests
both use it): collect ``.py`` files, run every registered per-file rule
and then every project rule, drop ``# repro: noqa-<CODE>``-suppressed
findings, and return the survivors sorted by position.

Files that fail to parse yield a single ``PARSE001`` violation rather
than aborting the run — a broken file should show up in the report next
to everything else.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.errors import ReproError
from repro.lint.core import (
    FileContext,
    ProjectRule,
    Violation,
    all_rules,
    suppressed,
)

__all__ = ["iter_python_files", "lint_paths", "render_text", "render_json"]

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted, deduplicated .py file list."""
    found: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                found.add(path)
        elif path.is_dir():
            for sub in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in sub.parts):
                    found.add(sub)
        else:
            raise ReproError(f"lint path does not exist: {path}")
    return sorted(found)


def lint_paths(
    paths: Sequence[str | Path], select: Iterable[str] | None = None
) -> list[Violation]:
    """Lint ``paths`` with all (or ``select``-ed) rules; return violations."""
    wanted = set(select) if select is not None else None
    rules = [
        r for r in all_rules() if wanted is None or r.code in wanted
    ]
    if wanted is not None:
        unknown = wanted - {r.code for r in rules}
        if unknown:
            raise ReproError(
                f"unknown lint rule code(s): {sorted(unknown)}; "
                f"have {[r.code for r in all_rules()]}"
            )

    ctxs: list[FileContext] = []
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        try:
            ctx = FileContext.load(path)
            ctx.tree  # parse eagerly so syntax errors surface here
        except SyntaxError as exc:
            violations.append(
                Violation(
                    path=str(path),
                    line=exc.lineno or 1,
                    col=(exc.offset or 0) + 1,
                    code="PARSE001",
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        ctxs.append(ctx)

    by_path = {str(c.path): c for c in ctxs}
    for ctx in ctxs:
        for rule in rules:
            violations.extend(rule.check(ctx))
    for rule in rules:
        if isinstance(rule, ProjectRule):
            violations.extend(rule.check_project(ctxs))

    kept = [
        v
        for v in violations
        if str(v.path) not in by_path or not suppressed(by_path[str(v.path)], v)
    ]
    return sorted(kept)


def render_text(violations: Sequence[Violation]) -> str:
    """flake8-style ``path:line:col: CODE message`` lines + summary."""
    lines = [v.render() for v in violations]
    if violations:
        lines.append(f"found {len(violations)} violation(s)")
    else:
        lines.append("clean: no violations")
    return "\n".join(lines)


def render_json(violations: Sequence[Violation]) -> str:
    """Machine-readable report (stable key order, sorted findings)."""
    return json.dumps(
        {
            "violations": [v.to_dict() for v in violations],
            "count": len(violations),
        },
        indent=2,
        sort_keys=True,
    )
