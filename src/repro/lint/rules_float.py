"""Float-comparison rule: FLOAT001 (``==``/``!=`` on float expressions).

Simulation state — times, rates, queue occupancies — is float
arithmetic; exact equality against a float literal is either dead code
(the accumulation never lands exactly on the value) or a latent
Heisenbug (it lands there on one platform's FMA contraction and not
another's).  Compare against a tolerance, or use integers for exact
quantities.

Detection is deliberately conservative to stay false-positive-free: a
comparison is flagged when ``==``/``!=`` has a float *literal* on either
side, or when both sides are arithmetic expressions (BinOp) — the two
shapes that are unambiguously float comparisons without type inference.
Scope: the simulation subsystems (``sim``, ``tcp``, ``net``,
``micro``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, Rule, Violation, register

__all__ = ["FloatEqualityRule"]

_ARITH = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_arithmetic(node: ast.expr) -> bool:
    return isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH)


@register
class FloatEqualityRule(Rule):
    code = "FLOAT001"
    name = "no-float-equality"
    description = (
        "==/!= between float expressions in simulation code is either "
        "dead or platform-dependent; compare with a tolerance "
        "(abs(a - b) < eps) or restructure to integers."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_sim_code():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                lhs, rhs = operands[i], operands[i + 1]
                floaty = (
                    _is_float_literal(lhs)
                    or _is_float_literal(rhs)
                    or (_is_arithmetic(lhs) and _is_arithmetic(rhs))
                )
                if floaty:
                    yield ctx.violation(
                        node,
                        self.code,
                        "exact ==/!= on a float expression; compare with "
                        "a tolerance instead",
                    )
