"""Float rules: FLOAT001 (``==``/``!=`` on float expressions) and
FLOAT002 (accumulating simulation time with ``+= dt``).

Simulation state — times, rates, queue occupancies — is float
arithmetic; exact equality against a float literal is either dead code
(the accumulation never lands exactly on the value) or a latent
Heisenbug (it lands there on one platform's FMA contraction and not
another's).  Compare against a tolerance, or use integers for exact
quantities.

Detection is deliberately conservative to stay false-positive-free: a
comparison is flagged when ``==``/``!=`` has a float *literal* on either
side, or when both sides are arithmetic expressions (BinOp) — the two
shapes that are unambiguously float comparisons without type inference.
Scope: the simulation subsystems (``sim``, ``tcp``, ``net``,
``micro``).

FLOAT002 targets the clock-drift bug family this repo actually hit:
``now += dt`` executed a million times accumulates rounding error
(~1 ulp per add) large enough to flip omit-interval and measurement
boundary comparisons, while the closed form ``(step + 1) * dt`` is
exact at every boundary in use.  The rule flags ``+=`` where the
right-hand side is a bare ``dt``/``tick`` name (or an attribute ending
in ``.dt``/``.tick``) — the unmistakable shape of per-tick time
accumulation.  Genuine duration *integrals* (pause spans, app-limited
epoch slides) have no closed form; those sites carry a
``# repro: noqa-FLOAT002`` naming the waiver.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, Rule, Violation, register

__all__ = ["FloatEqualityRule", "SimTimeAccumulationRule"]

#: RHS names/attributes that identify a tick-duration operand.
_TICK_NAMES = frozenset({"dt", "tick"})

_ARITH = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.FloorDiv, ast.Mod, ast.Pow)


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _is_arithmetic(node: ast.expr) -> bool:
    return isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH)


@register
class FloatEqualityRule(Rule):
    """FLOAT001: no exact ==/!= between float expressions.

    Exact float equality in simulation math is either dead code or a
    platform-dependent branch.  Compare with a tolerance
    (``abs(a - b) < eps``) or restructure onto integers.
    """

    code = "FLOAT001"
    name = "no-float-equality"
    description = (
        "==/!= between float expressions in simulation code is either "
        "dead or platform-dependent; compare with a tolerance "
        "(abs(a - b) < eps) or restructure to integers."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_sim_code():
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for i, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                lhs, rhs = operands[i], operands[i + 1]
                floaty = (
                    _is_float_literal(lhs)
                    or _is_float_literal(rhs)
                    or (_is_arithmetic(lhs) and _is_arithmetic(rhs))
                )
                if floaty:
                    yield ctx.violation(
                        node,
                        self.code,
                        "exact ==/!= on a float expression; compare with "
                        "a tolerance instead",
                    )


def _is_tick_operand(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _TICK_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _TICK_NAMES
    return False


@register
class SimTimeAccumulationRule(Rule):
    """FLOAT002: no accumulating simulation time with ``+= dt``.

    A million accumulated float adds drift the clock by enough to flip
    boundary comparisons; derive time as a closed form
    (``(step + 1) * dt``).  Genuine duration integrals carry a
    ``# repro: noqa-FLOAT002``.
    """

    code = "FLOAT002"
    name = "no-sim-time-accumulation"
    description = (
        "`x += dt` in simulation code accumulates one rounding error "
        "per tick and drifts the clock off boundary comparisons; "
        "derive time as a closed form (`(step + 1) * dt`) instead, or "
        "mark genuine duration integrals with `# repro: noqa-FLOAT002`."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_sim_code():
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and _is_tick_operand(node.value)
            ):
                yield ctx.violation(
                    node,
                    self.code,
                    "simulation time accumulated with `+= dt` drifts "
                    "by one rounding error per tick; use a closed form "
                    "like `(step + 1) * dt`",
                )
