"""Determinism rules: DET001 (entropy), DET002 (order), DET003 (ambient).

The whole experiment pipeline promises bit-for-bit replays from one
seed.  Three things silently break that promise:

* drawing entropy from outside :class:`repro.core.rng.RngFactory` —
  wall-clock reads, the ``random`` module's process-global state, or
  fresh/global numpy generators (DET001);
* ordering work by quantities that differ between processes — ``hash()``
  (salted per process for strings), ``id()`` (allocator-dependent), or
  iteration over a bare ``set`` (insertion/hash dependent) (DET002);
* iterating ambient process state — ``os.environ`` and dicts built
  from it differ between machines, CI runners, and even shells, so any
  loop over them feeds machine-local state into results (DET003).
  Reading a *named* variable with ``os.environ.get`` is fine; it is the
  enumeration of everything that happens to be set that is poison.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import (
    FileContext,
    Rule,
    Violation,
    dotted_name,
    register,
)

__all__ = [
    "WallClockAndGlobalRandomRule",
    "UnstableOrderingRule",
    "AmbientStateIterationRule",
]

#: Dotted-name suffixes that read the wall clock.
_WALL_CLOCK = (
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.now",
    "datetime.utcnow",
    "datetime.today",
    "date.today",
)

#: ``random``-module functions (process-global Mersenne Twister state).
_GLOBAL_RANDOM = (
    "random.random",
    "random.randint",
    "random.randrange",
    "random.choice",
    "random.choices",
    "random.shuffle",
    "random.sample",
    "random.uniform",
    "random.gauss",
    "random.normalvariate",
    "random.expovariate",
    "random.betavariate",
    "random.getrandbits",
    "random.seed",
    "random.Random",
)

#: Any call into numpy's module-level random namespace.
_NP_RANDOM_PREFIXES = ("np.random.", "numpy.random.")


def _matches(name: str, entry: str) -> bool:
    return name == entry or name.endswith("." + entry)


@register
class WallClockAndGlobalRandomRule(Rule):
    """DET001: no wall-clock reads or process-global randomness.

    Every number the pipeline produces must replay bit-for-bit from one
    seed.  ``time.time()``/``datetime.now()`` fold the host's clock into
    results, and the ``random`` module / numpy's module-level generators
    carry process-global state that any import can perturb.  Route time
    through the simulation clock and randomness through
    ``RngFactory.stream(label, rep)``; only ``core/rng.py`` may touch
    seed machinery.
    """

    code = "DET001"
    name = "no-wall-clock-or-global-randomness"
    description = (
        "Wall-clock reads (time.time, datetime.now, ...) and global "
        "randomness (random.*, np.random.default_rng/seed) are forbidden "
        "in repro code; route all randomness through RngFactory.stream "
        "(repro.core.rng) and all time through the simulation clock."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if ctx.is_module("core", "rng.py"):
            return  # the one module allowed to touch seed machinery
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if any(
                name == pref.rstrip(".") or pref in name or name.startswith(pref)
                for pref in _NP_RANDOM_PREFIXES
            ):
                yield ctx.violation(
                    node,
                    self.code,
                    f"call to {name}() uses numpy's global/unseeded RNG; "
                    f"draw from RngFactory.stream() instead",
                )
                continue
            for entry in _WALL_CLOCK:
                if _matches(name, entry):
                    yield ctx.violation(
                        node,
                        self.code,
                        f"call to {name}() reads the wall clock; simulations "
                        f"must use the engine's simulated time",
                    )
                    break
            else:
                for entry in _GLOBAL_RANDOM:
                    if _matches(name, entry):
                        yield ctx.violation(
                            node,
                            self.code,
                            f"call to {name}() uses the process-global "
                            f"random module; draw from RngFactory.stream() "
                            f"instead",
                        )
                        break


def _is_hash_or_id(node: ast.expr | None) -> str | None:
    """Return 'hash'/'id' if the expression orders by hash() or id()."""
    if isinstance(node, ast.Name) and node.id in ("hash", "id"):
        return node.id
    if isinstance(node, ast.Lambda):
        body = node.body
        if (
            isinstance(body, ast.Call)
            and isinstance(body.func, ast.Name)
            and body.func.id in ("hash", "id")
        ):
            return body.func.id
    return None


def _is_bare_set(node: ast.expr) -> bool:
    """A set display, set comprehension, or direct set(...) call."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@register
class UnstableOrderingRule(Rule):
    """DET002: no ordering by hash()/id() and no bare-set iteration.

    ``hash()`` is salted per process for strings, ``id()`` follows the
    allocator, and a bare set iterates in hash order — all three give a
    different sequence on every run, which poisons any scheduler or
    reduction that consumes the order.  Sort by an explicit stable key,
    or wrap the set in ``sorted(...)`` before iterating.
    """

    code = "DET002"
    name = "no-hash-id-or-set-ordering"
    description = (
        "Ordering by hash() (salted per process) or id() (allocator-"
        "dependent), and iterating a bare set, give a different order "
        "every process — poison for a deterministic scheduler.  Sort by "
        "a stable key, or sort the set before iterating."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                is_order_call = (
                    isinstance(func, ast.Name)
                    and func.id in ("sorted", "min", "max")
                ) or (
                    isinstance(func, ast.Attribute) and func.attr == "sort"
                )
                if is_order_call:
                    for kw in node.keywords:
                        if kw.arg != "key":
                            continue
                        which = _is_hash_or_id(kw.value)
                        if which is not None:
                            yield ctx.violation(
                                node,
                                self.code,
                                f"ordering by {which}() is not stable "
                                f"across processes; use an explicit, "
                                f"deterministic sort key",
                            )
            elif isinstance(node, ast.For) and _is_bare_set(node.iter):
                yield ctx.violation(
                    node,
                    self.code,
                    "iterating a bare set: the order is hash/insertion "
                    "dependent; wrap it in sorted(...)",
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _is_bare_set(gen.iter):
                        yield ctx.violation(
                            node,
                            self.code,
                            "comprehension over a bare set: the order is "
                            "hash/insertion dependent; wrap it in "
                            "sorted(...)",
                        )


def _is_environ(node: ast.expr) -> bool:
    """``os.environ`` (or any ``X.environ`` attribute access)."""
    name = dotted_name(node)
    return name is not None and (name == "environ" or name.endswith(".environ"))


def _env_like(node: ast.expr, tainted: frozenset[str]) -> bool:
    if isinstance(node, ast.Name) and node.id in tainted:
        return True
    return _is_environ(node)


def _env_source(node: ast.expr, tainted: frozenset[str]) -> bool:
    """Is this expression the environment or a copy of it?

    Matches ``os.environ`` itself, ``dict(os.environ)``,
    ``os.environ.copy()``, and the same applied to an already-tainted
    name.
    """
    if _env_like(node, tainted):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if (
            isinstance(func, ast.Name)
            and func.id == "dict"
            and node.args
            and _env_source(node.args[0], tainted)
        ):
            return True
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "copy"
            and _env_like(func.value, tainted)
        ):
            return True
    return False


def _strip_view(node: ast.expr) -> ast.expr:
    """Peel a ``.keys()``/``.items()``/``.values()`` call off an iterable."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("keys", "items", "values")
        and not node.args
        and not node.keywords
    ):
        return node.func.value
    return node


@register
class AmbientStateIterationRule(Rule):
    """DET003: never enumerate the process environment.

    Iterating ``os.environ`` (or a dict copied from it) folds whatever
    the machine happens to export into program behaviour — a different
    result set per shell, CI runner, and host.  Reading a *named*
    variable with ``os.environ.get(...)`` is fine; enumeration is the
    poison.
    """

    code = "DET003"
    name = "no-ambient-state-iteration"
    description = (
        "Iterating os.environ (or a dict copied from it) folds whatever "
        "the machine happens to export into program behaviour — a "
        "different result set per shell, CI runner, and host.  Read "
        "named variables with os.environ.get(...); never enumerate the "
        "environment."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        # Pass 1: names assigned (anywhere in the file) from the
        # environment or a copy of it.  Module-level taint is enough —
        # the rule is a tripwire, not a dataflow engine.
        tainted: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assign) and _env_source(
                node.value, frozenset(tainted)
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        tainted.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _env_source(node.value, frozenset(tainted)) and isinstance(
                    node.target, ast.Name
                ):
                    tainted.add(node.target.id)
        frozen = frozenset(tainted)

        def _flags(iterable: ast.expr) -> bool:
            # sorted(...)/list(sorted(...)) wrappers make the order
            # explicit; only the raw mapping (or its views) fires.
            return _env_source(_strip_view(iterable), frozen)

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _flags(node.iter):
                yield ctx.violation(
                    node,
                    self.code,
                    "iterating the process environment: contents and "
                    "order are machine-local; read named variables with "
                    "os.environ.get(...) instead",
                )
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                for gen in node.generators:
                    if _flags(gen.iter):
                        yield ctx.violation(
                            node,
                            self.code,
                            "comprehension over the process environment: "
                            "contents and order are machine-local; read "
                            "named variables with os.environ.get(...) "
                            "instead",
                        )
