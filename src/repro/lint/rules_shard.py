"""SHARD001 — order-dependent cross-flow reductions and shared-array writes.

Sharding the flow arrays (ROADMAP item 1) splits every cross-flow
reduction into per-shard partials plus a merge.  Two code shapes break
byte-parity the moment that happens:

* **reductions over unordered containers** — ``sum`` over a dict or set
  iterates in hash/insertion order; partials merged across shards visit
  elements in a different order than a single process would, and float
  addition does not associate.  Positional containers (lists, arrays)
  reduce in index order and shard cleanly;
* **in-place mutation of caller-owned arrays** — a callee that writes
  into an array it was *passed* (``pace[i] = ...``, ``out=param``)
  works only while caller and callee share an address space; under
  sharding the write lands in a worker's copy and is silently lost, or
  worse, lands in shared memory from several shards at once.

The sanctioned reduction point is the simulation driver loop
(``FlowSimulator.run`` in ``repro.sim.flowsim``): the kernel contract
already requires every cross-flow reduction to live there, so that one
function is exempt and everything else in ``sim/``, ``tcp/``, and
``runner/`` — including the rest of ``flowsim.py`` — is checked.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import (
    FileContext,
    ProjectRule,
    Violation,
    dotted_name,
    register,
)
from typing import Iterable
from repro.lint.dataflow import is_dict_or_set_expr

__all__ = ["ShardSafetyRule"]

#: Subsystems that will run inside shards.
_SHARD_SCOPE = frozenset({"sim", "tcp", "runner"})

#: The sanctioned cross-flow reduction sites: (subsystem, filename,
#: function name).  Only the named driver function is exempt; the rest
#: of its module is checked like any other shardable code.
_DRIVER_FUNCTIONS = (("sim", "flowsim.py", "run"),)

#: Reduction callables whose argument order determines the float result.
_REDUCERS = frozenset({"sum", "fsum", "math.fsum", "reduce", "functools.reduce"})


def _local_container_bindings(
    func: ast.FunctionDef | ast.AsyncFunctionDef | ast.Module,
) -> dict[str, str]:
    """Names bound exactly once to a dict/set-valued expression.

    A second store demotes the name (it may have been rebound to a
    list); this is the same single-assignment discipline the string
    dataflow uses.
    """
    stores: dict[str, int] = {}
    values: dict[str, ast.expr] = {}
    for node in ast.walk(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            name = node.targets[0].id
            stores[name] = stores.get(name, 0) + 1
            values.setdefault(name, node.value)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)) and isinstance(
            node.target, ast.Name
        ):
            stores[node.target.id] = stores.get(node.target.id, 0) + 2
    out: dict[str, str] = {}
    for name, value in values.items():
        if stores.get(name) == 1 and is_dict_or_set_expr(value):
            out[name] = "dict/set"
    return out


def _is_sorted_wrapped(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("sorted", "list", "tuple")
        and bool(node.args)
        and (
            node.func.id == "sorted"
            or _is_sorted_wrapped(node.args[0])
        )
    )


@register
class ShardSafetyRule(ProjectRule):
    """SHARD001: no order-dependent reductions or caller-array writes in shardable code.

    Within ``sim/``, ``tcp/``, and ``runner/`` (the code a sharded
    campaign executes), excluding the sanctioned driver function
    ``FlowSimulator.run`` in ``sim/flowsim.py``, the rule flags:

    * ``sum()``/``math.fsum()``/``functools.reduce()`` whose iterable is
      a dict or set — spelled directly, through a ``.keys()/.values()/
      .items()`` view, through a comprehension over one, or through a
      name the local dataflow resolved to one (``vals = {...}; sum(vals)``
      — the shape DET002's syntactic check cannot see);
    * ``+=``-style accumulation inside a ``for`` loop over a dict or
      set (the loop-shaped spelling of the same reduction), unless the
      iterable is wrapped in ``sorted(...)``;
    * writes into arrays the function was passed: subscript stores and
      augmented assignments on parameters, and ufunc calls with
      ``out=<parameter>``.  Mutating caller-owned storage is an
      address-space assumption that shared-memory sharding breaks.

    Genuine in-place protocols (a documented fold into a caller buffer)
    carry a per-line ``# repro: noqa-SHARD001`` or live in the committed
    deep-lint baseline.
    """

    code = "SHARD001"
    name = "shard-safe-reductions"
    deep = True
    description = (
        "Order-dependent reductions (sum/reduce over dicts or sets, "
        "loop accumulation over them) and in-place writes to "
        "caller-owned arrays break byte-parity under sharding; reduce "
        "over positional containers and return fresh arrays."
    )

    def check_project(
        self, ctxs: Iterable[FileContext]
    ) -> Iterator[Violation]:
        # Per-file logic, but a ProjectRule so it rides the --deep
        # gate with its siblings and sees the same file population.
        for ctx in sorted(ctxs, key=lambda c: str(c.path)):
            yield from self._check_file(ctx)

    def _check_file(self, ctx: FileContext) -> Iterator[Violation]:
        subsystem = ctx.subsystem
        if subsystem is not None and subsystem not in _SHARD_SCOPE:
            return
        exempt = {
            name
            for sub, tail, name in _DRIVER_FUNCTIONS
            if ctx.is_module(sub, tail)
        }
        yield from self._check_scope(ctx, ctx.tree, None)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name in exempt:
                    continue
                yield from self._check_scope(ctx, node, node)

    # -- one function (or the module body) ------------------------------

    def _check_scope(
        self,
        ctx: FileContext,
        scope: ast.AST,
        func: ast.FunctionDef | ast.AsyncFunctionDef | None,
    ) -> Iterator[Violation]:
        bindings = _local_container_bindings(
            func if func is not None else ctx.tree
        )
        params: set[str] = set()
        if func is not None:
            args = func.args
            params = {
                a.arg
                for a in list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            } - {"self", "cls"}

        body = func.body if func is not None else ctx.tree.body
        for stmt in body:
            # Module-level defs are their own scopes (checked by the
            # per-function pass); descending here would double-report.
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for node in self._walk_scope(stmt):
                yield from self._check_node(ctx, node, bindings, params)

    @staticmethod
    def _walk_scope(root: ast.stmt) -> Iterator[ast.AST]:
        """Walk a statement without descending into nested functions."""
        work: list[ast.AST] = [root]
        while work:
            node = work.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                work.append(child)

    def _check_node(
        self,
        ctx: FileContext,
        node: ast.AST,
        bindings: dict[str, str],
        params: set[str],
    ) -> Iterator[Violation]:
        if isinstance(node, ast.Call):
            yield from self._check_reduction(ctx, node, bindings)
            yield from self._check_out_kwarg(ctx, node, params)
        elif isinstance(node, ast.For):
            yield from self._check_loop_accumulation(ctx, node, bindings)
        elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in params
                ):
                    yield ctx.violation(
                        node,
                        self.code,
                        f"writes into parameter {target.value.id!r}: "
                        f"mutating a caller-owned array assumes a shared "
                        f"address space, which sharding breaks; return a "
                        f"fresh array (or sanction the fold with a noqa)",
                    )

    def _check_reduction(
        self, ctx: FileContext, node: ast.Call, bindings: dict[str, str]
    ) -> Iterator[Violation]:
        fn = dotted_name(node.func)
        if fn is None or fn not in _REDUCERS:
            return
        arg_index = 1 if fn.endswith("reduce") else 0
        if len(node.args) <= arg_index:
            return
        iterable = node.args[arg_index]
        if isinstance(iterable, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            gens = iterable.generators
            if any(self._unordered(g.iter, bindings) for g in gens):
                yield ctx.violation(
                    node,
                    self.code,
                    f"{fn}() over a comprehension driven by a dict/set: "
                    f"element order is hash/insertion dependent, so the "
                    f"reduction is not shard-stable; iterate a sorted or "
                    f"positional container",
                )
            return
        if self._unordered(iterable, bindings):
            yield ctx.violation(
                node,
                self.code,
                f"{fn}() over a dict/set iterates in hash/insertion "
                f"order; per-shard partials would merge in a different "
                f"order than a single process — reduce over a sorted or "
                f"positional container",
            )

    def _check_loop_accumulation(
        self, ctx: FileContext, node: ast.For, bindings: dict[str, str]
    ) -> Iterator[Violation]:
        if not self._unordered(node.iter, bindings):
            return
        for sub in self._walk_scope(node):  # type: ignore[arg-type]
            if isinstance(sub, ast.AugAssign):
                yield ctx.violation(
                    sub,
                    self.code,
                    "accumulation inside a loop over a dict/set is an "
                    "order-dependent reduction; iterate sorted(...) or "
                    "a positional container",
                )

    def _check_out_kwarg(
        self, ctx: FileContext, node: ast.Call, params: set[str]
    ) -> Iterator[Violation]:
        for kw in node.keywords:
            if (
                kw.arg == "out"
                and isinstance(kw.value, ast.Name)
                and kw.value.id in params
            ):
                yield ctx.violation(
                    node,
                    self.code,
                    f"out={kw.value.id} writes the result into a "
                    f"caller-owned array; under sharding the write lands "
                    f"in the worker's copy — return the array instead",
                )

    @staticmethod
    def _unordered(iterable: ast.expr, bindings: dict[str, str]) -> bool:
        if _is_sorted_wrapped(iterable):
            return False
        return is_dict_or_set_expr(iterable, bindings)
