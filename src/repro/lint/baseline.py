"""Deep-lint baseline: tracked-not-fatal findings, drift-fatal CI.

``repro lint --deep`` lands on a tree with pre-existing findings (the
``sim`` -> ``trace`` import edges, the batch steppers' in-place fold
protocols).  Failing CI on them would force a big-bang refactor; hiding
them would lose them.  The baseline is the middle path: a committed
JSON file (``lint_baseline.json``) listing every accepted finding.

Comparison is exact and bidirectional:

* a finding not in the baseline is **new** — the commit introduced a
  regression (or must consciously extend the baseline);
* a baseline entry with no matching finding is **stale** — the code it
  tracked was fixed or moved, and the entry must be dropped so the
  baseline never accumulates dead weight.

Either direction fails; ``repro lint --deep --update-baseline``
regenerates the file.  Paths are stored relative to the baseline file's
directory, so the file is location-independent and diffs stay readable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.core.errors import ReproError
from repro.lint.core import Violation

__all__ = ["BaselineDiff", "load_baseline", "compare_baseline", "write_baseline"]

_VERSION = 1


def _normalize(path: str, root: Path) -> str:
    """Path as stored in the baseline: relative to its directory."""
    try:
        rel = Path(path).resolve().relative_to(root.resolve())
    except ValueError:
        return Path(path).as_posix()
    return rel.as_posix()


def _key(entry: dict) -> tuple:
    return (entry["path"], entry["line"], entry["code"], entry["message"])


def _violation_entry(v: Violation, root: Path) -> dict:
    return {
        "path": _normalize(v.path, root),
        "line": v.line,
        "code": v.code,
        "message": v.message,
    }


@dataclass
class BaselineDiff:
    """Outcome of checking findings against a baseline."""

    matched: int
    new: list[Violation] = field(default_factory=list)
    stale: list[dict] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.new and not self.stale

    def render(self) -> str:
        lines: list[str] = []
        for v in self.new:
            lines.append(f"new:   {v.render()}")
        for entry in self.stale:
            lines.append(
                f"stale: {entry['path']}:{entry['line']}: {entry['code']} "
                f"{entry['message']} (baselined finding no longer present; "
                f"remove it from the baseline)"
            )
        if self.clean:
            lines.append(
                f"baseline: {self.matched} tracked finding(s), no drift"
            )
        else:
            lines.append(
                f"baseline drift: {len(self.new)} new, "
                f"{len(self.stale)} stale "
                f"({self.matched} matched); regenerate with "
                f"--update-baseline if the change is intentional"
            )
        return "\n".join(lines)


def load_baseline(path: str | Path) -> list[dict]:
    path = Path(path)
    if not path.is_file():
        raise ReproError(f"baseline file does not exist: {path}")
    try:
        doc = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ReproError(f"baseline {path} is not valid JSON: {exc}") from None
    if not isinstance(doc, dict) or "findings" not in doc:
        raise ReproError(f"baseline {path} has no 'findings' key")
    return list(doc["findings"])


def compare_baseline(
    violations: Sequence[Violation], baseline_path: str | Path
) -> BaselineDiff:
    """Match findings against the baseline; anything unmatched is drift."""
    baseline_path = Path(baseline_path)
    root = baseline_path.parent
    entries = load_baseline(baseline_path)
    remaining: dict[tuple, int] = {}
    for entry in entries:
        key = _key(entry)
        remaining[key] = remaining.get(key, 0) + 1
    new: list[Violation] = []
    matched = 0
    for v in sorted(violations):
        key = _key(_violation_entry(v, root))
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            matched += 1
        else:
            new.append(v)
    stale = [
        dict(zip(("path", "line", "code", "message"), key))
        for key, count in sorted(remaining.items())
        for _ in range(count)
    ]
    return BaselineDiff(matched=matched, new=new, stale=stale)


def write_baseline(
    violations: Sequence[Violation], baseline_path: str | Path
) -> int:
    """Write the findings as the new baseline; returns the entry count."""
    baseline_path = Path(baseline_path)
    entries = sorted(
        (_violation_entry(v, baseline_path.parent) for v in violations),
        key=_key,
    )
    doc = {
        "version": _VERSION,
        "comment": (
            "Accepted deep-lint findings (repro lint --deep). CI fails on "
            "drift in either direction; regenerate with "
            "`repro lint --deep src/ --baseline lint_baseline.json "
            "--update-baseline`."
        ),
        "findings": entries,
    }
    baseline_path.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(entries)
