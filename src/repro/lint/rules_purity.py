"""PURE001 — tick-path kernel purity.

The tick kernels (:mod:`repro.sim.kernels`) and the batched CC steppers
(:mod:`repro.tcp.cc.batch`) are the code that sharded campaigns will run
inside worker processes, thousands of flows per shard.  Byte-parity
across shard counts holds only if a kernel's outputs are a function of
its constructor arguments and per-tick inputs — nothing ambient.  A
single ``os.environ`` read or module-global flag inside a tick path
means two shards can compute different bytes from identical inputs.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from repro.lint.core import (
    FileContext,
    ProjectRule,
    Violation,
    dotted_name,
    register,
)
from repro.lint.dataflow import FunctionScope
from repro.lint.graph import ModuleInfo, ProjectGraph

__all__ = ["KernelPurityRule"]

#: Class names that mark a tick-path kernel wherever they appear in a
#: base chain (resolved through the project graph when possible).
_KERNEL_BASES = frozenset({"TickKernel", "ScalarKernel", "VectorKernel"})
_KERNEL_HOME = "repro.sim.kernels"

#: Modules whose classes are tick paths wholesale (the batched steppers).
_BATCH_MODULES = frozenset({"repro.tcp.cc.batch"})

#: The daemon package: every ``repro.serve`` module is environment-pure
#: except the startup-config reader.  A handler that consults
#: ``os.environ`` answers differently depending on who exported what —
#: the served digest must be a function of the request and the
#: :class:`~repro.serve.config.ServeConfig` the daemon booted with.
_SERVE_PREFIX = "repro.serve"
_SERVE_CONFIG_MODULE = "repro.serve.config"

#: The QUIC stack ships to shard workers wholesale: pacers are frozen
#: specs the driver lowers into flow state, and the spin observer runs
#: against worker-generated event streams — so no ``repro.quic`` module
#: may read the environment anywhere.  A pacer that consulted
#: ``os.environ`` could hand two shards different release schedules
#: for byte-identical flow specs.
_QUIC_PREFIX = "repro.quic"

#: Mutating method names: calling one on a module-level object is a
#: write to module state even without an assignment statement.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "popitem",
        "sort",
        "reverse",
        "fill",
    }
)


def _is_environ_access(node: ast.AST) -> bool:
    """``os.environ`` attribute chains and ``os.getenv(...)`` calls."""
    if isinstance(node, ast.Attribute) and node.attr == "environ":
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name is not None and (
            name == "getenv" or name.endswith(".getenv")
        ):
            return True
    return False


@register
class KernelPurityRule(ProjectRule):
    """PURE001: kernel tick paths may not touch ambient or module state.

    A *tick path* is any method (except ``__init__``) of a kernel class
    — a class whose transitive base chain reaches
    ``repro.sim.kernels.TickKernel`` (``ScalarKernel``/``VectorKernel``
    included), resolved through the project import graph so subclasses
    in other modules and in fixtures are caught — or of any class in
    ``repro.tcp.cc.batch``.  Inside a tick path the rule flags:

    * reads of ``os.environ`` / ``os.getenv`` (ambient configuration —
      kernel selection must happen before the kernel is built);
    * ``global``/``nonlocal`` declarations and stores to module-level
      names (hidden cross-shard channels);
    * reads of *mutable* module state — names the symbol table saw
      reassigned or ``global``-written anywhere in their module.
      Imports, functions, classes, and assigned-once constants are
      fine: they are the same bits in every shard.
    * mutating method calls (``append``/``update``/…) and subscript
      stores on module-level names — writes that hide behind a method.

    ``__init__`` is exempt: construction happens in the driver, once,
    before any shard forks.

    The rule also covers the ``repro serve`` daemon: any module under
    ``repro.serve`` *except* ``repro.serve.config`` (the sanctioned
    startup-configuration reader) may not read ``os.environ`` /
    ``os.getenv`` anywhere — request handlers must be a function of
    the request and the ``ServeConfig`` the daemon booted with, or the
    served digests stop being reproducible from the request alone.

    ``repro.quic`` gets the same whole-package treatment with no
    sanctioned reader: the pacers and the spin observer travel into
    shard workers, and an environment read anywhere in the package
    could split byte parity across shards.
    """

    code = "PURE001"
    name = "kernel-tick-path-purity"
    deep = True
    description = (
        "Tick-path methods of kernel/batch classes may not read or "
        "write module globals, os.environ, or other non-parameter "
        "mutable state; a kernel's bytes must be a function of its "
        "inputs alone.  repro.serve modules (except serve.config) and "
        "all repro.quic modules may not read the environment at all."
    )

    def check_project(
        self, ctxs: Iterable[FileContext]
    ) -> Iterator[Violation]:
        graph = ProjectGraph.build(ctxs)
        for name in sorted(graph.modules):
            info = graph.modules[name]
            if self._is_covered_serve_module(name):
                yield from self._check_serve_module(info)
            if self._is_quic_module(name):
                yield from self._check_quic_module(info)
            for cls_name in sorted(info.classes):
                cls = info.classes[cls_name]
                if not self._is_kernel_class(graph, info, cls):
                    continue
                for stmt in cls.body:
                    if not isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        continue
                    if stmt.name == "__init__":
                        continue
                    yield from self._check_method(info, cls, stmt)

    # -- scope ----------------------------------------------------------

    def _is_kernel_class(
        self, graph: ProjectGraph, info: ModuleInfo, cls: ast.ClassDef
    ) -> bool:
        if info.name in _BATCH_MODULES:
            return True
        if info.name == _KERNEL_HOME and cls.name in _KERNEL_BASES:
            return True
        for base in graph.base_names(info.name, cls):
            tail = base.rpartition(".")[2]
            if tail in _KERNEL_BASES:
                return True
        return False

    @staticmethod
    def _is_covered_serve_module(name: str) -> bool:
        if name == _SERVE_CONFIG_MODULE:
            return False
        return name == _SERVE_PREFIX or name.startswith(_SERVE_PREFIX + ".")

    @staticmethod
    def _is_quic_module(name: str) -> bool:
        return name == _QUIC_PREFIX or name.startswith(_QUIC_PREFIX + ".")

    def _check_serve_module(self, info: ModuleInfo) -> Iterator[Violation]:
        """Flag every environment read in a (non-config) serve module."""
        ctx = info.ctx
        for node in ast.walk(ctx.tree):
            if _is_environ_access(node):
                yield ctx.violation(
                    node,
                    self.code,
                    f"serve module {info.name} reads the process "
                    f"environment; only {_SERVE_CONFIG_MODULE} may parse "
                    f"startup configuration — handlers must answer from "
                    f"the request and the ServeConfig alone",
                )

    def _check_quic_module(self, info: ModuleInfo) -> Iterator[Violation]:
        """Flag every environment read in a QUIC-stack module."""
        ctx = info.ctx
        for node in ast.walk(ctx.tree):
            if _is_environ_access(node):
                yield ctx.violation(
                    node,
                    self.code,
                    f"quic module {info.name} reads the process "
                    f"environment; pacers and observers ship into shard "
                    f"workers and must be functions of their constructor "
                    f"arguments alone",
                )

    # -- method body ----------------------------------------------------

    def _check_method(
        self, info: ModuleInfo, cls: ast.ClassDef, method: ast.FunctionDef
    ) -> Iterator[Violation]:
        ctx = info.ctx
        scope = FunctionScope(method)
        where = f"{cls.name}.{method.name}"

        def module_binding(name: str):
            if name in scope.locals:
                return None
            return info.bindings.get(name)

        for node in ast.walk(method):
            if _is_environ_access(node):
                yield ctx.violation(
                    node,
                    self.code,
                    f"kernel tick path {where} reads the process "
                    f"environment; kernel selection and configuration "
                    f"must be resolved before construction",
                )
            elif isinstance(node, (ast.Global, ast.Nonlocal)):
                yield ctx.violation(
                    node,
                    self.code,
                    f"kernel tick path {where} declares "
                    f"{'global' if isinstance(node, ast.Global) else 'nonlocal'} "
                    f"{', '.join(node.names)}: module state is a hidden "
                    f"cross-shard channel",
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    leaf = target
                    while isinstance(leaf, (ast.Subscript, ast.Attribute)):
                        if (
                            isinstance(leaf.value, ast.Name)
                            and module_binding(leaf.value.id) is not None
                        ):
                            yield ctx.violation(
                                node,
                                self.code,
                                f"kernel tick path {where} writes into "
                                f"module-level {leaf.value.id!r}",
                            )
                        leaf = leaf.value
                    if (
                        isinstance(leaf, ast.Name)
                        and not isinstance(target, (ast.Attribute, ast.Subscript))
                        and module_binding(leaf.id) is not None
                    ):
                        yield ctx.violation(
                            node,
                            self.code,
                            f"kernel tick path {where} rebinds "
                            f"module-level {leaf.id!r}",
                        )
            elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                binding = module_binding(node.id)
                if binding is not None and binding.kind == "mutable":
                    yield ctx.violation(
                        node,
                        self.code,
                        f"kernel tick path {where} reads mutable module "
                        f"state {node.id!r} (reassigned at module scope); "
                        f"pass it in as a constructor argument instead",
                    )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                base = node.func.value
                binding = (
                    module_binding(base.id)
                    if isinstance(base, ast.Name)
                    else None
                )
                # Only module-level *data* can be mutated through a
                # method; calls on imports (np.add, math.fsum) are ufuncs
                # and functions, not container mutations.
                if (
                    node.func.attr in _MUTATING_METHODS
                    and binding is not None
                    and binding.kind in ("constant", "mutable")
                ):
                    yield ctx.violation(
                        node,
                        self.code,
                        f"kernel tick path {where} mutates module-level "
                        f"{base.id!r} via .{node.func.attr}()",
                    )
