"""Unit-correctness rule: UNIT001 (magic unit constants).

The simulator's internal quantities are SI base units; conversions live
in :mod:`repro.core.units` and nowhere else.  A bare ``1e9`` or ``* 8``
in simulation math is exactly how the classic factor-of-8 and
1000-vs-1024 bugs re-enter a networking codebase — the reader cannot
tell a gigabit from a gigabyte from a GiB, and neither can a reviewer.

The rule fires on numeric literals that are unit-conversion constants
(1e3/1e6/1e9, 1024 and its powers) and on multiplying/dividing a
non-literal expression by 8 (bits↔bytes), inside the simulation
subsystems (``sim``, ``tcp``, ``net``, ``micro``).  Use ``units.G``,
``units.KB``, ``units.BITS_PER_BYTE`` & friends, or suppress a genuine
non-unit use with ``# repro: noqa-UNIT001`` and a justification.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, Rule, Violation, register

__all__ = ["MagicUnitConstantRule"]

#: Literal value → the units helper that should replace it.
_MAGIC = {
    1e3: "units.K",
    1e6: "units.M",
    1e9: "units.G",
    1024.0: "units.KB",
    float(1024**2): "units.MB",
    float(1024**3): "units.GB",
}


def _is_number(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


@register
class MagicUnitConstantRule(Rule):
    code = "UNIT001"
    name = "no-magic-unit-constants"
    description = (
        "Magic unit constants (1e9, 1e6, 1024, '* 8') in simulation code "
        "hide unit conversions; use the repro.core.units helpers "
        "(units.G, units.KB, units.BITS_PER_BYTE, gbps(), ...) so every "
        "conversion happens at one audited boundary."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_sim_code():
            return
        for node in ast.walk(ctx.tree):
            if _is_number(node):
                suggestion = _MAGIC.get(float(node.value))
                if suggestion is not None:
                    yield ctx.violation(
                        node,
                        self.code,
                        f"magic unit constant {node.value!r}; use "
                        f"{suggestion} (repro.core.units)",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Mult, ast.Div)
            ):
                left, right = node.left, node.right
                # x * 8 / 8 * x: a bits-per-byte conversion in disguise.
                # Pure-literal arithmetic (8 * 1024) is caught via the
                # literal table when it involves a unit constant.
                candidates = [(left, right), (right, left)]
                if isinstance(node.op, ast.Div):
                    candidates = [(right, left)]  # only `x / 8`
                for lit, other in candidates:
                    if (
                        _is_number(lit)
                        and float(lit.value) == 8.0
                        and not _is_number(other)
                    ):
                        yield ctx.violation(
                            node,
                            self.code,
                            "multiplying/dividing by bare 8 looks like a "
                            "bits<->bytes conversion; use "
                            "units.BITS_PER_BYTE or gbps()/to_gbps()",
                        )
                        break
