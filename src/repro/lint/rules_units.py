"""Unit-correctness rules: UNIT001 (magic constants), UNIT002 (sysctl bytes).

The simulator's internal quantities are SI base units; conversions live
in :mod:`repro.core.units` and nowhere else.  A bare ``1e9`` or ``* 8``
in simulation math is exactly how the classic factor-of-8 and
1000-vs-1024 bugs re-enter a networking codebase — the reader cannot
tell a gigabit from a gigabyte from a GiB, and neither can a reviewer.

UNIT001 fires on numeric literals that are unit-conversion constants
(1e3/1e6/1e9, 1024 and its powers) and on multiplying/dividing a
non-literal expression by 8 (bits↔bytes), inside the simulation
subsystems (``sim``, ``tcp``, ``net``, ``micro``).  Use ``units.G``,
``units.KB``, ``units.BITS_PER_BYTE`` & friends, or suppress a genuine
non-unit use with ``# repro: noqa-UNIT001`` and a justification.

UNIT002 guards the binary-vs-decimal boundary around the kernel byte
sysctls the paper tunes (``optmem_max``, ``rmem_max``, ``tcp_wmem``,
...).  Those are byte counts with binary-round canonical values
(20 KB = 20480, 1 MB = 1048576, the paper's best 3405376); writing
"1 MB" as the decimal-round ``1000000`` silently undershoots by 4.6%
— precisely the mixup the paper's own Fig. 9 sensitivity makes costly.
The rule fires when a sysctl byte name is assigned, compared, or
passed a decimal-round literal (``% 1000 == 0``) that is not also
binary-aligned (``% 1024 != 0``).  It applies repo-wide: testbed and
host configuration files are where the constants live.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import FileContext, Rule, Violation, register

__all__ = ["MagicUnitConstantRule", "DecimalByteSysctlRule"]

#: Literal value → the units helper that should replace it.
_MAGIC = {
    1e3: "units.K",
    1e6: "units.M",
    1e9: "units.G",
    1024.0: "units.KB",
    float(1024**2): "units.MB",
    float(1024**3): "units.GB",
}


def _is_number(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    )


@register
class MagicUnitConstantRule(Rule):
    """UNIT001: no magic unit constants in simulation math.

    Bare ``1e9``/``1e6``/``1024`` literals and ``* 8`` factors hide unit
    conversions inside formulas — the classic factor-of-8 and
    1000-vs-1024 bug class.  Convert through ``repro.core.units``
    helpers (``units.G``, ``units.KB``, ``gbps()``, ...) so every
    conversion happens at one audited boundary.
    """

    code = "UNIT001"
    name = "no-magic-unit-constants"
    description = (
        "Magic unit constants (1e9, 1e6, 1024, '* 8') in simulation code "
        "hide unit conversions; use the repro.core.units helpers "
        "(units.G, units.KB, units.BITS_PER_BYTE, gbps(), ...) so every "
        "conversion happens at one audited boundary."
    )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        if not ctx.in_sim_code():
            return
        for node in ast.walk(ctx.tree):
            if _is_number(node):
                suggestion = _MAGIC.get(float(node.value))
                if suggestion is not None:
                    yield ctx.violation(
                        node,
                        self.code,
                        f"magic unit constant {node.value!r}; use "
                        f"{suggestion} (repro.core.units)",
                    )
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Mult, ast.Div)
            ):
                left, right = node.left, node.right
                # x * 8 / 8 * x: a bits-per-byte conversion in disguise.
                # Pure-literal arithmetic (8 * 1024) is caught via the
                # literal table when it involves a unit constant.
                candidates = [(left, right), (right, left)]
                if isinstance(node.op, ast.Div):
                    candidates = [(right, left)]  # only `x / 8`
                for lit, other in candidates:
                    if (
                        _is_number(lit)
                        and float(lit.value) == 8.0
                        and not _is_number(other)
                    ):
                        yield ctx.violation(
                            node,
                            self.code,
                            "multiplying/dividing by bare 8 looks like a "
                            "bits<->bytes conversion; use "
                            "units.BITS_PER_BYTE or gbps()/to_gbps()",
                        )
                        break


#: Kernel sysctls (net.core.*, net.ipv4.tcp_*mem) that are byte counts
#: with binary-round canonical values.
_SYSCTL_BYTE_NAMES = frozenset(
    {
        "optmem_max",
        "rmem_max",
        "wmem_max",
        "rmem_default",
        "wmem_default",
        "tcp_rmem",
        "tcp_wmem",
    }
)


def _decimal_byte_literal(node: ast.expr) -> int | None:
    """The literal's value if it is decimal-round but not binary-aligned.

    Small values (< 100 KB) are left alone: below the autotuning floor
    the 1000-vs-1024 distinction cannot matter, and constants like 0 or
    ``4096`` appear legitimately.
    """
    if not _is_number(node):
        return None
    value = node.value
    if isinstance(value, float) and not value.is_integer():
        return None
    value = int(value)
    if value >= 100_000 and value % 1000 == 0 and value % 1024 != 0:
        return value
    return None


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class DecimalByteSysctlRule(Rule):
    """UNIT002: no decimal-round literals on byte-count sysctls.

    Byte-count sysctls (``optmem_max``, ``rmem_max``, ``tcp_wmem``, ...)
    have binary-round canonical values; writing ``2000000`` for "2 MB"
    silently undersizes the buffer by ~5%.  Use ``units.MB``/``units.KB``
    (binary) or the exact kernel value.
    """

    code = "UNIT002"
    name = "no-decimal-byte-sysctls"
    description = (
        "Byte-count sysctls (optmem_max, rmem_max, tcp_wmem, ...) have "
        "binary-round canonical values; a decimal-round literal like "
        "1000000 for '1 MB' is a binary-vs-decimal mixup that silently "
        "undersizes the buffer.  Use units.MB/units.KB (binary) or the "
        "exact kernel value."
    )

    def _pair(self, ctx: FileContext, site: ast.AST, name_node, lit_node):
        name = _terminal_name(name_node)
        if name not in _SYSCTL_BYTE_NAMES:
            return None
        value = _decimal_byte_literal(lit_node)
        if value is None:
            return None
        return ctx.violation(
            site,
            self.code,
            f"{name} set/compared with decimal-round {value}: byte "
            f"sysctls are binary ({value} B is only {value / 1048576:.3f} "
            f"MiB); use units.MB/units.KB or the exact kernel value",
        )

    def check(self, ctx: FileContext) -> Iterator[Violation]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                for left, right in zip(operands, operands[1:]):
                    for name_node, lit_node in ((left, right), (right, left)):
                        v = self._pair(ctx, node, name_node, lit_node)
                        if v is not None:
                            yield v
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    v = self._pair(ctx, node, target, node.value)
                    if v is not None:
                        yield v
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                v = self._pair(ctx, node, node.target, node.value)
                if v is not None:
                    yield v
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if kw.arg in _SYSCTL_BYTE_NAMES:
                        value = _decimal_byte_literal(kw.value)
                        if value is not None:
                            yield ctx.violation(
                                node,
                                self.code,
                                f"{kw.arg}= passed decimal-round {value}: "
                                f"byte sysctls are binary ({value} B is "
                                f"{value / 1048576:.3f} MiB); use "
                                f"units.MB/units.KB or the exact kernel "
                                f"value",
                            )
