"""``repro lint`` — determinism & unit-correctness static analysis.

The simulator's correctness rests on invariants the code *states* but
cannot enforce by construction:

* all randomness flows through :meth:`repro.core.rng.RngFactory.stream`;
* all internal quantities are SI base units, converted only at the
  boundary via :mod:`repro.core.units`;
* the event engine and fluid simulator stay deterministic.

This package is an AST-based checker that enforces them on every commit.
Rules are small classes registered by code (``DET001``, ``UNIT001``, …);
the runner walks files, applies the rules, honours per-line
``# repro: noqa-<CODE>`` suppressions, and renders text, JSON, or SARIF.
The ``repro lint`` CLI subcommand (see :mod:`repro.cli`) is a thin
wrapper around :func:`repro.lint.runner.lint_paths`.

On top of the per-file rules sits a whole-program layer
(``repro lint --deep``): :mod:`repro.lint.graph` builds a project-wide
symbol table and import graph, :mod:`repro.lint.dataflow` resolves
string provenance and scopes over it, and the deep rule family —
``RNG001`` (stream-label provenance), ``PURE001`` (kernel tick-path
purity), ``SHARD001`` (shard-safe reductions), ``IMP001`` (import
hygiene) — checks the cross-module invariants that sharded campaigns
depend on.  Pre-existing deep findings live in the committed
``lint_baseline.json`` (see :mod:`repro.lint.baseline`); CI fails on
drift in either direction.

The companion *runtime* checks live in :mod:`repro.sim.sanitizer`.
"""

from __future__ import annotations

from repro.lint.core import (
    FileContext,
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    get_rule,
    register,
)

# Importing the rule modules registers their rules.
from repro.lint import graph  # noqa: F401  (registration side effect: IMP001)
from repro.lint import rules_determinism  # noqa: F401
from repro.lint import rules_experiments  # noqa: F401
from repro.lint import rules_float  # noqa: F401
from repro.lint import rules_purity  # noqa: F401
from repro.lint import rules_rng  # noqa: F401
from repro.lint import rules_shard  # noqa: F401
from repro.lint import rules_units  # noqa: F401
from repro.lint.baseline import (
    BaselineDiff,
    compare_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.runner import (
    lint_paths,
    render_json,
    render_sarif,
    render_text,
)

__all__ = [
    "Violation",
    "Rule",
    "ProjectRule",
    "FileContext",
    "register",
    "all_rules",
    "get_rule",
    "lint_paths",
    "render_text",
    "render_json",
    "render_sarif",
    "BaselineDiff",
    "compare_baseline",
    "load_baseline",
    "write_baseline",
]
