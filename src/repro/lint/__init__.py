"""``repro lint`` — determinism & unit-correctness static analysis.

The simulator's correctness rests on invariants the code *states* but
cannot enforce by construction:

* all randomness flows through :meth:`repro.core.rng.RngFactory.stream`;
* all internal quantities are SI base units, converted only at the
  boundary via :mod:`repro.core.units`;
* the event engine and fluid simulator stay deterministic.

This package is an AST-based checker that enforces them on every commit.
Rules are small classes registered by code (``DET001``, ``UNIT001``, …);
the runner walks files, applies the rules, honours per-line
``# repro: noqa-<CODE>`` suppressions, and renders text or JSON.  The
``repro lint`` CLI subcommand (see :mod:`repro.cli`) is a thin wrapper
around :func:`repro.lint.runner.lint_paths`.

The companion *runtime* checks live in :mod:`repro.sim.sanitizer`.
"""

from __future__ import annotations

from repro.lint.core import (
    FileContext,
    ProjectRule,
    Rule,
    Violation,
    all_rules,
    get_rule,
    register,
)

# Importing the rule modules registers their rules.
from repro.lint import rules_determinism  # noqa: F401  (registration side effect)
from repro.lint import rules_experiments  # noqa: F401
from repro.lint import rules_float  # noqa: F401
from repro.lint import rules_units  # noqa: F401
from repro.lint.runner import lint_paths, render_json, render_text

__all__ = [
    "Violation",
    "Rule",
    "ProjectRule",
    "FileContext",
    "register",
    "all_rules",
    "get_rule",
    "lint_paths",
    "render_text",
    "render_json",
]
