"""Command-line interface.

Seven subcommands mirror the ways people use this package::

    repro iperf3    --testbed amlight --path wan54 --zerocopy --fq-rate 50
    repro experiment fig09 [--paper] [--markdown out.md]
    repro run       [exp_id ...|--all] --jobs 4 [--no-cache] [--cache-dir D]
    repro run       scale-flows --shards 4 [--no-cache]
    repro serve     [--port 8472] [--workers 4] [--cache-dir D]
    repro serve     --check [--url HOST:PORT] [--exp fig09]
    repro trace     fig09 --out fig09.trace.json [--interval 0.1] [--csv f.csv]
    repro trace     fig09 --spill traces/ [--profile paper]
    repro trace     --diff a.trace.jsonl b.trace.jsonl
    repro advise    --testbed esnet --path wan --streams 8
    repro lint      src/ [--format json|sarif] [--select DET001,UNIT001]
    repro lint      --deep src/ [--baseline lint_baseline.json [--update-baseline]]
    repro lint      --codes | --explain RNG001 | --list-rules

Each prints to stdout; exit status is 0 on success (``lint`` exits 1
when it finds violations — or, with ``--baseline``, when the findings
drift from the baseline in either direction, ``run --expect-cached`` exits 1 when any
experiment had to execute, ``trace --validate`` exits 1 on a malformed
trace, ``trace --diff`` exits 1 when the traces diverge, 2 on usage
errors).  ``iperf3``, ``experiment``, ``run``, and
``trace`` accept ``--sanitize`` to enable the runtime simulation
sanitizer (equivalent to ``REPRO_SANITIZE=1``).  The module is
import-safe (``main`` takes argv) so tests drive it directly.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.report import result_to_markdown
from repro.core.errors import ReproError
from repro.core.rng import RngFactory
from repro.experiments import all_experiment_ids, run_experiment
from repro.host.advisor import advise
from repro.host.sysctl import OPTMEM_1MB
from repro.testbeds.amlight import AmLightTestbed
from repro.testbeds.esnet import ESnetTestbed
from repro.tools.harness import HarnessConfig
from repro.tools.iperf3 import Iperf3, Iperf3Options

__all__ = ["main", "build_parser"]


def _make_testbed(name: str, kernel: str, optmem: int):
    if name == "amlight":
        return AmLightTestbed(kernel=kernel, optmem_max=optmem)
    if name == "esnet":
        return ESnetTestbed(kernel=kernel, optmem_max=optmem)
    raise ReproError(f"unknown testbed {name!r}; have amlight, esnet")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulated reproduction of the SC'24 Linux TCP throughput study",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # -- repro iperf3 -----------------------------------------------------
    p_iperf = sub.add_parser("iperf3", help="run one simulated iperf3 test")
    p_iperf.add_argument("--testbed", default="amlight", choices=["amlight", "esnet"])
    p_iperf.add_argument("--path", default="lan",
                         help="amlight: lan/wan25/wan54/wan104; esnet: lan/wan")
    p_iperf.add_argument("--kernel", default="6.8")
    p_iperf.add_argument("-P", "--parallel", type=int, default=1)
    p_iperf.add_argument("-t", "--time", type=float, default=20.0)
    p_iperf.add_argument("--fq-rate", type=float, default=None, metavar="GBPS")
    p_iperf.add_argument("--zerocopy", action="store_true",
                         help="MSG_ZEROCOPY (--zerocopy=z)")
    p_iperf.add_argument("--skip-rx-copy", action="store_true")
    p_iperf.add_argument("-C", "--congestion", default="cubic")
    p_iperf.add_argument("--optmem", type=int, default=OPTMEM_1MB)
    p_iperf.add_argument("--json", action="store_true", help="emit iperf3 -J JSON")
    p_iperf.add_argument("--seed", type=int, default=7)
    p_iperf.add_argument("--sanitize", action="store_true",
                         help="enable runtime invariant checks "
                         "(= REPRO_SANITIZE=1)")

    # -- repro experiment -------------------------------------------------
    p_exp = sub.add_parser("experiment", help="reproduce a paper artifact")
    p_exp.add_argument("exp_id", nargs="?", default=None,
                       help="experiment id (omit to list)")
    p_exp.add_argument("--paper", action="store_true",
                       help="full 60s x 10-rep fidelity")
    p_exp.add_argument("--markdown", metavar="FILE")
    p_exp.add_argument("--sanitize", action="store_true",
                       help="enable runtime invariant checks "
                       "(= REPRO_SANITIZE=1)")

    # -- repro run --------------------------------------------------------
    p_run = sub.add_parser(
        "run",
        help="run experiments in parallel with result caching",
        description="Process-pool campaign runner: fans experiments out "
        "across --jobs workers and serves unchanged (code, config) pairs "
        "from a content-addressed on-disk cache.  Parallelism and caching "
        "never change a number — see tests/test_runner_golden.py.",
    )
    p_run.add_argument("exp_ids", nargs="*", metavar="EXP_ID",
                       help="experiment ids (omit with no --all to list)")
    p_run.add_argument("--all", action="store_true",
                       help="run every registered experiment")
    p_run.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes (default 1 = in-process)")
    p_run.add_argument("--profile", choices=["quick", "bench", "paper"],
                       default="bench",
                       help="harness fidelity (default bench)")
    p_run.add_argument("--no-cache", action="store_true",
                       help="bypass the result cache entirely")
    p_run.add_argument("--cache-dir", metavar="DIR",
                       help="cache location (default $REPRO_CACHE_DIR "
                       "or .repro_cache)")
    p_run.add_argument("--expect-cached", action="store_true",
                       help="exit 1 unless every result came from cache")
    p_run.add_argument("--markdown", metavar="FILE",
                       help="write all results as markdown sections")
    p_run.add_argument("--sanitize", action="store_true",
                       help="enable runtime invariant checks "
                       "(= REPRO_SANITIZE=1)")
    p_run.add_argument("--shards", type=int, default=None, metavar="N",
                       help="pin the sharded simulator's worker count "
                       "(default: $REPRO_SIM_SHARDS or 1); results are "
                       "byte-identical for every N")
    p_run.add_argument("--trace", action="store_true",
                       help="record trace events for every task and "
                       "persist Perfetto artifacts next to the cache")
    p_run.add_argument("--spill", metavar="DIR",
                       help="with --trace: stream each task's events to "
                       "a JSONL file in DIR (bounded memory) instead of "
                       "buffering them in the worker")

    # -- repro serve ------------------------------------------------------
    p_serve = sub.add_parser(
        "serve",
        help="always-warm experiment service over HTTP",
        description="Asyncio daemon fronting the content-addressed "
        "result cache and a persistent pre-warmed worker pool.  "
        "POST /experiments submits a config and returns the result "
        "digest (identical in-flight configs coalesce onto one run); "
        "GET /results/<digest> serves stored results in O(1); "
        "GET /traces/<digest>/tail streams spilled trace events over "
        "SSE.  A digest served by the daemon is byte-identical to the "
        "digest `repro run` produces for the same config.",
    )
    p_serve.add_argument("--host", default=None,
                         help="bind address (default $REPRO_SERVE_HOST "
                         "or 127.0.0.1)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="TCP port; 0 picks an ephemeral one "
                         "(default $REPRO_SERVE_PORT or 8472)")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="persistent pool size (default "
                         "$REPRO_SERVE_WORKERS or 2)")
    p_serve.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="cache location (default $REPRO_CACHE_DIR "
                         "or .repro_cache)")
    p_serve.add_argument("--trace-dir", metavar="DIR", default=None,
                         help="where traced runs spill JSONL streams "
                         "(default <cache>/serve-traces)")
    p_serve.add_argument("--check", action="store_true",
                         help="self-test: POST an experiment twice plus "
                         "concurrent duplicates, assert cache-hit + "
                         "coalescing via /stats, and compare the served "
                         "digest against a direct in-process run")
    p_serve.add_argument("--url", metavar="HOST:PORT", default=None,
                         help="with --check: test an already-running "
                         "daemon instead of starting a private one")
    p_serve.add_argument("--exp", default="fig09", metavar="EXP_ID",
                         help="experiment the check submits "
                         "(default fig09)")
    p_serve.add_argument("--profile", choices=["quick", "bench", "paper"],
                         default="quick",
                         help="harness fidelity for --check "
                         "(default quick)")
    p_serve.add_argument("--digest-out", metavar="FILE", default=None,
                         help="with --check: write the served digest to "
                         "FILE (lets CI cmp it against repro run)")

    # -- repro trace ------------------------------------------------------
    p_trace = sub.add_parser(
        "trace",
        help="run one experiment with the observability subsystem on",
        description="Runs an experiment under the in-simulation trace "
        "bus — the stand-in for the paper's ss/mpstat/ethtool side "
        "channels — and exports the event stream as a Perfetto/Chrome "
        "trace_event JSON (load it at https://ui.perfetto.dev).  "
        "Tracing is purely observational: results and golden digests "
        "are identical with it on or off, and the event stream itself "
        "is deterministic (same seed, same bytes, any --jobs).",
    )
    p_trace.add_argument("exp_id", nargs="?", default=None,
                         help="experiment id (omit to list)")
    p_trace.add_argument("--out", metavar="FILE",
                         help="write Perfetto trace_event JSON here")
    p_trace.add_argument("--csv", metavar="FILE",
                         help="also write the raw event stream as CSV")
    p_trace.add_argument("--interval", type=float, default=0.25,
                         metavar="SEC",
                         help="probe sampling interval in simulated "
                         "seconds (default 0.25)")
    p_trace.add_argument("--events", default=None, metavar="CATS",
                         help="comma-separated event categories to "
                         "record (default: all but per-tick 'flow')")
    p_trace.add_argument("--buffer", type=int, default=0, metavar="N",
                         help="flight-recorder ring capacity; 0 keeps "
                         "every event (default)")
    p_trace.add_argument("--spill", metavar="DIR",
                         help="stream events to a JSONL file in DIR as "
                         "they happen (bounded memory; exports then "
                         "read from disk)")
    p_trace.add_argument("--diff", nargs=2, metavar=("A", "B"),
                         help="compare two trace artifacts (JSONL "
                         "streams or Perfetto JSON): report the first "
                         "divergent event and exit 1 if they differ")
    p_trace.add_argument("--seed", type=int, default=None,
                         help="override the harness seed (handy for "
                         "producing deliberately divergent traces to "
                         "--diff)")
    p_trace.add_argument("--profile", choices=["quick", "bench", "paper"],
                         default="bench",
                         help="harness fidelity (default bench)")
    p_trace.add_argument("-j", "--jobs", type=int, default=1,
                         help="worker processes (default 1 = in-process)")
    p_trace.add_argument("--shards", type=int, default=None, metavar="N",
                         help="pin the sharded simulator's worker count "
                         "(traces are byte-identical for every N)")
    p_trace.add_argument("--validate", action="store_true",
                         help="schema-check the exported trace; exit 1 "
                         "on problems")
    p_trace.add_argument("--sanitize", action="store_true",
                         help="enable runtime invariant checks "
                         "(= REPRO_SANITIZE=1)")

    # -- repro lint -------------------------------------------------------
    p_lint = sub.add_parser(
        "lint",
        help="determinism & unit-correctness static checks",
        description="AST-based checks of the repo's reproducibility "
        "invariants; see README 'Invariants & linting' for the rule table.",
    )
    p_lint.add_argument("paths", nargs="*", default=None, metavar="PATH",
                        help="files or directories (default: src)")
    p_lint.add_argument("--format", dest="fmt",
                        choices=["text", "json", "sarif"], default="text")
    p_lint.add_argument("--select", default=None, metavar="CODES",
                        help="comma-separated rule codes to run "
                        "(default: all)")
    p_lint.add_argument("--deep", action="store_true",
                        help="also run the whole-program dataflow rules "
                        "(RNG001, PURE001, SHARD001, IMP001)")
    p_lint.add_argument("--baseline", metavar="FILE",
                        help="compare findings against a committed "
                        "baseline; new findings AND stale entries both "
                        "fail (exit 1)")
    p_lint.add_argument("--update-baseline", action="store_true",
                        help="with --baseline: rewrite FILE from the "
                        "current findings and exit 0")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    p_lint.add_argument("--codes", action="store_true",
                        help="list every registered rule code with its "
                        "one-line summary and exit")
    p_lint.add_argument("--explain", metavar="CODE",
                        help="print one rule's full rationale and exit")

    # -- repro advise -------------------------------------------------------
    p_adv = sub.add_parser("advise", help="tuning advice for a host/path")
    p_adv.add_argument("--testbed", default="amlight", choices=["amlight", "esnet"])
    p_adv.add_argument("--path", default="wan54")
    p_adv.add_argument("--kernel", default="6.8")
    p_adv.add_argument("--streams", type=int, default=1)
    p_adv.add_argument("--target", type=float, default=None, metavar="GBPS")
    p_adv.add_argument("--stock", action="store_true",
                       help="advise a stock (untuned) host instead of the "
                       "paper-tuned one")
    return parser


def _apply_sanitize_flag(args) -> None:
    if getattr(args, "sanitize", False):
        from repro.sim.sanitizer import enable

        enable()


def _cmd_iperf3(args) -> int:
    _apply_sanitize_flag(args)
    tb = _make_testbed(args.testbed, args.kernel, args.optmem)
    snd, rcv = tb.host_pair()
    tool = Iperf3(snd, rcv, tb.path(args.path), rng=RngFactory(args.seed))
    opts = Iperf3Options(
        parallel=args.parallel,
        duration=args.time,
        fq_rate_gbps=args.fq_rate,
        zerocopy="z" if args.zerocopy else None,
        skip_rx_copy=args.skip_rx_copy,
        congestion=args.congestion,
    )
    result = tool.run(opts)
    if args.json:
        print(result.to_json())
    else:
        print(f"$ {opts.command_line()}")
        print(result.summary_line())
    return 0


def _cmd_experiment(args) -> int:
    _apply_sanitize_flag(args)
    if args.exp_id is None:
        print("available experiments:")
        for exp_id in all_experiment_ids():
            print(f"  {exp_id}")
        return 0
    config = HarnessConfig.paper() if args.paper else HarnessConfig.bench()
    result = run_experiment(args.exp_id, config)
    print(result.render())
    if args.markdown:
        with open(args.markdown, "w") as fh:
            fh.write(result_to_markdown(result))
    return 0


def _cmd_run(args) -> int:
    _apply_sanitize_flag(args)
    if not args.exp_ids and not args.all:
        print("available experiments:")
        for exp_id in all_experiment_ids():
            print(f"  {exp_id}")
        print("\nrun them with: repro run --all --jobs 4")
        return 0
    from pathlib import Path

    from repro.runner import RunnerConfig, run_experiments

    config = {
        "quick": HarnessConfig.quick,
        "bench": HarnessConfig.bench,
        "paper": HarnessConfig.paper,
    }[args.profile]()
    trace_spec = None
    if args.trace:
        from repro.trace.bus import TraceSpec

        trace_spec = TraceSpec(spill_dir=args.spill)
    elif args.spill:
        raise ReproError("--spill only makes sense with --trace")
    runner = RunnerConfig(
        jobs=args.jobs,
        use_cache=not args.no_cache,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        trace=trace_spec,
        shards=args.shards,
    )
    report = run_experiments(
        args.exp_ids or None, config=config, runner=runner
    )
    for task in report.tasks:
        print(task.result.render())
        origin = "cached" if task.cached else f"ran in {task.elapsed:.1f}s"
        print(f"[{task.spec.exp_id}: {origin}, "
              f"digest {task.result.digest()[:12]}]")
        if task.trace is not None:
            print(_trace_line(task))
        print()
    print(report.summary())
    if args.markdown:
        sections = [result_to_markdown(r) for r in report.results]
        with open(args.markdown, "w") as fh:
            fh.write("\n".join(sections))
        print(f"wrote {args.markdown}")
    if args.expect_cached and not report.all_cached:
        print(
            f"error: expected a fully warm cache but {report.executed} "
            f"experiment(s) executed",
            file=sys.stderr,
        )
        return 1
    return 0


def _trace_line(task) -> str:
    """One-line trace summary for a TaskResult with a trace payload."""
    trace = task.trace
    line = (
        f"[trace: {trace['count']} events, "
        f"{trace['dropped']} dropped, digest {trace['digest'][:12]}"
    )
    if trace["path"] is not None:
        line += f", wrote {trace['path']}"
    return line + "]"


def _cmd_trace_diff(paths) -> int:
    from repro.trace.diff import diff_files

    diff = diff_files(paths[0], paths[1])
    print(diff.render())
    return 0 if diff.identical else 1


def _cmd_trace(args) -> int:
    _apply_sanitize_flag(args)
    if args.diff:
        if args.exp_id is not None:
            raise ReproError(
                "--diff compares two existing trace files; "
                "drop the experiment id"
            )
        return _cmd_trace_diff(args.diff)
    if args.exp_id is None:
        print("available experiments:")
        for exp_id in all_experiment_ids():
            print(f"  {exp_id}")
        return 0
    from repro.runner import RunnerConfig, run_experiments
    from repro.trace.bus import TraceSpec
    from repro.trace.export import dump_perfetto, to_csv, validate_perfetto

    categories = None
    if args.events:
        categories = [c.strip() for c in args.events.split(",") if c.strip()]
    spec = TraceSpec(
        interval=args.interval,
        categories=categories,
        buffer=args.buffer,
        spill_dir=args.spill,
    )
    config = {
        "quick": HarnessConfig.quick,
        "bench": HarnessConfig.bench,
        "paper": HarnessConfig.paper,
    }[args.profile]()
    if args.seed is not None:
        from dataclasses import replace

        config = replace(config, seed=args.seed)
    # Traced campaigns never read the cache, and the CLI writes its own
    # artifact (--out), so skip the cache machinery entirely.
    runner = RunnerConfig(
        jobs=args.jobs, use_cache=False, trace=spec, shards=args.shards
    )
    report = run_experiments([args.exp_id], config=config, runner=runner)
    task = report.by_id(args.exp_id)
    print(task.result.render())
    print(_trace_line(task))
    trace = task.trace
    spilled = trace["jsonl"] is not None
    if spilled:
        print(f"[spill: {trace['jsonl']}, "
              f"peak buffered {trace['peak_buffered']} events]")
    meta = {
        "exp_id": task.spec.exp_id,
        "task": task.spec.label,
        "dropped": trace["dropped"],
        "emitted": trace["emitted"],
    }
    doc = trace["doc"]
    if args.out:
        if spilled:
            from repro.trace.stream import stream_perfetto

            stream_perfetto(trace["jsonl"], args.out, meta=meta)
        else:
            with open(args.out, "w") as fh:
                fh.write(dump_perfetto(doc))
        print(f"wrote {args.out}")
    if args.csv:
        if spilled:
            from repro.trace.stream import stream_csv

            stream_csv(trace["jsonl"], args.csv)
        else:
            with open(args.csv, "w") as fh:
                fh.write(to_csv(trace["events"]))
        print(f"wrote {args.csv}")
    if args.validate:
        if doc is None:
            from repro.trace.export import to_perfetto
            from repro.trace.stream import iter_stream_events

            doc = to_perfetto(iter_stream_events(trace["jsonl"]), meta=meta)
        problems = validate_perfetto(doc)
        if problems:
            for problem in problems:
                print(f"invalid trace: {problem}", file=sys.stderr)
            return 1
        print("trace schema: ok")
    return 0


def _cmd_lint(args) -> int:
    from repro.lint import (
        all_rules,
        compare_baseline,
        get_rule,
        lint_paths,
        render_json,
        render_sarif,
        render_text,
        write_baseline,
    )

    if args.list_rules:
        for rule in all_rules():
            tag = " [deep]" if rule.deep else ""
            print(f"{rule.code}  {rule.name}{tag}")
            print(f"    {rule.description}")
        return 0
    if args.codes:
        for rule in all_rules():
            print(f"{rule.code}  {rule.summary()}")
        return 0
    if args.explain:
        try:
            rule = get_rule(args.explain.strip())
        except KeyError as exc:
            raise ReproError(str(exc.args[0])) from None
        print(f"{rule.code} ({rule.name})"
              f"{' — deep rule, runs under --deep' if rule.deep else ''}")
        print()
        print(rule.explain())
        return 0
    if args.update_baseline and not args.baseline:
        raise ReproError("--update-baseline needs --baseline FILE")
    select = None
    if args.select:
        select = [c.strip() for c in args.select.split(",") if c.strip()]
    violations = lint_paths(
        args.paths or ["src"], select=select, deep=args.deep
    )
    if args.baseline and args.update_baseline:
        count = write_baseline(violations, args.baseline)
        print(f"wrote {args.baseline}: {count} tracked finding(s)")
        return 0
    render = {
        "json": render_json,
        "sarif": render_sarif,
        "text": render_text,
    }[args.fmt]
    if args.baseline:
        diff = compare_baseline(violations, args.baseline)
        if args.fmt == "text":
            print(diff.render())
        else:
            # Machine formats report the *drift* (what CI should act
            # on), not the accepted baseline population.
            print(render(sorted(diff.new)))
        return 0 if diff.clean else 1
    print(render(violations))
    return 1 if violations else 0


def _cmd_advise(args) -> int:
    tb = _make_testbed(args.testbed, args.kernel, OPTMEM_1MB)
    if args.stock:
        from repro.testbeds.profiles import stock_host

        cpu = "intel" if args.testbed == "amlight" else "amd"
        nic = "cx5" if args.testbed == "amlight" else "cx7"
        host = stock_host("host", cpu=cpu, nic=nic, kernel=args.kernel)
    else:
        host, _ = tb.host_pair()
    report = advise(host, tb.path(args.path), target_gbps=args.target,
                    streams=args.streams)
    print(report.render())
    return 0


def _cmd_serve(args) -> int:
    from pathlib import Path

    from repro.serve import ServeConfig

    config = ServeConfig.from_env(
        host=args.host,
        port=args.port,
        workers=args.workers,
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
        trace_dir=Path(args.trace_dir) if args.trace_dir else None,
    )
    if args.check:
        return _serve_check(args, config)
    import asyncio

    from repro.serve import ExperimentServer

    server = ExperimentServer(config)

    async def _main() -> None:
        await server.start()
        print(
            f"repro serve: listening on http://{config.host}:{server.port} "
            f"(workers={config.workers}, cache={server.cache.root})"
        )
        try:
            await server.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: shutting down")
    return 0


def _serve_check(args, config) -> int:
    """Self-test against a live daemon (started privately unless --url).

    Exercises the full acceptance contract: health, an uncached POST,
    a warm re-POST that must hit the cache, a pair of concurrent
    duplicate POSTs that must coalesce onto one run, /stats counters
    backing all of the above, and digest parity against a direct
    in-process ``run_experiment``.
    """
    import concurrent.futures
    import contextlib
    import dataclasses

    from repro.serve import ServeClient, running_server

    harness = {
        "quick": HarnessConfig.quick,
        "bench": HarnessConfig.bench,
        "paper": HarnessConfig.paper,
    }[args.profile]()

    failures: list[str] = []

    def check(label: str, ok: bool, detail: str) -> None:
        mark = "ok" if ok else "FAIL"
        print(f"  [{mark}] {label}: {detail}")
        if not ok:
            failures.append(label)

    with contextlib.ExitStack() as stack:
        if args.url:
            host, _, port = args.url.rpartition(":")
            if not host or not port.isdigit():
                raise ReproError(f"--url wants HOST:PORT, got {args.url!r}")
            client = ServeClient(host, int(port))
        else:
            server = stack.enter_context(running_server(config))
            client = ServeClient(config.host, server.port)
        print(f"repro serve --check against {client.host}:{client.port}")
        health = client.healthz()
        check("healthz", health.get("ok") is True, str(health))

        first = client.submit(args.exp, config=harness)
        check(
            "cold submit",
            bool(first.get("digest")),
            f"digest {first.get('digest', '')[:12]} "
            f"cached={first.get('cached')}",
        )
        second = client.submit(args.exp, config=harness)
        check(
            "warm re-submit",
            second.get("cached") is True
            and second.get("digest") == first.get("digest"),
            f"cached={second.get('cached')}",
        )

        # Concurrent duplicates on a fresh config so neither can be a
        # plain cache hit: exactly one should run, the other coalesce.
        dup = dataclasses.replace(harness, seed=harness.seed + 1)
        with concurrent.futures.ThreadPoolExecutor(2) as pool:
            futs = [pool.submit(client.submit, args.exp, dup)
                    for _ in range(2)]
            docs = [f.result() for f in futs]
        check(
            "coalesced duplicates",
            sum(1 for d in docs if d.get("coalesced")) == 1
            and docs[0]["digest"] == docs[1]["digest"],
            f"coalesced flags "
            f"{sorted(bool(d.get('coalesced')) for d in docs)}",
        )

        stats = client.stats()
        check(
            "stats counters",
            stats.get("hits", 0) >= 1 and stats.get("coalesced", 0) >= 1,
            f"hits={stats.get('hits')} misses={stats.get('misses')} "
            f"coalesced={stats.get('coalesced')}",
        )

        stored = client.result(first["digest"])
        direct = run_experiment(args.exp, config=harness)
        parity = (
            direct.digest() == first["digest"]
            and stored["result"] == direct.to_dict()
        )
        check(
            "digest parity vs direct run",
            parity,
            f"served {first['digest'][:12]} "
            f"direct {direct.digest()[:12]}",
        )

        if args.digest_out:
            with open(args.digest_out, "w") as fh:
                fh.write(first["digest"] + "\n")
            print(f"  wrote digest to {args.digest_out}")

    if failures:
        print(f"serve check FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    print("serve check passed")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "iperf3":
            return _cmd_iperf3(args)
        if args.command == "experiment":
            return _cmd_experiment(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "trace":
            return _cmd_trace(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "advise":
            return _cmd_advise(args)
        if args.command == "serve":
            return _cmd_serve(args)
        raise AssertionError("unreachable")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
