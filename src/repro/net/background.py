"""Background (production) cross-traffic model.

AmLight's WAN paths carried an estimated ~16 Gbps of production traffic
during the experiments, with micro-bursts the authors acknowledge may
have influenced results; the unpaced-zerocopy anomaly in their Fig. 11
(zerocopy without pacing failing to reach max rate at AmLight but not
at ESnet) is attributed to exactly this congestion.  The ESnet testbed
had no competing traffic.

We model background traffic as a mean rate plus lognormal micro-burst
fluctuation sampled per tick.  The fluid simulator subtracts the sample
from the bottleneck link capacity, and the loss model treats ticks
where (test + background) exceed capacity as congestion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import units
from repro.core.errors import ConfigurationError

__all__ = ["BackgroundTraffic"]


@dataclass(frozen=True)
class BackgroundTraffic:
    """Stochastic cross-traffic on a shared path."""

    mean_bytes_per_sec: float
    #: Relative magnitude of micro-burst fluctuation (lognormal sigma).
    burstiness: float = 0.35
    #: When set, samples come from a Pareto (type I) distribution with
    #: this tail index instead of the lognormal — the heavy-tailed
    #: aggregate produced by elephant-flow size populations.  Must be
    #: > 1 so the mean exists; values < 2 give infinite variance.
    tail_alpha: float | None = None

    def __post_init__(self) -> None:
        if self.mean_bytes_per_sec < 0:
            raise ConfigurationError("background mean must be >= 0")
        if self.burstiness < 0:
            raise ConfigurationError("burstiness must be >= 0")
        if self.tail_alpha is not None and self.tail_alpha <= 1.0:
            raise ConfigurationError(
                "tail alpha must be > 1 for the mean rate to exist"
            )

    @classmethod
    def none(cls) -> "BackgroundTraffic":
        return cls(mean_bytes_per_sec=0.0, burstiness=0.0)

    @classmethod
    def amlight_production(cls) -> "BackgroundTraffic":
        """~16 Gbps of production traffic with micro-bursts.

        Burstiness is moderate: the backbone aggregates many flows, so
        20 ms-scale averages fluctuate by tens of percent, not multiples
        (heavier values starve the paper's paced 8x10G configuration,
        which the authors measured at near-full rate)."""
        return cls(mean_bytes_per_sec=units.gbps(16), burstiness=0.20)

    @classmethod
    def heavy_tailed(
        cls, mean_bytes_per_sec: float, alpha: float = 1.6
    ) -> "BackgroundTraffic":
        """Pareto cross-traffic with the same mean but elephant bursts.

        Internet flow-size populations are heavy-tailed, and on a
        backbone sampled at 20 ms the aggregate inherits the tail: long
        quiet spells punctuated by elephant bursts several times the
        mean.  ``alpha=1.6`` sits in the classic measured 1 < α < 2
        band — finite mean, infinite variance — so unlike the lognormal
        model no burstiness knob caps the spike size.
        """
        return cls(
            mean_bytes_per_sec=mean_bytes_per_sec,
            burstiness=0.0,
            tail_alpha=alpha,
        )

    @property
    def active(self) -> bool:
        return self.mean_bytes_per_sec > 0

    def sample(self, rng: np.random.Generator, n: int = 1) -> np.ndarray:
        """Per-tick background rate samples, bytes/s."""
        if not self.active:
            return np.zeros(n)
        if self.tail_alpha is not None:
            # Pareto I with scale x_m chosen so the mean is exactly
            # mean_bytes_per_sec: x_m = mean * (alpha - 1) / alpha.
            # numpy's pareto() draws the Lomax (Pareto II) excess, so
            # shift by 1 and scale.
            alpha = self.tail_alpha
            x_m = self.mean_bytes_per_sec * (alpha - 1.0) / alpha
            return x_m * (1.0 + rng.pareto(alpha, n))
        if self.burstiness == 0:
            return np.full(n, self.mean_bytes_per_sec)
        sigma = self.burstiness
        # lognormal with mean exactly mean_bytes_per_sec
        mu = np.log(self.mean_bytes_per_sec) - sigma**2 / 2.0
        return rng.lognormal(mean=mu, sigma=sigma, size=n)
