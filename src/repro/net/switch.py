"""Switch model: shared output buffering and tail drop.

Both testbeds use shallow-buffer merchant-silicon switches (NoviFlow
WB-5132D-E / Edgecore Wedge 100BF-32X at AmLight; Edgecore AS9716-32D at
ESnet with a 64 MB shared buffer) — and, critically, **neither supports
IEEE 802.3x flow control** (paper §III.F).  When simultaneous bursts
from multiple flows (or a burst plus production background traffic)
exceed an output port's drain rate for longer than the shared buffer
can absorb, the switch tail-drops.

The fluid simulator uses this model per tick: arrivals above the drain
rate grow the queue; occupancy above the buffer capacity converts the
excess into dropped bytes that the loss model turns into congestion
events and retransmit counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import units
from repro.core.errors import SimulationError
from repro.trace.bus import active as trace_active

__all__ = ["SwitchModel", "SharedBufferQueue"]


@dataclass(frozen=True)
class SwitchModel:
    """Static description of a switch."""

    model: str
    shared_buffer_bytes: float
    supports_flow_control: bool = False

    @classmethod
    def edgecore_as9716(cls) -> "SwitchModel":
        """ESnet testbed switch: 64 MB shared buffer, no 802.3x."""
        return cls("Edgecore AS9716-32D", 64 * units.MB, supports_flow_control=False)

    @classmethod
    def noviflow_wb5132(cls) -> "SwitchModel":
        """AmLight switches (Tofino-based): 22 MB of packet buffer total,
        but Tofino statically carves it across pipes/queues, so the
        share one congested output queue can actually occupy is ~12 MB.
        No 802.3x."""
        return cls("NoviFlow WB-5132D-E", 16 * units.MB, supports_flow_control=False)

    @classmethod
    def flow_control_capable(cls, buffer_mb: float = 32.0) -> "SwitchModel":
        """A switch/port honouring pause frames (ESnet production DTNs)."""
        return cls("802.3x-capable switch", buffer_mb * units.MB, supports_flow_control=True)


@dataclass
class SharedBufferQueue:
    """Mutable per-run queue state for one congested output port."""

    switch: SwitchModel
    drain_rate: float  # bytes/s the port can emit
    occupancy: float = 0.0
    dropped_bytes: float = 0.0
    paused_time: float = 0.0
    # Edge-trigger state for trace events (drop episodes, pause spans).
    _was_dropping: bool = field(default=False, repr=False)
    _was_paused: bool = field(default=False, repr=False)

    def offer(self, arrival_bytes: float, dt: float) -> tuple[float, float]:
        """Offer ``arrival_bytes`` over ``dt``; return (delivered, dropped).

        Without flow control the excess beyond buffer capacity is
        dropped.  With flow control the excess is *held back* — the
        caller should treat the returned ``dropped`` (always 0 here) as
        backpressure instead: delivery simply saturates at drain rate +
        available buffer, and we accumulate paused time for reporting.
        """
        if arrival_bytes < 0 or dt <= 0:
            raise SimulationError("offer() needs arrival>=0 and dt>0")
        drained = self.drain_rate * dt
        dropped = 0.0
        paused = False
        # Serve from queue first, then arrivals.
        queue_after = self.occupancy + arrival_bytes - drained
        if queue_after <= 0:
            delivered = self.occupancy + arrival_bytes
            self.occupancy = 0.0
        else:
            delivered = drained
            if queue_after > self.switch.shared_buffer_bytes:
                excess = queue_after - self.switch.shared_buffer_bytes
                self.occupancy = self.switch.shared_buffer_bytes
                if self.switch.supports_flow_control:
                    # Pause frames push the excess back into the
                    # senders' qdiscs; nothing is lost, but the port
                    # was saturated.  Duration integral over saturated
                    # offers only — no closed form exists.
                    self.paused_time += dt  # repro: noqa-FLOAT002
                    paused = True
                else:
                    self.dropped_bytes += excess
                    dropped = excess
            else:
                self.occupancy = queue_after
        bus = trace_active()
        if bus is not None:
            self._trace(bus, dropped, paused)
        return delivered, dropped

    def _trace(self, bus, dropped: float, paused: bool) -> None:
        """Emit edge-triggered pause/drop events for this offer."""
        if paused != self._was_paused:
            self._was_paused = paused
            bus.emit(
                "flowcontrol",
                "fc.pause" if paused else "fc.resume",
                port=self.switch.model,
                occupancy=self.occupancy,
                fill=round(self.fill_fraction, 4),
                paused_sec=round(self.paused_time, 9),
            )
        dropping = dropped > 0.0
        if dropping != self._was_dropping:
            self._was_dropping = dropping
            bus.emit(
                "switch",
                "switch.drop_start" if dropping else "switch.drop_end",
                port=self.switch.model,
                dropped=dropped,
                dropped_total=self.dropped_bytes,
                occupancy=self.occupancy,
            )

    @property
    def fill_fraction(self) -> float:
        return self.occupancy / self.switch.shared_buffer_bytes

    def reset(self) -> None:
        self.occupancy = 0.0
        self.dropped_bytes = 0.0
        self.paused_time = 0.0
        self._was_dropping = False
        self._was_paused = False
