"""End-to-end network paths.

A :class:`NetworkPath` bundles what the flow simulator needs about the
network between two hosts: the bottleneck link (rate + admin cap), the
round-trip time, the bottleneck switch (shared buffer, flow-control
support), and any background traffic sharing the bottleneck.

Both testbeds are modelled as a small set of named paths:

========  =========  ======  ==============================
AmLight   lan        0.2 ms  100G, no background
AmLight   wan25      25 ms   80G admin cap, ~16G background
AmLight   wan54      54 ms   80G admin cap, ~16G background
AmLight   wan104     104 ms  80G admin cap, ~16G background
ESnet     lan        0.1 ms  200G, clean
ESnet     wan        47 ms   200G loop, clean
ESnet prod dtn       63 ms   100G, 802.3x flow control
========  =========  ======  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.net.background import BackgroundTraffic
from repro.net.link import Link
from repro.net.switch import SwitchModel

__all__ = ["NetworkPath"]


@dataclass(frozen=True)
class NetworkPath:
    """A host-to-host path through a testbed."""

    name: str
    bottleneck: Link
    rtt_sec: float
    switch: SwitchModel
    background: BackgroundTraffic = field(default_factory=BackgroundTraffic.none)
    #: True when every device on the path honours 802.3x pause frames
    #: end to end (switch support alone is not enough).
    flow_control: bool = False

    def __post_init__(self) -> None:
        if self.rtt_sec < 0:
            raise ConfigurationError("negative RTT")
        if self.flow_control and not self.switch.supports_flow_control:
            raise ConfigurationError(
                f"path {self.name!r} claims flow control but switch "
                f"{self.switch.model!r} does not support it"
            )

    @classmethod
    def lan(cls, name: str = "lan", gbps_value: float = 100.0,
            switch: SwitchModel | None = None, rtt_ms: float = 0.2) -> "NetworkPath":
        return cls(
            name=name,
            bottleneck=Link.of_gbps(name, gbps_value, delay_ms=rtt_ms / 2.0),
            rtt_sec=units.ms(rtt_ms),
            switch=switch if switch is not None else SwitchModel.noviflow_wb5132(),
        )

    @property
    def rtt_ms(self) -> float:
        return units.seconds_to_ms(self.rtt_sec)

    @property
    def capacity(self) -> float:
        """Wire capacity usable by test traffic, bytes/s."""
        return self.bottleneck.usable_rate

    @property
    def is_wan(self) -> bool:
        return self.rtt_sec >= units.ms(5)

    def bdp_bytes(self, rate: float | None = None) -> float:
        """Bandwidth-delay product at ``rate`` (default: path capacity)."""
        r = self.capacity if rate is None else rate
        return r * self.rtt_sec

    def describe(self) -> str:
        bits = [
            f"{self.name}: {units.fmt_gbps(self.bottleneck.rate_bytes_per_sec)}",
            f"rtt {self.rtt_ms:.1f} ms",
        ]
        if self.bottleneck.admin_limit_bytes_per_sec is not None:
            bits.append(f"admin cap {units.fmt_gbps(self.bottleneck.admin_limit_bytes_per_sec)}")
        if self.background.active:
            bits.append(f"background ~{units.fmt_gbps(self.background.mean_bytes_per_sec)}")
        bits.append("802.3x" if self.flow_control else "no flow control")
        return ", ".join(bits)
