"""Testbed topology graphs (networkx-backed).

The fluid simulator only needs the per-path summary
(:class:`repro.net.path.NetworkPath`), but the testbeds are documented
as full graphs so that paths are *derived* rather than hand-entered:
nodes are hosts/switches, edges carry link attributes, and
:meth:`Topology.path_between` computes the bottleneck, the RTT (sum of
edge delays, both directions), and the minimum shared-buffer switch
along the way — mirroring Figs. 1 and 2 of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.net.background import BackgroundTraffic
from repro.net.link import Link
from repro.net.path import NetworkPath
from repro.net.switch import SwitchModel

__all__ = ["Topology"]


@dataclass
class Topology:
    """A named testbed graph."""

    name: str
    graph: nx.Graph = field(default_factory=nx.Graph)

    def add_host(self, name: str) -> None:
        self.graph.add_node(name, kind="host")

    def add_switch(self, name: str, model: SwitchModel) -> None:
        self.graph.add_node(name, kind="switch", model=model)

    def add_link(
        self,
        a: str,
        b: str,
        gbps_value: float,
        delay_ms: float = 0.0,
        admin_limit_gbps: float | None = None,
    ) -> None:
        for node in (a, b):
            if node not in self.graph:
                raise ConfigurationError(f"unknown node {node!r} in {self.name}")
        self.graph.add_edge(
            a,
            b,
            rate=units.gbps(gbps_value),
            delay=units.ms(delay_ms),
            admin=units.gbps(admin_limit_gbps) if admin_limit_gbps is not None else None,
        )

    # ------------------------------------------------------------------

    def path_between(
        self,
        src: str,
        dst: str,
        name: str | None = None,
        background: BackgroundTraffic | None = None,
        flow_control: bool = False,
    ) -> NetworkPath:
        """Derive the NetworkPath along the shortest (by delay) route."""
        try:
            route = nx.shortest_path(self.graph, src, dst, weight="delay")
        except (nx.NetworkXNoPath, nx.NodeNotFound) as exc:
            raise ConfigurationError(f"no route {src!r}->{dst!r} in {self.name}") from exc

        edges = list(zip(route, route[1:]))
        if not edges:
            raise ConfigurationError("src and dst are the same node")

        one_way_delay = sum(self.graph.edges[e]["delay"] for e in edges)
        rates = [self.graph.edges[e]["rate"] for e in edges]
        admins = [
            self.graph.edges[e]["admin"]
            for e in edges
            if self.graph.edges[e]["admin"] is not None
        ]
        bottleneck_rate = min(rates)
        admin = min(admins) if admins else None

        # The binding switch: smallest shared buffer among transit switches.
        transit_switches = [
            self.graph.nodes[n]["model"]
            for n in route[1:-1]
            if self.graph.nodes[n].get("kind") == "switch"
        ]
        if transit_switches:
            switch = min(transit_switches, key=lambda s: s.shared_buffer_bytes)
        else:
            switch = SwitchModel.edgecore_as9716()

        link = Link(
            name=name or f"{src}->{dst}",
            rate_bytes_per_sec=bottleneck_rate,
            delay_sec=one_way_delay,
            admin_limit_bytes_per_sec=admin,
        )
        return NetworkPath(
            name=name or f"{src}->{dst}",
            bottleneck=link,
            rtt_sec=2.0 * one_way_delay,
            switch=switch,
            background=background if background is not None else BackgroundTraffic.none(),
            flow_control=flow_control,
        )

    @property
    def hosts(self) -> list[str]:
        return [n for n, d in self.graph.nodes(data=True) if d.get("kind") == "host"]

    @property
    def switches(self) -> list[str]:
        return [n for n, d in self.graph.nodes(data=True) if d.get("kind") == "switch"]
