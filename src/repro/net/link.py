"""Network links: rate + propagation delay.

Links carry *wire* bytes; goodput conversions happen at the endpoints
via :class:`repro.tcp.segment.SegmentGeometry`.  A link may carry a
capacity cap below its physical rate — AmLight limits test traffic on
WAN paths to 80 Gbps to protect production traffic, which we model as
an ``admin_limit``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units
from repro.core.errors import ConfigurationError

__all__ = ["Link"]


@dataclass(frozen=True)
class Link:
    """A unidirectional transmission link."""

    name: str
    rate_bytes_per_sec: float
    delay_sec: float = 0.0
    #: Administrative cap on test traffic (None = full rate usable).
    admin_limit_bytes_per_sec: float | None = None

    def __post_init__(self) -> None:
        if self.rate_bytes_per_sec <= 0:
            raise ConfigurationError(f"link {self.name!r}: rate must be positive")
        if self.delay_sec < 0:
            raise ConfigurationError(f"link {self.name!r}: negative delay")
        if (
            self.admin_limit_bytes_per_sec is not None
            and not 0 < self.admin_limit_bytes_per_sec <= self.rate_bytes_per_sec
        ):
            raise ConfigurationError(
                f"link {self.name!r}: admin limit outside (0, rate]"
            )

    @classmethod
    def of_gbps(cls, name: str, gbps_value: float, delay_ms: float = 0.0,
                admin_limit_gbps: float | None = None) -> "Link":
        return cls(
            name=name,
            rate_bytes_per_sec=units.gbps(gbps_value),
            delay_sec=units.ms(delay_ms),
            admin_limit_bytes_per_sec=(
                units.gbps(admin_limit_gbps) if admin_limit_gbps is not None else None
            ),
        )

    @property
    def usable_rate(self) -> float:
        """Rate available to test traffic (admin cap applied)."""
        if self.admin_limit_bytes_per_sec is not None:
            return self.admin_limit_bytes_per_sec
        return self.rate_bytes_per_sec

    def serialization_time(self, nbytes: float) -> float:
        """Time to clock ``nbytes`` onto the wire."""
        return nbytes / self.rate_bytes_per_sec
