"""Network substrate: links, switches, paths, flow control, background traffic."""

from repro.net.background import BackgroundTraffic
from repro.net.flowcontrol import FlowControlState
from repro.net.link import Link
from repro.net.path import NetworkPath
from repro.net.switch import SharedBufferQueue, SwitchModel
from repro.net.topology import Topology

__all__ = [
    "Link",
    "SwitchModel",
    "SharedBufferQueue",
    "FlowControlState",
    "BackgroundTraffic",
    "NetworkPath",
    "Topology",
]
