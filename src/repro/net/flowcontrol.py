"""IEEE 802.3x Ethernet flow control (pause frames).

When the receiving host cannot keep up and its NIC rings approach
overflow, an 802.3x-capable NIC emits *pause frames* asking the
adjacent switch port to stop transmitting briefly; the switch buffers
(and may propagate pause upstream).  The net effect for TCP: **loss is
replaced by backpressure** — throughput is bounded by the receiver's
drain rate, retransmits all but vanish, and parallel flows converge to
similar rates.

The paper's testbed switches do *not* support 802.3x (hence the pacing
focus); its Table III shows ESnet *production* DTNs, which do — there,
pacing no longer changes average throughput, only the retransmit count
and per-flow fairness.  This module implements the pause-driven
delivery model the simulator uses when a path advertises flow control.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.trace.bus import active as trace_active

__all__ = ["FlowControlState"]


@dataclass
class FlowControlState:
    """Tracks pause activity between a receiver NIC and its switch port."""

    enabled: bool
    #: Ring fill fraction at which the NIC emits a pause.
    pause_threshold: float = 0.75
    #: Ring fill fraction at which it resumes.
    resume_threshold: float = 0.40
    paused: bool = False
    pause_events: int = 0
    total_paused_sec: float = 0.0

    def update(self, ring_fill: float, dt: float) -> float:
        """Advance one tick given the receiver ring fill fraction.

        Returns the fraction of the tick the link was paused (0..1),
        which the simulator applies as a delivery-rate reduction on the
        final hop (the data is buffered upstream, not lost).
        """
        if not self.enabled:
            return 0.0
        if self.paused:
            if ring_fill <= self.resume_threshold:
                self.paused = False
                # The resume tick is still ~30% paused while the ring
                # drains; account it like every other returned fraction
                # (previously dropped, undercounting Table-3-style
                # paused-time evidence) so the fc.resume event reports
                # the corrected total.
                self.total_paused_sec += dt * 0.3
                bus = trace_active()
                if bus is not None:
                    bus.emit(
                        "flowcontrol",
                        "fc.resume",
                        ring_fill=round(float(ring_fill), 4),
                        pause_events=self.pause_events,
                        paused_sec=round(self.total_paused_sec, 9),
                    )
                return 0.3  # partial pause while draining
            # Fully paused tick: a genuine duration integral (pause
            # spans are not tick-aligned, there is no closed form).
            self.total_paused_sec += dt  # repro: noqa-FLOAT002
            return 1.0
        if ring_fill >= self.pause_threshold:
            self.paused = True
            self.pause_events += 1
            self.total_paused_sec += dt * 0.5
            bus = trace_active()
            if bus is not None:
                bus.emit(
                    "flowcontrol",
                    "fc.pause",
                    ring_fill=round(float(ring_fill), 4),
                    pause_events=self.pause_events,
                    paused_sec=round(self.total_paused_sec, 9),
                )
            return 0.5  # paused for about half the tick
        return 0.0

    def reset(self) -> None:
        self.paused = False
        self.pause_events = 0
        self.total_paused_sec = 0.0
