"""repro — a simulation-based reproduction of
"Recent Linux Improvements that Impact TCP Throughput: Insights from
R&E Networks" (Schwarz et al., SC 2024 / INDIS).

The package models the Linux network stack's throughput-relevant
mechanics (MSG_ZEROCOPY, BIG TCP, fq pacing, optmem_max accounting,
IRQ/NUMA placement, IEEE 802.3x flow control, CUBIC/BBR) as a
calibrated fluid/discrete-event simulator, and reproduces every table
and figure in the paper's evaluation on simulated AmLight and ESnet
testbeds.

Quick start::

    from repro.testbeds import AmLightTestbed
    from repro.tools import Iperf3, Iperf3Options

    tb = AmLightTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    tool = Iperf3(snd, rcv, tb.path("wan54"))
    res = tool.run(Iperf3Options(duration=20, zerocopy="z", fq_rate_gbps=50))
    print(res.summary_line())
"""

from repro.host import Host, Kernel, Sysctls
from repro.sim import FlowSimulator, FlowSpec, SimProfile
from repro.testbeds import AmLightTestbed, ESnetTestbed
from repro.tools import HarnessConfig, Iperf3, Iperf3Options, TestHarness

__version__ = "1.0.0"

__all__ = [
    "Host",
    "Kernel",
    "Sysctls",
    "FlowSimulator",
    "FlowSpec",
    "SimProfile",
    "AmLightTestbed",
    "ESnetTestbed",
    "Iperf3",
    "Iperf3Options",
    "TestHarness",
    "HarnessConfig",
    "__version__",
]
