"""The test harness: repeat runs, aggregate statistics.

Models the ESnet "Network Test Harness" workflow the paper used: every
configuration runs for 60 seconds, a minimum of 10 times, with mpstat
collected alongside; results are reported as mean / stdev / min / max
throughput plus total retransmits — exactly the columns of the paper's
Tables I-III.  The thin "one standard deviation" whiskers on the
paper's bar charts are the same statistic.

:class:`HarnessConfig` lets tests and benchmarks trade fidelity for
speed (shorter runs, fewer repetitions, coarser ticks) without touching
experiment definitions; ``HarnessConfig.paper()`` restores the paper's
full protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.core import units
from repro.core.errors import HarnessError
from repro.core.rng import RngFactory
from repro.host.machine import Host
from repro.net.path import NetworkPath
from repro.tools.iperf3 import Iperf3, Iperf3Options, Iperf3Result
from repro.trace.bus import active as trace_active

__all__ = ["HarnessConfig", "HarnessResult", "TestHarness"]


@dataclass(frozen=True)
class HarnessConfig:
    """Repetition/duration policy for a batch of tests."""

    repetitions: int = 10
    duration: float = 60.0
    omit: float = 3.0
    tick: float = 0.002
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise HarnessError("need at least one repetition")

    @classmethod
    def paper(cls) -> "HarnessConfig":
        """The paper's protocol: 60 s runs, >= 10 repetitions."""
        return cls(repetitions=10, duration=60.0, omit=3.0, tick=0.002)

    @classmethod
    def quick(cls) -> "HarnessConfig":
        """Fast setting for unit tests and CI."""
        return cls(repetitions=3, duration=8.0, omit=2.0, tick=0.004)

    @classmethod
    def bench(cls) -> "HarnessConfig":
        """Benchmark setting: enough fidelity for the paper's shapes."""
        return cls(repetitions=3, duration=12.0, omit=3.0, tick=0.004)

    # -- serialization (runner cache keys, worker transport) ----------------

    def to_dict(self) -> dict:
        """Canonical plain-dict form; inverse of :meth:`from_dict`.

        The runner's content-addressed cache keys hash this dict, so the
        field set here *is* the cache-key definition for the config part.
        """
        return {
            "repetitions": self.repetitions,
            "duration": self.duration,
            "omit": self.omit,
            "tick": self.tick,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "HarnessConfig":
        return cls(**doc)


@dataclass(frozen=True)
class HarnessResult:
    """Aggregated statistics over the repetitions of one configuration."""

    label: str
    options: Iperf3Options
    runs: list[Iperf3Result]

    # -- throughput statistics across runs (Gbps) ---------------------------

    @property
    def gbps_values(self) -> np.ndarray:
        return np.array([r.gbps for r in self.runs])

    @property
    def mean_gbps(self) -> float:
        return float(self.gbps_values.mean())

    @property
    def stdev_gbps(self) -> float:
        v = self.gbps_values
        return float(v.std(ddof=1)) if v.size > 1 else 0.0

    @property
    def min_gbps(self) -> float:
        return float(self.gbps_values.min())

    @property
    def max_gbps(self) -> float:
        return float(self.gbps_values.max())

    @property
    def mean_retransmits(self) -> float:
        return float(np.mean([r.retransmits for r in self.runs]))

    @property
    def per_flow_range_gbps(self) -> tuple[float, float]:
        """(min, max) per-flow mean rate across all runs — Table III's
        'Range' column."""
        lows = [r.run.flow_range_gbps[0] for r in self.runs]
        highs = [r.run.flow_range_gbps[1] for r in self.runs]
        return float(np.mean(lows)), float(np.mean(highs))

    @property
    def sender_cpu_pct(self) -> float:
        return float(np.mean([r.run.sender_cpu.total_pct for r in self.runs]))

    @property
    def receiver_cpu_pct(self) -> float:
        return float(np.mean([r.run.receiver_cpu.total_pct for r in self.runs]))

    @property
    def sender_cpu(self):
        """Mean sender CpuUtil across runs."""
        from repro.sim.metrics import CpuUtil

        return CpuUtil(
            app_pct=float(np.mean([r.run.sender_cpu.app_pct for r in self.runs])),
            irq_pct=float(np.mean([r.run.sender_cpu.irq_pct for r in self.runs])),
        )

    @property
    def receiver_cpu(self):
        from repro.sim.metrics import CpuUtil

        return CpuUtil(
            app_pct=float(np.mean([r.run.receiver_cpu.app_pct for r in self.runs])),
            irq_pct=float(np.mean([r.run.receiver_cpu.irq_pct for r in self.runs])),
        )

    def table_row(self) -> dict:
        """A row in the shape of the paper's Tables I/II."""
        return {
            "config": self.label,
            "avg_gbps": round(self.mean_gbps, 1),
            "retr": int(round(self.mean_retransmits)),
            "min": round(self.min_gbps, 1),
            "max": round(self.max_gbps, 1),
            "stdev": round(self.stdev_gbps, 2),
        }


class TestHarness:
    """Runs a test matrix against a (sender, receiver, path) triple."""

    __test__ = False  # not a pytest class, despite the name

    def __init__(
        self,
        sender: Host,
        receiver: Host,
        path: NetworkPath,
        config: HarnessConfig | None = None,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.path = path
        self.config = config or HarnessConfig()

    def run(self, options: Iperf3Options, label: str | None = None) -> HarnessResult:
        cfg = self.config
        options = replace(options, duration=cfg.duration, omit=cfg.omit)
        tool = Iperf3(
            self.sender,
            self.receiver,
            self.path,
            rng=RngFactory(seed=cfg.seed),
            tick=cfg.tick,
        )
        label = label or options.command_line()
        bus = trace_active()
        runs = []
        for i in range(cfg.repetitions):
            if bus is None:
                runs.append(tool.run(options, rep=i))
            else:
                # Each repetition gets its own trace track, so exports
                # show "<case>#r<rep>" rows like the harness's own logs.
                with bus.scoped(f"{label}#r{i}"):
                    runs.append(tool.run(options, rep=i))
        return HarnessResult(label=label, options=options, runs=runs)

    def run_matrix(
        self, cases: list[tuple[str, Iperf3Options]], executor=None
    ) -> list[HarnessResult]:
        """Run a list of (label, options) cases, serially by default.

        ``executor`` is anything with a ``map(fn, items) -> list`` method
        preserving item order (e.g. the runner's
        :class:`~repro.runner.executors.ProcessExecutor`); each case is
        independent and deterministic, so the result list is identical
        whatever the executor.
        """
        if executor is None:
            return [self.run(opts, label) for label, opts in cases]
        return executor.map(_run_harness_case, [(self, c) for c in cases])


def _run_harness_case(item) -> HarnessResult:
    """Top-level (picklable) trampoline for parallel ``run_matrix``."""
    harness, (label, opts) = item
    return harness.run(opts, label)
