"""An iperf3 front-end for the simulator.

Mirrors the tool the paper used — iperf3 v3.17 with PR#1690 (the
``--zerocopy=z`` / ``--skip-rx-copy`` options) and PR#1728 (64-bit
``--fq-rate``) — including its version gates:

* parallel streams need the multi-threaded iperf3 (>= 3.16);
* ``--zerocopy=z`` (MSG_ZEROCOPY) needs PR#1690 *and* kernel >= 4.17;
  plain ``--zerocopy`` (sendfile) is the long-standing ``-Z`` flag;
* ``--skip-rx-copy`` (MSG_TRUNC) needs PR#1690;
* ``--fq-rate`` above ~34 Gbps silently wraps without PR#1728 —
  reproduced, since it is one of the paper's explicit pitfalls.

Results come back as an :class:`Iperf3Result` that can render the same
JSON structure real iperf3 emits (``end.sum_sent.bits_per_second``,
``end.sum_sent.retransmits``, per-stream entries), so downstream
parsing code written for real iperf3 works against the simulator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.core import units
from repro.core.errors import ConfigurationError, FeatureUnavailableError
from repro.core.rng import RngFactory
from repro.host.machine import Host
from repro.net.path import NetworkPath
from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
from repro.sim.metrics import RunResult
from repro.tcp.pacing import PacingConfig

__all__ = ["Iperf3Options", "Iperf3Result", "Iperf3"]


@dataclass(frozen=True)
class Iperf3Options:
    """Command-line options of one iperf3 client invocation."""

    parallel: int = 1  # -P
    duration: float = 60.0  # -t
    omit: float = 3.0  # -O
    fq_rate_gbps: float | None = None  # --fq-rate (per stream)
    zerocopy: str | None = None  # None | 'sendfile' (-Z) | 'z' (MSG_ZEROCOPY)
    skip_rx_copy: bool = False  # --skip-rx-copy
    congestion: str = "cubic"  # -C
    json_output: bool = True  # -J
    # Tool build: version + patches.
    version: str = "3.17"
    has_pr1690: bool = True
    has_pr1728: bool = True

    def __post_init__(self) -> None:
        if self.parallel < 1:
            raise ConfigurationError("-P must be >= 1")
        if self.zerocopy not in (None, "sendfile", "z"):
            raise ConfigurationError("--zerocopy takes nothing, 'sendfile' or 'z'")

    def validate_tool(self) -> None:
        major, minor = (int(x) for x in self.version.split(".")[:2])
        if self.parallel > 1 and (major, minor) < (3, 16):
            raise FeatureUnavailableError(
                "multi-threaded parallel streams", f"iperf3 {self.version} < 3.16"
            )
        if self.zerocopy == "z" and not self.has_pr1690:
            raise FeatureUnavailableError(
                "--zerocopy=z", "needs iperf3 PR#1690 (MSG_ZEROCOPY support)"
            )
        if self.skip_rx_copy and not self.has_pr1690:
            raise FeatureUnavailableError(
                "--skip-rx-copy", "needs iperf3 PR#1690 (MSG_TRUNC support)"
            )

    def command_line(self) -> str:
        """The equivalent real-world command, for logs and examples."""
        parts = ["iperf3", "-c", "<server>", "-t", str(int(self.duration))]
        if self.omit:
            parts += ["-O", str(int(self.omit))]
        if self.parallel > 1:
            parts += ["-P", str(self.parallel)]
        if self.fq_rate_gbps is not None:
            parts += ["--fq-rate", f"{self.fq_rate_gbps:g}G"]
        if self.zerocopy == "z":
            parts += ["--zerocopy=z"]
        elif self.zerocopy == "sendfile":
            parts += ["-Z"]
        if self.skip_rx_copy:
            parts += ["--skip-rx-copy"]
        if self.congestion != "cubic":
            parts += ["-C", self.congestion]
        if self.json_output:
            parts += ["-J"]
        return " ".join(parts)

    def to_flowspecs(self, qdisc: str) -> list[FlowSpec]:
        """Expand options into per-stream simulator FlowSpecs."""
        if self.fq_rate_gbps is None:
            pacing = PacingConfig.unpaced(qdisc=qdisc)
        else:
            pacing = PacingConfig.fq_rate_gbps(
                self.fq_rate_gbps, patched=self.has_pr1728, qdisc=qdisc
            )
        return [
            FlowSpec(
                pacing=pacing,
                zerocopy=self.zerocopy == "z",
                skip_rx_copy=self.skip_rx_copy,
                cc=self.congestion,
                label=f"stream-{i}",
            )
            for i in range(self.parallel)
        ]


@dataclass(frozen=True)
class Iperf3Result:
    """One finished test, wrapping the simulator's RunResult."""

    options: Iperf3Options
    run: RunResult

    @property
    def gbps(self) -> float:
        return self.run.total_gbps

    @property
    def retransmits(self) -> int:
        return int(round(self.run.retransmit_segments))

    @property
    def per_stream_gbps(self) -> np.ndarray:
        return self.run.per_flow_gbps

    def to_json(self) -> str:
        """Render an iperf3-compatible ``-J`` document (the subset the
        paper's analysis pipeline consumes)."""
        streams = [
            {
                "sender": {
                    "bits_per_second": float(g) * 1e9,
                    "retransmits": int(
                        round(self.run.retransmit_segments / len(self.run.per_flow_goodput))
                    ),
                }
            }
            for g in self.run.per_flow_gbps
        ]
        doc = {
            "start": {
                "version": f"iperf {self.options.version} (simulated)",
                "test_start": {
                    "num_streams": self.options.parallel,
                    "duration": self.options.duration,
                    "omit": self.options.omit,
                },
            },
            "end": {
                "streams": streams,
                "sum_sent": {
                    "bits_per_second": self.gbps * 1e9,
                    "retransmits": self.retransmits,
                },
                "sum_received": {
                    "bits_per_second": self.gbps * 1e9,
                },
                "cpu_utilization_percent": {
                    "host_total": self.run.sender_cpu.total_pct,
                    "remote_total": self.run.receiver_cpu.total_pct,
                },
            },
        }
        return json.dumps(doc, indent=2)

    def summary_line(self) -> str:
        """A human-readable one-liner like iperf3's closing output."""
        return (
            f"[SUM] {self.gbps:6.1f} Gbits/sec  retr {self.retransmits:<7d} "
            f"snd-cpu {self.run.sender_cpu.total_pct:5.1f}%  "
            f"rcv-cpu {self.run.receiver_cpu.total_pct:5.1f}%"
        )


class Iperf3:
    """Runs simulated iperf3 tests between two hosts over a path."""

    def __init__(
        self,
        sender: Host,
        receiver: Host,
        path: NetworkPath,
        rng: RngFactory | None = None,
        tick: float = 0.002,
    ) -> None:
        self.sender = sender
        self.receiver = receiver
        self.path = path
        self.rng = rng or RngFactory(seed=7)
        self.tick = tick

    def run(self, options: Iperf3Options, rep: int = 0) -> Iperf3Result:
        options.validate_tool()
        flows = options.to_flowspecs(qdisc=self.sender.sysctls.default_qdisc)
        profile = SimProfile(
            duration=options.duration, tick=self.tick, omit=options.omit
        )
        sim = FlowSimulator(
            self.sender, self.receiver, self.path, flows, profile, self.rng
        )
        return Iperf3Result(options=options, run=sim.run(rep=rep))
