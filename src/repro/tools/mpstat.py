"""mpstat-style CPU reporting for simulated runs.

The ESnet test harness runs ``mpstat`` alongside iperf3 to attribute
CPU usage to the cores doing the work.  The paper's Figs. 7-9 plot
"TX/RX Cores" — the *sum* of the iperf3 core's and the NIC interrupt
cores' utilization, which can exceed 100%.

This module renders the simulator's :class:`~repro.sim.metrics.CpuUtil`
into the same shape: per-core rows for the placement in effect plus the
aggregated TX/RX figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.host.numa import CorePlacement
from repro.sim.metrics import CpuUtil

__all__ = ["CoreSample", "MpstatReport"]


@dataclass(frozen=True)
class CoreSample:
    """Utilization of one core over the run (percent busy)."""

    core: int
    role: str  # 'app' | 'irq' | 'idle'
    busy_pct: float


@dataclass(frozen=True)
class MpstatReport:
    """Per-core view of one side of a run."""

    host_name: str
    side: str  # 'sender' | 'receiver'
    util: CpuUtil
    placement: CorePlacement
    active_flows: int

    def per_core(self) -> list[CoreSample]:
        """Distribute the aggregate utilization over the bound cores.

        App load concentrates on the first ``active_flows`` app cores
        (iperf3 threads); IRQ load spreads over the IRQ cores of the
        queues in use (one RSS queue per flow, capped by core count).
        """
        samples: list[CoreSample] = []
        app_cores = list(self.placement.app_cores)
        irq_cores = list(self.placement.irq_cores)
        n_app = min(self.active_flows, len(app_cores))
        n_irq = min(self.active_flows, len(irq_cores))
        # util.app_pct is per-flow-core average; spread accordingly.
        for idx, core in enumerate(app_cores):
            busy = self.util.app_pct if idx < n_app else 0.0
            samples.append(CoreSample(core, "app", min(busy, 100.0)))
        for idx, core in enumerate(irq_cores):
            busy = (
                self.util.irq_pct * self.active_flows / n_irq if idx < n_irq else 0.0
            )
            samples.append(CoreSample(core, "irq", min(busy, 100.0)))
        return samples

    @property
    def tx_rx_cores_pct(self) -> float:
        """The paper's "TX/RX Cores" aggregate (may exceed 100%)."""
        return self.util.total_pct

    def render(self) -> str:
        """mpstat-like text block."""
        lines = [
            f"mpstat ({self.host_name}, {self.side}): "
            f"TX/RX cores {self.tx_rx_cores_pct:.0f}%"
        ]
        for s in self.per_core():
            if s.busy_pct > 0.5:
                lines.append(f"  CPU {s.core:<3d} {s.role:<4s} {s.busy_pct:5.1f}% busy")
        return "\n".join(lines)
