"""Measurement tools: iperf3 front-end, mpstat, the test harness."""

from repro.tools.harness import HarnessConfig, HarnessResult, TestHarness
from repro.tools.iperf3 import Iperf3, Iperf3Options, Iperf3Result
from repro.tools.mpstat import CoreSample, MpstatReport

__all__ = [
    "Iperf3",
    "Iperf3Options",
    "Iperf3Result",
    "TestHarness",
    "HarnessConfig",
    "HarnessResult",
    "MpstatReport",
    "CoreSample",
]
