"""QUIC-like userspace protocol model.

The paper tunes *kernel* TCP, where pacing is a qdisc property; QUIC
moves the whole transport into userspace, where the pacer is a library
choice ("QUIC Steps", PAPERS.md).  This package models that stack on
top of the existing fluid simulator: connections reuse the batched
congestion-control steppers (:mod:`repro.tcp.cc.batch`), and a
pluggable :mod:`pacer <repro.quic.pacer>` supplies the release
schedule whose residual burstiness feeds the same loss model the TCP
flows use — so the burstiness/loss trade-offs are directly comparable
across the two stacks.

The :mod:`spin <repro.quic.spin>` module adds QUIC's passive latency
observability: a spin-bit observer that estimates RTT purely from
packet edges on the trace bus and reports its error against the
simulator's ground-truth RTT.
"""

from repro.quic.pacer import (
    PACER_KINDS,
    ChunkedPacer,
    IntervalPacer,
    NoPacer,
    TokenBucketPacer,
    make_pacer,
)
from repro.quic.spin import SpinBitObserver, SpinEstimate
from repro.quic.stack import QuicConnection, aggregate_quic, simulate_quic

__all__ = [
    "PACER_KINDS",
    "ChunkedPacer",
    "IntervalPacer",
    "NoPacer",
    "TokenBucketPacer",
    "make_pacer",
    "SpinBitObserver",
    "SpinEstimate",
    "QuicConnection",
    "aggregate_quic",
    "simulate_quic",
]
