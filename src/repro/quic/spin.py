"""Spin-bit RTT estimation from observed packet edges.

QUIC encrypts everything a passive observer used to read, so its one
concession to network operators is the **spin bit** ("three bits
suffice"): the client inverts one header bit once per RTT, and an
on-path observer recovers the RTT as the time between successive
*edges* (bit flips) — no sequence numbers, no timestamps, no
cooperation from the endpoints.

The simulator is a fluid model with no per-packet headers, so the
observer here works from the same observable an on-path tap would
have: the packet edges implied by the per-tick ``flow.tick`` stream.
Each flow spins on its ground-truth RTT; the observer sees each flip
through three impairments it cannot distinguish from signal:

* **sampling jitter** — the flip lands on whichever packet departs
  next, so every observed edge slips by a fraction of the
  inter-packet gap;
* **loss** — when the first packets of a spin period are lost, the
  phase change is only observable once a surviving packet arrives;
  the edge is detected late, stretching one sample and shrinking the
  next;
* **reordering** — a straggler from the previous period arriving
  after the flip re-creates the old phase for a moment, which the
  observer reads as an extra (spurious) edge, splitting one spin
  period into two short samples.

Determinism: the observer is a trace :class:`~repro.trace.bus.Sink`
fed by the driver's ``flow.tick`` events, which are byte-identical
across kernels, and it draws a fixed number of variates per edge from
its own RNG stream in event order — so its estimates (and the
``probe.spin`` replay) inherit the simulator's digest parity.

Observation is strictly read-only with respect to the simulation:
nothing the simulator computes depends on the observer, so golden
result digests are identical with or without it attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigurationError
from repro.trace.bus import Sink, TraceBus
from repro.trace.probes import spin_probe

__all__ = [
    "SpinBitObserver",
    "SpinEstimate",
    "replay_spin_probes",
]

#: Observed edges slip by up to this fraction of the RTT — the flip
#: surfaces on the next departing packet, not at the flip instant.
EDGE_JITTER_FRACTION = 0.04

#: A loss-delayed edge is detected up to this fraction of an RTT late
#: (the surviving packet that reveals the new phase).
LOSS_DELAY_FRACTION = 0.5

#: A spurious (reorder-induced) edge lands this window of the RTT
#: before the true edge, splitting the spin period.
REORDER_SPLIT_MIN = 0.15
REORDER_SPLIT_SPAN = 0.35


@dataclass(frozen=True)
class SpinEstimate:
    """One RTT sample recovered from a pair of consecutive edges."""

    flow: int
    #: Observed time of the later edge (simulated seconds).
    t: float
    #: The estimate: observed spacing of the edge pair.
    est_rtt: float
    #: Ground-truth RTT at the later edge.
    true_rtt: float

    @property
    def err_fraction(self) -> float:
        return abs(self.est_rtt - self.true_rtt) / self.true_rtt


@dataclass
class _FlowSpin:
    """Per-flow spin state: the flip schedule and observed edges."""

    next_flip: float
    #: (observed time, true rtt at the flip), in observation order.
    edges: list = field(default_factory=list)


class SpinBitObserver(Sink):
    """Passive RTT estimator over the ``flow.tick`` stream.

    Attach to a trace bus (``bus.add_sink(obs)``) around a
    :meth:`~repro.sim.flowsim.FlowSimulator.run`; afterwards
    :meth:`estimates` yields the recovered RTT samples and
    :meth:`error_stats` the aggregate estimator error.  ``loss_prob``
    and ``reorder_prob`` are the per-edge impairment rates of the
    observation channel.
    """

    categories = frozenset({"flow"})

    def __init__(
        self,
        rng: np.random.Generator,
        loss_prob: float = 0.0,
        reorder_prob: float = 0.0,
    ) -> None:
        if not 0.0 <= loss_prob < 1.0:
            raise ConfigurationError("loss_prob must be in [0, 1)")
        if not 0.0 <= reorder_prob < 1.0:
            raise ConfigurationError("reorder_prob must be in [0, 1)")
        self.rng = rng
        self.loss_prob = loss_prob
        self.reorder_prob = reorder_prob
        self._flows: dict[int, _FlowSpin] = {}

    # -- sink protocol ----------------------------------------------------

    def write(self, event) -> None:
        if event.name != "flow.tick":
            return
        args = event.args
        if args["delivered"] <= 0.0:
            return  # no packets on the wire, nothing to observe
        flow = int(args["flow"])
        rtt = float(args["rtt"])
        if rtt <= 0.0:
            return
        t = float(event.t)
        st = self._flows.get(flow)
        if st is None:
            # First delivering tick: the connection starts spinning now.
            st = _FlowSpin(next_flip=t)
            self._flows[flow] = st
        while t >= st.next_flip:
            self._observe_edge(st, st.next_flip, rtt)
            st.next_flip += rtt

    def _observe_edge(self, st: _FlowSpin, flip: float, rtt: float) -> None:
        """Record one flip as the observer would see it.

        Exactly five variates per edge, drawn in one call, whatever the
        impairment branches do — the stream position is a function of
        the edge count alone, never of earlier outcomes.
        """
        u = self.rng.random(5)
        observed = flip + u[0] * EDGE_JITTER_FRACTION * rtt
        if u[1] < self.loss_prob:
            observed += u[2] * LOSS_DELAY_FRACTION * rtt
        if u[3] < self.reorder_prob and st.edges:
            # A straggler re-creates the old phase just before the
            # flip: one extra edge, clipped to stay in order.
            split = flip - (REORDER_SPLIT_MIN + u[4] * REORDER_SPLIT_SPAN) * rtt
            prev_t = st.edges[-1][0]
            if split > prev_t:
                st.edges.append((split, rtt))
        if st.edges and observed <= st.edges[-1][0]:
            # Detection cannot precede an already-seen edge.
            observed = st.edges[-1][0] + 1e-9
        st.edges.append((observed, rtt))

    # -- results ----------------------------------------------------------

    def estimates(self) -> list[SpinEstimate]:
        """RTT samples from consecutive edge pairs, flow-major order."""
        out: list[SpinEstimate] = []
        for flow in sorted(self._flows):
            edges = self._flows[flow].edges
            for (t0, _r0), (t1, r1) in zip(edges, edges[1:]):
                out.append(
                    SpinEstimate(
                        flow=flow, t=t1, est_rtt=t1 - t0, true_rtt=r1
                    )
                )
        return out

    def error_stats(self) -> dict:
        """Aggregate estimator error over every recovered sample."""
        ests = self.estimates()
        if not ests:
            return {"median_err_pct": 0.0, "p90_err_pct": 0.0, "edges": 0}
        errs = np.array([e.err_fraction for e in ests]) * 100.0
        return {
            "median_err_pct": float(np.median(errs)),
            "p90_err_pct": float(np.quantile(errs, 0.9)),
            "edges": len(ests),
        }


def replay_spin_probes(bus: TraceBus, observer: SpinBitObserver) -> int:
    """Replay an observer's estimates as ``probe.spin`` events.

    Each sample is emitted at its observed edge time, giving exporters
    an estimated-vs-true RTT counter track per flow (the Perfetto
    converter maps ``probe.*`` events with a ``flow`` arg to counter
    tracks).  The bus clock is restored afterwards; returns the number
    of events emitted.  The schema validator does not require monotonic
    timestamps, so a post-run replay is well-formed.
    """
    if not bus.wants("probe"):
        return 0
    restore = bus.now
    emitted = 0
    try:
        for est in observer.estimates():
            bus.set_time(est.t)
            bus.emit(
                "probe",
                "probe.spin",
                **spin_probe(
                    est.flow,
                    est_rtt=est.est_rtt,
                    true_rtt=est.true_rtt,
                ),
            )
            emitted += 1
    finally:
        bus.set_time(restore)
    return emitted
