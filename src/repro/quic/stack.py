"""The QUIC-like connection model on top of the fluid simulator.

A :class:`QuicConnection` is the userspace analogue of one iperf3 TCP
stream: a congestion controller drawn from the *batched* registry
(:mod:`repro.tcp.cc.batch` — the same steppers, byte for byte, that
drive the TCP flows), a pluggable :mod:`pacer <repro.quic.pacer>`
supplying the release schedule, and UDP-GSO-style segmentation
offload on the send side.

There is deliberately no parallel QUIC engine: a connection lowers to
a :class:`~repro.sim.flowsim.FlowSpec` whose ``pacing`` is the pacer
object itself — the driver reads ``effective_rate()`` for the rate cap
and picks the pacer's ``release_slack`` up by duck typing
(:func:`repro.sim.lossmodel.flow_release_slack`).  Everything else —
queues, loss, CPU ceilings, RNG discipline — is the existing
simulator, which is what makes QUIC and TCP results directly
comparable and keeps the byte-parity guarantees (kernel choice, shard
count, job count) for free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError
from repro.quic.pacer import NoPacer
from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
from repro.sim.shard import FlowPopulation, ShardedFlowSimulator
from repro.tcp.cc.batch import is_batchable, template_kinds

__all__ = ["QuicConnection", "simulate_quic", "aggregate_quic"]


@dataclass(frozen=True)
class QuicConnection:
    """One QUIC connection: batched cc + pluggable pacer + UDP GSO."""

    cc: str = "cubic"
    pacer: object = field(default_factory=NoPacer)
    #: UDP GSO with zerocopy handoff (the high-throughput datapath of
    #: modern stacks).  Off = one copying sendmsg per datagram, which
    #: both costs send-side CPU and smears the unpaced bursts
    #: (:data:`~repro.sim.lossmodel.COPY_MODE_SLACK`).
    gso_zerocopy: bool = True
    label: str = ""

    def __post_init__(self) -> None:
        # The QUIC stack reuses the batched steppers; a scalar-state cc
        # (BBR's deques) has no array transcription to reuse.
        if not is_batchable(self.cc):
            raise ConfigurationError(
                f"quic connections reuse the batched cc steppers: cc must "
                f"be one of {template_kinds()}, not {self.cc!r}"
            )
        for attr in ("enabled", "effective_rate", "release_slack"):
            if not hasattr(self.pacer, attr):
                raise ConfigurationError(
                    f"pacer {self.pacer!r} does not implement {attr!r}; "
                    "use repro.quic.make_pacer"
                )

    def flow_spec(self) -> FlowSpec:
        """Lower to the driver's flow description."""
        return FlowSpec(
            pacing=self.pacer,
            zerocopy=self.gso_zerocopy,
            skip_rx_copy=self.gso_zerocopy,
            cc=self.cc,
            label=self.label or f"quic-{getattr(self.pacer, 'kind', '?')}",
        )


def simulate_quic(
    sender,
    receiver,
    path,
    connections,
    profile: SimProfile | None = None,
    rng=None,
) -> FlowSimulator:
    """A :class:`FlowSimulator` over QUIC connections.

    Returns the simulator rather than running it so callers can attach
    observers (the spin-bit estimator) to the ambient trace bus before
    calling ``run``.
    """
    conns = list(connections)
    if not conns:
        raise ConfigurationError("need at least one quic connection")
    return FlowSimulator(
        sender,
        receiver,
        path,
        [conn.flow_spec() for conn in conns],
        profile=profile,
        rng=rng,
    )


def aggregate_quic(
    sender,
    receiver,
    path,
    connection: QuicConnection,
    count: int,
    profile: SimProfile | None = None,
    rng=None,
    shards: int | None = None,
) -> ShardedFlowSimulator:
    """A sharded population of ``count`` identical QUIC connections.

    The sharded engine already requires template-batchable ccs — the
    same predicate :class:`QuicConnection` enforces — so any
    constructible connection shards.
    """
    if count < 1:
        raise ConfigurationError("need at least one quic connection")
    return ShardedFlowSimulator(
        sender,
        receiver,
        path,
        FlowPopulation.uniform(connection.flow_spec(), count),
        profile=profile,
        rng=rng,
        shards=shards,
    )
