"""Pluggable userspace pacers for the QUIC stack.

Kernel TCP gets its packet spacing from the qdisc; a QUIC
implementation brings its own pacer, and the implementations surveyed
in "QUIC Steps" differ exactly here: some send whenever cwnd allows
(no pacer), some run a token bucket, some space packets individually
on a timer (the fq discipline reimplemented in userspace), and some
release fixed-size chunks back to back.

Each pacer satisfies the driver-side pacing protocol the simulator
already consumes for :class:`~repro.tcp.pacing.PacingConfig` —
``enabled`` / ``effective_rate()`` / ``smooths_bursts`` — plus one
method of its own, ``release_slack(zerocopy)``: the residual
burstiness of its release schedule on the loss model's burst-slack
scale (0.0 = perfectly smooth, 1.0 = line-rate window dumps; see
:mod:`repro.sim.lossmodel`).  The driver picks that method up by duck
typing (:func:`repro.sim.lossmodel.flow_release_slack`), so the
simulator never imports this package.

The slack of the bursty-but-paced kinds follows one saturating curve
in the burst size ``b`` the schedule emits between idle gaps:
``b / (b + _HALF_SLACK_BYTES)`` — 0 as b -> 0 (per-packet release),
-> 1 as the bursts grow to window scale.  A token bucket's burst is
its bucket depth; a chunked sender's is its chunk size.  The curve
passes through the calibrated coarse-internal-pacing slack (~0.35,
:meth:`~repro.sim.lossmodel.BurstModel.slack_for`) at the default
bucket depth, anchoring the userspace pacers to the kernel model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.sim.lossmodel import COPY_MODE_SLACK

__all__ = [
    "PACER_KINDS",
    "NoPacer",
    "IntervalPacer",
    "TokenBucketPacer",
    "ChunkedPacer",
    "make_pacer",
]

#: Burst size (bytes) at which a paced-but-bursty release schedule is
#: halfway to fully bursty on the slack scale.
_HALF_SLACK_BYTES = 128 * 1024

#: Default token-bucket depth: 64 KiB ≈ 43 full-size packets, the
#: quicly/mvfst ballpark.  Slack 64/(64+128) = 1/3 — right at the
#: kernel model's coarse internal pacing.
DEFAULT_BUCKET_BYTES = 64 * 1024

#: Default chunk size of the chunked-burst pacer: one 256 KiB
#: sendmmsg batch, released back to back.
DEFAULT_CHUNK_BYTES = 256 * 1024


def _burst_slack(burst_bytes: float) -> float:
    """Saturating burst-size -> slack curve shared by the bursty pacers."""
    return burst_bytes / (burst_bytes + _HALF_SLACK_BYTES)


@dataclass(frozen=True)
class NoPacer:
    """No pacer: packets leave the moment cwnd opens.

    The userspace twin of an unpaced TCP socket — the release schedule
    is the congestion window itself, so the slack matches the kernel
    model's unpaced flow: line-rate trains for a zerocopy-style sender
    (UDP GSO handoff), the calibrated copy-mode slack otherwise.
    """

    kind = "none"

    @property
    def enabled(self) -> bool:
        return False

    def effective_rate(self) -> float | None:
        return None

    @property
    def smooths_bursts(self) -> bool:
        return False

    def release_slack(self, zerocopy: bool) -> float:
        return 1.0 if zerocopy else COPY_MODE_SLACK

    def describe(self) -> str:
        return "no pacer (cwnd-gated bursts)"


@dataclass(frozen=True)
class _RatedPacer:
    """Common plumbing of the pacers that enforce a byte rate."""

    rate_bytes_per_sec: float

    def __post_init__(self) -> None:
        if self.rate_bytes_per_sec <= 0:
            raise ConfigurationError("pacer rate must be positive")

    @property
    def enabled(self) -> bool:
        return True

    def effective_rate(self) -> float:
        return self.rate_bytes_per_sec


@dataclass(frozen=True)
class IntervalPacer(_RatedPacer):
    """fq-style interval pacing: one packet per ``packet / rate`` timer.

    The userspace reimplementation of the fq qdisc's per-flow spacing
    (quiche and ngtcp2 ship this shape).  Packets are released
    individually, so the schedule is as smooth as kernel fq pacing:
    slack 0, no trains.
    """

    kind = "interval"
    #: Release quantum (one UDP datagram).
    packet_bytes: float = 1500.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.packet_bytes <= 0:
            raise ConfigurationError("packet size must be positive")

    @property
    def smooths_bursts(self) -> bool:
        return True

    def release_interval(self) -> float:
        """Seconds between consecutive packet releases."""
        return self.packet_bytes / self.rate_bytes_per_sec

    def release_slack(self, zerocopy: bool) -> float:
        return 0.0

    def describe(self) -> str:
        return (
            f"interval pacer {units.fmt_gbps(self.rate_bytes_per_sec)} "
            f"({self.release_interval() * 1e6:.2f} us/pkt)"
        )


@dataclass(frozen=True)
class TokenBucketPacer(_RatedPacer):
    """Token bucket: average rate enforced, bursts up to the bucket.

    The bucket refills at the pacing rate; an idle connection
    accumulates up to ``bucket_bytes`` of credit and spends it at line
    rate.  The average rate holds — ``effective_rate`` is real — but
    the schedule carries bucket-sized trains, so the slack follows the
    shared saturating curve in the bucket depth.
    """

    kind = "token-bucket"
    bucket_bytes: float = float(DEFAULT_BUCKET_BYTES)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.bucket_bytes <= 0:
            raise ConfigurationError("bucket depth must be positive")

    @property
    def smooths_bursts(self) -> bool:
        return False

    def release_slack(self, zerocopy: bool) -> float:
        return _burst_slack(self.bucket_bytes)

    def describe(self) -> str:
        return (
            f"token bucket {units.fmt_gbps(self.rate_bytes_per_sec)} "
            f"(bucket {self.bucket_bytes / 1024:.0f} KiB)"
        )


@dataclass(frozen=True)
class ChunkedPacer(_RatedPacer):
    """Chunked bursts: whole sendmmsg batches at line rate, then sleep.

    The cheapest timer discipline — arm one timer per chunk instead of
    per packet — and the burstiest of the rate-enforcing pacers: every
    release is a chunk-sized line-rate train.
    """

    kind = "chunked"
    chunk_bytes: float = float(DEFAULT_CHUNK_BYTES)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.chunk_bytes <= 0:
            raise ConfigurationError("chunk size must be positive")

    @property
    def smooths_bursts(self) -> bool:
        return False

    def release_interval(self) -> float:
        """Seconds between consecutive chunk releases."""
        return self.chunk_bytes / self.rate_bytes_per_sec

    def release_slack(self, zerocopy: bool) -> float:
        return _burst_slack(self.chunk_bytes)

    def describe(self) -> str:
        return (
            f"chunked pacer {units.fmt_gbps(self.rate_bytes_per_sec)} "
            f"(chunk {self.chunk_bytes / 1024:.0f} KiB)"
        )


#: Pacer kinds in increasing release-schedule burstiness.
PACER_KINDS = ("interval", "token-bucket", "chunked", "none")

_RATED = {
    "interval": IntervalPacer,
    "token-bucket": TokenBucketPacer,
    "chunked": ChunkedPacer,
}


def make_pacer(kind: str, rate_gbps: float | None = None, **params):
    """Build a pacer by kind name (the experiment/CLI entry point).

    ``rate_gbps`` is required for every kind except ``"none"`` (which
    rejects one: an unpaced sender has no rate to enforce).  Extra
    keyword parameters go to the pacer class (``bucket_bytes``,
    ``chunk_bytes``, ``packet_bytes``).
    """
    if kind == "none":
        if rate_gbps is not None:
            raise ConfigurationError("the 'none' pacer takes no rate")
        return NoPacer(**params)
    cls = _RATED.get(kind)
    if cls is None:
        raise ConfigurationError(
            f"unknown pacer kind {kind!r}; have {list(PACER_KINDS)}"
        )
    if rate_gbps is None:
        raise ConfigurationError(f"pacer {kind!r} needs a rate")
    return cls(rate_bytes_per_sec=units.gbps(rate_gbps), **params)
