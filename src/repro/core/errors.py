"""Exception hierarchy for the ``repro`` package.

All library errors derive from :class:`ReproError` so callers can catch
everything from this package with a single ``except`` clause, while unit
tests can assert on the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A host, NIC, kernel, or testbed was configured inconsistently.

    Examples: requesting MSG_ZEROCOPY on a kernel older than 4.17,
    enabling BIG TCP together with zerocopy on a stock kernel, or binding
    IRQs to cores that do not exist on the host.
    """


class SimulationError(ReproError):
    """The simulation reached an invalid internal state.

    These indicate bugs in the simulator (negative queues, time moving
    backwards) rather than bad user input, and are accompanied by enough
    context to reproduce.
    """


class SanitizerViolation(SimulationError):
    """A runtime-sanitizer invariant failed (see :mod:`repro.sim.sanitizer`).

    Raised only when the sanitizer is enabled (``REPRO_SANITIZE=1`` or
    ``--sanitize``); it means the simulation produced a state that the
    package's documented invariants forbid: time moved backwards, a queue
    or rate went negative, or bytes were created/destroyed on a link.
    """


class RngStreamCollisionError(ConfigurationError):
    """Two distinct RNG stream labels hashed to the same entropy.

    ``RngFactory`` keys child seeds by ``crc32(label)``, so two different
    labels can (rarely) collide and silently produce *identical* random
    streams — correlated noise that would invert variance-sensitive
    experimental conclusions.  The factory raises this instead; the fix
    is to rename one of the labels.
    """


class FeatureUnavailableError(ConfigurationError):
    """A kernel/NIC feature was requested but is not available.

    Carries the feature name and the reason so tools like the iperf3
    front-end can print the same kind of diagnostics the real tools do.
    """

    def __init__(self, feature: str, reason: str):
        self.feature = feature
        self.reason = reason
        super().__init__(f"{feature} unavailable: {reason}")


class HarnessError(ReproError):
    """The test harness was asked to run an impossible test matrix."""


class RunnerError(ReproError):
    """The parallel experiment runner could not complete a campaign.

    Raised when a worker process keeps dying after the configured number
    of retry attempts, or when the runner is asked to schedule an
    experiment id the registry does not know.  Deterministic experiment
    errors (bad configuration, simulation bugs) are *not* wrapped — they
    propagate unchanged, exactly as a serial run would raise them.
    """
