"""Unit helpers used across the simulator.

Internally the simulator uses SI base units throughout:

* time        — seconds (float)
* data        — bytes (float; fractional bytes are fine in fluid models)
* rates       — bytes per second (float)
* CPU work    — cycles (float)
* frequencies — hertz (float)

Anything user-facing (CLI flags, reports, paper tables) speaks the units
the paper uses — Gbps, milliseconds, MB — and converts at the boundary
with the helpers in this module.  Keeping the conversion in one place
avoids the classic factor-of-8 / 1000-vs-1024 bugs that plague
networking code.

Conventions follow networking practice:

* ``Gbps``/``Mbps`` are decimal (1 Gbps = 1e9 bits/s).
* Buffer and memory sizes are binary (1 KiB = 1024 B) because the kernel
  sysctls the paper tunes (``optmem_max``, ``rmem_max``) are byte counts
  usually written as powers of two.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Data sizes (binary, matching kernel sysctl conventions)
# ---------------------------------------------------------------------------

KB = 1024.0
MB = 1024.0 * KB
GB = 1024.0 * MB

# Decimal variants, used for link rates and NIC marketing numbers.
K = 1e3
M = 1e6
G = 1e9

BITS_PER_BYTE = 8.0

# ---------------------------------------------------------------------------
# Time
# ---------------------------------------------------------------------------

USEC = 1e-6
MSEC = 1e-3
SEC = 1.0


def ms(value: float) -> float:
    """Milliseconds → seconds."""
    return value * MSEC


def us(value: float) -> float:
    """Microseconds → seconds."""
    return value * USEC


def seconds_to_ms(value: float) -> float:
    """Seconds → milliseconds."""
    return value / MSEC


# ---------------------------------------------------------------------------
# Rates
# ---------------------------------------------------------------------------


def gbps(value: float) -> float:
    """Gigabits per second → bytes per second."""
    return value * G / BITS_PER_BYTE


def mbps(value: float) -> float:
    """Megabits per second → bytes per second."""
    return value * M / BITS_PER_BYTE


def to_gbps(bytes_per_sec: float) -> float:
    """Bytes per second → gigabits per second."""
    return bytes_per_sec * BITS_PER_BYTE / G


def to_mbps(bytes_per_sec: float) -> float:
    """Bytes per second → megabits per second."""
    return bytes_per_sec * BITS_PER_BYTE / M


# ---------------------------------------------------------------------------
# Sizes
# ---------------------------------------------------------------------------


def kib(value: float) -> float:
    """KiB → bytes."""
    return value * KB


def mib(value: float) -> float:
    """MiB → bytes."""
    return value * MB


def to_mib(value: float) -> float:
    """Bytes → MiB."""
    return value / MB


def ghz(value: float) -> float:
    """GHz → Hz (cycles per second)."""
    return value * G


def bdp_bytes(rate_bytes_per_sec: float, rtt_sec: float) -> float:
    """Bandwidth-delay product in bytes.

    The BDP is the amount of data in flight on a path when a flow runs at
    ``rate`` over a round-trip time of ``rtt``.  It drives TCP window
    sizing, and — central to this paper — the number of MSG_ZEROCOPY
    completion notifications outstanding at any moment.
    """
    return rate_bytes_per_sec * rtt_sec


def fmt_gbps(bytes_per_sec: float, digits: int = 1) -> str:
    """Render a byte rate as e.g. ``'49.8 Gbps'`` for reports."""
    return f"{to_gbps(bytes_per_sec):.{digits}f} Gbps"


def fmt_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary suffix, e.g. ``'3.2 MiB'``."""
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{value:.0f} {suffix}"
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")
