"""Generator-based processes on top of the event engine.

A *process* is a Python generator that yields either

* a float — "sleep this many seconds", or
* a :class:`Signal` — "park until someone fires this signal".

This is the same coroutine style SimPy popularized, reimplemented here
minimally so the package has no external simulation dependency.  It is
used for the micro-level models (pause-frame handshakes, token-bucket
pacing release loops) and in tests as a concise way to script scenarios
against the engine.

Example::

    eng = Engine()

    def pinger(log):
        for _ in range(3):
            yield 0.5
            log.append(eng.now)

    Process(eng, pinger([]))
    eng.run()
"""

from __future__ import annotations

from typing import Generator, Optional, Union

from repro.core.engine import Engine, Event
from repro.core.errors import SimulationError

__all__ = ["Signal", "Process"]


class Signal:
    """A broadcast wake-up point processes can wait on.

    Firing a signal wakes every process currently waiting on it, passing
    an optional payload as the value of their ``yield`` expression.
    """

    def __init__(self, engine: Engine, name: str = "") -> None:
        self._engine = engine
        self.name = name
        self._waiters: list["Process"] = []
        self.fire_count = 0

    def wait(self, process: "Process") -> None:
        self._waiters.append(process)

    def fire(self, payload: object = None) -> None:
        """Wake all waiters at the current simulation time."""
        self.fire_count += 1
        waiters, self._waiters = self._waiters, []
        for proc in waiters:
            # Resume via the event queue so wake-ups interleave
            # deterministically with other same-time events.
            self._engine.call_in(0.0, lambda p=proc: p._resume(payload))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


YieldType = Union[float, int, Signal]


class Process:
    """Drives a generator as a simulation process."""

    def __init__(self, engine: Engine, gen: Generator[YieldType, object, None], name: str = ""):
        self._engine = engine
        self._gen = gen
        self.name = name
        self.finished = False
        self.result: Optional[object] = None
        self._pending_event: Optional[Event] = None
        # Kick off at the current time, after any already-queued events.
        self._pending_event = engine.call_in(0.0, lambda: self._resume(None))

    def _resume(self, value: object) -> None:
        if self.finished:
            return
        self._pending_event = None
        try:
            yielded = self._gen.send(value)
        except StopIteration as stop:
            self.finished = True
            self.result = stop.value
            return
        if isinstance(yielded, (int, float)):
            delay = float(yielded)
            if delay < 0:
                raise SimulationError(f"process {self.name!r} yielded negative delay {delay}")
            self._pending_event = self._engine.call_in(delay, lambda: self._resume(None))
        elif isinstance(yielded, Signal):
            yielded.wait(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def interrupt(self) -> None:
        """Stop the process: cancel its pending timer and close the generator."""
        if self.finished:
            return
        if self._pending_event is not None:
            self._pending_event.cancel()
            self._pending_event = None
        self._gen.close()
        self.finished = True
