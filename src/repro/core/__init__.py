"""Core simulation primitives: event engine, processes, units, RNG."""

from repro.core.engine import Engine, Event
from repro.core.errors import (
    ConfigurationError,
    FeatureUnavailableError,
    HarnessError,
    ReproError,
    SimulationError,
)
from repro.core.process import Process, Signal
from repro.core.rng import RngFactory

__all__ = [
    "Engine",
    "Event",
    "Process",
    "Signal",
    "RngFactory",
    "ReproError",
    "ConfigurationError",
    "SimulationError",
    "FeatureUnavailableError",
    "HarnessError",
]
