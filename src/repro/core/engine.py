"""Discrete-event simulation kernel.

A small, dependency-free event engine in the style of SimPy, sized for
the micro-level simulations in this package (pause-frame exchanges, NIC
ring dynamics, pacing release schedules) and for driving the tick-based
fluid flow simulator.

Design notes
------------
* Events are ``(time, priority, seq, callback)`` tuples in a binary heap.
  ``seq`` is a monotonically increasing tie-breaker so simultaneous
  events run in schedule order, which keeps runs deterministic.
* Time is a float in seconds.  The engine refuses to schedule into the
  past; that is always a bug in the caller.
* Callbacks are plain callables.  The generator-based process layer in
  :mod:`repro.core.process` builds coroutine-style processes on top.
* The engine is deliberately single-threaded: determinism and
  reproducibility matter more here than parallel speedup, and the hot
  paths of the package (the fluid simulator) are vectorized with numpy
  rather than parallelized.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.errors import SimulationError
from repro.trace.bus import active as trace_active

__all__ = ["Event", "Engine"]


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordered by (time, priority, seq)."""

    time: float
    priority: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when its time comes.

        Cancelling is O(1); the dead entry is discarded lazily when it
        reaches the top of the heap.
        """
        self.cancelled = True


class Engine:
    """The event loop.

    >>> eng = Engine()
    >>> fired = []
    >>> _ = eng.schedule(1.5, lambda: fired.append(eng.now))
    >>> eng.run()
    >>> fired
    [1.5]
    """

    def __init__(self, sanitize: bool | None = None) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._processed = 0
        # Imported at construction time, not module time: repro.sim
        # depends on repro.core, so the reverse import must stay lazy.
        from repro.sim.sanitizer import SimSanitizer, enabled

        want = enabled() if sanitize is None else sanitize
        self._sanitizer = SimSanitizer(context="engine") if want else None

    @property
    def sanitizer(self):
        """The attached :class:`~repro.sim.sanitizer.SimSanitizer`, or None."""
        return self._sanitizer

    # -- introspection ----------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    @property
    def processed(self) -> int:
        """Total events executed since construction."""
        return self._processed

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        when: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` to run at absolute time ``when``.

        Lower ``priority`` values run first among events at the same
        time.  Returns the :class:`Event`, which can be cancelled.
        """
        if math.isnan(when):
            raise SimulationError("cannot schedule at NaN time")
        if when < self._now:
            raise SimulationError(
                f"cannot schedule into the past: now={self._now!r}, when={when!r}"
            )
        event = Event(when, priority, next(self._seq), callback)
        heapq.heappush(self._heap, event)
        return event

    def call_in(
        self,
        delay: float,
        callback: Callable[[], None],
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.schedule(self._now + delay, callback, priority)

    # -- running -----------------------------------------------------------

    def step(self) -> bool:
        """Run the single next event.  Returns False when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if self._sanitizer is not None:
                self._sanitizer.check_time(event.time)
            bus = trace_active()
            if bus is not None:
                bus.set_time(event.time)
                bus.emit(
                    "engine",
                    "engine.dispatch",
                    seq=event.seq,
                    priority=event.priority,
                )
            self._now = event.time
            self._processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.

        With ``until`` set, the clock is advanced to exactly ``until``
        when the run stops there, so a following ``run`` call resumes
        seamlessly.  ``max_events`` is a guard against runaway schedules
        in tests.
        """
        if self._running:
            raise SimulationError("engine is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events} (runaway schedule?)"
                    )
                if not self.step():
                    break
                executed += 1
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._heap.clear()
        self._now = 0.0
        if self._sanitizer is not None:
            self._sanitizer.reset_clock()
