"""Deterministic random-number management.

Every stochastic element of the simulator (burst-loss draws, background
traffic fluctuation, run-to-run hardware jitter, irqbalance core
placement) draws from a :class:`numpy.random.Generator`.  To make every
experiment exactly reproducible while still giving each repetition and
each subsystem statistically independent streams, we derive child
generators from a single root seed using numpy's ``SeedSequence.spawn``
mechanism, keyed by a human-readable label.

Usage::

    rng = RngFactory(seed=42)
    loss_rng = rng.stream("lossmodel", rep=3)
    jitter_rng = rng.stream("hostjitter", rep=3)

Two factories built with the same seed produce identical streams for
identical labels, which is what lets ``pytest`` runs and benchmark runs
agree bit-for-bit.

Because labels enter the seed derivation through ``crc32``, two distinct
labels can in principle collide and silently share a stream.  The
factory tracks every entropy value it has handed out and raises
:class:`~repro.core.errors.RngStreamCollisionError` the moment a second
label maps onto one — correlated "independent" streams are exactly the
kind of bug that corrupts variance estimates without changing means.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import RngStreamCollisionError

__all__ = ["RngFactory", "label_entropy"]


def label_entropy(label: str) -> int:
    """Map a string label to a stable 32-bit integer.

    ``zlib.crc32`` is stable across Python versions and platforms, unlike
    the builtin ``hash``, which is salted per process.
    """
    return zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF


@dataclass
class RngFactory:
    """Derives independent, reproducible random streams from one seed."""

    seed: int = 0
    _cache: dict = field(default_factory=dict, repr=False)
    _stream_owner: dict = field(default_factory=dict, repr=False)
    _fork_owner: dict = field(default_factory=dict, repr=False)

    def _claim(self, owners: dict, label: str, kind: str) -> int:
        """Register ``label``'s entropy, raising on a crc32 collision."""
        entropy = label_entropy(label)
        owner = owners.setdefault(entropy, label)
        if owner != label:
            raise RngStreamCollisionError(
                f"{kind} labels {owner!r} and {label!r} both map to crc32 "
                f"entropy {entropy}; their random streams would be "
                f"identical — rename one of the labels"
            )
        return entropy

    def stream(self, label: str, rep: int = 0) -> np.random.Generator:
        """Return the generator for ``(label, rep)``.

        The same ``(seed, label, rep)`` triple always yields a generator
        producing the same sequence.  Generators are cached, so repeated
        calls return the *same object* — callers that need a fresh replay
        should build a new factory.

        Raises :class:`~repro.core.errors.RngStreamCollisionError` if
        ``label`` collides with a previously issued, different label.
        """
        key = (label, rep)
        if key not in self._cache:
            entropy = self._claim(self._stream_owner, label, "RNG stream")
            ss = np.random.SeedSequence(
                entropy=self.seed,
                spawn_key=(entropy, rep),
            )
            self._cache[key] = np.random.Generator(np.random.PCG64(ss))
        return self._cache[key]

    def fork(self, label: str) -> "RngFactory":
        """Return a new factory whose streams are disjoint from this one.

        Used to hand an entire subsystem (e.g. one simulated host) its own
        namespace of streams.  Fork labels are collision-checked the same
        way stream labels are: two different labels colliding would hand
        two subsystems the *same* child namespace.
        """
        entropy = self._claim(self._fork_owner, label, "RNG fork")
        return RngFactory(seed=(self.seed * 1_000_003 + entropy) % (2**63))
