"""Deterministic random-number management.

Every stochastic element of the simulator (burst-loss draws, background
traffic fluctuation, run-to-run hardware jitter, irqbalance core
placement) draws from a :class:`numpy.random.Generator`.  To make every
experiment exactly reproducible while still giving each repetition and
each subsystem statistically independent streams, we derive child
generators from a single root seed using numpy's ``SeedSequence.spawn``
mechanism, keyed by a human-readable label.

Usage::

    rng = RngFactory(seed=42)
    loss_rng = rng.stream("lossmodel", rep=3)
    jitter_rng = rng.stream("hostjitter", rep=3)

Two factories built with the same seed produce identical streams for
identical labels, which is what lets ``pytest`` runs and benchmark runs
agree bit-for-bit.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["RngFactory", "label_entropy"]


def label_entropy(label: str) -> int:
    """Map a string label to a stable 32-bit integer.

    ``zlib.crc32`` is stable across Python versions and platforms, unlike
    the builtin ``hash``, which is salted per process.
    """
    return zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF


@dataclass
class RngFactory:
    """Derives independent, reproducible random streams from one seed."""

    seed: int = 0
    _cache: dict = field(default_factory=dict, repr=False)

    def stream(self, label: str, rep: int = 0) -> np.random.Generator:
        """Return the generator for ``(label, rep)``.

        The same ``(seed, label, rep)`` triple always yields a generator
        producing the same sequence.  Generators are cached, so repeated
        calls return the *same object* — callers that need a fresh replay
        should build a new factory.
        """
        key = (label, rep)
        if key not in self._cache:
            ss = np.random.SeedSequence(
                entropy=self.seed,
                spawn_key=(label_entropy(label), rep),
            )
            self._cache[key] = np.random.Generator(np.random.PCG64(ss))
        return self._cache[key]

    def fork(self, label: str) -> "RngFactory":
        """Return a new factory whose streams are disjoint from this one.

        Used to hand an entire subsystem (e.g. one simulated host) its own
        namespace of streams.
        """
        return RngFactory(seed=(self.seed * 1_000_003 + label_entropy(label)) % (2**63))
