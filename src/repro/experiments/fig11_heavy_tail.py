"""Figure 11 variant: heavy-tailed background traffic on AmLight.

The paper attributes the unpaced-zerocopy shortfall at AmLight (absent
at the idle ESnet testbed) to ~16 Gbps of production cross-traffic and
its micro-bursts.  Fig. 11 proper models that aggregate as lognormal
fluctuation; real backbone traffic is heavy-tailed, so this variant
replays the same three configurations with the background drawn from a
Pareto-I distribution (:meth:`BackgroundTraffic.heavy_tailed`,
``alpha=1.6`` — finite mean, infinite variance) at the *same* mean
rate.  Elephant bursts several times the mean should widen the gap:
the unpaced-zerocopy configuration, already congestion-limited, loses
more than the paced one, while the LAN path (no cross-traffic) is
unchanged from Fig. 11.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.base import Experiment, ExperimentResult
from repro.net.background import BackgroundTraffic
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["Fig11HeavyTailAmLight"]

PATHS = ("lan", "wan25", "wan54", "wan104")
N_STREAMS = 8
TAIL_ALPHA = 1.6


class Fig11HeavyTailAmLight(Experiment):
    exp_id = "fig11-heavy"
    title = "8-flow results, AmLight, heavy-tailed (Pareto) background"
    paper_ref = "Figure 11 (heavy-tail background variant)"
    expectation = (
        "with Pareto cross-traffic at the same mean, zc unpaced falls "
        "further below paced on the WAN than under the lognormal model; "
        "lan (no background) matches fig11"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["path", "config", "gbps", "stdev", "retr"],
            notes=f"background tail alpha {TAIL_ALPHA}",
        )
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        cases = [
            ("default", Iperf3Options(parallel=N_STREAMS)),
            (
                "zc-unpaced",
                Iperf3Options(parallel=N_STREAMS, zerocopy="z", skip_rx_copy=True),
            ),
            (
                "zc+9G",
                Iperf3Options(
                    parallel=N_STREAMS, zerocopy="z", skip_rx_copy=True,
                    fq_rate_gbps=9,
                ),
            ),
        ]
        for path_name in PATHS:
            path = tb.path(path_name)
            if path.background.active:
                path = dataclasses.replace(
                    path,
                    background=BackgroundTraffic.heavy_tailed(
                        path.background.mean_bytes_per_sec, alpha=TAIL_ALPHA
                    ),
                )
            harness = TestHarness(snd, rcv, path, config)
            for label, opts in cases:
                res = harness.run(opts, label=f"{path_name}/heavy/{label}")
                result.add_row(
                    path=path_name,
                    config=label,
                    gbps=res.mean_gbps,
                    stdev=res.stdev_gbps,
                    retr=int(res.mean_retransmits),
                )
        return result
