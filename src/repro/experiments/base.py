"""Experiment framework: declarative reproductions of paper artifacts.

Every table and figure in the paper's evaluation section is one
:class:`Experiment` subclass.  An experiment

* documents what it reproduces (``exp_id``, ``paper_ref``, ``title``,
  and ``expectation`` — the paper's qualitative claim);
* builds its testbed/host/flow configurations;
* runs them through the :class:`~repro.tools.harness.TestHarness`;
* returns an :class:`ExperimentResult` — a list of labelled rows that
  renders as the same table/series the paper prints.

Experiments take a :class:`~repro.tools.harness.HarnessConfig` so the
same definition serves unit tests (quick), benchmarks (bench), and
full paper-fidelity runs (paper).
"""

from __future__ import annotations

import abc
import hashlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro.tools.harness import HarnessConfig

__all__ = ["Experiment", "ExperimentResult"]


def _jsonify(value):
    """Recursively convert a row value to plain JSON-serializable types.

    Experiment rows routinely carry numpy scalars (``np.float64`` means,
    ``np.int64`` counts); JSON round-trips must yield the *same* numbers
    a fresh in-process run produces, so numpy scalars collapse to their
    exact Python equivalents and containers are walked recursively.
    """
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


@dataclass
class ExperimentResult:
    """Outcome of one experiment: labelled rows + provenance."""

    exp_id: str
    title: str
    paper_ref: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: str = ""
    #: Optional pre-rendered markdown block (e.g. the cc-zoo
    #: who-wins-where heatmap) appended after the table by
    #: :meth:`render` and the markdown report.
    appendix: str = ""

    def add_row(self, **values) -> None:
        self.rows.append(values)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def row_by(self, **match) -> dict:
        """First row whose fields match all the given key=value pairs."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match} in {self.exp_id}")

    # -- serialization (result cache, golden tests, worker transport) -------

    def to_dict(self) -> dict:
        """Plain-JSON representation; inverse of :meth:`from_dict`.

        Row values pass through :func:`_jsonify` so numpy scalars become
        exact Python numbers — a result that went through JSON compares
        equal, value for value, to one that never left the process.
        """
        doc = {
            "exp_id": self.exp_id,
            "title": self.title,
            "paper_ref": self.paper_ref,
            "columns": list(self.columns),
            "rows": [_jsonify(row) for row in self.rows],
            "notes": self.notes,
        }
        # Only present when set: results without an appendix keep the
        # exact serialized form (and digest) they had before the field
        # existed.
        if self.appendix:
            doc["appendix"] = self.appendix
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "ExperimentResult":
        return cls(
            exp_id=doc["exp_id"],
            title=doc["title"],
            paper_ref=doc["paper_ref"],
            columns=list(doc["columns"]),
            rows=[dict(row) for row in doc["rows"]],
            notes=doc.get("notes", ""),
            appendix=doc.get("appendix", ""),
        )

    def digest(self) -> str:
        """SHA-256 over the canonical JSON form of this result.

        The characterization tests commit these digests under
        ``tests/golden/``; serial, parallel, and cache-hit runs must all
        reproduce them bit for bit.
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def render(self) -> str:
        """Text table in the style of the paper's tables."""
        widths = {
            c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in self.rows))
            if self.rows
            else len(str(c))
            for c in self.columns
        }
        sep = "-+-".join("-" * widths[c] for c in self.columns)
        lines = [
            f"{self.exp_id}: {self.title}   [{self.paper_ref}]",
            " | ".join(str(c).ljust(widths[c]) for c in self.columns),
            sep,
        ]
        for row in self.rows:
            lines.append(
                " | ".join(_fmt(row.get(c)).ljust(widths[c]) for c in self.columns)
            )
        if self.notes:
            lines.append(f"note: {self.notes}")
        if self.appendix:
            lines.append("")
            lines.append(self.appendix)
        return "\n".join(lines)


def _fmt(value) -> str:
    if value is None:
        return ""
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


class Experiment(abc.ABC):
    """Base class for paper-artifact reproductions."""

    #: Short id used by the registry and the benchmarks ('fig05', 'tab1'...).
    exp_id: str = ""
    #: Human title.
    title: str = ""
    #: Which paper artifact this regenerates ('Figure 5', 'Table II'...).
    paper_ref: str = ""
    #: The paper's qualitative claim, asserted (with tolerance) in tests.
    expectation: str = ""

    @abc.abstractmethod
    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        """Execute the experiment and return its rows."""

    def _result(self, columns: list[str], notes: str = "") -> ExperimentResult:
        return ExperimentResult(
            exp_id=self.exp_id,
            title=self.title,
            paper_ref=self.paper_ref,
            columns=columns,
            notes=notes,
        )
