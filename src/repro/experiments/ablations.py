"""Mechanism-attribution ablations.

The reproduction's headline shapes rest on a few modelled mechanisms;
each ablation removes exactly one and shows which paper observation
disappears with it — the simulation counterpart of a controlled
experiment on the real testbed.

* **cache footprint** (`abl-cache`) — zero the L3 cache penalty: the
  WAN-vs-LAN default sender gap (Figs. 5-8) collapses, demonstrating
  that the gap is a working-set effect, not a protocol one.
* **burst trains** (`abl-burst`) — give the AmLight switch an
  effectively infinite buffer: unpaced zerocopy stops losing and
  reaches receiver line, demonstrating that shallow-buffer train loss
  is what makes pacing mandatory (§II.D).
* **zerocopy fallback** (`abl-fallback`) — grant unlimited optmem: the
  Fig. 9 regimes flatten to the pacing cap at every RTT, demonstrating
  the optmem/notification mechanism drives that figure.
"""

from __future__ import annotations

import dataclasses

from repro.experiments.base import Experiment, ExperimentResult
from repro.host.sysctl import OPTMEM_1MB
from repro.net.switch import SwitchModel
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["AblationCache", "AblationBurst", "AblationFallback"]


class AblationCache(Experiment):
    exp_id = "abl-cache"
    title = "Ablation: remove the L3 working-set penalty"
    paper_ref = "mechanism behind Figs. 5-8 (WAN sender CPU)"
    expectation = (
        "with cache_penalty=0 the default WAN sender limit rises toward "
        "the LAN value; with it, the paper's ~35 vs ~52 Gbps gap appears"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["model", "path", "gbps"])
        for label, ablated in (("calibrated", False), ("no-cache-penalty", True)):
            tb = AmLightTestbed(kernel="6.8")
            snd, rcv = tb.host_pair()
            if ablated:
                cpu = snd.cpu.with_overrides(cache_penalty=0.0)
                snd = snd.set(cpu=cpu)
                rcv = rcv.set(cpu=cpu)
            for path_name in ("lan", "wan54"):
                harness = TestHarness(snd, rcv, tb.path(path_name), config)
                res = harness.run(Iperf3Options(), label=f"{label}/{path_name}")
                result.add_row(model=label, path=path_name, gbps=res.mean_gbps)
        return result


class AblationBurst(Experiment):
    exp_id = "abl-burst"
    title = "Ablation: infinite switch buffering (no train loss)"
    paper_ref = "mechanism behind §II.D / Fig. 11 (pacing necessity)"
    expectation = (
        "with a huge buffer, unpaced zerocopy reaches the receiver limit; "
        "with the real shallow Tofino buffer it falls short and churns"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["buffer", "gbps", "retr"])
        opts = Iperf3Options(zerocopy="z")
        for label, huge in (("tofino-16MB", False), ("infinite", True)):
            tb = AmLightTestbed(kernel="6.8")
            snd, rcv = tb.host_pair()
            path = tb.path("wan104")
            if huge:
                path = dataclasses.replace(
                    path, switch=SwitchModel("infinite", 1e12)
                )
            harness = TestHarness(snd, rcv, path, config)
            res = harness.run(opts, label=label)
            result.add_row(
                buffer=label,
                gbps=res.mean_gbps,
                retr=int(res.mean_retransmits),
            )
        return result


class AblationFallback(Experiment):
    exp_id = "abl-fallback"
    title = "Ablation: unlimited optmem (no zerocopy fallback)"
    paper_ref = "mechanism behind Fig. 9"
    expectation = (
        "with unlimited optmem every RTT reaches the pacing cap; the 1 MB "
        "case reproduces the paper's 104 ms shortfall"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["optmem", "path", "gbps", "snd_cpu_pct"])
        opts = Iperf3Options(zerocopy="z", fq_rate_gbps=50, skip_rx_copy=True)
        for label, om in (("1MB", OPTMEM_1MB), ("unlimited", 2**31)):
            tb = AmLightTestbed(kernel="6.5", optmem_max=om)
            snd, rcv = tb.host_pair()
            for path_name in ("wan25", "wan104"):
                harness = TestHarness(snd, rcv, tb.path(path_name), config)
                res = harness.run(opts, label=f"{label}/{path_name}")
                result.add_row(
                    optmem=label,
                    path=path_name,
                    gbps=res.mean_gbps,
                    snd_cpu_pct=res.sender_cpu_pct,
                )
        return result
