"""Tooling/tuning pitfalls the paper calls out, as ablation experiments.

* **fq-rate uint overflow** — pacing above ~34 Gbps with an unpatched
  iperf3 wraps the rate (needs PR#1728); the wrapped flow collapses.
* **iommu=pt** — without IOMMU passthrough the ESnet AMD hosts dropped
  from 181 to 80 Gbps on 8 streams.
* **qdisc choice** — ``--fq-rate`` under ``fq_codel`` falls back to
  coarse internal pacing, leaving residual burstiness on the WAN.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.host.sysctl import Sysctls
from repro.testbeds.amlight import AmLightTestbed
from repro.testbeds.esnet import ESnetTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["PacingOverflowPitfall", "IommuPitfall"]


class PacingOverflowPitfall(Experiment):
    exp_id = "pit-fqrate"
    title = "Pacing above 32 Gbps with and without iperf3 PR#1728"
    paper_ref = "Section V.A (pacing patch note)"
    expectation = (
        "patched tool paces at the requested 50 Gbps; unpatched tool "
        "wraps the rate modulo 2^32 B/s and throughput collapses"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["tool", "requested", "gbps"])
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        harness = TestHarness(snd, rcv, tb.path("wan54"), config)
        for patched in (True, False):
            opts = Iperf3Options(
                zerocopy="z", fq_rate_gbps=50, has_pr1728=patched
            )
            res = harness.run(opts, label="patched" if patched else "unpatched")
            result.add_row(
                tool="iperf3+PR1728" if patched else "iperf3 (uint fq-rate)",
                requested="50G",
                gbps=res.mean_gbps,
            )
        return result


class IommuPitfall(Experiment):
    exp_id = "pit-iommu"
    title = "iommu=pt vs translated DMA (ESnet AMD, 8 streams)"
    paper_ref = "Section III.D (iommu=pt note)"
    expectation = "passthrough roughly doubles aggregate throughput"

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["iommu", "gbps"])
        tb = ESnetTestbed(kernel="5.15")
        for passthrough in (True, False):
            snd, rcv = tb.host_pair()
            if not passthrough:
                snd = snd.set(tuning=snd.tuning.set(iommu_passthrough=False))
                rcv = rcv.set(tuning=rcv.tuning.set(iommu_passthrough=False))
            harness = TestHarness(snd, rcv, tb.path("lan"), config)
            res = harness.run(
                Iperf3Options(parallel=8),
                label="iommu=pt" if passthrough else "translated",
            )
            result.add_row(
                iommu="pt" if passthrough else "translated",
                gbps=res.mean_gbps,
            )
        return result
