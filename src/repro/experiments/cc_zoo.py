"""Congestion-control zoo: who wins where, beyond CUBIC vs BBR.

The paper compares CUBIC against BBRv1/v3 (Section IV.F) and leaves the
rest of the pluggable-CC landscape unexplored.  The kernels the paper
tunes still ship the classic high-BDP algorithms — HighSpeed (RFC
3649), H-TCP, Scalable — plus Westwood+, and TCPTuner-style parameter
sweeps of CUBIC itself; on R&E paths their response functions differ
exactly where the paper's tuning advice matters (high bandwidth-delay
product, shallow provider buffers, pacing).

Two campaigns:

* ``cc-zoo`` — the full cross product: every zoo algorithm on each
  AmLight path (lan / wan25 / wan54 / wan104), against the NoviFlow
  switch's deep (stock 16 MB) and a shallow (2 MB) shared buffer, with
  and without fq pacing, plus a 256-flow sharded aggregate per
  algorithm on wan54.  The result carries a "who wins where" heatmap
  (:attr:`~repro.experiments.base.ExperimentResult.appendix`) naming
  the throughput winner per cell.
* ``cc-tuner`` — a TCPTuner-style c x beta grid of
  :class:`~repro.tcp.cc.tunable.TunableCubic` on the lossy wan104 /
  shallow-buffer cell, reporting steady throughput, retransmits, and a
  convergence metric (the ratio of the first post-omit 1 s interval to
  the last — how much of the final rate the flow reaches early).  The
  TCP-friendly ``alpha`` knob is measurably inert in these cells: at
  R&E bandwidth-delay products CUBIC operates in its cubic region,
  where the Reno-tracking slope never binds — so the sweep exercises
  the two knobs that do act, the cubic scale ``c`` and the backoff
  ``beta``.

Both campaigns are ordinary registry experiments: ``repro run cc-zoo``
renders the table + heatmap, digests are byte-identical across
``REPRO_SIM_KERNEL=scalar|vector`` and any ``--shards`` split, and the
paper-shape tests assert the qualitative claims from the golden
campaign's rows.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.rng import RngFactory
from repro.experiments.base import Experiment, ExperimentResult
from repro.sim.flowsim import FlowSpec, SimProfile
from repro.sim.shard import FlowPopulation, ShardedFlowSimulator
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["CcZooCampaign", "CcTunerSweep"]

#: The zoo: every template-batchable algorithm, one canonical kind each
#: (plus a tuned CUBIC to put the TCPTuner knobs in the same table).
ZOO = (
    "cubic",
    "reno",
    "highspeed",
    "htcp",
    "scalable",
    "westwood",
    "tunable-cubic:alpha=1.5,beta=0.5",
)

PATHS = ("lan", "wan25", "wan54", "wan104")
SHALLOW_BUFFER_BYTES = 2 * 1024 * 1024
AGG_FLOWS = 256
AGG_PATH = "wan54"


def _with_buffer(path, buffer_name: str):
    if buffer_name == "deep":
        return path  # the testbed's stock switch (NoviFlow, 16 MB)
    return replace(
        path,
        switch=replace(path.switch, shared_buffer_bytes=SHALLOW_BUFFER_BYTES),
    )


def _heatmap(result: ExperimentResult) -> str:
    """Who-wins-where markdown: best mean gbps per (path, cell)."""
    cells = [
        ("deep", "unpaced"), ("deep", "paced"),
        ("shallow", "unpaced"), ("shallow", "paced"),
    ]
    lines = [
        "**Who wins where** (throughput winner per cell):",
        "",
        "| path | " + " | ".join(f"{b}/{p}" for b, p in cells) + " |",
        "|" + "|".join("---" for _ in range(len(cells) + 1)) + "|",
    ]
    for path in PATHS:
        winners = []
        for buffer_name, pacing in cells:
            rows = [
                r for r in result.rows
                if r["path"] == path and r["buffer"] == buffer_name
                and r["pacing"] == pacing
            ]
            # Deterministic winner: highest gbps, ties to the first
            # algorithm name alphabetically.
            best = sorted(rows, key=lambda r: (-r["gbps"], r["cc"]))[0]
            winners.append(f"{best['cc']} ({best['gbps']:.1f})")
        lines.append("| " + " | ".join([path] + winners) + " |")
    agg = sorted(
        (r for r in result.rows if r["pacing"] == f"agg{AGG_FLOWS}"),
        key=lambda r: (-r["gbps"], r["cc"]),
    )
    if agg:
        best = agg[0]
        lines += [
            "",
            f"{AGG_FLOWS}-flow aggregate on {AGG_PATH}: "
            f"**{best['cc']}** ({best['gbps']:.1f} Gbps) leads.",
        ]
    return "\n".join(lines)


class CcZooCampaign(Experiment):
    exp_id = "cc-zoo"
    title = "Congestion-control zoo: path x buffer x pacing cross product"
    paper_ref = "Section IV.F, extended beyond CUBIC/BBR"
    expectation = (
        "the high-BDP responses (scalable, highspeed, htcp) beat reno "
        "on every unpaced WAN cell and scalable tops every one of them "
        "outright; westwood is the most conservative algorithm in the "
        "zoo — fewest retransmits in the shallow-buffer cells and the "
        "256-flow aggregate — at an unpaced throughput cost that "
        "pacing mostly recovers; pacing narrows the spread between "
        "algorithms on deep buffers"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["cc", "path", "buffer", "pacing", "gbps", "retr", "stdev"],
            notes=(
                "4-stream harness cells plus a 256-flow sharded aggregate; "
                "digests are kernel- and --shards-invariant"
            ),
        )
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        for path_name in PATHS:
            for buffer_name in ("deep", "shallow"):
                path = _with_buffer(tb.path(path_name), buffer_name)
                harness = TestHarness(snd, rcv, path, config)
                for pacing in ("unpaced", "paced"):
                    for cc in ZOO:
                        opts = Iperf3Options(
                            congestion=cc,
                            parallel=4,
                            zerocopy="z",
                            skip_rx_copy=True,
                            fq_rate_gbps=19 if pacing == "paced" else None,
                        )
                        res = harness.run(
                            opts,
                            label=f"{cc}/{path_name}/{buffer_name}/{pacing}",
                        )
                        result.add_row(
                            cc=cc,
                            path=path_name,
                            buffer=buffer_name,
                            pacing=pacing,
                            gbps=res.mean_gbps,
                            retr=int(res.mean_retransmits),
                            stdev=res.stdev_gbps,
                        )
        self._aggregate_cells(config, tb, snd, rcv, result)
        result.appendix = _heatmap(result)
        return result

    def _aggregate_cells(self, config, tb, snd, rcv, result) -> None:
        """256 flows of each algorithm through the sharded engine."""
        rng = RngFactory(seed=config.seed)
        path = tb.path(AGG_PATH)
        profile = SimProfile(
            duration=config.duration, tick=config.tick, omit=config.omit
        )
        for cc in ZOO:
            sim = ShardedFlowSimulator(
                snd, rcv, path,
                FlowPopulation.uniform(FlowSpec(cc=cc), AGG_FLOWS),
                profile=profile,
                rng=rng.fork(f"cc-zoo:agg:{cc}"),
            )
            gbps = []
            retr = []
            for rep in range(config.repetitions):
                run = sim.run(rep)
                gbps.append(run.total_gbps)
                window = run.duration - run.omit
                retr.append(run.retransmit_segments / window)
            result.add_row(
                cc=cc,
                path=AGG_PATH,
                buffer="deep",
                pacing=f"agg{AGG_FLOWS}",
                gbps=float(np.mean(gbps)),
                retr=int(np.mean(retr)),
                stdev=float(np.std(gbps)),
            )


#: TCPTuner grid: c scales the cubic growth term, beta the backoff.
#: Stock CUBIC is (c=0.4, beta=0.7).  The TCP-friendly alpha knob is
#: deliberately absent — at these BDPs the cubic region dominates and
#: alpha moves throughput by under a part per million (asserted in the
#: paper-shape tests).
TUNER_CS = (0.2, 0.4, 0.8, 1.6)
TUNER_BETAS = (0.3, 0.7, 0.9)
TUNER_PATH = "wan104"


class CcTunerSweep(Experiment):
    exp_id = "cc-tuner"
    title = "TCPTuner-style CUBIC parameter sweep (c x beta, wan104 shallow)"
    paper_ref = "Section IV.F; TCPTuner (Miller & Hsiao)"
    expectation = (
        "on the lossy shallow-buffer long path, gentler backoff (higher "
        "beta) trades retransmits for throughput at every c, steeply at "
        "beta=0.9; with stock-or-gentler backoff raising the cubic "
        "scale c lifts throughput, and deep backoff (beta=0.3) leaves "
        "low-c flows still climbing at the end of the run — a residual "
        "ramp that raising c repairs; the stock (0.4, 0.7) point is not "
        "the top of the grid; the TCP-friendly alpha knob is inert at "
        "these BDPs"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["c", "beta", "gbps", "retr", "ramp"],
            notes=(
                "4 streams, wan104, 2 MB shallow buffer; ramp = first "
                "post-omit 1 s interval over the last (>= 1.0 means the "
                "flow converged within the first interval)"
            ),
        )
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        path = _with_buffer(tb.path(TUNER_PATH), "shallow")
        harness = TestHarness(snd, rcv, path, config)
        for c in TUNER_CS:
            for beta in TUNER_BETAS:
                kind = f"tunable-cubic:c={c},beta={beta}"
                res = harness.run(
                    Iperf3Options(congestion=kind, parallel=4),
                    label=f"tuner/c{c}/b{beta}",
                )
                ramps = []
                for r in res.runs:
                    marks = r.run.interval_goodput
                    if marks.size >= 2 and marks[-1] > 0:
                        ramps.append(float(marks[0] / marks[-1]))
                result.add_row(
                    c=c,
                    beta=beta,
                    gbps=res.mean_gbps,
                    retr=int(res.mean_retransmits),
                    ramp=float(np.mean(ramps)) if ramps else 1.0,
                )
        return result
