"""Future-work extensions beyond the paper's measurements.

The paper's Section V.C sketches the next steps; these experiments run
them in the simulator:

* **400G scalability** (`ext-400g`) — "we would expect that 20 flows
  paced at 20 Gbps would be possible, and possibly 10x40G" on 400G
  gear.  We scale the ESnet hosts to 400G NICs and test exactly those
  matrices, reporting where new bottlenecks (host aggregate ceilings)
  appear.

* **optmem auto-sizing** (`ext-optmem`) — validates the advisor's
  BDP-based optmem recommendation across every AmLight path: the
  recommended value must reach the pacing rate wherever a 16 MB
  upper-bound "oracle" value does.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.host.advisor import recommended_optmem
from repro.testbeds.amlight import AMLIGHT_RTTS_MS, AmLightTestbed
from repro.testbeds.esnet import ESnetTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["Ext400G", "ExtOptmemAutosize"]


class Ext400G(Experiment):
    exp_id = "ext-400g"
    title = "Parallel-stream scaling projection on 400G NICs"
    paper_ref = "Section V.C (future work)"
    expectation = (
        "20 x 20G is achievable; 10 x 40G approaches the host aggregate "
        "ceiling and loses efficiency"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["matrix", "attempted", "gbps", "stdev", "retr"],
            notes="ESnet AMD hosts with NICs scaled to 400G, kernel 6.8, "
            "zerocopy + skip-rx-copy as in the paper's tuned protocol",
        )
        tb = ESnetTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        snd = snd.set(nic=snd.nic.with_speed_gbps(400))
        rcv = rcv.set(nic=rcv.nic.with_speed_gbps(400))
        # Scale the path to 400G as well (new optics end to end).
        path = tb.path("lan")
        from dataclasses import replace

        path = replace(path, bottleneck=replace(
            path.bottleneck, rate_bytes_per_sec=400e9 / 8
        ))
        harness = TestHarness(snd, rcv, path, config)
        for streams, pace in ((8, 25.0), (20, 20.0), (10, 40.0)):
            opts = Iperf3Options(
                parallel=streams, fq_rate_gbps=pace,
                zerocopy="z", skip_rx_copy=True,
            )
            res = harness.run(opts, label=f"{streams}x{pace:g}G")
            result.add_row(
                matrix=f"{streams} x {pace:g}G",
                attempted=streams * pace,
                gbps=res.mean_gbps,
                stdev=res.stdev_gbps,
                retr=int(res.mean_retransmits),
            )
        return result


class ExtOptmemAutosize(Experiment):
    exp_id = "ext-optmem"
    title = "BDP-sized optmem_max recommendation vs oracle"
    paper_ref = "Section V.A (recommendation), Fig. 9 (mechanism)"
    expectation = (
        "the advisor's recommended optmem reaches the pacing rate on "
        "every path, matching a 16 MB oracle"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["path", "recommended_bytes", "gbps", "oracle_gbps"])
        opts = Iperf3Options(zerocopy="z", fq_rate_gbps=50, skip_rx_copy=True)
        for path_name, rtt_ms in AMLIGHT_RTTS_MS.items():
            rec = recommended_optmem(rate_gbps=50, rtt_sec=rtt_ms / 1e3)
            tb_rec = AmLightTestbed(kernel="6.5", optmem_max=rec)
            tb_oracle = AmLightTestbed(kernel="6.5", optmem_max=16 * 1024 * 1024)
            snd, rcv = tb_rec.host_pair()
            res = TestHarness(snd, rcv, tb_rec.path(path_name), config).run(
                opts, label=f"rec/{path_name}"
            )
            snd_o, rcv_o = tb_oracle.host_pair()
            oracle = TestHarness(snd_o, rcv_o, tb_oracle.path(path_name), config).run(
                opts, label=f"oracle/{path_name}"
            )
            result.add_row(
                path=path_name,
                recommended_bytes=rec,
                gbps=res.mean_gbps,
                oracle_gbps=oracle.mean_gbps,
            )
        return result
