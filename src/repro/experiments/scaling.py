"""Flow-count scaling campaign: fairness and retransmit rate vs N.

The paper's multi-stream experiments stop at 8 parallel iperf3 flows —
the regime a pair of DTN hosts can drive.  R&E backbone links carry
*aggregates* of thousands to hundreds of thousands of flows, and the
questions that matter at that scale are different: does max-min
fairness survive the flow count, and how fast does the per-second
retransmit rate grow as each flow's bandwidth share (and hence cwnd)
shrinks toward the loss-recovery floor?

This campaign sweeps ``N in (16, 1000, 10000, 100000)`` identical cubic
flows over the four AmLight RTTs through the sharded simulator
(:class:`~repro.sim.shard.ShardedFlowSimulator`), reporting Jain's
fairness index and the post-omit retransmit rate.  The shard count is
deliberately *not* pinned: results are byte-identical for any
``--shards`` selection (the shard-parity invariant), which is exactly
what the parity CI job exercises by diffing this experiment's digest
across ``--shards 1/2/4``.

Per-cell cost control (all deterministic functions of the config, so
digests stay well defined): the measured window and the warm-up omit
both shrink by ``min(1, 1000 / N)`` with ``8 * tick`` / ``16 * tick``
floors — statistics averaged over 100k flows converge in far less
wall-clock than an 8-flow throughput mean, and the aggregate reaches
its operating point in a few ticks when each flow's share is tiny —
and cells above 1000 flows run a single repetition.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import RngFactory
from repro.experiments.base import Experiment, ExperimentResult
from repro.sim.flowsim import FlowSpec, SimProfile
from repro.sim.shard import FlowPopulation, ShardedFlowSimulator
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig

__all__ = ["FlowCountScaling"]

PATHS = ("lan", "wan25", "wan54", "wan104")
FLOW_COUNTS = (16, 1000, 10000, 100000)


def _jain_index(goodput: np.ndarray) -> float:
    """Jain's fairness index: (sum x)^2 / (n * sum x^2), 1.0 = equal."""
    total = float(goodput.sum())
    squares = float(np.square(goodput).sum())
    if squares <= 0.0:
        return 1.0
    return total * total / (goodput.size * squares)


def _cell_profile(config: HarnessConfig, n_flows: int) -> SimProfile:
    scale = min(1.0, 1000.0 / n_flows)
    window = max((config.duration - config.omit) * scale, 8.0 * config.tick)
    omit = max(config.omit * scale, 16.0 * config.tick)
    return SimProfile(duration=omit + window, tick=config.tick, omit=omit)


class FlowCountScaling(Experiment):
    exp_id = "scale-flows"
    title = "Fairness and retransmit rate vs flow count (sharded, AmLight)"
    paper_ref = "Section 5 multi-stream results, extrapolated in N"
    expectation = (
        "max-min fairness stays near 1 at every N; retransmit rate climbs "
        "with N as per-flow shares shrink, and falls with RTT at high N "
        "(long paths slow the cwnd overshoot-recovery cadence)"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["path", "n_flows", "gbps", "fairness", "retr_rate"],
            notes="sharded campaign; digest is invariant to --shards",
        )
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        rng = RngFactory(seed=config.seed)
        for path_name in PATHS:
            path = tb.path(path_name)
            for n_flows in FLOW_COUNTS:
                profile = _cell_profile(config, n_flows)
                reps = config.repetitions if n_flows <= 1000 else 1
                sim = ShardedFlowSimulator(
                    snd,
                    rcv,
                    path,
                    FlowPopulation.uniform(FlowSpec(), n_flows),
                    profile=profile,
                    rng=rng.fork(f"scale:{path_name}:{n_flows}"),
                )
                gbps = []
                fairness = []
                retr_rate = []
                for rep in range(reps):
                    run = sim.run(rep)
                    gbps.append(run.total_gbps)
                    fairness.append(_jain_index(run.per_flow_goodput))
                    window = run.duration - run.omit
                    retr_rate.append(run.retransmit_segments / window)
                result.add_row(
                    path=path_name,
                    n_flows=n_flows,
                    gbps=float(np.mean(gbps)),
                    fairness=float(np.mean(fairness)),
                    retr_rate=float(np.mean(retr_rate)),
                )
        return result
