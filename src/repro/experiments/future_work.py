"""Section V.C previews: hardware GRO and BIG TCP + MSG_ZEROCOPY.

Two forward-looking results the paper reports preliminary numbers for:

* **Hardware GRO (SHAMPO)** — ConnectX-7 receivers on Linux 6.11 with
  header/data split.  Paper: +33%-class gains at 9K MTU (62 vs 65 Gbps
  in their note) and a dramatic +160% at 1500-byte MTU (24 -> 62 Gbps),
  because HW GRO removes the per-wire-packet CPU cost that dominates at
  small MTU.

* **BIG TCP + MSG_ZEROCOPY combined** — requires a custom kernel built
  with ``CONFIG_MAX_SKB_FRAGS=45`` (plus an mlx5 driver patch); the
  paper measured up to +65% but found results inconsistent.  We run the
  combination on a custom-frags kernel and also demonstrate that the
  stock kernel *refuses* the combination.
"""

from __future__ import annotations

from repro.core.errors import FeatureUnavailableError
from repro.experiments.base import Experiment, ExperimentResult
from repro.host.kernel import KERNELS
from repro.host.sysctl import OPTMEM_BEST_WAN
from repro.testbeds.amlight import AmLightTestbed
from repro.testbeds.esnet import ESnetTestbed
from repro.tcp.bigtcp import BigTcpConfig
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["FutureHwGro", "FutureBigTcpZerocopy"]


class FutureHwGro(Experiment):
    exp_id = "fw-hwgro"
    title = "Hardware GRO on ConnectX-7 receivers (kernel 6.11)"
    paper_ref = "Section V.C"
    expectation = (
        "modest single-stream gain at 9K MTU; large (>2x) gain at 1500B "
        "MTU where per-packet costs dominate"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["mtu", "kernel", "hw_gro", "gbps"],
            notes="Intel hosts with ConnectX-7 receivers, as in the paper's "
            "preview (their 62-vs-24 Gbps 1500-byte result).",
        )
        from repro.testbeds.profiles import paper_host
        from repro.testbeds.esnet import ESnetTestbed

        for mtu in (9000, 1500):
            for kernel, hw_label in (("6.8", "off"), ("6.11", "on")):
                snd = paper_host("snd", cpu="intel", nic="cx7", kernel=kernel, mtu=mtu)
                rcv = paper_host("rcv", cpu="intel", nic="cx7", kernel=kernel, mtu=mtu)
                path = ESnetTestbed(kernel=kernel).path("lan")
                harness = TestHarness(snd, rcv, path, config)
                res = harness.run(Iperf3Options(), label=f"mtu{mtu}/{kernel}")
                result.add_row(
                    mtu=mtu,
                    kernel=kernel,
                    hw_gro=hw_label,
                    gbps=res.mean_gbps,
                )
        return result


class FutureBigTcpZerocopy(Experiment):
    exp_id = "fw-combo"
    title = "BIG TCP + MSG_ZEROCOPY on a MAX_SKB_FRAGS=45 kernel"
    paper_ref = "Section V.C"
    expectation = (
        "stock kernel refuses the combination; custom kernel allows it "
        "and improves WAN throughput beyond zc+pacing alone"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["kernel", "config", "gbps", "note"])
        # 1. Stock kernel: the combination must be rejected.
        tb_stock = AmLightTestbed(
            kernel="6.8", big_tcp_size=BigTcpConfig.paper().gso_size,
            optmem_max=OPTMEM_BEST_WAN,
        )
        snd, rcv = tb_stock.host_pair()
        refused = False
        try:
            TestHarness(snd, rcv, tb_stock.path("wan54"), config).run(
                Iperf3Options(zerocopy="z", fq_rate_gbps=50)
            )
        except FeatureUnavailableError:
            refused = True
        result.add_row(
            kernel="6.8 stock",
            config="bigtcp+zc",
            gbps=0.0,
            note="refused (MAX_SKB_FRAGS=17)" if refused else "UNEXPECTEDLY RAN",
        )

        # 2. Custom kernel: zc+pace baseline vs bigtcp+zc+pace.
        custom = KERNELS["6.8"].with_custom_skb_frags()
        tb_zc = AmLightTestbed(kernel="6.8", optmem_max=OPTMEM_BEST_WAN)
        snd_b, rcv_b = tb_zc.host_pair()
        snd_b = snd_b.set(kernel=custom)
        rcv_b = rcv_b.set(kernel=custom)
        harness = TestHarness(snd_b, rcv_b, tb_zc.path("wan54"), config)
        base = harness.run(
            Iperf3Options(zerocopy="z", fq_rate_gbps=50, skip_rx_copy=True),
            label="zc+pace",
        )
        result.add_row(
            kernel="6.8 frags=45", config="zc+pace50", gbps=base.mean_gbps, note=""
        )

        tb_combo = AmLightTestbed(
            kernel="6.8", big_tcp_size=BigTcpConfig.paper().gso_size,
            optmem_max=OPTMEM_BEST_WAN,
        )
        snd_c, rcv_c = tb_combo.host_pair()
        snd_c = snd_c.set(kernel=custom)
        rcv_c = rcv_c.set(kernel=custom)
        harness_c = TestHarness(snd_c, rcv_c, tb_combo.path("wan54"), config)
        combo = harness_c.run(
            Iperf3Options(zerocopy="z", fq_rate_gbps=65, skip_rx_copy=True),
            label="bigtcp+zc+pace",
        )
        result.add_row(
            kernel="6.8 frags=45",
            config="bigtcp+zc+pace65",
            gbps=combo.mean_gbps,
            note="paper: up to +65%, inconsistent",
        )
        return result
