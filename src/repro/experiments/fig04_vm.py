"""Figure 4: bare metal vs tuned VM (AmLight, Debian 11 / kernel 5.10).

The paper validates its virtual testing environment by showing that a
VM with PCI passthrough + pinned vCPUs performs within one standard
deviation of bare metal for both default and zerocopy+pacing single
streams at every RTT.  We reproduce that, and add the untuned-VM
configuration as an ablation showing *why* the tuning matters.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["Fig04VmValidation"]

PATHS = ("lan", "wan25", "wan54", "wan104")


class Fig04VmValidation(Experiment):
    exp_id = "fig04"
    title = "Baremetal vs VM, single stream (Intel, kernel 5.10)"
    paper_ref = "Figure 4"
    expectation = (
        "tuned VM within ~5% of bare metal in every configuration; "
        "untuned VM far below both"
    )

    #: VM modes shown; 'untuned' is our added ablation.
    vm_modes = ("baremetal", "tuned", "untuned")

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["path", "vm_mode", "test", "gbps", "stdev"],
            notes="'tuned' = PCI passthrough + pinned vCPUs (the paper's VM); "
            "'untuned' is an added ablation.",
        )
        for vm_mode in self.vm_modes:
            tb = AmLightTestbed(kernel="5.10", vm_mode=vm_mode)
            snd, rcv = tb.host_pair()
            for path_name in PATHS:
                harness = TestHarness(snd, rcv, tb.path(path_name), config)
                for test, opts in (
                    ("default", Iperf3Options()),
                    ("zc+pace50", Iperf3Options(zerocopy="z", fq_rate_gbps=50)),
                ):
                    res = harness.run(opts, label=f"{vm_mode}/{path_name}/{test}")
                    result.add_row(
                        path=path_name,
                        vm_mode=vm_mode,
                        test=test,
                        gbps=res.mean_gbps,
                        stdev=res.stdev_gbps,
                    )
        return result
