"""Figure 6: single-stream results at ESnet (AMD hosts, kernel 6.8).

Same protocol as Fig. 5 but on the AMD/ConnectX-7 testbed with its
single WAN loop, pacing at 40 Gbps (the ESnet-appropriate value).
Paper claims reproduced: AMD hosts are slower than Intel (42 vs
55 Gbps LAN) despite higher clocks; default WAN is ~40% below LAN;
zerocopy+pacing recovers WAN to LAN level (+~85%).
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.testbeds.esnet import ESnetTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["Fig06SingleStreamESnet"]

PATHS = ("lan", "wan")
PACE_GBPS = 40.0


class Fig06SingleStreamESnet(Experiment):
    exp_id = "fig06"
    title = "Single-stream throughput, ESnet (AMD, kernel 6.8)"
    paper_ref = "Figure 6"
    expectation = (
        "default WAN ~40-50% below LAN; zc+pace40 matches LAN (~+85% over "
        "default WAN); AMD LAN below Intel LAN"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["path", "config", "gbps", "stdev", "retr"])
        tb = ESnetTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        cases = [
            ("default", Iperf3Options()),
            ("zerocopy", Iperf3Options(zerocopy="z")),
            ("zc+pace40", Iperf3Options(zerocopy="z", fq_rate_gbps=PACE_GBPS)),
        ]
        for path_name in PATHS:
            harness = TestHarness(snd, rcv, tb.path(path_name), config)
            for label, opts in cases:
                res = harness.run(opts, label=f"{path_name}/{label}")
                result.add_row(
                    path=path_name,
                    config=label,
                    gbps=res.mean_gbps,
                    stdev=res.stdev_gbps,
                    retr=int(res.mean_retransmits),
                )
        return result
