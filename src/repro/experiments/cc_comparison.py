"""Section IV.F: congestion-control comparison (CUBIC vs BBRv1/v3).

The paper ran CUBIC and BBR side by side and summarized without a
figure: single-stream throughput essentially identical on the loss-free
testbeds, more retransmits under BBR (especially v1), faster WAN
ramp-up for BBR, and parallel BBR flows needing pacing to avoid
interfering with each other.  This experiment regenerates those four
observations as a table.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["CcComparison"]

ALGOS = ("cubic", "bbr1", "bbr3")


class CcComparison(Experiment):
    exp_id = "cc"
    title = "Congestion control comparison (CUBIC vs BBRv1/BBRv3)"
    paper_ref = "Section IV.F"
    expectation = (
        "single-stream throughput within a few percent across algorithms "
        "on a clean path; BBRv1 retransmits most; parallel BBR benefits "
        "from pacing"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["algo", "scenario", "gbps", "retr", "stdev"]
        )
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        wan = tb.path("wan54")
        harness = TestHarness(snd, rcv, wan, config)
        for algo in ALGOS:
            single = harness.run(
                Iperf3Options(congestion=algo), label=f"{algo}/single"
            )
            result.add_row(
                algo=algo,
                scenario="single-wan54",
                gbps=single.mean_gbps,
                retr=int(single.mean_retransmits),
                stdev=single.stdev_gbps,
            )
            par_unpaced = harness.run(
                Iperf3Options(congestion=algo, parallel=8, zerocopy="z",
                              skip_rx_copy=True),
                label=f"{algo}/8flows-unpaced",
            )
            result.add_row(
                algo=algo,
                scenario="8flows-unpaced",
                gbps=par_unpaced.mean_gbps,
                retr=int(par_unpaced.mean_retransmits),
                stdev=par_unpaced.stdev_gbps,
            )
            par_paced = harness.run(
                Iperf3Options(congestion=algo, parallel=8, zerocopy="z",
                              skip_rx_copy=True, fq_rate_gbps=9),
                label=f"{algo}/8flows-9G",
            )
            result.add_row(
                algo=algo,
                scenario="8flows-9G",
                gbps=par_paced.mean_gbps,
                retr=int(par_paced.mean_retransmits),
                stdev=par_paced.stdev_gbps,
            )
        return result
