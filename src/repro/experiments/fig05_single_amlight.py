"""Figure 5: single-stream results at AmLight (Intel hosts, kernel 6.8).

Four configurations across LAN / 25 / 54 / 104 ms:

* default iperf3 flags;
* ``--zerocopy=z`` alone;
* ``--zerocopy=z --fq-rate 50G`` (the paper's headline +35%);
* BIG TCP with gso/gro_ipv4_max_size = 150 KB (up to +16%).

Paper claims reproduced: zerocopy alone does not beat default+pacing —
it is the zerocopy+pacing *combination* that wins on the WAN; BIG TCP
gives a smaller, uniform improvement; default WAN throughput is
sender-CPU-bound and nearly RTT-flat.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.tcp.bigtcp import PAPER_BIG_TCP_SIZE
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["Fig05SingleStreamAmLight"]

PATHS = ("lan", "wan25", "wan54", "wan104")
PACE_GBPS = 50.0  # "maximum rate that avoids excessive loss" at AmLight


class Fig05SingleStreamAmLight(Experiment):
    exp_id = "fig05"
    title = "Single-stream throughput, AmLight (Intel, kernel 6.8)"
    paper_ref = "Figure 5"
    expectation = (
        "zc+pace50 ~= 50 Gbps on WAN (up to ~35-45% over default); "
        "zerocopy alone no better than pacing combo; BIG TCP +~10-16%"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["path", "config", "gbps", "stdev", "retr"])

        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        tb_big = AmLightTestbed(kernel="6.8", big_tcp_size=PAPER_BIG_TCP_SIZE)
        snd_b, rcv_b = tb_big.host_pair()

        cases = [
            ("default", Iperf3Options(), (snd, rcv, tb)),
            ("zerocopy", Iperf3Options(zerocopy="z"), (snd, rcv, tb)),
            (
                "zc+pace50",
                Iperf3Options(zerocopy="z", fq_rate_gbps=PACE_GBPS),
                (snd, rcv, tb),
            ),
            ("bigtcp150K", Iperf3Options(), (snd_b, rcv_b, tb_big)),
        ]
        for path_name in PATHS:
            for label, opts, (s, r, testbed) in cases:
                harness = TestHarness(s, r, testbed.path(path_name), config)
                res = harness.run(opts, label=f"{path_name}/{label}")
                result.add_row(
                    path=path_name,
                    config=label,
                    gbps=res.mean_gbps,
                    stdev=res.stdev_gbps,
                    retr=int(res.mean_retransmits),
                )
        return result
