"""Reproductions of every table and figure in the paper's evaluation."""

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import (
    REGISTRY,
    all_experiment_ids,
    run_experiment,
    run_experiments,
)

__all__ = [
    "Experiment",
    "ExperimentResult",
    "REGISTRY",
    "run_experiment",
    "run_experiments",
    "all_experiment_ids",
]
