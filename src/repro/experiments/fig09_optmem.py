"""Figure 9: sender performance with zerocopy for various optmem_max.

Zerocopy + pacing(50G) on the Intel hosts, kernel 6.5, with
``net.core.optmem_max`` at the stock 20 KB, the recommended 1 MB, and
the paper's empirically-best ~3.25 MB, across all four RTTs.

Paper claims reproduced:

* 20 KB: completely sender-CPU-limited, WAN throughput severely hurt
  (every zerocopy send falls back to copying, paying the failed-pin
  overhead on top);
* 1 MB: pacing-limited on the shorter paths, but the 104 ms path only
  reaches ~40 Gbps with the sender CPU as the bottleneck;
* 3.25 MB: full pacing rate at every RTT with the lowest sender CPU.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.host.sysctl import OPTMEM_1MB, OPTMEM_BEST_WAN, OPTMEM_DEFAULT
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["Fig09OptmemSweep"]

PATHS = ("lan", "wan25", "wan54", "wan104")
OPTMEM_VALUES = [
    ("20KB(default)", OPTMEM_DEFAULT),
    ("1MB", OPTMEM_1MB),
    ("3.25MB", OPTMEM_BEST_WAN),
]


class Fig09OptmemSweep(Experiment):
    exp_id = "fig09"
    title = "Zerocopy sender performance vs optmem_max (Intel, kernel 6.5)"
    paper_ref = "Figure 9"
    expectation = (
        "20KB: CPU-pegged and slow on WAN; 1MB: full rate except 104 ms "
        "(~40G, CPU-bound); 3.25MB: full rate everywhere, lowest CPU"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["optmem", "path", "gbps", "snd_cpu_pct", "zc_fraction"]
        )
        opts = Iperf3Options(zerocopy="z", fq_rate_gbps=50)
        for om_label, om_value in OPTMEM_VALUES:
            tb = AmLightTestbed(kernel="6.5", optmem_max=om_value)
            snd, rcv = tb.host_pair()
            for path_name in PATHS:
                harness = TestHarness(snd, rcv, tb.path(path_name), config)
                res = harness.run(opts, label=f"{om_label}/{path_name}")
                zc_frac = sum(r.run.zc_fraction_mean for r in res.runs) / len(res.runs)
                result.add_row(
                    optmem=om_label,
                    path=path_name,
                    gbps=res.mean_gbps,
                    snd_cpu_pct=res.sender_cpu_pct,
                    zc_fraction=round(zc_frac, 2),
                )
        return result
