"""Figure 8: CPU utilization, single stream, AMD hosts (ESnet).

Same protocol as Fig. 7 on the ESnet AMD pair (LAN + WAN, pacing 40G).
Paper claim reproduced: same qualitative pattern as Intel, but the
sender CPU on the WAN is much higher on AMD — the per-CCX L3 makes
WAN-sized copies far more expensive.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.fig07_cpu_intel import Fig07CpuIntel
from repro.testbeds.esnet import ESnetTestbed

__all__ = ["Fig08CpuAmd"]


class Fig08CpuAmd(Fig07CpuIntel):
    exp_id = "fig08"
    title = "CPU utilization vs latency (AMD single stream, kernel 6.5)"
    paper_ref = "Figure 8"
    expectation = (
        "same pattern as Intel but WAN sender CPU much higher; "
        "zc+pacing brings WAN throughput to LAN level"
    )

    pace_gbps = 40.0

    def _testbed(self):
        return ESnetTestbed(kernel=self.kernel)

    def _paths(self):
        return ("lan", "wan")
