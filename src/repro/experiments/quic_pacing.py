"""QUIC pacing strategies and spin-bit estimator accuracy.

Two campaigns extending the paper's fq-pacing story into userspace
(ROADMAP item 3; "QUIC Steps" and "three bits suffice" in PAPERS.md):

* ``quic-pacing`` — the pacer cross product: every
  :data:`~repro.quic.pacer.PACER_KINDS` release discipline on the
  AmLight WAN paths, against deep (stock NoviFlow 16 MB) and shallow
  (2 MB) shared buffers, plus a 256-connection sharded aggregate per
  pacer on wan54.  The pacers reuse the TCP simulator's loss model
  through their ``release_slack`` signal, so "how bursty is this
  pacer" lands on exactly the scale the kernel fq/fq_codel results
  use.  The appendix renders the burstiness ladder against the
  shallow-buffer long-path outcome.

* ``spin-accuracy`` — the passive RTT estimator validated against
  simulator ground truth: a
  :class:`~repro.quic.spin.SpinBitObserver` taps interval-paced
  connections on the two long paths while the observation channel is
  impaired with edge loss and reordering; rows report the median and
  p90 estimation error per (path, loss, reorder) cell.  Under a
  traced run the recovered samples replay as ``probe.spin`` events —
  an estimated-vs-true RTT counter track per flow in the Perfetto
  export.

Both are ordinary registry experiments: digests are byte-identical
across ``REPRO_SIM_KERNEL=scalar|vector``, ``--shards``, and
``--jobs``, and the paper-shape tests assert the qualitative claims
(including the < 10% zero-loss median the spin-bit literature leads
with) from the golden campaign's rows.
"""

from __future__ import annotations

import numpy as np

from repro.core.rng import RngFactory
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.cc_zoo import _with_buffer
from repro.quic.pacer import PACER_KINDS, make_pacer
from repro.quic.spin import SpinBitObserver, replay_spin_probes
from repro.quic.stack import QuicConnection, aggregate_quic, simulate_quic
from repro.sim.flowsim import SimProfile
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig
from repro.trace.bus import TraceBus
from repro.trace.bus import active as trace_active
from repro.trace.bus import tracing

__all__ = ["QuicPacingCampaign", "SpinAccuracySweep"]

#: Per-connection pacing rate of the rate-enforcing pacers, matching
#: the TCP campaigns' per-stream --fq-rate 19 Gbps.
PACER_RATE_GBPS = 19

QUIC_PATHS = ("wan25", "wan54", "wan104")
QUIC_CONNS = 4
AGG_CONNS = 256
AGG_PATH = "wan54"

SPIN_PATHS = ("wan54", "wan104")
SPIN_LOSS = (0.0, 0.1, 0.3)
SPIN_REORDER = (0.0, 0.1, 0.3)


def _pacer_for(kind: str):
    if kind == "none":
        return make_pacer("none")
    return make_pacer(kind, rate_gbps=PACER_RATE_GBPS)


def _connections(kind: str, cc: str = "cubic") -> list[QuicConnection]:
    return [
        QuicConnection(cc=cc, pacer=_pacer_for(kind)) for _ in range(QUIC_CONNS)
    ]


def _ladder(result: ExperimentResult) -> str:
    """Burstiness ladder: release slack vs the shallow wan104 outcome."""
    lines = [
        "**Burstiness ladder** (release slack vs shallow-buffer wan104):",
        "",
        "| pacer | release slack | gbps | retr/s |",
        "|---|---|---|---|",
    ]
    for kind in PACER_KINDS:
        slack = _pacer_for(kind).release_slack(True)
        row = result.row_by(
            pacer=kind, path="wan104", buffer="shallow"
        )
        lines.append(
            f"| {kind} | {slack:.2f} | {row['gbps']:.1f} | {row['retr']} |"
        )
    return "\n".join(lines)


class QuicPacingCampaign(Experiment):
    exp_id = "quic-pacing"
    title = "QUIC userspace pacers: pacer x buffer depth x RTT"
    paper_ref = "Section V.A extended to userspace stacks (QUIC Steps)"
    expectation = (
        "release-schedule burstiness orders every shallow-buffer WAN "
        "cell's throughput exactly — interval > token-bucket > chunked "
        "> none at each RTT, the unpaced stack collapsing hardest on "
        "the longest path; interval pacing alone is retransmit-free on "
        "the deep cells, paying instead a steady tail-drop trickle in "
        "the shallow cells it keeps saturated while the bursty pacers "
        "collapse; deep buffers absorb the trains, holding every "
        "rate-enforcing pacer within 10% of the cap, and the "
        "256-connection aggregate converges near line rate with the "
        "unpaced stack last"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["pacer", "path", "buffer", "gbps", "retr", "stdev"],
            notes=(
                f"{QUIC_CONNS} cubic connections per cell plus a "
                f"{AGG_CONNS}-connection sharded aggregate; digests are "
                "kernel- and --shards-invariant"
            ),
        )
        rng = RngFactory(seed=config.seed)
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        profile = SimProfile(
            duration=config.duration, tick=config.tick, omit=config.omit
        )
        for path_name in QUIC_PATHS:
            for buffer_name in ("deep", "shallow"):
                path = _with_buffer(tb.path(path_name), buffer_name)
                for kind in PACER_KINDS:
                    sim = simulate_quic(
                        snd, rcv, path, _connections(kind),
                        profile=profile,
                        rng=rng.fork(
                            f"quic:cell:{kind}:{path_name}:{buffer_name}"
                        ),
                    )
                    gbps, retr = _rep_series(sim, config)
                    result.add_row(
                        pacer=kind,
                        path=path_name,
                        buffer=buffer_name,
                        gbps=float(np.mean(gbps)),
                        retr=int(np.mean(retr)),
                        stdev=float(np.std(gbps)),
                    )
        for kind in PACER_KINDS:
            sim = aggregate_quic(
                snd, rcv, tb.path(AGG_PATH),
                QuicConnection(cc="cubic", pacer=_pacer_for(kind)),
                AGG_CONNS,
                profile=profile,
                rng=rng.fork(f"quic:agg:{kind}"),
            )
            gbps, retr = _rep_series(sim, config)
            result.add_row(
                pacer=kind,
                path=AGG_PATH,
                buffer=f"agg{AGG_CONNS}",
                gbps=float(np.mean(gbps)),
                retr=int(np.mean(retr)),
                stdev=float(np.std(gbps)),
            )
        result.appendix = _ladder(result)
        return result


def _rep_series(sim, config: HarnessConfig) -> tuple[list, list]:
    """Per-repetition (total gbps, retransmits/s) through any simulator."""
    gbps: list[float] = []
    retr: list[float] = []
    for rep in range(config.repetitions):
        run = sim.run(rep)
        gbps.append(run.total_gbps)
        window = run.duration - run.omit
        retr.append(run.retransmit_segments / window)
    return gbps, retr


class SpinAccuracySweep(Experiment):
    exp_id = "spin-accuracy"
    title = "Spin-bit RTT estimator error vs loss and reordering"
    paper_ref = "Observability sidebar; spin bit (three bits suffice)"
    expectation = (
        "at zero loss and no reordering the passive estimator's median "
        "error stays under 10% of ground truth on both long paths (and "
        "in practice under 3%); the median degrades monotonically along "
        "both impairment axes, the tail degrades monotonically with "
        "reordering at every loss rate (and with loss until the "
        "reorder-split samples own the tail), and on p90 reordering is "
        "the harsher impairment at every matched rate"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["path", "loss", "reorder", "median_err_pct", "p90_err_pct", "edges"],
            notes=(
                f"{QUIC_CONNS} interval-paced cubic connections per cell; "
                "errors pooled over repetitions; traced runs replay the "
                "samples as probe.spin counter tracks"
            ),
        )
        rng = RngFactory(seed=config.seed)
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        profile = SimProfile(
            duration=config.duration, tick=config.tick, omit=config.omit
        )
        for path_name in SPIN_PATHS:
            path = tb.path(path_name)
            for loss in SPIN_LOSS:
                for reorder in SPIN_REORDER:
                    cell = rng.fork(f"quic:spin:{path_name}:{loss}:{reorder}")
                    sim = simulate_quic(
                        snd, rcv, path, _connections("interval"),
                        profile=profile,
                        rng=cell.fork("quic:spin:sim"),
                    )
                    errs: list[float] = []
                    edges = 0
                    for rep in range(config.repetitions):
                        obs = SpinBitObserver(
                            cell.stream("quic:spin:edges", rep),
                            loss_prob=loss,
                            reorder_prob=reorder,
                        )
                        _observed_run(sim, obs, rep)
                        ests = obs.estimates()
                        errs.extend(e.err_fraction * 100.0 for e in ests)
                        edges += len(ests)
                    arr = np.array(errs) if errs else np.zeros(1)
                    result.add_row(
                        path=path_name,
                        loss=loss,
                        reorder=reorder,
                        median_err_pct=float(np.median(arr)),
                        p90_err_pct=float(np.quantile(arr, 0.9)),
                        edges=edges,
                    )
        return result


def _observed_run(sim, obs: SpinBitObserver, rep: int):
    """One rep with the observer tapping the flow.tick stream.

    Under a traced run the observer joins the ambient bus (and its
    samples replay as ``probe.spin`` events afterwards); otherwise a
    private single-sink bus supplies the tap.  Either way the
    simulation's own numbers are untouched — observation is read-only.
    """
    bus = trace_active()
    if bus is None:
        with tracing(TraceBus(sinks=[obs])):
            return sim.run(rep)
    bus.add_sink(obs)
    try:
        run = sim.run(rep)
    finally:
        bus.remove_sink(obs)
    replay_spin_probes(bus, obs)
    return run
