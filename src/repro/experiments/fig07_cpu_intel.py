"""Figure 7: CPU utilization vs latency, single stream, Intel hosts.

For default settings and for zerocopy+pacing(50G), report sender and
receiver "TX/RX Cores" utilization (iperf3 core + NIC interrupt cores;
can exceed 100%) at each RTT, on kernel 6.5 as in the paper.

Paper claims reproduced: with defaults, the receiver CPU limits on the
LAN while the sender limits on the WAN; with zerocopy+pacing the sender
CPU drops dramatically and the receiver becomes the bottleneck, with
throughput identical at every RTT.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["Fig07CpuIntel"]

PATHS = ("lan", "wan25", "wan54", "wan104")


class Fig07CpuIntel(Experiment):
    exp_id = "fig07"
    title = "CPU utilization vs latency (Intel single stream, kernel 6.5)"
    paper_ref = "Figure 7"
    expectation = (
        "default: receiver-limited on LAN, sender-limited on WAN; "
        "zc+pacing: sender CPU collapses, receiver becomes the bottleneck"
    )

    kernel = "6.5"
    pace_gbps = 50.0

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["path", "config", "gbps", "snd_cpu_pct", "rcv_cpu_pct",
             "snd_app_pct", "rcv_app_pct"],
            notes="cpu percentages are TX/RX-cores aggregates (iperf3 core "
            "+ IRQ cores) and can exceed 100%",
        )
        tb = self._testbed()
        snd, rcv = tb.host_pair()
        cases = [
            ("default", Iperf3Options()),
            ("zc+pace", Iperf3Options(zerocopy="z", fq_rate_gbps=self.pace_gbps)),
        ]
        for path_name in self._paths():
            harness = TestHarness(snd, rcv, tb.path(path_name), config)
            for label, opts in cases:
                res = harness.run(opts, label=f"{path_name}/{label}")
                result.add_row(
                    path=path_name,
                    config=label,
                    gbps=res.mean_gbps,
                    snd_cpu_pct=res.sender_cpu_pct,
                    rcv_cpu_pct=res.receiver_cpu_pct,
                    snd_app_pct=res.sender_cpu.app_pct,
                    rcv_app_pct=res.receiver_cpu.app_pct,
                )
        return result

    def _testbed(self):
        return AmLightTestbed(kernel=self.kernel)

    def _paths(self):
        return PATHS
