"""Tables I-III: 8-flow pacing matrices with full statistics.

* **Table I** — ESnet testbed LAN, kernel 5.15, no flow control:
  unpaced and 25/20/15 Gbps per stream.
* **Table II** — same on the ESnet WAN loop.
* **Table III** — two ESnet *production* DTNs (RTT 63 ms) whose network
  honours IEEE 802.3x flow control: unpaced and 15/12/10 Gbps per
  stream, with the per-flow Range column.

Paper claims reproduced: on the LAN, pacing at 25G/stream keeps full
throughput while cutting retransmits; 15G/stream trades throughput for
near-zero variance.  On the WAN, any attempt above ~120 Gbps aggregate
interferes (retransmits, high stdev).  With flow control, pacing no
longer changes the average — only the retransmit count and the
per-flow fairness range (9-16 Gbps unpaced vs exactly 10 when paced).
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.testbeds.esnet import ESnetTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["Table1ESnetLan", "Table2ESnetWan", "Table3FlowControl"]

N_STREAMS = 8


class Table1ESnetLan(Experiment):
    exp_id = "tab1"
    title = "ESnet testbed LAN, 8 flows, no flow control (kernel 5.15)"
    paper_ref = "Table I"
    expectation = (
        "unpaced and 25G/stream both ~NIC-limited (~165G); pacing to "
        "15G/stream gives ~120G with near-zero stdev"
    )

    path_name = "lan"
    pacing_rows = (None, 25.0, 20.0, 15.0)

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["config", "avg_gbps", "retr", "min", "max", "stdev"]
        )
        harness = self._harness(config)
        for pace in self.pacing_rows:
            label = "unpaced" if pace is None else f"{pace:g} Gbps/stream"
            opts = Iperf3Options(parallel=N_STREAMS, fq_rate_gbps=pace)
            res = harness.run(opts, label=label)
            result.add_row(
                config=label,
                avg_gbps=res.mean_gbps,
                retr=int(res.mean_retransmits),
                min=res.min_gbps,
                max=res.max_gbps,
                stdev=round(res.stdev_gbps, 2),
            )
        return result

    def _harness(self, config: HarnessConfig) -> TestHarness:
        tb = ESnetTestbed(kernel="5.15")
        snd, rcv = tb.host_pair()
        return TestHarness(snd, rcv, tb.path(self.path_name), config)


class Table2ESnetWan(Table1ESnetLan):
    exp_id = "tab2"
    title = "ESnet testbed WAN, 8 flows, no flow control (kernel 5.15)"
    paper_ref = "Table II"
    expectation = (
        "aggregate attempts above ~120G interfere: retransmits and stdev "
        "high for unpaced/25G/20G; 15G/stream (~120G) is clean"
    )

    path_name = "wan"


class Table3FlowControl(Experiment):
    exp_id = "tab3"
    title = "ESnet production DTNs with 802.3x flow control (RTT 63 ms)"
    paper_ref = "Table III"
    expectation = (
        "average throughput roughly unchanged by pacing (until the pacing "
        "total drops below the path); retransmits and per-flow spread "
        "shrink with pacing (9-16 Gbps unpaced -> exactly 10 when paced)"
    )

    pacing_rows = (None, 15.0, 12.0, 10.0)

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["config", "avg_gbps", "retr", "range"])
        tb = ESnetTestbed()
        snd, rcv = tb.production_host_pair()
        harness = TestHarness(snd, rcv, tb.production_path(), config)
        for pace in self.pacing_rows:
            label = "unpaced" if pace is None else f"{pace:g} Gbps/stream"
            opts = Iperf3Options(parallel=N_STREAMS, fq_rate_gbps=pace)
            res = harness.run(opts, label=label)
            lo, hi = res.per_flow_range_gbps
            result.add_row(
                config=label,
                avg_gbps=res.mean_gbps,
                retr=int(res.mean_retransmits),
                range=f"{lo:.0f}-{hi:.0f} Gbps",
            )
        return result
