"""Section III.A: core selection and test consistency.

The paper found single-flow throughput varying from 20 to 55 Gbps on
identical hardware depending on where irqbalance and the scheduler
placed NIC interrupts and the iperf3 process, and fixed it by pinning
IRQs to cores 0-7 and iperf3 to cores 8-15 on the NIC's NUMA node.

This experiment runs many repetitions in both modes and reports the
spread — the pinned configuration should be tight, the irqbalance
configuration wide, with a worst case far below the best.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["AffinityVariability"]


class AffinityVariability(Experiment):
    exp_id = "var"
    title = "irqbalance vs pinned core placement (Intel LAN single stream)"
    paper_ref = "Section III.A"
    expectation = (
        "pinned: tight spread near the hardware limit; irqbalance: wide "
        "spread (paper: 20-55 Gbps) with a much lower minimum"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["placement", "mean", "min", "max", "stdev"])
        tb = AmLightTestbed(kernel="6.8")
        for pinned in (True, False):
            snd, rcv = tb.host_pair()
            if not pinned:
                snd = snd.set(tuning=snd.tuning.set(irqbalance=True))
                rcv = rcv.set(tuning=rcv.tuning.set(irqbalance=True))
            harness = TestHarness(snd, rcv, tb.path("lan"), config)
            res = harness.run(
                Iperf3Options(), label="pinned" if pinned else "irqbalance"
            )
            result.add_row(
                placement="pinned" if pinned else "irqbalance",
                mean=res.mean_gbps,
                min=res.min_gbps,
                max=res.max_gbps,
                stdev=res.stdev_gbps,
            )
        return result
