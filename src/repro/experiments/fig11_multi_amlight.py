"""Figure 11: 8 parallel flows on AmLight (Intel, kernel 6.8).

Default settings (baseline) vs zerocopy unpaced vs zerocopy paced at
10 and 9 Gbps/stream, across all four RTTs.  WAN paths carry ~16 Gbps
of production background traffic and an 80 Gbps admin cap.

Paper claims reproduced:

* default throughput decreases with latency (~62 -> ~50 Gbps),
  sender-side limited;
* unlike at ESnet, zerocopy *without* pacing does not reach maximum on
  the WAN (background-traffic congestion);
* paced zerocopy reaches ~8 x pacing with a smaller stdev at
  9 Gbps/stream than at 10.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.testbeds.amlight import AmLightTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["Fig11MultiStreamAmLight"]

PATHS = ("lan", "wan25", "wan54", "wan104")
N_STREAMS = 8


class Fig11MultiStreamAmLight(Experiment):
    exp_id = "fig11"
    title = "8-flow results, AmLight (Intel, kernel 6.8)"
    paper_ref = "Figure 11"
    expectation = (
        "default declines with RTT (sender-limited); zc unpaced misses max "
        "on WAN (background congestion); zc paced hits ~8 x rate, stdev "
        "smaller at 9G than 10G"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["path", "config", "gbps", "stdev", "retr"])
        tb = AmLightTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        cases = [
            ("default", Iperf3Options(parallel=N_STREAMS)),
            (
                "zc-unpaced",
                Iperf3Options(parallel=N_STREAMS, zerocopy="z", skip_rx_copy=True),
            ),
            (
                "zc+10G",
                Iperf3Options(
                    parallel=N_STREAMS, zerocopy="z", skip_rx_copy=True,
                    fq_rate_gbps=10,
                ),
            ),
            (
                "zc+9G",
                Iperf3Options(
                    parallel=N_STREAMS, zerocopy="z", skip_rx_copy=True,
                    fq_rate_gbps=9,
                ),
            ),
        ]
        for path_name in PATHS:
            harness = TestHarness(snd, rcv, tb.path(path_name), config)
            for label, opts in cases:
                res = harness.run(opts, label=f"{path_name}/{label}")
                result.add_row(
                    path=path_name,
                    config=label,
                    gbps=res.mean_gbps,
                    stdev=res.stdev_gbps,
                    retr=int(res.mean_retransmits),
                )
        return result
