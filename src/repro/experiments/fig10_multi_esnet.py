"""Figure 10: 8 parallel flows on the ESnet testbed, pacing sweep.

Eight streams with zerocopy (+ ``--skip-rx-copy`` to focus on the send
path, as the paper's sender-tuning protocol does) at several per-stream
pacing rates, LAN and WAN, kernel 6.8, with the "Max Tput" reference
(NIC speed or 8 x pacing, whichever is lower).

Paper claim reproduced: zerocopy+pacing delivers close to the maximum
possible at every pacing point (200 down to 120 Gbps), with the
smallest variance at the lowest pacing rate.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.testbeds.esnet import ESnetTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["Fig10MultiStreamESnet"]

PACING_GBPS = (25.0, 20.0, 15.0)
N_STREAMS = 8


class Fig10MultiStreamESnet(Experiment):
    exp_id = "fig10"
    title = "8-flow pacing sweep with zerocopy, ESnet (AMD, kernel 6.8)"
    paper_ref = "Figure 10"
    expectation = (
        "throughput tracks min(NIC, 8 x pacing) closely on LAN and WAN; "
        "stdev smallest at 15 Gbps/stream"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["path", "pacing", "gbps", "max_tput", "stdev", "retr"]
        )
        tb = ESnetTestbed(kernel="6.8")
        snd, rcv = tb.host_pair()
        nic_gbps = snd.nic.speed_gbps
        for path_name in ("lan", "wan"):
            harness = TestHarness(snd, rcv, tb.path(path_name), config)
            for pace in PACING_GBPS:
                opts = Iperf3Options(
                    parallel=N_STREAMS,
                    zerocopy="z",
                    skip_rx_copy=True,
                    fq_rate_gbps=pace,
                )
                res = harness.run(opts, label=f"{path_name}/{pace:g}G")
                result.add_row(
                    path=path_name,
                    pacing=f"{pace:g}G/stream",
                    gbps=res.mean_gbps,
                    max_tput=min(nic_gbps, N_STREAMS * pace),
                    stdev=res.stdev_gbps,
                    retr=int(res.mean_retransmits),
                )
        return result
