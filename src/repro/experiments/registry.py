"""Registry mapping experiment ids to classes, plus the run helpers.

``run_experiment("fig05")`` runs one experiment in-process — the unit
the parallel runner's workers execute.  ``run_experiments`` is the
campaign entry point the CLI (``repro run``), the benchmarks, and the
EXPERIMENTS.md generator share: it routes through
:mod:`repro.runner`, which fans tasks out across worker processes and
serves unchanged (code, config) pairs from the content-addressed
result cache.
"""

from __future__ import annotations

from repro.core.errors import ConfigurationError
from repro.experiments.ablations import AblationBurst, AblationCache, AblationFallback
from repro.experiments.affinity import AffinityVariability
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.cc_comparison import CcComparison
from repro.experiments.cc_zoo import CcTunerSweep, CcZooCampaign
from repro.experiments.extensions import Ext400G, ExtOptmemAutosize
from repro.experiments.fig04_vm import Fig04VmValidation
from repro.experiments.fig05_single_amlight import Fig05SingleStreamAmLight
from repro.experiments.fig06_single_esnet import Fig06SingleStreamESnet
from repro.experiments.fig07_cpu_intel import Fig07CpuIntel
from repro.experiments.fig08_cpu_amd import Fig08CpuAmd
from repro.experiments.fig09_optmem import Fig09OptmemSweep
from repro.experiments.fig10_multi_esnet import Fig10MultiStreamESnet
from repro.experiments.fig11_heavy_tail import Fig11HeavyTailAmLight
from repro.experiments.fig11_multi_amlight import Fig11MultiStreamAmLight
from repro.experiments.fig12_fig13_kernels import Fig12KernelsESnet, Fig13KernelsAmLight
from repro.experiments.future_work import FutureBigTcpZerocopy, FutureHwGro
from repro.experiments.pitfalls import IommuPitfall, PacingOverflowPitfall
from repro.experiments.quic_pacing import QuicPacingCampaign, SpinAccuracySweep
from repro.experiments.scaling import FlowCountScaling
from repro.experiments.tables import Table1ESnetLan, Table2ESnetWan, Table3FlowControl
from repro.tools.harness import HarnessConfig

__all__ = ["REGISTRY", "run_experiment", "run_experiments", "all_experiment_ids"]

_CLASSES: list[type[Experiment]] = [
    Fig04VmValidation,
    Fig05SingleStreamAmLight,
    Fig06SingleStreamESnet,
    Fig07CpuIntel,
    Fig08CpuAmd,
    Fig09OptmemSweep,
    Fig10MultiStreamESnet,
    Fig11MultiStreamAmLight,
    Table1ESnetLan,
    Table2ESnetWan,
    Table3FlowControl,
    Fig12KernelsESnet,
    Fig13KernelsAmLight,
    CcComparison,
    FutureHwGro,
    FutureBigTcpZerocopy,
    AffinityVariability,
    PacingOverflowPitfall,
    IommuPitfall,
    Ext400G,
    ExtOptmemAutosize,
    AblationCache,
    AblationBurst,
    AblationFallback,
    Fig11HeavyTailAmLight,
    FlowCountScaling,
    CcZooCampaign,
    CcTunerSweep,
    QuicPacingCampaign,
    SpinAccuracySweep,
]

REGISTRY: dict[str, type[Experiment]] = {cls.exp_id: cls for cls in _CLASSES}


def all_experiment_ids() -> list[str]:
    """Experiment ids in paper order."""
    return [cls.exp_id for cls in _CLASSES]


def run_experiment(
    exp_id: str, config: HarnessConfig | None = None
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``'fig05'``, ``'tab2'``)."""
    try:
        cls = REGISTRY[exp_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {exp_id!r}; have {all_experiment_ids()}"
        ) from None
    return cls().run(config)


def run_experiments(
    exp_ids: list[str] | None = None,
    config: HarnessConfig | None = None,
    jobs: int = 1,
    use_cache: bool = False,
    cache_dir=None,
):
    """Run a campaign of experiments through the parallel runner.

    Returns a :class:`~repro.runner.tasks.RunReport` whose ``results``
    are in registry (paper) order for ``exp_ids=None``, else in the
    given order.  Caching is opt-in here because library callers (tests,
    benchmarks) usually want fresh numbers; the CLI flips it on.
    """
    # Lazy import: repro.runner's workers import this module back.
    from repro.runner import RunnerConfig
    from repro.runner import run_experiments as _run

    return _run(
        exp_ids,
        config=config,
        runner=RunnerConfig(jobs=jobs, use_cache=use_cache, cache_dir=cache_dir),
    )
