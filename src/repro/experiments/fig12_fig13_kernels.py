"""Figures 12 & 13: kernel version comparisons (5.15 / 6.5 / 6.8).

* **Fig. 12** — ESnet AMD hosts, single stream: 6.5 ≈ +12% over 5.15,
  6.8 ≈ +17% over 6.5 (≈ +30% total).
* **Fig. 13** — AmLight Intel hosts: LAN default single stream ≈ +27%
  from 5.15 to 6.8; WAN single stream (zerocopy + 50G pacing +
  skip-rx-copy, optmem sized for the BDP) identical on all kernels
  because the 50 Gbps pacing cap binds before any kernel difference.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.host.sysctl import OPTMEM_BEST_WAN
from repro.testbeds.amlight import AmLightTestbed
from repro.testbeds.esnet import ESnetTestbed
from repro.tools.harness import HarnessConfig, TestHarness
from repro.tools.iperf3 import Iperf3Options

__all__ = ["Fig12KernelsESnet", "Fig13KernelsAmLight"]

KERNELS = ("5.15", "6.5", "6.8")


class Fig12KernelsESnet(Experiment):
    exp_id = "fig12"
    title = "Kernel version vs single-stream throughput (ESnet AMD)"
    paper_ref = "Figure 12"
    expectation = "6.5 ~+12% over 5.15; 6.8 ~+17% over 6.5 (~+30% total)"

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(["kernel", "path", "gbps", "stdev"])
        for kernel in KERNELS:
            tb = ESnetTestbed(kernel=kernel)
            snd, rcv = tb.host_pair()
            for path_name in ("lan", "wan"):
                harness = TestHarness(snd, rcv, tb.path(path_name), config)
                res = harness.run(Iperf3Options(), label=f"{kernel}/{path_name}")
                result.add_row(
                    kernel=kernel,
                    path=path_name,
                    gbps=res.mean_gbps,
                    stdev=res.stdev_gbps,
                )
        return result


class Fig13KernelsAmLight(Experiment):
    exp_id = "fig13"
    title = "Kernel version vs single-stream throughput (AmLight Intel)"
    paper_ref = "Figure 13"
    expectation = (
        "LAN: 6.8 ~+27% over 5.15; WAN: identical on all kernels "
        "(pinned at the 50 Gbps pacing cap)"
    )

    def run(self, config: HarnessConfig | None = None) -> ExperimentResult:
        config = config or HarnessConfig.bench()
        result = self._result(
            ["kernel", "path", "gbps", "stdev"],
            notes="WAN rows use zerocopy + 50G pacing + skip-rx-copy with "
            "BDP-sized optmem (the paper's tuned single-flow protocol); "
            "LAN rows use default flags.",
        )
        for kernel in KERNELS:
            tb_lan = AmLightTestbed(kernel=kernel)
            snd, rcv = tb_lan.host_pair()
            harness = TestHarness(snd, rcv, tb_lan.path("lan"), config)
            res = harness.run(Iperf3Options(), label=f"{kernel}/lan")
            result.add_row(
                kernel=kernel, path="lan", gbps=res.mean_gbps, stdev=res.stdev_gbps
            )

            tb_wan = AmLightTestbed(kernel=kernel, optmem_max=OPTMEM_BEST_WAN)
            snd_w, rcv_w = tb_wan.host_pair()
            harness_w = TestHarness(snd_w, rcv_w, tb_wan.path("wan54"), config)
            res_w = harness_w.run(
                Iperf3Options(zerocopy="z", fq_rate_gbps=50, skip_rx_copy=True),
                label=f"{kernel}/wan54",
            )
            result.add_row(
                kernel=kernel,
                path="wan54",
                gbps=res_w.mean_gbps,
                stdev=res_w.stdev_gbps,
            )
        return result
