"""Shared tuning profiles for testbed hosts.

Centralizes the paper's host configuration recipe (fasterdata.es.net
base tuning + the Section III extras) so both testbeds build hosts the
same way.
"""

from __future__ import annotations

from repro.host.machine import Host
from repro.host.sysctl import OPTMEM_1MB, Sysctls
from repro.host.tuning import HostTuning
from repro.host.vm import VmConfig

__all__ = ["paper_host", "stock_host"]


def paper_host(
    name: str,
    cpu: str,
    nic: str,
    kernel: str = "6.8",
    optmem_max: int = OPTMEM_1MB,
    mtu: int = 9000,
    vm: VmConfig | None = None,
    big_tcp_size: int | None = None,
) -> Host:
    """A host tuned exactly as the paper's test hosts were.

    * fasterdata sysctls (2 GiB buffers, fq qdisc, no-metrics-save)
    * optmem_max = 1 MB unless overridden (the Fig. 9 sweep varies it)
    * IRQs pinned to cores 0-7, app to 8-15 (irqbalance off)
    * SMT off, performance governor, iommu=pt, 8192-entry rings, 9K MTU
    """
    sysctls = Sysctls.fasterdata_tuned(optmem_max=optmem_max)
    if big_tcp_size is not None:
        sysctls = sysctls.enable_big_tcp(big_tcp_size)
    return Host.build(
        name=name,
        cpu=cpu,
        nic=nic,
        kernel=kernel,
        sysctls=sysctls,
        tuning=HostTuning.paper().set(mtu=mtu),
        vm=vm,
    )


def stock_host(name: str, cpu: str, nic: str, kernel: str = "5.15") -> Host:
    """An untuned distro-default host, for ablation studies."""
    return Host.build(
        name=name,
        cpu=cpu,
        nic=nic,
        kernel=kernel,
        sysctls=Sysctls(),
        tuning=HostTuning.stock(),
    )
