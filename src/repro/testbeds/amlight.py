"""The AmLight testbed (paper Fig. 1).

Intel Xeon 6346 hosts with ConnectX-5 100G NICs in Miami, with real WAN
paths down the AmLight backbone:

=========  =======  =====================================
``lan``    0.2 ms   Miami local, 100 Gbps
``wan25``  25 ms    Miami <-> Fortaleza
``wan54``  54 ms    Miami <-> Sao Paulo
``wan104`` 104 ms   Miami <-> Santiago (via Sao Paulo)
=========  =======  =====================================

WAN test traffic is administratively capped at 80 Gbps to protect
production traffic, and shares the backbone with ~16 Gbps of production
background load.  Switches are NoviFlow/Tofino without 802.3x support.

Bare-metal hosts run Debian 11 (kernel 5.10); the paper's main results
use an Ubuntu VM with PCI passthrough and pinned vCPUs (validated
against bare metal in its Fig. 4), which :func:`host_pair` reproduces
via ``vm_mode``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core import units
from repro.core.errors import ConfigurationError
from repro.host.machine import Host
from repro.host.sysctl import OPTMEM_1MB
from repro.host.vm import VmConfig
from repro.net.background import BackgroundTraffic
from repro.net.path import NetworkPath
from repro.net.switch import SwitchModel
from repro.net.topology import Topology
from repro.testbeds.profiles import paper_host

__all__ = ["AmLightTestbed", "AMLIGHT_RTTS_MS"]

AMLIGHT_RTTS_MS = {"lan": 0.2, "wan25": 25.0, "wan54": 54.0, "wan104": 104.0}


def _build_topology() -> Topology:
    topo = Topology("amlight")
    switch = SwitchModel.noviflow_wb5132()
    topo.add_host("dtn-miami-a")
    topo.add_host("dtn-miami-b")
    topo.add_host("dtn-fortaleza")
    topo.add_host("dtn-saopaulo")
    topo.add_host("dtn-santiago")
    for sw in ("sw-miami", "sw-fortaleza", "sw-saopaulo", "sw-santiago"):
        topo.add_switch(sw, switch)
    topo.add_link("dtn-miami-a", "sw-miami", 100, delay_ms=0.05)
    topo.add_link("dtn-miami-b", "sw-miami", 100, delay_ms=0.05)
    topo.add_link("dtn-fortaleza", "sw-fortaleza", 100, delay_ms=0.05)
    topo.add_link("dtn-saopaulo", "sw-saopaulo", 100, delay_ms=0.05)
    topo.add_link("dtn-santiago", "sw-santiago", 100, delay_ms=0.05)
    # Backbone links with one-way delays that sum to the paper's RTTs.
    topo.add_link("sw-miami", "sw-fortaleza", 100, delay_ms=12.45, admin_limit_gbps=80)
    topo.add_link("sw-miami", "sw-saopaulo", 100, delay_ms=26.95, admin_limit_gbps=80)
    topo.add_link("sw-saopaulo", "sw-santiago", 100, delay_ms=24.95, admin_limit_gbps=80)
    return topo


@dataclass
class AmLightTestbed:
    """Factory for AmLight hosts and paths."""

    kernel: str = "6.8"
    vm_mode: str = "tuned"  # 'baremetal' | 'tuned' | 'untuned'
    optmem_max: int = OPTMEM_1MB
    mtu: int = 9000
    big_tcp_size: int | None = None
    topology: Topology = field(default_factory=_build_topology)

    def _vm(self) -> VmConfig:
        if self.vm_mode == "baremetal":
            return VmConfig.baremetal()
        if self.vm_mode == "tuned":
            return VmConfig.paper_tuned()
        if self.vm_mode == "untuned":
            return VmConfig.untuned()
        raise ConfigurationError(f"unknown vm_mode {self.vm_mode!r}")

    def host_pair(self) -> tuple[Host, Host]:
        """(sender, receiver) Intel/CX-5 hosts, paper tuning."""
        mk = lambda name: paper_host(  # noqa: E731 - tiny local factory
            name,
            cpu="intel",
            nic="cx5",
            kernel=self.kernel,
            optmem_max=self.optmem_max,
            mtu=self.mtu,
            vm=self._vm(),
            big_tcp_size=self.big_tcp_size,
        )
        return mk("amlight-snd"), mk("amlight-rcv")

    def path(self, name: str) -> NetworkPath:
        """One of 'lan', 'wan25', 'wan54', 'wan104'."""
        dests = {
            "lan": "dtn-miami-b",
            "wan25": "dtn-fortaleza",
            "wan54": "dtn-saopaulo",
            "wan104": "dtn-santiago",
        }
        if name not in dests:
            raise ConfigurationError(
                f"unknown AmLight path {name!r}; have {sorted(dests)}"
            )
        background = (
            BackgroundTraffic.amlight_production()
            if name != "lan"
            else BackgroundTraffic.none()
        )
        path = self.topology.path_between(
            "dtn-miami-a", dests[name], name=name, background=background
        )
        return path

    def paths(self) -> list[NetworkPath]:
        """All four paths, LAN first."""
        return [self.path(n) for n in ("lan", "wan25", "wan54", "wan104")]
