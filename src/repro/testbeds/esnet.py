"""The ESnet testbed (paper Fig. 2) and the production-DTN pair.

Testbed: AMD EPYC 73F3 hosts with ConnectX-7 200G NICs, interconnected
through an Edgecore AS9716-32D (64 MB shared buffer, no 802.3x), plus a
WAN loop across the ESnet backbone.  The paper does not print the loop
RTT; ESnet testbed loops between Bay Area sites and Chicago/Starlight
run in the tens of ms, and Table II's behaviour (interference above
~120 Gbps aggregate) is RTT-insensitive in this regime — we use 47 ms.

Production: two ESnet production DTNs at RTT 63 ms whose network
devices *do* honour IEEE 802.3x flow control (Table III); these are
100G hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import ConfigurationError
from repro.host.machine import Host
from repro.host.sysctl import OPTMEM_1MB
from repro.net.background import BackgroundTraffic
from repro.net.path import NetworkPath
from repro.net.switch import SwitchModel
from repro.net.topology import Topology
from repro.testbeds.profiles import paper_host

__all__ = ["ESnetTestbed", "ESNET_WAN_RTT_MS", "PRODUCTION_RTT_MS"]

ESNET_WAN_RTT_MS = 47.0
PRODUCTION_RTT_MS = 63.0


def _build_topology() -> Topology:
    topo = Topology("esnet")
    switch = SwitchModel.edgecore_as9716()
    topo.add_host("dtn-a")
    topo.add_host("dtn-b")
    topo.add_host("dtn-wan")
    topo.add_switch("sw-testbed", switch)
    topo.add_switch("sw-wan", switch)
    topo.add_link("dtn-a", "sw-testbed", 200, delay_ms=0.03)
    topo.add_link("dtn-b", "sw-testbed", 200, delay_ms=0.03)
    topo.add_link("dtn-wan", "sw-wan", 200, delay_ms=0.03)
    topo.add_link("sw-testbed", "sw-wan", 200, delay_ms=ESNET_WAN_RTT_MS / 2 - 0.06)
    return topo


@dataclass
class ESnetTestbed:
    """Factory for ESnet testbed hosts and paths."""

    kernel: str = "6.8"
    optmem_max: int = OPTMEM_1MB
    mtu: int = 9000
    big_tcp_size: int | None = None
    topology: Topology = field(default_factory=_build_topology)

    def host_pair(self) -> tuple[Host, Host]:
        """(sender, receiver) AMD/CX-7 hosts, paper tuning."""
        mk = lambda name: paper_host(  # noqa: E731
            name,
            cpu="amd",
            nic="cx7",
            kernel=self.kernel,
            optmem_max=self.optmem_max,
            mtu=self.mtu,
            big_tcp_size=self.big_tcp_size,
        )
        return mk("esnet-snd"), mk("esnet-rcv")

    def path(self, name: str) -> NetworkPath:
        """'lan' (200G local) or 'wan' (200G, 47 ms loop)."""
        dests = {"lan": "dtn-b", "wan": "dtn-wan"}
        if name not in dests:
            raise ConfigurationError(f"unknown ESnet path {name!r}; have {sorted(dests)}")
        return self.topology.path_between("dtn-a", dests[name], name=name)

    def paths(self) -> list[NetworkPath]:
        return [self.path("lan"), self.path("wan")]

    # ------------------------------------------------------------------
    # Production DTNs (Table III)
    # ------------------------------------------------------------------

    def production_host_pair(self) -> tuple[Host, Host]:
        """Two production DTNs: 100G ConnectX-6 class, kernel 5.15."""
        mk = lambda name: paper_host(  # noqa: E731
            name, cpu="amd", nic="cx6", kernel="5.15", optmem_max=self.optmem_max
        )
        a, b = mk("prod-dtn-a"), mk("prod-dtn-b")
        # Production NICs here are 100G ports.
        a = a.set(nic=a.nic.with_speed_gbps(100))
        b = b.set(nic=b.nic.with_speed_gbps(100))
        return a, b

    def production_path(self) -> NetworkPath:
        """63 ms production path with end-to-end 802.3x flow control."""
        from repro.net.link import Link

        return NetworkPath(
            name="production-63ms",
            bottleneck=Link.of_gbps("prod-wan", 100, delay_ms=PRODUCTION_RTT_MS / 2),
            rtt_sec=PRODUCTION_RTT_MS / 1e3,
            switch=SwitchModel.flow_control_capable(),
            # A production backbone is never empty: a light, bursty
            # background load produces the residual retransmits Table III
            # shows even with flow control (29K unpaced -> 1K at
            # 10 Gbps/stream pacing).
            background=BackgroundTraffic(mean_bytes_per_sec=2e9 / 8, burstiness=0.6),
            flow_control=True,
        )
