"""Testbed factories: AmLight, ESnet testbed, ESnet production DTNs."""

from repro.testbeds.amlight import AMLIGHT_RTTS_MS, AmLightTestbed
from repro.testbeds.esnet import ESNET_WAN_RTT_MS, PRODUCTION_RTT_MS, ESnetTestbed
from repro.testbeds.profiles import paper_host, stock_host

__all__ = [
    "AmLightTestbed",
    "AMLIGHT_RTTS_MS",
    "ESnetTestbed",
    "ESNET_WAN_RTT_MS",
    "PRODUCTION_RTT_MS",
    "paper_host",
    "stock_host",
]
