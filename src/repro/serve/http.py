"""Hand-rolled HTTP/1.1 over asyncio streams.

The repo's zero-heavy-deps rule extends to the daemon: no aiohttp, no
tornado — the service speaks just enough RFC 9112 for its five routes,
implemented directly on :class:`asyncio.StreamReader`/``Writer``.
What "just enough" means here:

* request line + headers + ``Content-Length`` bodies (no chunked
  uploads — a 501 tells the client to re-send measured);
* persistent connections (HTTP/1.1 default keep-alive, ``Connection:
  close`` honoured both ways) — the load bench replays thousands of
  requests per connection, so this is a throughput feature, not a
  nicety;
* hard limits on request-line, header block, and body sizes, each with
  its proper 4xx, so a confused or hostile peer cannot balloon server
  memory;
* Server-Sent Events framing for the trace-tail route.

Parsing is strict where sloppiness would hide bugs (method/target/
version shape, integer Content-Length) and tolerant where the spec
says to be (header case, optional whitespace).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "HttpError",
    "Request",
    "read_request",
    "response",
    "json_response",
    "error_response",
    "sse_preamble",
    "sse_event",
    "REASONS",
]

#: Reason phrases for every status the service emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}

MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
_CRLF = b"\r\n"


class HttpError(Exception):
    """A malformed or oversized request; maps to one 4xx/5xx response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request."""

    method: str
    target: str
    path: str
    query: dict[str, str]
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        """Connection persistence per HTTP/1.0 and /1.1 defaults."""
        token = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"

    def json(self) -> dict:
        """The body as a JSON object, or a 400 :class:`HttpError`."""
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            doc = json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(doc, dict):
            raise HttpError(400, "JSON body must be an object")
        return doc


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    """One CRLF-terminated line, or an :class:`HttpError` on overflow."""
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        # EOF mid-line: treat whatever arrived as the (final) line.
        line = exc.partial
    except asyncio.LimitOverrunError:
        raise HttpError(431, "header line exceeds the stream limit") from None
    if len(line) > limit:
        raise HttpError(431, f"line longer than {limit} bytes")
    return line.rstrip(b"\r\n")


def _parse_request_line(raw: bytes) -> tuple[str, str, str]:
    try:
        text = raw.decode("ascii")
    except UnicodeDecodeError:
        raise HttpError(400, "request line is not ASCII") from None
    parts = text.split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {text!r}")
    method, target, version = parts
    if not method.isalpha() or method != method.upper():
        raise HttpError(400, f"malformed method: {method!r}")
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(400, f"unsupported protocol version {version!r}")
    return method, target, version


async def read_request(
    reader: asyncio.StreamReader, max_body: int = 1 << 20
) -> Request | None:
    """Parse one request off the stream; ``None`` on a clean EOF.

    Raises :class:`HttpError` for anything malformed or oversized; the
    caller turns that into the matching 4xx and closes the connection
    (a parse error leaves the stream position undefined, so the
    connection is never reusable afterwards).
    """
    raw_line = await _read_line(reader, MAX_REQUEST_LINE)
    if not raw_line:
        return None
    method, target, version = _parse_request_line(raw_line)

    headers: dict[str, str] = {}
    total = 0
    while True:
        line = await _read_line(reader, MAX_HEADER_BYTES)
        if not line:
            break
        total += len(line)
        if total > MAX_HEADER_BYTES:
            raise HttpError(431, "header block too large")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep or not name.strip():
            raise HttpError(400, f"malformed header line: {line!r}")
        # Later duplicates join with a comma, per RFC 9110 §5.2.
        key = name.strip().lower()
        value = value.strip()
        headers[key] = (
            f"{headers[key]}, {value}" if key in headers else value
        )

    if "transfer-encoding" in headers:
        raise HttpError(501, "chunked request bodies are not supported")

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "Content-Length is not an integer") from None
        if length < 0:
            raise HttpError(400, "Content-Length is negative")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "connection closed mid-body") from None
    elif method in ("POST", "PUT", "PATCH"):
        raise HttpError(411, f"{method} requires a Content-Length")

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method,
        target=target,
        path=unquote(split.path) or "/",
        query=query,
        version=version,
        headers=headers,
        body=body,
    )


def response(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    keep_alive: bool = True,
    extra_headers: dict[str, str] | None = None,
) -> bytes:
    """A complete response as bytes, ready for one ``writer.write``."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    head = "\r\n".join(lines).encode("ascii") + _CRLF + _CRLF
    return head + body


def json_response(status: int, doc: dict, keep_alive: bool = True) -> bytes:
    """A JSON response; keys sorted so identical answers are identical
    bytes (the bench diffs hit responses across the replay)."""
    body = json.dumps(doc, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    ) + b"\n"
    return response(status, body, keep_alive=keep_alive)


def error_response(status: int, message: str, keep_alive: bool = False) -> bytes:
    return json_response(
        status, {"error": message, "status": status}, keep_alive=keep_alive
    )


def sse_preamble() -> bytes:
    """Headers opening a Server-Sent Events stream.

    SSE responses have no Content-Length; the stream ends when the
    server closes the connection, so keep-alive is necessarily off.
    """
    return (
        b"HTTP/1.1 200 OK\r\n"
        b"Content-Type: text/event-stream\r\n"
        b"Cache-Control: no-cache\r\n"
        b"Connection: close\r\n"
        b"\r\n"
    )


def sse_event(data: str, event: str | None = None) -> bytes:
    """One SSE frame; multi-line data becomes multiple ``data:`` lines."""
    lines = []
    if event is not None:
        lines.append(f"event: {event}")
    for chunk in data.split("\n"):
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")
