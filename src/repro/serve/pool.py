"""Asyncio façade over the runner's persistent warm pool.

The daemon dispatches one task at a time (requests arrive singly, not
as campaigns), so instead of the scheduler's round protocol it wraps
:meth:`PersistentPoolTransport.submit` futures with
``asyncio.wrap_future`` and applies the *same* crash-retry policy the
process runner uses — :class:`~repro.runner.core.RetryPolicy` pricing
delays through :class:`~repro.runner.core.BackoffSchedule` — with
``await asyncio.sleep`` instead of ``time.sleep``.  One scheduler
brain, two waiting primitives.
"""

from __future__ import annotations

import asyncio
from concurrent.futures.process import BrokenProcessPool

from repro.core.errors import RunnerError
from repro.runner.core import BackoffSchedule, RetryPolicy
from repro.runner.tasks import TaskSpec
from repro.runner.transport import PersistentPoolTransport

__all__ = ["AsyncWorkerPool"]


class AsyncWorkerPool:
    """Awaitable task execution on a shared persistent process pool."""

    def __init__(
        self,
        transport: PersistentPoolTransport,
        policy: RetryPolicy | None = None,
    ) -> None:
        self.transport = transport
        self.policy = policy or RetryPolicy()
        self._schedule = BackoffSchedule(self.policy)

    @property
    def dispatched(self) -> int:
        return self.transport.dispatched

    @property
    def rebuilds(self) -> int:
        return self.transport.rebuilds

    async def run(self, spec: TaskSpec) -> dict:
        """Execute one task; returns the worker payload.

        A worker-process death (``BrokenProcessPool``) discards the
        pool and retries after the deterministic backoff, up to the
        policy's attempt budget; deterministic experiment exceptions
        propagate on the first try, exactly like the process runner.
        """
        attempts = 0
        while True:
            attempts += 1
            future = self.transport.submit(spec)
            try:
                return await asyncio.wrap_future(future)
            except BrokenProcessPool:
                self.transport.discard_pool()
                if attempts >= self.policy.max_attempts:
                    raise RunnerError(
                        f"worker crashed {self.policy.max_attempts} times "
                        f"running {spec.exp_id}; giving up"
                    ) from None
                await asyncio.sleep(self._schedule.next_delay())

    def close(self) -> None:
        self.transport.close()
