"""A small blocking client for the experiment service.

Used by ``repro serve --check``, the CI smoke job, and anyone who
wants to talk to the daemon from a script without hand-writing HTTP.
Pure stdlib (:mod:`http.client`) to match the server's zero-deps
stance.  Each call opens a fresh connection — fine for checks and
scripts; the load bench keeps its own persistent connections because
connection reuse is part of what it measures.
"""

from __future__ import annotations

import http.client
import json

from repro.core.errors import ReproError
from repro.tools.harness import HarnessConfig

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(ReproError):
    """A non-2xx answer from the service."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServeClient:
    """Blocking HTTP client bound to one server address."""

    def __init__(self, host: str, port: int, timeout: float = 600.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------

    def _request(
        self, method: str, path: str, doc: dict | None = None
    ) -> dict:
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            body = None
            headers = {}
            if doc is not None:
                body = json.dumps(doc).encode("utf-8")
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=body, headers=headers)
            reply = conn.getresponse()
            payload = reply.read()
            try:
                parsed = json.loads(payload) if payload else {}
            except ValueError:
                parsed = {"error": payload.decode("utf-8", "replace")}
            if not 200 <= reply.status < 300:
                raise ServeClientError(
                    reply.status, parsed.get("error", reply.reason)
                )
            return parsed
        finally:
            conn.close()

    # -- API surface ----------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def submit(
        self,
        exp_id: str,
        config: HarnessConfig | dict | None = None,
        profile: str | None = None,
        trace: bool = False,
    ) -> dict:
        """POST one experiment; returns the submit document (digest &c)."""
        doc: dict = {"exp_id": exp_id}
        if config is not None:
            doc["config"] = (
                config.to_dict()
                if isinstance(config, HarnessConfig)
                else dict(config)
            )
        elif profile is not None:
            doc["profile"] = profile
        if trace:
            doc["trace"] = True
        return self._request("POST", "/experiments", doc)

    def result(self, digest: str) -> dict:
        """GET a stored result by its digest (or cache key)."""
        return self._request("GET", f"/results/{digest}")

    def tail(self, digest: str, limit: int | None = None) -> list[dict]:
        """Consume ``GET /traces/<digest>/tail`` and parse the SSE frames.

        Returns the parsed frames in order:
        ``{"event": "header"|"message"|"end"|"truncated", "data": ...}``
        with ``data`` JSON-decoded where the payload is JSON.
        """
        path = f"/traces/{digest}/tail"
        if limit is not None:
            path += f"?limit={limit}"
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request("GET", path)
            reply = conn.getresponse()
            if reply.status != 200:
                payload = reply.read()
                try:
                    message = json.loads(payload).get("error", reply.reason)
                except ValueError:
                    message = reply.reason
                raise ServeClientError(reply.status, message)
            frames: list[dict] = []
            event = "message"
            data_lines: list[str] = []
            # The stream ends when the server closes the connection.
            for raw in reply:
                line = raw.decode("utf-8").rstrip("\n")
                if line.startswith("event: "):
                    event = line[len("event: "):]
                elif line.startswith("data: "):
                    data_lines.append(line[len("data: "):])
                elif line == "":
                    if data_lines or event != "message":
                        text = "\n".join(data_lines)
                        try:
                            data = json.loads(text) if text else None
                        except ValueError:
                            data = text
                        frames.append({"event": event, "data": data})
                    event = "message"
                    data_lines = []
            return frames
        finally:
            conn.close()
