"""The always-warm experiment service.

``repro serve`` turns the batch runner inside out: instead of paying
interpreter + import + cold-cache startup per campaign, one daemon
process fronts the content-addressed result cache and a persistent
pre-warmed worker pool, and experiments become requests:

* ``POST /experiments`` — submit ``{"exp_id", "config"|"profile"}``;
  replies with the result digest.  Cache hits answer without touching
  the pool; identical in-flight configs **coalesce** onto one
  underlying run (single-flight keyed by the cache content key), so a
  stampede of equal requests costs one execution.
* ``GET /results/<digest>`` — O(1) lookup of a previously produced
  result by its digest (or directly by cache key).
* ``GET /healthz`` / ``GET /stats`` — liveness and the counters the
  smoke tests assert on (hits/misses/coalesced/in-flight/dispatched).
* ``GET /traces/<digest>/tail`` — Server-Sent Events stream of a
  traced run's spilled JSONL events, following a growing file.

Digest parity is the load-bearing guarantee: a result obtained through
the daemon is byte-identical to ``repro run`` for the same (code,
exp_id, config) — both go through
:func:`repro.runner.worker.execute_task` and the same cache entries,
so the daemon can never serve numbers a batch run would not produce.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from pathlib import Path

from repro.core.errors import ReproError
from repro.experiments.base import ExperimentResult
from repro.runner.cache import (
    ResultCache,
    cache_key,
    default_cache_dir,
    source_digest,
)
from repro.runner.core import RetryPolicy
from repro.runner.tasks import TaskSpec
from repro.runner.transport import PersistentPoolTransport
from repro.serve.config import ServeConfig
from repro.serve.http import (
    HttpError,
    Request,
    error_response,
    json_response,
    read_request,
    sse_event,
    sse_preamble,
)
from repro.serve.pool import AsyncWorkerPool
from repro.tools.harness import HarnessConfig
from repro.trace.bus import TraceSpec

__all__ = ["ExperimentServer", "ServerStats", "running_server"]

_PROFILES = {
    "quick": HarnessConfig.quick,
    "bench": HarnessConfig.bench,
    "paper": HarnessConfig.paper,
}


class ServerStats:
    """Monotonic request counters; the smoke tests' evidence."""

    FIELDS = (
        "requests",
        "submitted",
        "hits",
        "misses",
        "coalesced",
        "dispatched_errors",
        "results_served",
        "traces_tailed",
        "errors",
    )

    def __init__(self) -> None:
        for name in self.FIELDS:
            setattr(self, name, 0)

    def to_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.FIELDS}


class ExperimentServer:
    """One asyncio daemon over (cache, persistent pool)."""

    def __init__(self, config: ServeConfig | None = None) -> None:
        self.config = config or ServeConfig()
        cache_root = Path(self.config.cache_dir or default_cache_dir())
        self.cache = ResultCache(cache_root)
        self.trace_dir = Path(
            self.config.trace_dir or cache_root / "serve-traces"
        )
        self.src_digest = source_digest()
        self.pool = AsyncWorkerPool(
            PersistentPoolTransport(self.config.workers),
            RetryPolicy(
                max_attempts=self.config.max_attempts,
                backoff=self.config.retry_backoff,
                seed=self.config.seed,
            ),
        )
        self.stats = ServerStats()
        #: Single-flight table: cache key -> future resolving to the
        #: worker payload.  Presence means "this exact config is
        #: executing right now"; later identical submissions await the
        #: same future instead of dispatching again.
        self._inflight: dict[str, asyncio.Future] = {}
        #: result digest -> cache key, for ``GET /results/<digest>``.
        self._digest_index: dict[str, str] = {}
        #: cache key -> spilled JSONL path, for the SSE tail route.
        self._trace_paths: dict[str, Path] = {}
        self._server: asyncio.AbstractServer | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self.port: int | None = None

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; resolves the ephemeral port."""
        # Import the registry (and through it numpy + every experiment
        # and kernel module) *before* the first fork, so pool workers
        # inherit a fully warmed interpreter.
        import repro.experiments.registry  # noqa: F401

        self._server = await asyncio.start_server(
            self._on_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self.pool.close()

    # -- connection loop ------------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, max_body=self.config.max_body
                    )
                except HttpError as exc:
                    # Parse errors leave the stream position undefined;
                    # answer and hang up.
                    writer.write(error_response(exc.status, exc.message))
                    await writer.drain()
                    break
                if request is None:
                    break
                keep = await self._dispatch(request, writer)
                await writer.drain()
                if not keep or not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Route one request; returns False when the connection must close."""
        self.stats.requests += 1
        parts = [p for p in request.path.split("/") if p]
        try:
            if request.method == "GET":
                if parts == ["healthz"]:
                    writer.write(json_response(200, self._healthz()))
                    return True
                if parts == ["stats"]:
                    writer.write(json_response(200, self._stats_doc()))
                    return True
                if len(parts) == 2 and parts[0] == "results":
                    writer.write(self._handle_result(parts[1]))
                    return True
                if (
                    len(parts) == 3
                    and parts[0] == "traces"
                    and parts[2] == "tail"
                ):
                    await self._handle_tail(parts[1], request, writer)
                    return False  # SSE streams end with the connection
            if request.method == "POST":
                if parts == ["experiments"]:
                    writer.write(await self._handle_submit(request))
                    return True
                if parts in (["healthz"], ["stats"]) or (
                    parts and parts[0] in ("results", "traces")
                ):
                    raise HttpError(405, f"{request.path} is GET-only")
            if request.method not in ("GET", "POST"):
                raise HttpError(405, f"method {request.method} not supported")
            raise HttpError(404, f"no route for {request.method} {request.path}")
        except HttpError as exc:
            writer.write(error_response(exc.status, exc.message, keep_alive=True))
            return True
        except ReproError as exc:
            self.stats.errors += 1
            writer.write(error_response(400, str(exc), keep_alive=True))
            return True
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.stats.errors += 1
            writer.write(
                error_response(
                    500, f"{type(exc).__name__}: {exc}", keep_alive=False
                )
            )
            return False

    # -- GET routes -----------------------------------------------------

    def _healthz(self) -> dict:
        from repro.experiments.registry import REGISTRY

        return {
            "ok": True,
            "workers": self.config.workers,
            "experiments": len(REGISTRY),
            "source": self.src_digest[:12],
        }

    def _stats_doc(self) -> dict:
        doc = self.stats.to_dict()
        doc.update(
            {
                "in_flight": len(self._inflight),
                "dispatched": self.pool.dispatched,
                "pool_rebuilds": self.pool.rebuilds,
                "cache": {
                    "hits": self.cache.hits,
                    "misses": self.cache.misses,
                    "stores": self.cache.stores,
                },
                "workers": self.config.workers,
            }
        )
        return doc

    def _resolve_key(self, token: str) -> str | None:
        """A results/traces path token: result digest, or cache key."""
        key = self._digest_index.get(token)
        if key is not None:
            return key
        if token in self._trace_paths:
            return token
        return None

    def _handle_result(self, token: str) -> bytes:
        key = self._resolve_key(token) or token
        doc = self.cache.get(key)
        if doc is None:
            raise HttpError(
                404, f"no result for {token!r} (not a known digest or key)"
            )
        result = ExperimentResult.from_dict(doc["result"])
        digest = result.digest()
        self._digest_index[digest] = key
        self.stats.results_served += 1
        return json_response(
            200,
            {
                "exp_id": doc["exp_id"],
                "key": key,
                "digest": digest,
                "elapsed": doc.get("elapsed", 0.0),
                "result": doc["result"],
            },
        )

    async def _handle_tail(
        self,
        token: str,
        request: Request,
        writer: asyncio.StreamWriter,
    ) -> None:
        key = self._resolve_key(token)
        path = self._trace_paths.get(key) if key is not None else None
        if path is None:
            raise HttpError(
                404,
                f"no spilled trace for {token!r}; POST the experiment "
                f'with "trace": true first',
            )
        limit = None
        if "limit" in request.query:
            try:
                limit = int(request.query["limit"])
            except ValueError:
                raise HttpError(400, "limit must be an integer") from None
        self.stats.traces_tailed += 1
        writer.write(sse_preamble())
        await writer.drain()
        await self._stream_jsonl(writer, key, path, limit)

    async def _stream_jsonl(
        self,
        writer: asyncio.StreamWriter,
        key: str,
        path: Path,
        limit: int | None,
    ) -> None:
        """Follow a (possibly still growing) JSONL spill file as SSE.

        Emits the header record as ``event: header``, each trace event
        as a plain ``data:`` frame (the exact canonical JSON line the
        digest covers), and the finalize record as ``event: end``.  The
        stream closes at the end record, at ``limit`` events, or once
        the run is no longer in flight and the file has stopped
        growing (a crashed writer's truncated stream is still served
        to its last complete line).
        """
        pos = 0
        sent = 0
        idle_polls = 0
        while True:
            chunk = b""
            if path.exists():
                with open(path, "rb") as fh:
                    fh.seek(pos)
                    chunk = fh.read()
            lines = chunk.split(b"\n")
            # A partial trailing line stays on disk for the next poll.
            for raw in lines[:-1]:
                pos += len(raw) + 1
                line = raw.decode("utf-8").strip()
                if not line:
                    continue
                if '"kind":"header"' in line or '"kind": "header"' in line:
                    writer.write(sse_event(line, event="header"))
                    continue
                if '"kind":"end"' in line or '"kind": "end"' in line:
                    writer.write(sse_event(line, event="end"))
                    await writer.drain()
                    return
                writer.write(sse_event(line))
                sent += 1
                if limit is not None and sent >= limit:
                    await writer.drain()
                    return
            await writer.drain()
            if chunk:
                idle_polls = 0
            else:
                if key not in self._inflight:
                    idle_polls += 1
                    if idle_polls >= 2:
                        # Finished (or crashed) with no finalize record:
                        # serve what exists and close as truncated.
                        writer.write(sse_event("", event="truncated"))
                        await writer.drain()
                        return
            await asyncio.sleep(self.config.tail_poll)

    # -- POST /experiments ----------------------------------------------

    def _parse_submission(
        self, doc: dict
    ) -> tuple[str, HarnessConfig, bool]:
        from repro.experiments.registry import REGISTRY, all_experiment_ids

        exp_id = doc.get("exp_id")
        if not isinstance(exp_id, str) or not exp_id:
            raise HttpError(400, 'body needs an "exp_id" string')
        if exp_id not in REGISTRY:
            raise HttpError(
                404,
                f"unknown experiment {exp_id!r}; have "
                f"{', '.join(all_experiment_ids())}",
            )
        if "config" in doc:
            if not isinstance(doc["config"], dict):
                raise HttpError(400, '"config" must be an object')
            try:
                config = HarnessConfig.from_dict(doc["config"])
            except (ReproError, TypeError, KeyError, ValueError) as exc:
                raise HttpError(400, f"bad harness config: {exc}") from None
        else:
            profile = doc.get("profile", "bench")
            if profile not in _PROFILES:
                raise HttpError(
                    400,
                    f"unknown profile {profile!r}; have "
                    f"{', '.join(sorted(_PROFILES))}",
                )
            config = _PROFILES[profile]()
        return exp_id, config, bool(doc.get("trace", False))

    async def _handle_submit(self, request: Request) -> bytes:
        exp_id, config, trace = self._parse_submission(request.json())
        self.stats.submitted += 1
        key = cache_key(exp_id, config, self.src_digest)

        if not trace:
            cached = self.cache.get(key)
            if cached is not None:
                self.stats.hits += 1
                digest = ExperimentResult.from_dict(
                    cached["result"]
                ).digest()
                self._digest_index[digest] = key
                return json_response(
                    200,
                    self._submit_doc(
                        exp_id, key, digest, cached=True, coalesced=False,
                        elapsed=0.0,
                    ),
                )
            self.stats.misses += 1

        inflight = self._inflight.get(key)
        if inflight is not None:
            # Single-flight: ride the run that is already executing.
            # shield() keeps one cancelled waiter (client hung up) from
            # cancelling the shared run out from under the others.
            self.stats.coalesced += 1
            payload = await asyncio.shield(inflight)
            coalesced = True
        else:
            payload = await self._lead_run(exp_id, config, trace, key)
            coalesced = False

        digest = ExperimentResult.from_dict(payload["result"]).digest()
        self._digest_index[digest] = key
        return json_response(
            200,
            self._submit_doc(
                exp_id, key, digest, cached=False, coalesced=coalesced,
                elapsed=payload["elapsed"],
            ),
        )

    async def _lead_run(
        self, exp_id: str, config: HarnessConfig, trace: bool, key: str
    ) -> dict:
        """Execute as the single-flight leader for ``key``."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            spec = TaskSpec(
                exp_id=exp_id,
                config=config,
                trace=(
                    TraceSpec(spill_dir=str(self.trace_dir)) if trace else None
                ),
            )
            if trace:
                self.trace_dir.mkdir(parents=True, exist_ok=True)
                self._trace_paths[key] = (
                    self.trace_dir / f"{spec.artifact_stem}.trace.jsonl"
                )
            payload = await self.pool.run(spec)
            self.cache.put(
                key,
                {
                    "exp_id": exp_id,
                    "config": config.to_dict(),
                    "source": self.src_digest,
                    "elapsed": payload["elapsed"],
                    "result": payload["result"],
                },
            )
            if not future.cancelled():
                future.set_result(payload)
            return payload
        except BaseException as exc:
            self.stats.dispatched_errors += 1
            if not future.cancelled():
                future.set_exception(exc)
                # Mark retrieved so a waiterless failure does not warn
                # at GC time; waiters re-raise through shield().
                future.exception()
            raise
        finally:
            del self._inflight[key]

    @staticmethod
    def _submit_doc(
        exp_id: str,
        key: str,
        digest: str,
        cached: bool,
        coalesced: bool,
        elapsed: float,
    ) -> dict:
        return {
            "exp_id": exp_id,
            "key": key,
            "digest": digest,
            "cached": cached,
            "coalesced": coalesced,
            "elapsed": elapsed,
        }


@contextlib.contextmanager
def running_server(config: ServeConfig | None = None):
    """A live :class:`ExperimentServer` on a background event loop.

    The synchronous harness the CLI self-check, the tests, and the
    load bench share: the server accepts on its own thread, the caller
    talks to it over real sockets from this one.  Yields the server
    (with ``.port`` resolved); tears everything down on exit.
    """
    server = ExperimentServer(config)
    loop = asyncio.new_event_loop()
    started = threading.Event()
    boot_error: list[BaseException] = []

    def _run() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # surface bind errors to the caller
            boot_error.append(exc)
            started.set()
            return
        started.set()
        loop.run_forever()

    thread = threading.Thread(target=_run, name="repro-serve", daemon=True)
    thread.start()
    started.wait(timeout=30)
    if boot_error:
        loop.close()
        raise boot_error[0]
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
