"""``repro serve`` — the always-warm asyncio experiment service.

Layers, bottom up:

* :mod:`repro.serve.config` — startup configuration (the package's
  only sanctioned ``os.environ`` reader; PURE001 enforces this);
* :mod:`repro.serve.http` — hand-rolled HTTP/1.1 + SSE over asyncio
  streams (stdlib only, like everything else here);
* :mod:`repro.serve.pool` — asyncio façade over the runner's
  :class:`~repro.runner.transport.PersistentPoolTransport`;
* :mod:`repro.serve.app` — the daemon: routes, request coalescing,
  cache fronting, trace tailing;
* :mod:`repro.serve.client` — a blocking stdlib client for checks and
  scripts.

The digest-parity guarantee (daemon result ≡ ``repro run`` result,
byte for byte) rests on the serve path reusing the exact same
execution unit (:func:`repro.runner.worker.execute_task`), cache
keying, and scheduling core as the batch runner.
"""

from repro.serve.app import ExperimentServer, ServerStats, running_server
from repro.serve.client import ServeClient, ServeClientError
from repro.serve.config import ServeConfig
from repro.serve.http import HttpError, Request
from repro.serve.pool import AsyncWorkerPool

__all__ = [
    "AsyncWorkerPool",
    "ExperimentServer",
    "HttpError",
    "Request",
    "ServeClient",
    "ServeClientError",
    "ServeConfig",
    "ServerStats",
    "running_server",
]
