"""Startup configuration for the experiment service.

This module is the **only** place the serve package may read the
process environment — the deep lint rule PURE001 enforces it.  A
request handler's response must be a function of (request, server
state); letting handlers peek at ``os.environ`` mid-flight would make
two identical requests answerable with different bytes, which breaks
the daemon's digest-parity guarantee.  Everything ambient is therefore
resolved *once*, here, into a frozen :class:`ServeConfig` that the
server carries for its lifetime.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping

from repro.core.errors import ReproError

__all__ = ["ServeConfig", "DEFAULT_HOST", "DEFAULT_PORT"]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8472
DEFAULT_WORKERS = 2

#: Request bodies above this are rejected with 413 (a HarnessConfig
#: JSON is a few hundred bytes; a megabyte is already absurd).
DEFAULT_MAX_BODY = 1 << 20

#: How often the SSE tail endpoint polls a growing spill file for new
#: events, in wall-clock seconds.
DEFAULT_TAIL_POLL = 0.05


@dataclass(frozen=True)
class ServeConfig:
    """Everything the daemon resolves before accepting its first byte."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    #: Persistent pool size (pre-warmed worker processes).
    workers: int = DEFAULT_WORKERS
    #: Result-cache root; ``None`` defers to
    #: :func:`repro.runner.cache.default_cache_dir` at server build.
    cache_dir: Path | None = None
    #: Where traced runs spill their JSONL streams; ``None`` puts them
    #: under ``<cache>/serve-traces``.
    trace_dir: Path | None = None
    max_body: int = DEFAULT_MAX_BODY
    tail_poll: float = DEFAULT_TAIL_POLL
    #: Crash-retry knobs, mirrored into a
    #: :class:`~repro.runner.core.RetryPolicy` by the server.
    max_attempts: int = 3
    retry_backoff: float = 0.25
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ReproError("serve needs workers >= 1")
        if not 0 <= self.port <= 65535:
            raise ReproError(f"port out of range: {self.port}")
        if self.max_body < 1:
            raise ReproError("max_body must be >= 1 byte")
        if self.tail_poll <= 0:
            raise ReproError("tail_poll must be > 0 seconds")

    @classmethod
    def from_env(
        cls, env: Mapping[str, str] | None = None, **overrides
    ) -> "ServeConfig":
        """Build a config from ``REPRO_SERVE_*`` variables.

        Startup-time configuration parsing — the one sanctioned
        environment read in this package.  Explicit ``overrides``
        (CLI flags) win over the environment, which wins over the
        defaults.
        """
        if env is None:
            env = os.environ
        fields: dict = {}
        if "REPRO_SERVE_HOST" in env:
            fields["host"] = env["REPRO_SERVE_HOST"]
        for name, key in [
            ("REPRO_SERVE_PORT", "port"),
            ("REPRO_SERVE_WORKERS", "workers"),
        ]:
            if name in env:
                try:
                    fields[key] = int(env[name])
                except ValueError:
                    raise ReproError(
                        f"{name} must be an integer, got {env[name]!r}"
                    ) from None
        if "REPRO_SERVE_CACHE_DIR" in env:
            fields["cache_dir"] = Path(env["REPRO_SERVE_CACHE_DIR"])
        if "REPRO_SERVE_TRACE_DIR" in env:
            fields["trace_dir"] = Path(env["REPRO_SERVE_TRACE_DIR"])
        fields.update(
            {k: v for k, v in overrides.items() if v is not None}
        )
        return cls(**fields)
