"""Host aggregate, NIC, sysctls, tuning, VM layers."""

from __future__ import annotations

import pytest

from repro.core import units
from repro.core.errors import ConfigurationError, FeatureUnavailableError
from repro.host import (
    CONNECTX_5,
    CONNECTX_7,
    Host,
    HostTuning,
    Sysctls,
    VmConfig,
)
from repro.host.sysctl import OPTMEM_1MB, OPTMEM_DEFAULT, TcpMem


class TestNicSpec:
    def test_speeds(self):
        assert CONNECTX_5.speed_gbps == pytest.approx(100.0)
        assert CONNECTX_7.speed_gbps == pytest.approx(200.0)

    def test_ring_bytes_at_9k(self):
        # ethtool -G rx 8192 at MTU 9000 buffers ~70 MiB of burst
        assert CONNECTX_5.ring_bytes(8192, 9000) == pytest.approx(8192 * 9000)

    def test_ring_bounds(self):
        with pytest.raises(ConfigurationError):
            CONNECTX_5.ring_bytes(0, 9000)
        with pytest.raises(ConfigurationError):
            CONNECTX_5.ring_bytes(CONNECTX_5.max_ring_entries + 1, 9000)

    def test_hw_gro_only_cx7(self):
        assert CONNECTX_7.supports_hw_gro
        assert not CONNECTX_5.supports_hw_gro

    def test_with_speed(self):
        cx7_400 = CONNECTX_7.with_speed_gbps(400)
        assert cx7_400.speed_gbps == pytest.approx(400.0)


class TestSysctls:
    def test_stock_defaults(self):
        s = Sysctls()
        assert s.optmem_max == OPTMEM_DEFAULT == 20480
        assert s.default_qdisc == "fq_codel"
        assert s.tcp_congestion_control == "cubic"

    def test_fasterdata_tuning_matches_paper(self):
        s = Sysctls.fasterdata_tuned()
        assert s.rmem_max == 2147483647
        assert s.wmem_max == 2147483647
        assert s.tcp_rmem.max == 2147483647
        assert s.tcp_no_metrics_save is True
        assert s.default_qdisc == "fq"
        assert s.optmem_max == OPTMEM_1MB

    def test_stock_windows_cripple_wan(self):
        """Stock tcp_wmem caps a 104 ms path far below 100G."""
        rate = Sysctls().max_send_window() / 0.104
        assert units.to_gbps(rate) < 1.0

    def test_tuned_windows_cover_100g_wan(self):
        rate = Sysctls.fasterdata_tuned().max_send_window() / 0.104
        assert units.to_gbps(rate) > 60.0

    def test_tcpmem_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            TcpMem(4096, 100, 50)

    def test_set_returns_copy(self):
        s = Sysctls()
        t = s.set(optmem_max=OPTMEM_1MB)
        assert t.optmem_max == OPTMEM_1MB and s.optmem_max == OPTMEM_DEFAULT

    def test_enable_big_tcp(self):
        s = Sysctls().enable_big_tcp(153600)
        assert s.gso_max_size == 153600 and s.gro_max_size == 153600
        with pytest.raises(ConfigurationError):
            Sysctls().enable_big_tcp(1000)

    def test_describe_is_sysctl_conf(self):
        text = Sysctls.fasterdata_tuned().describe()
        assert "net.core.optmem_max=1048576" in text
        assert "net.core.default_qdisc=fq" in text


class TestHostTuning:
    def test_paper_tuning(self):
        t = HostTuning.paper()
        assert t.mtu == 9000 and not t.smt_enabled
        assert t.governor == "performance" and t.iommu_passthrough
        assert not t.irqbalance

    def test_stock_is_untouched(self):
        t = HostTuning.stock()
        assert t.irqbalance and t.smt_enabled and not t.iommu_passthrough

    def test_factors(self):
        assert HostTuning.paper().clock_factor == 1.0
        assert HostTuning.stock().clock_factor < 1.0
        assert HostTuning.paper().smt_factor == 1.0
        assert HostTuning.stock().smt_factor < 1.0
        assert HostTuning.paper().iommu_byte_cost_factor == 1.0
        assert HostTuning.stock().iommu_byte_cost_factor > 1.5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HostTuning(mtu=100)
        with pytest.raises(ConfigurationError):
            HostTuning(governor="warp-speed")


class TestVmConfig:
    def test_tuned_vm_nearly_free(self):
        vm = VmConfig.paper_tuned()
        assert vm.batch_cost_factor < 1.05
        assert vm.byte_cost_factor == 1.0
        assert vm.jitter < 0.01

    def test_untuned_vm_expensive(self):
        vm = VmConfig.untuned()
        assert vm.batch_cost_factor > 2.0
        assert vm.byte_cost_factor > 1.5

    def test_baremetal_exactly_free(self):
        vm = VmConfig.baremetal()
        assert vm.batch_cost_factor == 1.0
        assert vm.byte_cost_factor == 1.0
        assert vm.jitter == 0.0


class TestHostAggregate:
    def test_build_from_catalog_names(self):
        host = Host.build(cpu="intel", nic="cx5", kernel="6.8")
        assert host.cpu.arch == "intel"
        assert host.kernel.version.major == 6

    def test_ring_validation(self):
        with pytest.raises(ConfigurationError):
            Host.build(tuning=HostTuning(ring_entries=100000))

    def test_big_tcp_needs_new_kernel(self):
        with pytest.raises(FeatureUnavailableError):
            Host.build(kernel="5.15", sysctls=Sysctls().enable_big_tcp(153600))
        Host.build(kernel="6.8", sysctls=Sysctls().enable_big_tcp(153600))

    def test_zerocopy_gate(self):
        old = Host.build(kernel="5.10")
        old.require_zerocopy()  # 5.10 >= 4.17: fine
        ancient = Host.build(
            kernel=__import__("repro.host.kernel", fromlist=["Kernel"]).Kernel.named("4.9")
        )
        with pytest.raises(FeatureUnavailableError):
            ancient.require_zerocopy()

    def test_bigtcp_zerocopy_combo_refused_on_stock(self):
        host = Host.build(kernel="6.8", sysctls=Sysctls().enable_big_tcp(153600))
        with pytest.raises(FeatureUnavailableError):
            host.check_zerocopy_bigtcp_combo()

    def test_bigtcp_zerocopy_combo_allowed_on_custom(self):
        host = Host.build(kernel="6.8", sysctls=Sysctls().enable_big_tcp(153600))
        host = host.set(kernel=host.kernel.with_custom_skb_frags())
        host.check_zerocopy_bigtcp_combo()  # no raise

    def test_effective_gso_capped_by_kernel(self):
        host = Host.build(kernel="6.8", sysctls=Sysctls().enable_big_tcp(400000))
        assert host.effective_gso_size() == 400000
        legacy = Host.build(kernel="6.8")
        assert legacy.effective_gso_size() == 65536

    def test_hw_gro_needs_both_nic_and_kernel(self):
        assert Host.build(nic="cx7", kernel="6.11").hw_gro_active()
        assert not Host.build(nic="cx7", kernel="6.8").hw_gro_active()
        assert not Host.build(nic="cx5", kernel="6.11").hw_gro_active()

    def test_core_budget_reflects_tuning(self):
        tuned = Host.build(tuning=HostTuning.paper())
        stock = Host.build(tuning=HostTuning.stock())
        assert tuned.core_cycles_per_sec() > stock.core_cycles_per_sec()

    def test_placement_resolution(self):
        import numpy as np

        tuned = Host.build(tuning=HostTuning.paper())
        p = tuned.resolved_placement()
        assert p.label == "pinned"
        stock = Host.build(tuning=HostTuning.stock())
        with pytest.raises(ConfigurationError):
            stock.resolved_placement()  # random placement needs an rng
        p2 = stock.resolved_placement(np.random.default_rng(0))
        assert p2.label == "irqbalance"

    def test_describe_mentions_key_facts(self):
        text = Host.build(cpu="amd", nic="cx7", kernel="6.8").describe()
        assert "EPYC" in text and "ConnectX-7" in text and "Linux 6.8" in text
