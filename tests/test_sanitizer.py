"""The opt-in runtime simulation sanitizer (repro.sim.sanitizer).

Covers the toggle plumbing (env var / enable / context manager), each
invariant check in isolation, the wiring into ``Engine`` and
``FlowSimulator``, a fault-injection proof that broken conservation is
actually caught, and the hypothesis determinism guard: a sanitized
engine run replays to an identical event trace given the same seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import Engine
from repro.core.errors import SanitizerViolation, SimulationError
from repro.core.rng import RngFactory
from repro.net.switch import SharedBufferQueue
from repro.sim import sanitizer
from repro.sim.flowsim import FlowSimulator, FlowSpec, SimProfile
from repro.sim.sanitizer import SimSanitizer
from repro.testbeds.amlight import AmLightTestbed


@pytest.fixture(autouse=True)
def _restore_sanitizer_state():
    yield
    sanitizer.reset()


def quick_sim(seed: int = 3, path: str = "wan54", **flow_kw) -> FlowSimulator:
    tb = AmLightTestbed(kernel="6.8")
    snd, rcv = tb.host_pair()
    return FlowSimulator(
        snd, rcv, tb.path(path),
        flows=[FlowSpec(**flow_kw)],
        profile=SimProfile.quick(),
        rng=RngFactory(seed),
    )


class TestToggle:
    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        sanitizer.reset()
        assert not sanitizer.enabled()

    @pytest.mark.parametrize("value", ["1", "true", "YES", " on "])
    def test_env_var_truthy(self, monkeypatch, value):
        monkeypatch.setenv(sanitizer.ENV_VAR, value)
        sanitizer.reset()
        assert sanitizer.enabled()

    @pytest.mark.parametrize("value", ["0", "false", "", "off"])
    def test_env_var_falsy(self, monkeypatch, value):
        monkeypatch.setenv(sanitizer.ENV_VAR, value)
        sanitizer.reset()
        assert not sanitizer.enabled()

    def test_enable_overrides_env(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_VAR, "0")
        sanitizer.enable()
        assert sanitizer.enabled()
        sanitizer.disable()
        assert not sanitizer.enabled()

    def test_context_manager_restores(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        sanitizer.reset()
        with sanitizer.sanitized():
            assert sanitizer.enabled()
        assert not sanitizer.enabled()

    def test_violation_is_simulation_error(self):
        assert issubclass(SanitizerViolation, SimulationError)


class TestChecks:
    def test_time_monotonic_ok(self):
        san = SimSanitizer()
        san.check_time(0.0)
        san.check_time(0.0)  # equal is fine (simultaneous events)
        san.check_time(1.5)
        assert san.checks == 3

    def test_time_backwards_raises(self):
        san = SimSanitizer()
        san.check_time(2.0)
        with pytest.raises(SanitizerViolation, match="backwards"):
            san.check_time(1.0)

    def test_time_nan_raises(self):
        with pytest.raises(SanitizerViolation, match="non-finite"):
            SimSanitizer().check_time(float("nan"))

    def test_reset_clock_allows_rewind(self):
        san = SimSanitizer()
        san.check_time(5.0)
        san.reset_clock()
        san.check_time(0.0)

    def test_non_negative_ok_scalar_and_array(self):
        san = SimSanitizer()
        san.check_non_negative("q", 0.0)
        san.check_non_negative("q", np.array([0.0, 1.0, 2.0]))

    def test_non_negative_catches_negative_element(self):
        with pytest.raises(SanitizerViolation, match="negative"):
            SimSanitizer().check_non_negative("q", np.array([1.0, -0.5]))

    def test_non_negative_catches_nan(self):
        with pytest.raises(SanitizerViolation, match="non-finite"):
            SimSanitizer().check_non_negative("q", float("nan"))

    def test_positive_catches_zero(self):
        with pytest.raises(SanitizerViolation, match="> 0"):
            SimSanitizer().check_positive("cwnd", 0.0)

    def test_account_link_balanced(self):
        SimSanitizer().account_link(
            "l", offered=100.0, delivered=60.0, dropped=10.0,
            queue_before=5.0, queue_after=35.0,
        )

    def test_account_link_created_bytes_raises(self):
        with pytest.raises(SanitizerViolation, match="created"):
            SimSanitizer().account_link(
                "l", offered=100.0, delivered=150.0, dropped=0.0,
                queue_before=0.0, queue_after=0.0,
            )

    def test_account_link_vanished_bytes_raises(self):
        with pytest.raises(SanitizerViolation, match="lost"):
            SimSanitizer().account_link(
                "l", offered=100.0, delivered=10.0, dropped=0.0,
                queue_before=0.0, queue_after=0.0,
            )

    def test_account_link_flow_control_may_hold_back(self):
        SimSanitizer().account_link(
            "l", offered=100.0, delivered=10.0, dropped=0.0,
            queue_before=0.0, queue_after=0.0, flow_control=True,
        )

    def test_stream_registry_clean(self):
        rng = RngFactory(seed=1)
        rng.stream("a")
        rng.stream("b")
        SimSanitizer().check_stream_registry(rng)


class TestEngineWiring:
    def test_engine_without_sanitizer_by_default(self, monkeypatch):
        monkeypatch.delenv(sanitizer.ENV_VAR, raising=False)
        sanitizer.reset()
        assert Engine().sanitizer is None

    def test_engine_picks_up_env(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_VAR, "1")
        sanitizer.reset()
        assert Engine().sanitizer is not None

    def test_engine_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv(sanitizer.ENV_VAR, "1")
        sanitizer.reset()
        assert Engine(sanitize=False).sanitizer is None
        monkeypatch.setenv(sanitizer.ENV_VAR, "0")
        sanitizer.reset()
        assert Engine(sanitize=True).sanitizer is not None

    def test_sanitized_engine_runs_clean(self):
        eng = Engine(sanitize=True)
        fired = []
        for t in (0.5, 0.1, 0.3):
            eng.schedule(t, lambda t=t: fired.append(t))
        eng.run()
        assert fired == [0.1, 0.3, 0.5]
        assert eng.sanitizer.checks >= 3

    def test_sanitized_engine_survives_reset(self):
        eng = Engine(sanitize=True)
        eng.schedule(1.0, lambda: None)
        eng.run()
        eng.reset()
        eng.schedule(0.1, lambda: None)  # earlier than the old clock
        eng.run()


class TestFlowsimWiring:
    def test_quick_run_clean_under_sanitizer(self):
        with sanitizer.sanitized():
            result = quick_sim().run()
        assert result.total_gbps > 0

    def test_flow_control_path_clean_under_sanitizer(self):
        # Held-back bytes on 802.3x paths must not trip conservation.
        from repro.testbeds.esnet import ESnetTestbed

        tb = ESnetTestbed(kernel="6.8")
        snd, rcv = tb.production_host_pair()
        sim = FlowSimulator(
            snd, rcv, tb.production_path(),
            flows=[FlowSpec() for _ in range(4)],
            profile=SimProfile.quick(),
            rng=RngFactory(5),
        )
        with sanitizer.sanitized():
            result = sim.run()
        assert result.total_gbps > 0

    def test_replay_bitwise_identical_under_sanitizer(self):
        with sanitizer.sanitized():
            a = quick_sim(seed=11).run()
            b = quick_sim(seed=11).run()
        assert a.total_gbps == b.total_gbps
        assert a.retransmit_segments == b.retransmit_segments

    def test_broken_conservation_is_caught(self, monkeypatch):
        original = SharedBufferQueue.offer

        def lying_offer(self, arrival_bytes, dt):
            delivered, dropped = original(self, arrival_bytes, dt)
            return delivered + 1e9, dropped  # mint a gigabyte

        monkeypatch.setattr(SharedBufferQueue, "offer", lying_offer)
        sim = quick_sim()
        with sanitizer.sanitized():
            with pytest.raises(SanitizerViolation, match="created"):
                sim.run()

    def test_disabled_sanitizer_ignores_fault(self, monkeypatch):
        # Same fault, sanitizer off: the conservation bug sails through,
        # which is exactly why the sanitizer exists.
        original = SharedBufferQueue.offer

        def lying_offer(self, arrival_bytes, dt):
            delivered, dropped = original(self, arrival_bytes, dt)
            return delivered + 1e9, dropped

        monkeypatch.setattr(SharedBufferQueue, "offer", lying_offer)
        with sanitizer.sanitized(False):
            quick_sim().run()  # no exception


class TestEngineTraceDeterminism:
    """Satellite: hypothesis guard — same seed, identical event trace."""

    @staticmethod
    def _trace(seed: int) -> list[tuple[float, int]]:
        events: list[tuple[float, int]] = []
        with sanitizer.sanitized():
            eng = Engine()
            rng = RngFactory(seed).stream("engine-trace")

            def fire(tag: int) -> None:
                events.append((eng.now, tag))
                if len(events) >= 60:
                    return
                eng.call_in(
                    float(rng.exponential(0.01)),
                    lambda: fire(tag + 1),
                    priority=int(rng.integers(0, 3)),
                )
                if rng.random() < 0.3:
                    eng.call_in(float(rng.exponential(0.02)),
                                lambda: fire(-tag))

            for k in range(5):
                eng.schedule(float(rng.uniform(0.0, 0.05)),
                             (lambda kk: lambda: fire(kk))(k))
            eng.run(max_events=10_000)
        return events

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_identical_trace_across_replays(self, seed):
        assert self._trace(seed) == self._trace(seed)
