"""Network substrate: links, switch queues, flow control, paths, topology."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import units
from repro.core.errors import ConfigurationError, SimulationError
from repro.net import (
    BackgroundTraffic,
    FlowControlState,
    Link,
    NetworkPath,
    SharedBufferQueue,
    SwitchModel,
    Topology,
)


class TestLink:
    def test_of_gbps(self):
        link = Link.of_gbps("wan", 100, delay_ms=52, admin_limit_gbps=80)
        assert link.rate_bytes_per_sec == pytest.approx(units.gbps(100))
        assert link.delay_sec == pytest.approx(0.052)
        assert link.usable_rate == pytest.approx(units.gbps(80))

    def test_no_admin_uses_full_rate(self):
        link = Link.of_gbps("lan", 100)
        assert link.usable_rate == link.rate_bytes_per_sec

    def test_serialization_time(self):
        link = Link.of_gbps("l", 100)
        assert link.serialization_time(units.gbps(100)) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Link("bad", rate_bytes_per_sec=-1)
        with pytest.raises(ConfigurationError):
            Link("bad", rate_bytes_per_sec=1e9, delay_sec=-1)
        with pytest.raises(ConfigurationError):
            Link.of_gbps("bad", 100, admin_limit_gbps=200)


class TestSharedBufferQueue:
    def mk(self, buffer_mb=1.0, drain=1e9, fc=False):
        sw = SwitchModel("t", buffer_mb * units.MB, supports_flow_control=fc)
        return SharedBufferQueue(sw, drain_rate=drain)

    def test_underload_delivers_all(self):
        q = self.mk()
        delivered, dropped = q.offer(5e8 * 0.01, 0.01)  # half the drain
        assert dropped == 0
        assert delivered == pytest.approx(5e6)
        assert q.occupancy == 0

    def test_overload_builds_queue(self):
        q = self.mk(buffer_mb=50)
        delivered, dropped = q.offer(2e9 * 0.01, 0.01)
        assert delivered == pytest.approx(1e7)
        assert q.occupancy == pytest.approx(1e7)
        assert dropped == 0  # 10 MB of standing queue fits in 50 MB

    def test_overflow_drops_without_fc(self):
        q = self.mk(buffer_mb=1.0)
        _, dropped = q.offer(3e9 * 0.01, 0.01)  # 30 MB in, 10 MB out
        assert dropped > 0
        assert q.occupancy == pytest.approx(units.MB)

    def test_overflow_pauses_with_fc(self):
        q = self.mk(buffer_mb=1.0, fc=True)
        _, dropped = q.offer(3e9 * 0.01, 0.01)
        assert dropped == 0
        assert q.paused_time > 0
        assert q.occupancy == pytest.approx(units.MB)

    def test_queue_drains_over_time(self):
        q = self.mk(buffer_mb=50)
        q.offer(2e9 * 0.01, 0.01)
        occ = q.occupancy
        q.offer(0.0, 0.01)
        assert q.occupancy < occ

    def test_conservation(self):
        """delivered + dropped + occupancy == offered (+ initial occupancy)."""
        q = self.mk(buffer_mb=2.0)
        total_in = total_out = total_drop = 0.0
        rng = np.random.default_rng(0)
        for _ in range(200):
            arrival = float(rng.uniform(0, 3e7))
            d, x = q.offer(arrival, 0.01)
            total_in += arrival
            total_out += d
            total_drop += x
        assert total_in == pytest.approx(total_out + total_drop + q.occupancy)

    def test_invalid_offer(self):
        q = self.mk()
        with pytest.raises(SimulationError):
            q.offer(-1.0, 0.01)
        with pytest.raises(SimulationError):
            q.offer(1.0, 0.0)

    def test_reset(self):
        q = self.mk(buffer_mb=0.5)
        q.offer(3e7, 0.01)
        q.reset()
        assert q.occupancy == 0 and q.dropped_bytes == 0


class TestFlowControlState:
    def test_disabled_never_pauses(self):
        fc = FlowControlState(enabled=False)
        assert fc.update(ring_fill=0.99, dt=0.01) == 0.0
        assert fc.pause_events == 0

    def test_pause_resume_hysteresis(self):
        fc = FlowControlState(enabled=True)
        assert fc.update(0.5, 0.01) == 0.0
        assert fc.update(0.9, 0.01) > 0.0  # pause begins
        assert fc.paused
        assert fc.update(0.6, 0.01) == 1.0  # still above resume threshold
        assert fc.update(0.3, 0.01) < 1.0  # resumes
        assert not fc.paused
        assert fc.pause_events == 1

    def test_paused_time_accumulates(self):
        fc = FlowControlState(enabled=True)
        fc.update(0.9, 0.01)
        fc.update(0.9, 0.01)
        assert fc.total_paused_sec > 0

    def test_paused_time_equals_integral_of_returned_fractions(self):
        """Regression: the resume tick's partial pause (0.3 of a tick)
        was returned to the simulator but never added to
        ``total_paused_sec``, undercounting Table-III-style paused-time
        evidence.  The invariant now: accounted pause time is exactly
        the integral of every returned fraction."""
        fc = FlowControlState(enabled=True)
        dt = 0.01
        # Ring-fill trajectory driving pause -> hold -> resume twice.
        fills = [0.5, 0.9, 0.8, 0.6, 0.3, 0.2, 0.95, 0.5, 0.35, 0.1]
        integral = 0.0
        for fill in fills:
            integral += dt * fc.update(fill, dt)
        assert fc.pause_events == 2
        assert fc.total_paused_sec == integral


class TestBackgroundTraffic:
    def test_none_is_zero(self):
        bg = BackgroundTraffic.none()
        assert not bg.active
        assert np.all(bg.sample(np.random.default_rng(0), 10) == 0)

    def test_amlight_mean_16g(self):
        bg = BackgroundTraffic.amlight_production()
        rng = np.random.default_rng(0)
        mean = bg.sample(rng, 20000).mean()
        assert units.to_gbps(mean) == pytest.approx(16.0, rel=0.05)

    def test_burstiness_spreads(self):
        bg = BackgroundTraffic.amlight_production()
        s = bg.sample(np.random.default_rng(0), 10000)
        assert s.max() > 2 * s.min()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackgroundTraffic(mean_bytes_per_sec=-1)


class TestNetworkPath:
    def test_lan_factory(self):
        p = NetworkPath.lan(gbps_value=100)
        assert not p.is_wan and p.capacity == pytest.approx(units.gbps(100))

    def test_flow_control_requires_capable_switch(self):
        with pytest.raises(ConfigurationError):
            NetworkPath(
                name="bad",
                bottleneck=Link.of_gbps("l", 100, delay_ms=30),
                rtt_sec=0.06,
                switch=SwitchModel.noviflow_wb5132(),  # no 802.3x
                flow_control=True,
            )

    def test_bdp(self):
        p = NetworkPath.lan()
        assert p.bdp_bytes(rate=1e9) == pytest.approx(1e9 * p.rtt_sec)

    def test_describe(self):
        text = NetworkPath.lan().describe()
        assert "no flow control" in text


class TestTopology:
    def build(self):
        topo = Topology("test")
        topo.add_host("a")
        topo.add_host("b")
        topo.add_switch("s1", SwitchModel.noviflow_wb5132())
        topo.add_switch("s2", SwitchModel.edgecore_as9716())
        topo.add_link("a", "s1", 100, delay_ms=0.05)
        topo.add_link("s1", "s2", 100, delay_ms=26.95, admin_limit_gbps=80)
        topo.add_link("s2", "b", 100, delay_ms=0.05)
        return topo

    def test_path_rtt_is_twice_one_way(self):
        path = self.build().path_between("a", "b")
        assert path.rtt_ms == pytest.approx(54.1, abs=0.1)

    def test_bottleneck_and_admin(self):
        path = self.build().path_between("a", "b")
        assert path.capacity == pytest.approx(units.gbps(80))

    def test_smallest_buffer_switch_binds(self):
        path = self.build().path_between("a", "b")
        assert path.switch.model.startswith("NoviFlow")

    def test_unknown_nodes(self):
        topo = self.build()
        with pytest.raises(ConfigurationError):
            topo.path_between("a", "nowhere")
        with pytest.raises(ConfigurationError):
            topo.add_link("a", "nowhere", 100)

    def test_hosts_and_switches_listing(self):
        topo = self.build()
        assert sorted(topo.hosts) == ["a", "b"]
        assert sorted(topo.switches) == ["s1", "s2"]
