"""Experiment framework: registry coverage and structural validity.

Every registered experiment runs once at the quick config and must
produce well-formed rows.  The per-artifact *shape* claims live in
test_paper_shapes.py; these tests are about the framework contract.
"""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.experiments import REGISTRY, all_experiment_ids, run_experiment
from repro.tools.harness import HarnessConfig

QUICK = HarnessConfig(repetitions=2, duration=6.0, omit=1.5, tick=0.005)

#: Paper artifacts that must all be covered by the registry.
REQUIRED_ARTIFACTS = {
    "fig04", "fig05", "fig06", "fig07", "fig08", "fig09",
    "fig10", "fig11", "fig12", "fig13",
    "tab1", "tab2", "tab3",
}


class TestRegistry:
    def test_covers_every_paper_artifact(self):
        assert REQUIRED_ARTIFACTS <= set(REGISTRY)

    def test_extras_present(self):
        assert {"cc", "fw-hwgro", "fw-combo", "var"} <= set(REGISTRY)

    def test_ids_unique_and_ordered(self):
        ids = all_experiment_ids()
        assert len(ids) == len(set(ids))
        assert ids[0] == "fig04"

    def test_unknown_id_raises(self):
        with pytest.raises(ConfigurationError):
            run_experiment("fig99")

    def test_metadata_complete(self):
        for exp_id, cls in REGISTRY.items():
            assert cls.exp_id == exp_id
            assert cls.title and cls.paper_ref and cls.expectation, exp_id


# Run the cheap experiments end to end; the expensive multi-config ones
# are exercised by the benchmarks (and by test_paper_shapes for claims).
CHEAP_EXPERIMENTS = ["fig06", "fig08", "fig12", "tab3", "var", "pit-fqrate", "pit-iommu"]


@pytest.mark.parametrize("exp_id", CHEAP_EXPERIMENTS)
def test_experiment_runs_and_is_well_formed(exp_id):
    result = run_experiment(exp_id, QUICK)
    assert result.exp_id == exp_id
    assert result.rows, "no rows produced"
    for row in result.rows:
        missing = [c for c in result.columns if c not in row]
        assert not missing, f"row missing columns {missing}"
    text = result.render()
    assert result.paper_ref in text


def test_fig04_vm_equivalence_quick():
    result = run_experiment("fig04", QUICK)
    bare = result.row_by(path="wan54", vm_mode="baremetal", test="default")["gbps"]
    tuned = result.row_by(path="wan54", vm_mode="tuned", test="default")["gbps"]
    untuned = result.row_by(path="wan54", vm_mode="untuned", test="default")["gbps"]
    assert tuned == pytest.approx(bare, rel=0.06)
    assert untuned < 0.7 * bare


def test_future_combo_runs():
    result = run_experiment("fw-combo", QUICK)
    refused = result.row_by(kernel="6.8 stock")
    assert "refused" in refused["note"]
    combo = result.row_by(config="bigtcp+zc+pace65")
    base = result.row_by(config="zc+pace50")
    assert combo["gbps"] > base["gbps"]


def test_markdown_roundtrip():
    from repro.analysis.report import result_to_markdown

    result = run_experiment("fig12", QUICK)
    md = result_to_markdown(result)
    assert "fig12" in md and "| kernel |" in md.replace("  ", " ")


def test_ablation_cache_attributes_wan_gap():
    result = run_experiment("abl-cache", QUICK)
    real = result.row_by(model="calibrated", path="wan54")["gbps"]
    ablated = result.row_by(model="no-cache-penalty", path="wan54")["gbps"]
    assert ablated > real


def test_extension_400g_structure():
    result = run_experiment("ext-400g", QUICK)
    assert {row["matrix"] for row in result.rows} == {
        "8 x 25G", "20 x 20G", "10 x 40G"
    }
    for row in result.rows:
        assert 0 < row["gbps"] <= row["attempted"] * 1.02
