"""Burst/loss model: slacks, train volumes, drop attribution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.lossmodel import (
    BurstModel,
    COPY_MODE_SLACK,
    TRAIN_FRACTION,
    concentrate_drops,
    distribute_drops,
)


def model(seed=0) -> BurstModel:
    return BurstModel(rng=np.random.default_rng(seed))


class TestSlack:
    def test_fq_paced_flows_have_no_slack(self):
        m = model()
        assert m.slack_for(paced_smooth=True, pacing_enabled=True, zerocopy=True) == 0.0

    def test_unpaced_zerocopy_is_burstiest(self):
        m = model()
        zc = m.slack_for(False, False, True)
        copy = m.slack_for(False, False, False)
        assert zc == 1.0 and copy == COPY_MODE_SLACK < zc

    def test_coarse_pacing_partial_slack(self):
        m = model()
        coarse = m.slack_for(paced_smooth=False, pacing_enabled=True, zerocopy=False)
        assert 0 < coarse < 1


class TestTrainVolumes:
    def test_scale_with_cwnd_and_slack(self):
        m = model()
        cwnd = np.array([1e8, 1e8])
        slacks = np.array([1.0, 0.3])
        vols = np.array([
            m.train_volumes(slacks, cwnd) for _ in range(500)
        ]).mean(axis=0)
        assert vols[0] == pytest.approx(TRAIN_FRACTION * 1e8, rel=0.1)
        assert vols[1] == pytest.approx(0.3 * TRAIN_FRACTION * 1e8, rel=0.1)

    def test_paced_flows_emit_nothing(self):
        m = model()
        vols = m.train_volumes(np.zeros(4), np.full(4, 1e9))
        assert np.all(vols == 0)

    def test_empty(self):
        assert model().train_volumes(np.zeros(0), np.zeros(0)).size == 0

    def test_deterministic_per_seed(self):
        a = model(7).train_volumes(np.ones(3), np.full(3, 1e8))
        b = model(7).train_volumes(np.ones(3), np.full(3, 1e8))
        assert np.array_equal(a, b)


class TestWeights:
    def test_paced_weights_are_uniform(self):
        m = model()
        w = m.persistent_weights(np.zeros(8))
        assert np.allclose(w, 1.0)

    def test_unpaced_weights_spread(self):
        m = model()
        w = m.persistent_weights(np.ones(8))
        assert w.max() / w.min() > 1.1

    def test_tick_weights_jitter_around_persistent(self):
        m = model()
        persistent = m.persistent_weights(np.ones(8))
        ticks = np.array([m.tick_weights(persistent, np.ones(8)) for _ in range(200)])
        assert np.allclose(ticks.mean(axis=0), persistent, rtol=0.1)


class TestDropAttribution:
    def test_distribute_proportional(self):
        arrivals = np.array([1.0, 3.0])
        drops = distribute_drops(arrivals, 4.0)
        assert np.allclose(drops, [1.0, 3.0])

    def test_distribute_zero(self):
        assert np.all(distribute_drops(np.array([1.0, 2.0]), 0.0) == 0)
        assert np.all(distribute_drops(np.zeros(2), 5.0) == 0)

    def test_concentrate_conserves_volume(self):
        rng = np.random.default_rng(0)
        arrivals = np.array([1.0, 2.0, 3.0, 4.0])
        drops = concentrate_drops(rng, arrivals, 10.0)
        assert drops.sum() == pytest.approx(10.0)

    def test_concentrate_hits_few_flows(self):
        rng = np.random.default_rng(0)
        drops = concentrate_drops(rng, np.ones(8), 8.0, spread=2)
        assert np.count_nonzero(drops) == 2

    def test_concentrate_single_flow(self):
        rng = np.random.default_rng(0)
        drops = concentrate_drops(rng, np.array([5.0]), 2.0)
        assert drops[0] == pytest.approx(2.0)

    def test_concentrate_prefers_big_flows(self):
        rng = np.random.default_rng(0)
        arrivals = np.array([100.0, 1.0, 1.0, 1.0])
        hit_big = sum(
            concentrate_drops(rng, arrivals, 1.0, spread=1)[0] > 0
            for _ in range(200)
        )
        assert hit_big > 150  # ~97% expected

    @settings(max_examples=50)
    @given(
        st.lists(st.floats(min_value=0.1, max_value=1e9), min_size=1, max_size=12),
        st.floats(min_value=0, max_value=1e9),
    )
    def test_concentrate_conservation_property(self, arrivals, dropped):
        rng = np.random.default_rng(1)
        drops = concentrate_drops(rng, np.array(arrivals), dropped)
        assert drops.sum() == pytest.approx(dropped, rel=1e-9, abs=1e-9)
        assert np.all(drops >= 0)
